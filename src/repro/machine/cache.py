"""Cache-hierarchy model.

The paper's loop-tiling optimization (Section 3.4) works because a
sub-tile that was just produced by FFTy is still resident in the private
cache when Pack reads it.  This module decides residency: a working set
"fits" when it is no larger than a configurable fraction of the private
cache (the rest is occupied by twiddles, buffers, and other live data).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CacheModel:
    """Private cache hierarchy of one core.

    ``l1_bytes``/``l2_bytes`` are per-core capacities; ``line_bytes`` is
    the coherence-line size; ``usable_fraction`` is the share of the last
    private level that a sub-tile may occupy and still be considered
    resident when re-read.
    """

    l1_bytes: int
    l2_bytes: int
    line_bytes: int = 64
    usable_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.l1_bytes <= 0 or self.l2_bytes <= 0:
            raise ValueError("cache sizes must be positive")
        if not 0.0 < self.usable_fraction <= 1.0:
            raise ValueError(
                f"usable_fraction must be in (0, 1], got {self.usable_fraction}"
            )

    @property
    def private_bytes(self) -> int:
        """Capacity of the last private level (what tiling targets)."""
        return self.l2_bytes

    def fits_private(self, working_set_bytes: int) -> bool:
        """True when ``working_set_bytes`` can stay resident between the
        producing step (FFTy/Unpack) and the consuming step (Pack/FFTx)."""
        return working_set_bytes <= self.usable_fraction * self.private_bytes

    def fits_l1(self, working_set_bytes: int) -> bool:
        """True when the working set is L1-resident."""
        return working_set_bytes <= self.usable_fraction * self.l1_bytes

    def lines_touched(self, nbytes: int) -> int:
        """Number of cache lines covering ``nbytes`` of contiguous data."""
        return -(-nbytes // self.line_bytes)
