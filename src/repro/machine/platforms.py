"""Platform presets modeling the paper's two evaluation machines.

The constants are calibrated (``repro/bench/calibrate.py``) so the
simulated FFTW-style baseline lands in the neighborhood of the paper's
Table 2 absolute times; the reproduction target is the *shape* of the
results (speedups, crossovers, breakdowns), not the exact seconds.

``UMD_CLUSTER``
    64-node Linux cluster: one Intel Xeon 2.66 GHz (SSE) core per node,
    512 KB L2, Myrinet 2000 (~250 MB/s per link, switch fabric whose
    effective all-to-all bandwidth degrades quickly with job size).

``HOPPER``
    Cray XE6: AMD Magny-Cours 2.1 GHz, 64 KB L1 / 512 KB L2 per core,
    8 ranks per node sharing a Gemini NIC on a 3-D torus (fast links,
    milder contention growth — the reason the paper sees smaller overlap
    headroom on Hopper at small scale, §5.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .cache import CacheModel
from .cpu import CpuModel
from .network import NetworkModel


@dataclass(frozen=True)
class Platform:
    """A named machine: one CPU model plus one network model."""

    name: str
    cpu: CpuModel
    net: NetworkModel

    def with_(self, **net_or_cpu_overrides) -> "Platform":
        """Return a copy with selected cpu/net fields replaced.

        Keys prefixed ``cpu_`` update the CPU model, ``net_`` the network
        model; used by calibration sweeps and ablation benchmarks.
        """
        cpu_kw = {
            k[4:]: v for k, v in net_or_cpu_overrides.items() if k.startswith("cpu_")
        }
        net_kw = {
            k[4:]: v for k, v in net_or_cpu_overrides.items() if k.startswith("net_")
        }
        unknown = set(net_or_cpu_overrides) - {
            k for k in net_or_cpu_overrides if k.startswith(("cpu_", "net_"))
        }
        if unknown:
            raise ValueError(f"unknown override keys: {sorted(unknown)}")
        return Platform(
            name=self.name,
            cpu=replace(self.cpu, **cpu_kw) if cpu_kw else self.cpu,
            net=replace(self.net, **net_kw) if net_kw else self.net,
        )


UMD_CLUSTER = Platform(
    name="UMD-Cluster",
    cpu=CpuModel(
        flops=1.03e9,
        mem_bw=1.35e9,
        cache_bw=5.0e9,
        cache=CacheModel(l1_bytes=32 * 1024, l2_bytes=512 * 1024),
        loop_overhead=2.5e-7,
        test_overhead=8.0e-7,
    ),
    net=NetworkModel(
        latency=7.0e-6,
        node_bw=245e6,
        ranks_per_node=1,
        eager_threshold=32 * 1024,
        max_inflight=4,
        contention_model="log",
        contention_coeff=0.55,
        contention_base=2,
    ),
)

HOPPER = Platform(
    name="Hopper",
    cpu=CpuModel(
        flops=2.05e9,
        mem_bw=3.2e9,
        cache_bw=8.0e9,
        cache=CacheModel(l1_bytes=64 * 1024, l2_bytes=512 * 1024),
        loop_overhead=1.5e-7,
        test_overhead=5.0e-7,
    ),
    net=NetworkModel(
        latency=1.6e-6,
        node_bw=8.0e9,
        ranks_per_node=8,
        eager_threshold=8 * 1024,
        max_inflight=8,
        contention_model="pow",
        contention_coeff=0.79,
        contention_expo=0.565,
        contention_base=8,
    ),
)

#: Registry for CLI/bench lookup by name.
PLATFORMS: dict[str, Platform] = {
    UMD_CLUSTER.name: UMD_CLUSTER,
    HOPPER.name: HOPPER,
}


def get_platform(name: str) -> Platform:
    """Look a preset up by name (case-insensitive)."""
    for key, plat in PLATFORMS.items():
        if key.lower() == name.lower():
            return plat
    raise KeyError(f"unknown platform {name!r}; known: {sorted(PLATFORMS)}")
