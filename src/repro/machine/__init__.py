"""Analytic machine models: CPU, cache, network, and platform presets."""

from .cache import CacheModel
from .cpu import CpuModel
from .network import NetworkModel
from .platforms import HOPPER, PLATFORMS, UMD_CLUSTER, Platform, get_platform

__all__ = [
    "CacheModel",
    "CpuModel",
    "HOPPER",
    "NetworkModel",
    "PLATFORMS",
    "Platform",
    "UMD_CLUSTER",
    "get_platform",
]
