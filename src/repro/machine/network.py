"""Network parameter model.

A :class:`NetworkModel` describes the interconnect as seen by one rank:
LogGP-style latency/bandwidth, NIC injection rate shared by the ranks on
a node, an eager/rendezvous protocol threshold, and a *contention* law
that degrades effective all-to-all bandwidth as the job grows.  The
contention law is the load-bearing part of the reproduction: the paper's
platform differences (Section 5.2) come from Myrinet 2000 saturating much
earlier than the Gemini torus, which changes the computation/
communication balance and therefore how much overlap can buy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkModel:
    """Interconnect parameters for the simulated cluster.

    Parameters
    ----------
    latency:
        One-way small-message latency ``alpha`` (s).
    node_bw:
        Injection bandwidth of one node's NIC (bytes/s), shared evenly by
        the ranks placed on the node.
    ranks_per_node:
        Job placement: how many simulated ranks share one NIC.
    eager_threshold:
        Messages at most this many bytes are sent eagerly; larger ones
        pay a rendezvous handshake that needs the *receiver* to enter the
        MPI library (this is why MPI_Test frequency matters, §3.3).
    max_inflight:
        Sends one MPI_Test call can push onto the NIC (library pacing).
    contention_coeff:
        Strength of the fabric-contention law (see :meth:`contention`).
    contention_base:
        Job size at which contention starts to bite.
    contention_model:
        ``"log"`` — switch-fabric congestion growing with each doubling
        (Myrinet-like); ``"pow"`` — torus bisection sharing, divisor
        ``max(1, coeff * (p/base)**contention_expo)`` (Gemini-like).
    contention_expo:
        Exponent of the ``"pow"`` law (≈1/3 for a 3-D torus bisection).
    post_overhead:
        CPU cost (s) of posting an (i)alltoall: building the schedule,
        setting up p message descriptors.
    per_peer_post:
        Additional post cost per peer (s).
    """

    latency: float
    node_bw: float
    ranks_per_node: int = 1
    eager_threshold: int = 16 * 1024
    max_inflight: int = 4
    contention_coeff: float = 0.4
    contention_base: int = 2
    contention_model: str = "log"
    contention_expo: float = 1.0 / 3.0
    post_overhead: float = 4.0e-6
    per_peer_post: float = 1.5e-7

    def __post_init__(self) -> None:
        if self.latency < 0 or self.node_bw <= 0:
            raise ValueError("latency must be >= 0 and node_bw > 0")
        if self.ranks_per_node < 1:
            raise ValueError("ranks_per_node must be >= 1")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.contention_model not in ("log", "pow"):
            raise ValueError(
                f"contention_model must be 'log' or 'pow', got {self.contention_model!r}"
            )

    def contention(self, p: int) -> float:
        """Effective-bandwidth divisor for an all-to-all among ``p`` ranks.

        ``"log"``: ``1 + c * log2(p / base)`` — each doubling of the job
        adds a fixed increment of switch congestion (Myrinet-like).
        ``"pow"``: ``max(1, c * (p / base)**expo)`` — torus bisection
        sharing (Gemini-like).  The paper observes exactly this "high
        complexity of the all-to-all operation at high p" (§5.2.1).
        """
        if p <= self.contention_base:
            return 1.0
        if self.contention_model == "log":
            return 1.0 + self.contention_coeff * math.log2(p / self.contention_base)
        return max(
            1.0,
            self.contention_coeff * (p / self.contention_base) ** self.contention_expo,
        )

    def rank_rate(self, p: int) -> float:
        """Sustained all-to-all injection rate (bytes/s) of one rank in a
        ``p``-rank job: the NIC share divided by fabric contention."""
        share = self.node_bw / self.ranks_per_node
        return share / self.contention(p)

    def is_eager(self, nbytes: int) -> bool:
        """True when a message of ``nbytes`` uses the eager protocol."""
        return nbytes <= self.eager_threshold

    def post_cost(self, p: int) -> float:
        """CPU seconds consumed by posting an (i)alltoall among p ranks."""
        return self.post_overhead + self.per_peer_post * p

    def message_time(self, nbytes: int, p: int) -> float:
        """Latency + serialization for one message in a p-rank exchange
        (used by analytic collectives such as the blocking alltoall)."""
        return self.latency + nbytes / self.rank_rate(p)
