"""Analytic CPU cost model.

Virtual time in the simulator is charged from this model, never from
wall-clock: a :class:`CpuModel` turns operation descriptions (1-D FFT
batches, packing copies, layout transposes) into seconds on the modeled
core.  Constants for the paper's two machines live in
:mod:`repro.machine.platforms` and are calibrated in
``repro/bench/calibrate.py`` against the paper's absolute numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .cache import CacheModel


@dataclass(frozen=True)
class CpuModel:
    """One core of the modeled machine.

    Parameters
    ----------
    flops:
        Sustained floating-point rate (FLOP/s) for FFT butterflies on
        cache-resident data.
    mem_bw:
        Sustained main-memory streaming bandwidth (bytes/s) for one core.
    cache_bw:
        Bandwidth (bytes/s) when the working set is resident in the last
        private cache level.
    cache:
        Cache hierarchy used to decide residency.
    loop_overhead:
        Fixed cost (s) per sub-tile loop iteration: plan dispatch, index
        arithmetic, function-call cost.  This is what penalizes absurdly
        small ``Px/Pz/Uy/Uz`` sub-tiles.
    test_overhead:
        Cost (s) of one ``MPI_Test`` call (library entry + poll).  This is
        what penalizes absurdly large ``F*`` frequencies (Section 3.3).
    fft_cache_penalty:
        Multiplier applied to FFT time when one transform row does not
        fit in the private cache (strided twiddle access thrashes).
    """

    flops: float
    mem_bw: float
    cache_bw: float
    cache: CacheModel
    loop_overhead: float = 2.0e-7
    test_overhead: float = 6.0e-7
    fft_cache_penalty: float = 1.6

    # -- FFT -------------------------------------------------------------

    def fft_time(self, n: int, batch: int = 1) -> float:
        """Seconds to run ``batch`` 1-D complex FFTs of length ``n``.

        Uses the classic ``5 n log2 n`` FLOP count with a penalty when a
        single row (input + output + twiddles ~ 3x) exceeds the cache.
        """
        if n <= 1:
            return 0.0
        flop = 5.0 * n * math.log2(n) * batch
        t = flop / self.flops
        if 3 * n * 16 > self.cache.private_bytes:
            t *= self.fft_cache_penalty
        return t

    # -- data movement -----------------------------------------------------

    def copy_time(self, nbytes: int, resident: bool) -> float:
        """Seconds to copy ``nbytes`` (counted once; the model's
        bandwidths are effective copy bandwidths including the write
        stream).  ``resident`` selects cache vs. memory bandwidth."""
        bw = self.cache_bw if resident else self.mem_bw
        return nbytes / bw

    def pack_subtile_time(self, ws_bytes: int) -> float:
        """Cost of packing/unpacking one sub-tile whose working set is
        ``ws_bytes``: a copy at residency-dependent bandwidth plus the
        fixed per-iteration overhead (Section 3.4's trade-off)."""
        resident = self.cache.fits_private(ws_bytes)
        return self.copy_time(ws_bytes, resident) + self.loop_overhead

    #: Effective-bandwidth divisors for the transpose variants: the
    #: general x-y-z -> z-x-y rearrangement strides badly; the Nx==Ny
    #: x-z-y path (Section 3.5) only swaps the inner axes; "naive" models
    #: an untiled transpose (used by the TH baseline, cf. Figure 8).
    TRANSPOSE_FACTORS = {"zxy": 2.6, "xzy": 1.35, "naive": 5.0}

    def transpose_time(self, nbytes: int, kind: str = "zxy") -> float:
        """Seconds to rearrange ``nbytes`` of array data in memory."""
        try:
            factor = self.TRANSPOSE_FACTORS[kind]
        except KeyError:
            raise ValueError(
                f"unknown transpose kind {kind!r}; choose from "
                f"{sorted(self.TRANSPOSE_FACTORS)}"
            ) from None
        return nbytes * factor / self.mem_bw
