"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class PlanError(ReproError):
    """An FFT plan could not be constructed or executed."""


class DecompositionError(ReproError):
    """A domain decomposition request is invalid (e.g. p > N)."""


class ParameterError(ReproError):
    """A tuning-parameter configuration is malformed."""


class InfeasibleConfigError(ParameterError):
    """A configuration violates a dependent-range constraint.

    The auto-tuner treats these as "report infinity without running"
    (Section 4.4 of the paper); direct users of the core API get the
    exception instead.
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid state."""


class DeadlockError(SimulationError):
    """Every simulated rank is blocked and no event can make progress."""


class MPIUsageError(SimulationError):
    """A simulated MPI call was used incorrectly (wrong sizes, reused
    request, mismatched collective participation, ...)."""


class TuningError(ReproError):
    """The auto-tuning machinery failed (empty space, bad objective...)."""


class FaultSpecError(ReproError):
    """A ``--faults`` specification string is malformed."""


class ExecError(ReproError):
    """The parallel execution layer failed (pool, retries, timeouts)."""


class ItemFailedError(ExecError):
    """One work item exhausted its attempts.

    Carries the item's ``label`` and the worker-side ``traceback`` text
    of the last attempt, so a failure deep inside a pool worker is
    reported with the same context a serial run would give.
    """

    def __init__(self, label: str, cause: str, attempts: int = 1) -> None:
        super().__init__(
            f"item {label!r} failed after {attempts} attempt(s): {cause}"
        )
        self.label = label
        self.cause = cause
        self.attempts = attempts


class ItemTimeoutError(ItemFailedError):
    """One work item exceeded its per-item timeout on every attempt."""


class ParallelMapError(ExecError):
    """:func:`repro.exec.parallel_map` could not complete every item.

    ``results`` holds the per-item outcomes in input order (``None``
    where the item failed); ``failures`` maps input index to the
    :class:`ItemFailedError` describing why.  Callers that can salvage
    partial work (grids with a result store) read ``results``; callers
    that cannot just see the exception message listing the failures.
    """

    def __init__(self, results: list, failures: dict) -> None:
        lines = "; ".join(str(failures[i]) for i in sorted(failures))
        super().__init__(
            f"{len(failures)} of {len(results)} item(s) failed: {lines}"
        )
        self.results = results
        self.failures = failures


class GridInterrupted(ExecError):
    """A grid run stopped early but completed cells were salvaged.

    ``completed`` holds every :class:`~repro.bench.runner.CellResult`
    that finished (already flushed to the result store when one was
    given), so a re-run with the same store resumes via read-through and
    executes only the missing cells.  ``failures`` maps the failed
    ``(p, n)`` inputs to their :class:`ItemFailedError`.

    ``salvaged`` is the subset of ``completed`` that was *newly* flushed
    by this run — cells the result store already held (read-through
    hits from an earlier, also-interrupted run) are deduped out, so the
    salvage count reported to the user matches the files the run
    actually added to disk.
    """

    def __init__(
        self, completed: list, failures: dict, salvaged: list | None = None
    ) -> None:
        cells = ", ".join(f"p{p} N{n}" for (p, n) in sorted(failures))
        salvaged = list(completed) if salvaged is None else salvaged
        already = len(completed) - len(salvaged)
        msg = (
            f"grid interrupted: {len(failures)} cell(s) failed ({cells}); "
            f"{len(salvaged)} newly completed cell(s) salvaged"
        )
        if already:
            msg += f" ({already} already stored)"
        super().__init__(msg)
        self.completed = completed
        self.failures = failures
        self.salvaged = salvaged


class DistError(ExecError):
    """The distributed work-queue layer failed (coordinator or worker)."""


class DistProtocolError(DistError):
    """A coordinator/worker exchange could not be completed or parsed."""


class DistUnreachableError(DistProtocolError):
    """A transport-level failure (refused/dropped/5xx) survived every
    retry — the peer is down or restarting, as opposed to having
    *rejected* the request.  Subclasses :class:`DistProtocolError`, so
    existing handlers keep working; pollers that want to ride out a
    restart window (``wait_for_plan``) catch this one specifically."""


class DistWorkersLost(DistError):
    """Every spawned worker exited while grid cells were still pending."""
