"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class PlanError(ReproError):
    """An FFT plan could not be constructed or executed."""


class DecompositionError(ReproError):
    """A domain decomposition request is invalid (e.g. p > N)."""


class ParameterError(ReproError):
    """A tuning-parameter configuration is malformed."""


class InfeasibleConfigError(ParameterError):
    """A configuration violates a dependent-range constraint.

    The auto-tuner treats these as "report infinity without running"
    (Section 4.4 of the paper); direct users of the core API get the
    exception instead.
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid state."""


class DeadlockError(SimulationError):
    """Every simulated rank is blocked and no event can make progress."""


class MPIUsageError(SimulationError):
    """A simulated MPI call was used incorrectly (wrong sizes, reused
    request, mismatched collective participation, ...)."""


class TuningError(ReproError):
    """The auto-tuning machinery failed (empty space, bad objective...)."""
