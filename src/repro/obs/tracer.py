"""Zero-dependency structured tracer for simulation and driver code.

One :class:`Tracer` collects three kinds of telemetry:

* **spans** — named intervals on a *track* (a Perfetto/Chrome "thread"):
  simulated ranks get one virtual-time track each, driver-side work
  (tuning evaluations, pool cells) gets wall-time tracks;
* **counters** — monotonic totals (scheduler handoffs, cache hits);
* **histograms** — value samples summarized at export (per-cell wall
  seconds, per-evaluation objectives).

Clock rule (see DESIGN.md "Observability"): a span that happened
*inside* a simulated run carries **virtual seconds** (the engine's rank
clocks, ``clock="virtual"``); everything that happens in the driving
process — tuning loops, pool scheduling, exporters — carries **wall
seconds relative to the tracer's creation** (``clock="wall"``).  The
two never mix on one track, and the exporters keep them in separate
process groups.

Tracing is **off by default** and must stay zero-cost when off: the
instrumented layers fetch :func:`current_tracer` once per construct and
skip all attribute building behind an ``is not None`` guard, and no
instrumentation ever advances a virtual clock — enabling a tracer
cannot change simulated times (enforced by
``tests/obs/test_zero_overhead.py``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

#: clock domains a span can live in
WALL = "wall"
VIRTUAL = "virtual"


@dataclass
class Span:
    """One named interval on a track (``t0``/``t1`` in ``clock`` seconds)."""

    track: str
    name: str
    t0: float
    t1: float
    clock: str = VIRTUAL
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


class Tracer:
    """In-memory collector for spans, counters, and histograms.

    ``rank_spans`` controls whether simulated runs emit their per-rank
    event timelines into the trace: on for single-run timeline views
    (``repro run --trace``), off for tuning sweeps and grids, where
    hundreds of inner simulations per evaluation would swamp the trace
    with rank tracks nobody asked for.

    ``max_spans`` bounds memory on runaway traces; spans past the cap
    are counted in :attr:`dropped`, never silently lost from the totals.
    """

    def __init__(
        self,
        rank_spans: bool = True,
        meta: dict | None = None,
        max_spans: int = 1_000_000,
    ) -> None:
        self.rank_spans = rank_spans
        self.meta: dict = dict(meta or {})
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.counters: dict[str, float] = {}
        self.histograms: dict[str, list[float]] = {}
        self.dropped = 0
        self._wall0 = time.perf_counter()

    # -- clocks --------------------------------------------------------------

    def wall(self) -> float:
        """Wall seconds since this tracer was created."""
        return time.perf_counter() - self._wall0

    # -- spans ---------------------------------------------------------------

    def add_span(
        self,
        track: str,
        name: str,
        t0: float,
        t1: float,
        clock: str = VIRTUAL,
        attrs: dict | None = None,
    ) -> None:
        """Record a finished interval with explicit timestamps."""
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(Span(track, name, t0, t1, clock, dict(attrs or {})))

    @contextmanager
    def span(self, name: str, track: str = "driver", **attrs):
        """Wall-clock span context; yields the attrs dict so the body can
        attach outcome attributes before the span closes."""
        t0 = self.wall()
        out: dict = dict(attrs)
        try:
            yield out
        finally:
            self.add_span(track, name, t0, self.wall(), WALL, out)

    # -- metrics -------------------------------------------------------------

    def count(self, name: str, n: float = 1) -> None:
        """Add ``n`` to the named counter."""
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the named histogram."""
        self.histograms.setdefault(name, []).append(float(value))

    # -- summaries -----------------------------------------------------------

    def summary(self) -> dict:
        """Counters plus histogram digests — the run-summary metrics dict."""
        out: dict = dict(self.counters)
        for name, values in self.histograms.items():
            values = sorted(values)
            n = len(values)
            out[name] = {
                "count": n,
                "sum": sum(values),
                "min": values[0],
                "max": values[-1],
                "p50": values[n // 2],
            }
        if self.dropped:
            out["spans_dropped"] = self.dropped
        return out


# ---------------------------------------------------------------------------
# active-tracer registry (a stack so nested `tracing()` blocks compose)
# ---------------------------------------------------------------------------

_STACK: list[Tracer] = []


def current_tracer() -> Tracer | None:
    """The installed tracer, or ``None`` (tracing disabled — the default)."""
    return _STACK[-1] if _STACK else None


def install(tracer: Tracer) -> Tracer:
    """Make ``tracer`` the active tracer until :func:`uninstall`."""
    _STACK.append(tracer)
    return tracer


def uninstall(tracer: Tracer | None = None) -> None:
    """Pop the active tracer (must be ``tracer`` when one is given)."""
    if not _STACK:
        raise RuntimeError("no tracer installed")
    if tracer is not None and _STACK[-1] is not tracer:
        raise RuntimeError("uninstall out of order: not the active tracer")
    _STACK.pop()


@contextmanager
def tracing(tracer: Tracer | None = None):
    """Scoped tracing: install a tracer (a fresh one by default) for the
    duration of the block and yield it."""
    tr = tracer if tracer is not None else Tracer()
    install(tr)
    try:
        yield tr
    finally:
        uninstall(tr)
