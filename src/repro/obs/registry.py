"""Process-wide metrics registry with Prometheus text exposition.

The telemetry-plane substrate (DESIGN.md §5.12): one
:class:`MetricsRegistry` holds labeled **counters** (monotonic totals),
**gauges** (last-write-wins levels), and **histograms** (raw value
samples, exposed as Prometheus summaries).  The instrumented layers —
the engine scheduler, the process pool, the distributed coordinator and
workers — publish into :func:`current_registry` through the module-level
:func:`count` / :func:`observe` / :func:`set_gauge` helpers, which are
no-ops when metrics are disabled (``REPRO_METRICS=0``).

Three operations make registries composable across processes and hosts,
with the same discipline as the eval store's merge (first-wins where a
key can only have one honest value, input-order everywhere else):

* :meth:`MetricsRegistry.snapshot` — a JSON-ready copy of every family;
* :meth:`MetricsRegistry.delta` — what happened *since* a snapshot
  (counter increments, new histogram observations, current gauge
  values), the payload a distributed worker ships with ``/complete``;
* :meth:`MetricsRegistry.merge` — fold a snapshot/delta in: counter and
  histogram samples **accumulate** (deltas are additive by
  construction, so arrival order cannot change the totals), gauges are
  **first-wins** (a merged worker gauge never overwrites one the
  coordinator set itself).

Scoping: the registry install stack is **thread-local** (unlike the
tracer's), because a coordinator thread and in-process worker threads
must publish to *different* registries inside one process; each falls
back to the shared process-global registry when its stack is empty.
Grid runs (:func:`repro.exec.evaluate_cells`) push a fresh registry for
the duration of the run unless the caller installed one — so
back-to-back runs never leak counts into each other or the global
registry (the reset-safety contract, pinned by
``tests/obs/test_registry.py``).
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import contextmanager

#: metric family kinds
COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: disables all publishing helpers when "0" (overhead measurement and
#: emergency escape hatch; flipped at runtime by :func:`set_enabled`)
_ENABLED = os.environ.get("REPRO_METRICS", "1") != "0"


def metrics_enabled() -> bool:
    """Whether the publishing helpers are live (``REPRO_METRICS`` gate)."""
    return _ENABLED


def set_enabled(on: bool) -> bool:
    """Flip the publishing gate at runtime; returns the previous state
    (benchmarks measure the registry's overhead by toggling this)."""
    global _ENABLED
    prev = _ENABLED
    _ENABLED = bool(on)
    return prev


class _Family:
    """One named metric family: a kind, a help line, and its samples.

    ``samples`` maps a tuple of ``(label_name, label_value)`` pairs
    (sorted by name, so label order at the call site never matters) to
    a float (counter/gauge) or a list of floats (histogram).
    """

    __slots__ = ("name", "kind", "help", "samples")

    def __init__(self, name: str, kind: str, help: str = "") -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.samples: dict[tuple, float | list] = {}


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Thread-safe collector of metric families (see module docstring)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    # -- family access -------------------------------------------------------

    def _family(self, name: str, kind: str, help: str) -> _Family:
        fam = self._families.get(name)
        if fam is None:
            fam = self._families[name] = _Family(name, kind, help)
        elif fam.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {fam.kind}, not a {kind}"
            )
        if help and not fam.help:
            fam.help = help
        return fam

    # -- writes --------------------------------------------------------------

    def inc(self, name: str, n: float = 1, help: str = "", **labels) -> None:
        """Add ``n`` to the named counter (creates it at 0 first)."""
        key = _label_key(labels)
        with self._lock:
            fam = self._family(name, COUNTER, help)
            fam.samples[key] = float(fam.samples.get(key, 0.0)) + n

    def set(self, name: str, value: float, help: str = "", **labels) -> None:
        """Set the named gauge (last write wins within a process)."""
        key = _label_key(labels)
        with self._lock:
            fam = self._family(name, GAUGE, help)
            fam.samples[key] = float(value)

    def observe(self, name: str, value: float, help: str = "",
                **labels) -> None:
        """Record one sample into the named histogram."""
        key = _label_key(labels)
        with self._lock:
            fam = self._family(name, HISTOGRAM, help)
            fam.samples.setdefault(key, []).append(float(value))

    # -- reads ---------------------------------------------------------------

    def value(self, name: str, **labels) -> float | list | None:
        """The sample for ``name``/``labels`` (None when absent);
        histograms return a copy of their observation list."""
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                return None
            sample = fam.samples.get(_label_key(labels))
            return list(sample) if isinstance(sample, list) else sample

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._families)

    # -- snapshot / delta / merge -------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready copy of every family:
        ``{name: {kind, help, samples: [[[k, v], ...], value], ...}}``."""
        out: dict = {}
        with self._lock:
            for name, fam in self._families.items():
                out[name] = {
                    "kind": fam.kind,
                    "help": fam.help,
                    "samples": [
                        [[list(pair) for pair in key],
                         list(v) if isinstance(v, list) else v]
                        for key, v in fam.samples.items()
                    ],
                }
        return out

    def delta(self, since: dict) -> dict:
        """What happened since ``since`` (an earlier :meth:`snapshot`):
        counter increments, histogram observations appended past the
        snapshot's count, and current gauge values.  Zero-change samples
        and empty families are dropped, so the wire payload stays small.
        """
        prev: dict[tuple[str, tuple], float | int] = {}
        for name, rec in since.items():
            for key_list, value in rec.get("samples", []):
                key = tuple(tuple(pair) for pair in key_list)
                prev[(name, key)] = (
                    len(value) if isinstance(value, list) else value
                )
        out: dict = {}
        with self._lock:
            for name, fam in self._families.items():
                samples = []
                for key, value in fam.samples.items():
                    base = prev.get((name, key), 0)
                    if isinstance(value, list):
                        fresh = value[int(base):]
                        if fresh:
                            samples.append(
                                [[list(p) for p in key], list(fresh)]
                            )
                    elif fam.kind == COUNTER:
                        d = value - float(base)
                        if d:
                            samples.append([[list(p) for p in key], d])
                    else:  # gauge: ship the current level
                        samples.append([[list(p) for p in key], value])
                if samples:
                    out[name] = {"kind": fam.kind, "help": fam.help,
                                 "samples": samples}
        return out

    def merge(self, payload: dict) -> int:
        """Fold a snapshot/delta in; returns the number of samples
        applied.  Counters and histograms accumulate (additive deltas —
        arrival order cannot change the totals); gauges are first-wins,
        so a merged worker gauge never overwrites a locally set one.
        Malformed families raise :class:`ValueError`.
        """
        applied = 0
        for name, rec in payload.items():
            kind = rec.get("kind", COUNTER)
            if kind not in (COUNTER, GAUGE, HISTOGRAM):
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")
            help_ = str(rec.get("help", ""))
            for key_list, value in rec.get("samples", []):
                key = tuple(tuple(str(x) for x in pair)
                            for pair in key_list)
                with self._lock:
                    fam = self._family(name, kind, help_)
                    if kind == HISTOGRAM:
                        fam.samples.setdefault(key, []).extend(
                            float(v) for v in value
                        )
                    elif kind == COUNTER:
                        fam.samples[key] = (
                            float(fam.samples.get(key, 0.0)) + float(value)
                        )
                    elif key not in fam.samples:  # gauge: first-wins
                        fam.samples[key] = float(value)
                applied += 1
        return applied

    # -- Prometheus text exposition ------------------------------------------

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (0.0.4).

        Families are sorted by name and samples by label values, so the
        rendering is deterministic (the ``/metrics`` golden test relies
        on it).  Histograms are exposed as summaries: ``{quantile="0.5"}``
        and ``{quantile="1"}`` sample lines plus ``_sum``/``_count``.
        """
        lines: list[str] = []
        with self._lock:
            families = sorted(self._families.items())
            for name, fam in families:
                if fam.help:
                    lines.append(f"# HELP {name} {fam.help}")
                kind = "summary" if fam.kind == HISTOGRAM else fam.kind
                lines.append(f"# TYPE {name} {kind}")
                for key in sorted(fam.samples):
                    value = fam.samples[key]
                    if fam.kind == HISTOGRAM:
                        values = sorted(value)
                        n = len(values)
                        q50 = values[n // 2] if n else 0.0
                        q100 = values[-1] if n else 0.0
                        lines.append(_sample_line(
                            name, key + (("quantile", "0.5"),), q50))
                        lines.append(_sample_line(
                            name, key + (("quantile", "1"),), q100))
                        lines.append(
                            _sample_line(f"{name}_sum", key, sum(values)))
                        lines.append(_sample_line(f"{name}_count", key, n))
                    else:
                        lines.append(_sample_line(name, key, value))
        return "\n".join(lines) + ("\n" if lines else "")


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_value(value: float) -> str:
    # integers render bare (Prometheus accepts either; bare reads better
    # in golden tests and `curl` output)
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _sample_line(name: str, key: tuple, value: float) -> str:
    if key:
        labels = ",".join(
            f'{k}="{_escape_label(v)}"' for k, v in key
        )
        return f"{name}{{{labels}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse Prometheus text exposition into ``{sample_name: value}``.

    The sample name keeps its label block verbatim
    (``dist_queue{state="pending"}`` -> 3.0).  Comment and blank lines
    are skipped; malformed sample lines raise :class:`ValueError` with
    their line number (`repro top` treats that as a protocol error).
    """
    out: dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, sep, value = line.rpartition(" ")
        if not sep or not name:
            raise ValueError(f"malformed metrics line {lineno}: {line!r}")
        try:
            out[name] = float(value)
        except ValueError as exc:
            raise ValueError(
                f"malformed metrics value on line {lineno}: {line!r}"
            ) from exc
    return out


# ---------------------------------------------------------------------------
# registry installation (thread-local stack over a process-global default)
# ---------------------------------------------------------------------------

_GLOBAL = MetricsRegistry()
_TLS = threading.local()


def _stack() -> list:
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = _TLS.stack = []
    return stack


def global_registry() -> MetricsRegistry:
    """The process-global fallback registry."""
    return _GLOBAL


def current_registry() -> MetricsRegistry:
    """This thread's installed registry, else the process-global one."""
    stack = _stack()
    return stack[-1] if stack else _GLOBAL


@contextmanager
def scoped_registry(registry: MetricsRegistry | None = None):
    """Install ``registry`` (a fresh one by default) on *this thread's*
    stack for the duration of the block and yield it."""
    reg = registry if registry is not None else MetricsRegistry()
    stack = _stack()
    stack.append(reg)
    try:
        yield reg
    finally:
        stack.pop()


@contextmanager
def run_registry():
    """The per-run scope :func:`repro.exec.evaluate_cells` uses: reuse
    the caller's installed registry when there is one (so tests and
    services can observe a run), otherwise push a fresh registry so
    back-to-back runs never accumulate into each other or into the
    process-global registry."""
    stack = _stack()
    if stack:
        yield stack[-1]
        return
    with scoped_registry() as reg:
        yield reg


# ---------------------------------------------------------------------------
# publishing helpers (the one-liners instrumented layers call)
# ---------------------------------------------------------------------------


def count(name: str, n: float = 1, help: str = "", **labels) -> None:
    """Increment a counter on the current registry (no-op when disabled)."""
    if _ENABLED:
        current_registry().inc(name, n, help, **labels)


def observe(name: str, value: float, help: str = "", **labels) -> None:
    """Observe a histogram sample on the current registry."""
    if _ENABLED:
        current_registry().observe(name, value, help, **labels)


def set_gauge(name: str, value: float, help: str = "", **labels) -> None:
    """Set a gauge on the current registry."""
    if _ENABLED:
        current_registry().set(name, value, help, **labels)


# ---------------------------------------------------------------------------
# adapters for the pre-registry counter holders
# ---------------------------------------------------------------------------


def publish_sched_stats(stats) -> None:
    """Publish one engine run's :class:`~repro.simmpi.engine.SchedStats`
    (called by the engine at the end of every simulated run)."""
    if not _ENABLED:
        return
    reg = current_registry()
    backend = stats.backend or "unknown"
    reg.inc("sim_runs_total", 1,
            "Simulated SPMD runs completed.", backend=backend)
    reg.inc("sim_handoffs_total", stats.handoffs,
            "Scheduler rank resumptions (token grants).", backend=backend)
    reg.inc("sim_probe_polls_total", stats.probe_polls,
            "Completion-probe invocations by the scheduler.",
            backend=backend)
    reg.inc("sim_wakeups_total", stats.wakeups,
            "Blocked-to-runnable rank transitions.", backend=backend)


def _prom_name(raw: str) -> str:
    """A tracer counter name as a Prometheus metric name
    (``pool.item_errors`` -> ``pool_item_errors``)."""
    return "".join(
        c if c.isalnum() or c == "_" else "_" for c in raw
    )


def absorb_tracer(tracer, registry: MetricsRegistry | None = None) -> None:
    """Fold a :class:`~repro.obs.tracer.Tracer`'s ad-hoc counter and
    histogram dicts into a registry (sanitizing dotted names), so
    trace-level telemetry shows up on ``/metrics`` too."""
    reg = registry if registry is not None else current_registry()
    for name, value in tracer.counters.items():
        reg.inc(_prom_name(name) + "_total", value)
    for name, values in tracer.histograms.items():
        for v in values:
            reg.observe(_prom_name(name), v)
