"""Run-summary metrics: overlap accounting from simulated step times.

The paper's whole argument is that the four overlappable steps (FFTy,
Pack, Unpack, FFTx) hide the ``MPI_Ialltoall`` exchange; the time a rank
spends *blocked* in ``Wait`` (or in a blocking ``A2A``) is the exposed —
un-hidden — communication.  :func:`run_metrics` reduces a run to that
vocabulary:

* ``overlap_compute_s`` — mean per-rank seconds in the overlappable
  steps (the window in which progression can hide the exchange);
* ``exposed_comm_s`` — mean per-rank seconds blocked on the exchange;
* ``overlap_efficiency_pct`` — ``overlap / (overlap + exposed)``: the
  fraction of the exchange window covered by useful compute (100% means
  the exchange is fully hidden, Figure 3's ideal).

Scheduler counters (handoffs, probe polls, wakeups) and MPI_Test call
counts ride along so grid summaries can report them per variant.
"""

from __future__ import annotations

#: steps the paper overlaps with the in-flight exchange (Sections 3.2-3.3)
OVERLAP_LABELS = ("FFTy", "Pack", "Unpack", "FFTx")
#: blocked-on-communication step labels (exposed communication)
EXPOSED_LABELS = ("Wait", "A2A")


def run_metrics(sim) -> dict:
    """Summarize one :class:`~repro.simmpi.spmd.SimResult`.

    Works on any simulated run; pipelines that never block (no exchange)
    report 0.0 exposed seconds and 100% efficiency over an empty window
    is avoided by reporting 0.0 efficiency when there is no window.
    """
    bd = sim.breakdown()
    overlap = sum(bd.get(k, 0.0) for k in OVERLAP_LABELS)
    exposed = sum(bd.get(k, 0.0) for k in EXPOSED_LABELS)
    window = overlap + exposed
    out = {
        "elapsed_s": sim.elapsed,
        "overlap_compute_s": overlap,
        "exposed_comm_s": exposed,
        "overlap_efficiency_pct": 100.0 * overlap / window if window > 0 else 0.0,
        "test_time_s": bd.get("Test", 0.0),
    }
    faults = getattr(sim, "faults", "")
    if faults:
        # overlap-efficiency-under-faults: the spec rides with the
        # summary so reports can tell degraded machines from clean ones
        out["faults"] = faults
    test_overhead = sim.platform.cpu.test_overhead
    if test_overhead > 0:
        # by_label averages across ranks, so this is mean tests per rank.
        out["test_calls_per_rank"] = round(out["test_time_s"] / test_overhead)
    if sim.stats is not None:
        out["sched_backend"] = sim.stats.backend
        out["sched_handoffs"] = sim.stats.handoffs
        out["sched_probe_polls"] = sim.stats.probe_polls
        out["sched_wakeups"] = sim.stats.wakeups
    return out
