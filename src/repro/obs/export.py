"""Trace exporters and loaders.

Two interchangeable on-disk formats:

* **Chrome trace-event JSON** (``.json``) — the ``{"traceEvents": [...]}``
  format Perfetto / ``chrome://tracing`` accept.  Spans become complete
  (``"ph": "X"``) events; virtual-time tracks (simulated ranks) and
  wall-time tracks (driver work) are kept in separate process groups so
  the two clock domains never share a timeline.
* **JSONL event log** (``.jsonl``) — one self-describing JSON object per
  line (``meta`` / ``span`` / ``counter`` / ``histogram`` records).
  Loss-free for this tracer's model and trivially greppable;
  ``repro trace`` replays it into the ASCII gantt.

:func:`write_trace` dispatches on the file suffix; :func:`load_trace`
reads either format back into a :class:`~repro.obs.tracer.Tracer`.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from .tracer import Span, Tracer, VIRTUAL, WALL

#: process ids for the two clock domains in the Chrome export
_PID_VIRTUAL = 1
_PID_WALL = 2

_RANK_TRACK = re.compile(r"^rank (\d+)$")


def emit_rank_spans(tracer: Tracer, traces, prefix: str = "rank") -> None:
    """Unify a simulated run's per-rank event timelines into the trace.

    ``traces`` is the engine's ``RankTrace`` list: each recorded
    ``(t0, t1, label)`` event becomes a virtual-time span on the rank's
    track, carrying the per-event attrs (tile index, byte counts) the
    instrumented pipeline attached.
    """
    for idx, tr in enumerate(traces):
        if tr.events is None:
            continue
        attrs = tr.attrs if tr.attrs is not None else [None] * len(tr.events)
        track = f"{prefix} {idx}"
        for (t0, t1, label), a in zip(tr.events, attrs):
            tracer.add_span(track, label, t0, t1, VIRTUAL, a)


# ---------------------------------------------------------------------------
# Chrome trace-event JSON
# ---------------------------------------------------------------------------


def chrome_events(tracer: Tracer) -> list[dict]:
    """The trace as a Chrome ``traceEvents`` list (timestamps in µs)."""
    events: list[dict] = []
    tids: dict[tuple[int, str], int] = {}

    def tid_for(pid: int, track: str) -> int:
        key = (pid, track)
        if key not in tids:
            m = _RANK_TRACK.match(track)
            # rank tracks keep their rank id as tid so Perfetto sorts
            # them numerically; other tracks get ids past any sane rank.
            tid = int(m.group(1)) if m else 100_000 + len(tids)
            tids[key] = tid
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": track},
            })
        return tids[key]

    for pid, name in (
        (_PID_VIRTUAL, "simulation (virtual time)"),
        (_PID_WALL, "driver (wall time)"),
    ):
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": name},
        })

    for sp in tracer.spans:
        pid = _PID_VIRTUAL if sp.clock == VIRTUAL else _PID_WALL
        events.append({
            "name": sp.name,
            "cat": sp.clock,
            "ph": "X",
            "ts": sp.t0 * 1e6,
            "dur": max(sp.duration, 0.0) * 1e6,
            "pid": pid,
            "tid": tid_for(pid, sp.track),
            "args": sp.attrs,
        })
    summary = tracer.summary()
    if summary:
        events.append({
            "name": "run summary", "cat": "metrics", "ph": "I", "s": "g",
            "ts": 0.0, "pid": _PID_WALL, "tid": 0, "args": summary,
        })
    return events


def _prepare(path: str | Path) -> Path:
    """Create a trace target's missing parent directories (a ``--trace``
    or ``--out`` path under a fresh run directory must just work)."""
    target = Path(path)
    if target.parent != Path("."):
        target.parent.mkdir(parents=True, exist_ok=True)
    return target


def export_chrome(tracer: Tracer, path: str | Path) -> int:
    """Write the Chrome trace-event JSON file; returns the event count."""
    events = chrome_events(tracer)
    payload = {"traceEvents": events, "displayTimeUnit": "ms",
               "otherData": dict(tracer.meta)}
    _prepare(path).write_text(json.dumps(payload, indent=1))
    return len(events)


# ---------------------------------------------------------------------------
# JSONL event log
# ---------------------------------------------------------------------------


def export_jsonl(tracer: Tracer, path: str | Path) -> int:
    """Write the JSONL event log; returns the record count."""
    lines = [json.dumps({"kind": "meta", **tracer.meta,
                         "spans_dropped": tracer.dropped})]
    for sp in tracer.spans:
        rec = {"kind": "span", "track": sp.track, "name": sp.name,
               "t0": sp.t0, "t1": sp.t1, "clock": sp.clock}
        if sp.attrs:
            rec["attrs"] = sp.attrs
        lines.append(json.dumps(rec))
    for name, value in tracer.counters.items():
        lines.append(json.dumps({"kind": "counter", "name": name,
                                 "value": value}))
    for name, values in tracer.histograms.items():
        lines.append(json.dumps({"kind": "histogram", "name": name,
                                 "values": values}))
    _prepare(path).write_text("\n".join(lines) + "\n")
    return len(lines)


def write_trace(tracer: Tracer, path: str | Path) -> int:
    """Export by suffix: ``.jsonl`` → event log, anything else → Chrome
    trace JSON.  Returns the number of records written."""
    if str(path).endswith(".jsonl"):
        return export_jsonl(tracer, path)
    return export_chrome(tracer, path)


# ---------------------------------------------------------------------------
# span wire records + the cross-host fleet trace
# ---------------------------------------------------------------------------


def span_records(tracer: Tracer, start: int = 0) -> list[dict]:
    """Spans from index ``start`` on, as JSON-ready records — the
    payload a distributed worker attaches to ``/complete`` (``start``
    is the worker's already-shipped watermark, so back-to-back leases
    never re-ship or leak each other's spans)."""
    out = []
    for sp in tracer.spans[start:]:
        rec = {"track": sp.track, "name": sp.name, "t0": sp.t0,
               "t1": sp.t1, "clock": sp.clock}
        if sp.attrs:
            rec["attrs"] = sp.attrs
        out.append(rec)
    return out


def fleet_chrome_events(spans_by_host: dict[str, list[dict]]) -> list[dict]:
    """Merge per-host span records into one Chrome ``traceEvents`` list.

    Every worker host gets its own **process** (pid, in sorted host
    order starting at 10 — clear of the local exporter's virtual/wall
    pids), and each track within a host gets a tid: ``rank N`` tracks
    keep ``N`` so Perfetto sorts rank timelines numerically, everything
    else lands past any sane rank id.  The result loads with
    :func:`load_trace` (thread/process name metadata carries the track
    and host names), so ``repro trace`` renders it like any local trace.
    """
    events: list[dict] = []
    tids: dict[tuple[int, str], int] = {}
    for offset, host in enumerate(sorted(spans_by_host)):
        pid = 10 + offset
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": f"worker {host}"},
        })
        for rec in spans_by_host[host]:
            track = str(rec.get("track", "worker"))
            key = (pid, track)
            if key not in tids:
                m = _RANK_TRACK.match(track)
                tids[key] = (int(m.group(1)) if m
                             else 100_000 + len(tids))
                events.append({
                    "name": "thread_name", "ph": "M", "pid": pid,
                    "tid": tids[key], "args": {"name": track},
                })
            t0 = float(rec["t0"])
            t1 = float(rec.get("t1", t0))
            events.append({
                "name": str(rec.get("name", "?")),
                "cat": rec.get("clock", WALL),
                "ph": "X",
                "ts": t0 * 1e6,
                "dur": max(t1 - t0, 0.0) * 1e6,
                "pid": pid,
                "tid": tids[key],
                "args": dict(rec.get("attrs") or {}),
            })
    return events


def export_fleet_chrome(
    spans_by_host: dict[str, list[dict]],
    path: str | Path,
    meta: dict | None = None,
) -> int:
    """Write the merged fleet Chrome trace; returns the event count."""
    events = fleet_chrome_events(spans_by_host)
    payload = {"traceEvents": events, "displayTimeUnit": "ms",
               "otherData": dict(meta or {})}
    _prepare(path).write_text(json.dumps(payload, indent=1))
    return len(events)


# ---------------------------------------------------------------------------
# loaders (the `repro trace` replay path)
# ---------------------------------------------------------------------------


def _load_jsonl(text: str) -> Tracer:
    tracer = Tracer()
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
            kind = rec.get("kind")
            if kind == "span":
                tracer.add_span(
                    rec["track"], rec["name"], rec["t0"], rec["t1"],
                    rec.get("clock", VIRTUAL), rec.get("attrs"),
                )
            elif kind == "counter":
                tracer.count(rec["name"], rec["value"])
            elif kind == "histogram":
                for v in rec["values"]:
                    tracer.observe(rec["name"], v)
            elif kind == "meta":
                tracer.meta.update(
                    {k: v for k, v in rec.items() if k not in ("kind",)}
                )
        except (ValueError, KeyError, TypeError, AttributeError) as exc:
            # a crash mid-write leaves a truncated final record; a
            # corrupted middle line is the same failure to the reader —
            # either way, say where instead of spilling a traceback
            raise ValueError(
                f"truncated or malformed trace record at line {lineno}: "
                f"{line[:80]!r}"
            ) from exc
    return tracer


def _load_chrome(payload: dict) -> Tracer:
    tracer = Tracer()
    tracer.meta.update(payload.get("otherData") or {})
    names: dict[tuple[int, int], str] = {}
    spans: list[tuple[int, int, Span]] = []
    try:
        events = payload.get("traceEvents", [])
        for ev in events:
            if ev.get("ph") == "M" and ev.get("name") == "thread_name":
                names[(ev["pid"], ev["tid"])] = ev["args"]["name"]
            elif ev.get("ph") == "X":
                clock = VIRTUAL if ev.get("cat") == VIRTUAL else WALL
                t0 = ev["ts"] / 1e6
                spans.append((ev["pid"], ev["tid"], Span(
                    "", ev["name"], t0, t0 + ev.get("dur", 0.0) / 1e6,
                    clock, dict(ev.get("args") or {}),
                )))
    except (KeyError, TypeError, AttributeError) as exc:
        raise ValueError(
            f"malformed Chrome trace event: {exc!r}"
        ) from exc
    for pid, tid, sp in spans:
        sp.track = names.get((pid, tid), f"track {pid}:{tid}")
        tracer.add_span(sp.track, sp.name, sp.t0, sp.t1, sp.clock, sp.attrs)
    return tracer


def load_trace(path: str | Path) -> Tracer:
    """Read a saved trace (JSONL or Chrome JSON) back into a Tracer."""
    text = Path(path).read_text()
    stripped = text.lstrip()
    if stripped.startswith("{") and '"traceEvents"' in stripped[:2000]:
        return _load_chrome(json.loads(text))
    return _load_jsonl(text)


def rank_timelines(tracer: Tracer) -> tuple[list[list[tuple[float, float, str]]], float]:
    """Rebuild per-rank event timelines from a trace's virtual spans.

    Returns ``(events_by_rank, total)`` ready for
    :func:`repro.report.render_traces`-style rendering; ranks with no
    spans get empty timelines, ``total`` is the latest span end (0.0
    when there are no rank spans at all).
    """
    by_rank: dict[int, list[tuple[float, float, str]]] = {}
    total = 0.0
    for sp in tracer.spans:
        m = _RANK_TRACK.match(sp.track)
        if m is None or sp.clock != VIRTUAL:
            continue
        by_rank.setdefault(int(m.group(1)), []).append((sp.t0, sp.t1, sp.name))
        total = max(total, sp.t1)
    if not by_rank:
        return [], 0.0
    nranks = max(by_rank) + 1
    return [by_rank.get(i, []) for i in range(nranks)], total
