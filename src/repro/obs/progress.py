"""Live progress reporting for long grid/sweep runs.

:class:`ProgressLine` renders a single-line completion ticker with an
ETA, fed from per-cell completion events (the pool's ``progress``
callback, or the serial loop's per-item calls).  On a TTY the line
rewrites in place with ``\\r``; on a pipe/CI log each update is a plain
line so output stays greppable.  Writes go to *stderr* by default so
result tables on stdout remain clean.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, TextIO


def _fmt_secs(secs: float) -> str:
    if secs >= 3600:
        return f"{secs / 3600:.1f}h"
    if secs >= 60:
        return f"{secs / 60:.1f}m"
    return f"{secs:.1f}s"


class ProgressLine:
    """Callable progress renderer: ``progress(done, total, label)``.

    ``clock`` is injectable for tests; ``enabled=False`` turns the
    renderer into a no-op (the CLI's ``--no-progress``).
    """

    def __init__(
        self,
        stream: TextIO | None = None,
        enabled: bool | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = (
            enabled if enabled is not None
            else hasattr(self.stream, "write")
        )
        self.clock = clock
        self._t0 = clock()
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._open = False
        self._last: tuple[int, int, str] | None = None
        self.updates = 0
        self.note = ""

    def set_note(self, text: str) -> None:
        """Attach a side note (e.g. distributed fleet status) to the line.

        On a TTY the current line is redrawn immediately so the note
        stays live between completion events; on a pipe the note simply
        rides along with the next regular update (a line per heartbeat
        would drown CI logs).
        """
        changed = text != self.note
        self.note = text
        if changed and self._tty and self.enabled and self._last is not None:
            self(*self._last)

    def __call__(self, done: int, total: int, label: str = "") -> None:
        if not self.enabled or total <= 0:
            return
        self.updates += 1
        self._last = (done, total, label)
        elapsed = self.clock() - self._t0
        pct = 100.0 * done / total
        line = f"[{done}/{total}] {pct:3.0f}% elapsed {_fmt_secs(elapsed)}"
        if 0 < done < total:
            eta = elapsed * (total - done) / done
            line += f" eta {_fmt_secs(eta)}"
        if label:
            line += f" — {label}"
        if self.note:
            line += f" [{self.note}]"
        if self._tty:
            self.stream.write("\r\x1b[K" + line)
            if done >= total:
                self.stream.write("\n")
            self._open = done < total
        else:
            self.stream.write(line + "\n")
        self.stream.flush()

    def close(self) -> None:
        """Terminate a partially drawn TTY line (error paths)."""
        if self._open and self._tty:
            self.stream.write("\n")
            self.stream.flush()
            self._open = False
