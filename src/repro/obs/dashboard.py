"""Live fleet dashboard: the engine behind ``repro top``.

Renders a small ``top``-style view of one distributed grid run by
polling the coordinator's two observability endpoints — ``/status``
(JSON: queue counts, lease ages, per-worker heartbeat lag, completion
rate, ETA) and ``/metrics`` (Prometheus text exposition of the
fleet-wide registry) — with the same stream discipline as
:class:`~repro.obs.progress.ProgressLine`: on a TTY the panel redraws
in place, on a pipe each poll emits a plain block so CI logs stay
greppable.

Exit contract (``repro top`` maps these to exit codes): the dashboard
runs until the coordinator vanishes — the normal end of a grid run,
since :func:`~repro.dist.dist_map` stops its server once the last cell
lands — and that is a **clean** exit (0) as long as at least one poll
succeeded.  Never reaching the coordinator at all, or receiving
unparseable metrics, is an error.  Both fetchers are injectable so the
render/exit logic is testable without sockets.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, TextIO

from ..errors import DistProtocolError
from .progress import _fmt_secs
from .registry import parse_prometheus


def metric_total(metrics: dict[str, float], name: str) -> float | None:
    """Sum every sample of one metric family across its label sets
    (``sim_runs_total{backend="heap"}`` + ``{backend="list"}`` -> one
    number); ``None`` when the family is absent entirely."""
    total, seen = 0.0, False
    for key, value in metrics.items():
        if key == name or key.startswith(name + "{"):
            total += value
            seen = True
    return total if seen else None


def render_top(url: str, status: dict, metrics: dict[str, float]) -> list[str]:
    """The dashboard panel as lines (pure: testable without a server)."""
    total = int(status.get("total", 0))
    done = int(status.get("done", 0))
    failed = int(status.get("failed", 0))
    pending = int(status.get("pending", 0))
    leased = int(status.get("leased", 0))
    lines = [
        f"repro top — {url}  "
        f"uptime {_fmt_secs(float(status.get('uptime_s', 0.0)))}"
    ]
    pct = 100.0 * (done + failed) / total if total else 0.0
    lines.append(
        f"cells  : {done}/{total} done ({pct:3.0f}%) | {pending} pending "
        f"| {leased} leased | {failed} failed"
    )
    rate = float(status.get("completion_rate_per_s") or 0.0)
    line = f"rate   : {rate:.2f} cells/s"
    eta = status.get("eta_s")
    if eta is not None:
        line += f" | eta {_fmt_secs(float(eta))}"
    lines.append(line)
    ages = [float(a) for a in status.get("lease_ages_s", [])]
    line = f"leases : {len(ages)} active"
    if ages:
        line += f", oldest {_fmt_secs(ages[0])}"
    line += (f" | {int(status.get('requeues', 0))} requeued"
             f" | {int(status.get('duplicates', 0))} duplicate")
    lines.append(line)
    workers = status.get("workers", {})
    live = metric_total(metrics, "dist_workers_live")
    line = f"workers: {len(workers)} reporting"
    if live is not None:
        line += f", {int(live)} live"
    lines.append(line)
    for name, rec in sorted(workers.items()):
        entry = (f"  {name}  {int(rec.get('done', 0))}"
                 f"/{int(rec.get('total', 0))}"
                 f"  lag {float(rec.get('lag_s', 0.0)):.1f}s")
        if rec.get("label"):
            entry += f"  {rec['label']}"
        lines.append(entry)
    totals = []
    for label, name in (
        ("completions", "dist_completions_total"),
        ("pool items", "pool_items_total"),
        ("sim runs", "sim_runs_total"),
    ):
        value = metric_total(metrics, name)
        if value is not None:
            totals.append(f"{int(value)} {label}")
    if totals:
        lines.append("totals : " + " | ".join(totals))
    return lines


class TopDashboard:
    """Poll-and-render loop for one coordinator (see module docstring).

    ``fetch_status`` / ``fetch_metrics`` default to real HTTP against
    ``url`` but are injectable; ``max_polls`` bounds the run for tests
    and one-shot snapshots (``repro top --polls 1``).
    """

    def __init__(
        self,
        url: str,
        interval: float = 1.0,
        stream: TextIO | None = None,
        max_polls: int | None = None,
        fetch_status: Callable[[], dict] | None = None,
        fetch_metrics: Callable[[], str] | None = None,
        sleep: Callable[[float], None] = time.sleep,
        token: str | None = None,
    ) -> None:
        self.url = url.rstrip("/")
        self.interval = interval
        self.stream = stream if stream is not None else sys.stdout
        self.max_polls = max_polls
        self.sleep = sleep
        if fetch_status is None or fetch_metrics is None:
            # Imported lazily: repro.dist imports repro.obs, so a
            # top-level import here would be circular.
            from ..dist.protocol import call, fetch_text

            if fetch_status is None:
                fetch_status = lambda: call(  # noqa: E731
                    self.url, "/status", retries=0, token=token
                )
            if fetch_metrics is None:
                fetch_metrics = lambda: fetch_text(  # noqa: E731
                    self.url, "/metrics", token=token
                )
        self.fetch_status = fetch_status
        self.fetch_metrics = fetch_metrics
        self.polls = 0
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._height = 0

    def _draw(self, lines: list[str]) -> None:
        if self._tty and self._height:
            # move to the top of the previous panel, clear to screen end
            self.stream.write(f"\x1b[{self._height}F\x1b[J")
        self.stream.write("\n".join(lines) + "\n")
        if not self._tty:
            self.stream.write("\n")  # blank separator between poll blocks
        self.stream.flush()
        self._height = len(lines)

    def run(self) -> int:
        """Poll until the coordinator vanishes or ``max_polls`` is hit.

        Returns a process exit code: 0 after a connected-then-gone (or
        poll-limited) run, 4 when the coordinator was never reachable
        or served unparseable metrics.
        """
        while self.max_polls is None or self.polls < self.max_polls:
            try:
                status = self.fetch_status()
                exposition = self.fetch_metrics()
            except DistProtocolError as exc:
                if self.polls == 0:
                    print(f"error: {exc}", file=sys.stderr)
                    return 4
                self.stream.write(
                    f"coordinator gone after {self.polls} poll(s) — "
                    "grid finished\n"
                )
                self.stream.flush()
                return 0
            try:
                metrics = parse_prometheus(exposition)
            except ValueError as exc:
                print(f"error: bad /metrics exposition: {exc}",
                      file=sys.stderr)
                return 4
            self.polls += 1
            self._draw(render_top(self.url, status, metrics))
            if self.max_polls is not None and self.polls >= self.max_polls:
                break
            self.sleep(self.interval)
        return 0
