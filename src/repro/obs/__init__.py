"""Observability layer: structured tracing, metrics, and live progress.

Threads spans and counters through every layer of the reproduction —
the discrete-event scheduler, the FFT pipeline, the tuning loop, and
the process pool — without perturbing the simulation: tracing is
off by default, instrumentation only *reads* virtual clocks, and a
disabled tracer costs one ``is None`` check per construct.

* :class:`Tracer` / :func:`tracing` / :func:`current_tracer` — the
  collector and its installation scope;
* :func:`write_trace` / :func:`load_trace` — Chrome trace-event JSON
  and JSONL exporters (Perfetto-viewable) and their loaders;
* :func:`run_metrics` — overlap-efficiency / exposed-communication
  summary of one simulated run;
* :class:`ProgressLine` — live per-cell completion ticker with ETA;
* :func:`sched_totals` / :func:`reset_sched_totals` — the process-wide
  scheduler counter accumulator, now resettable per benchmark run;
* :class:`MetricsRegistry` / :func:`current_registry` — the telemetry
  plane's labeled counter/gauge/histogram registry with Prometheus
  text exposition and snapshot/delta/merge semantics (DESIGN.md §5.12);
* :func:`export_fleet_chrome` / :func:`span_records` — cross-host trace
  aggregation: worker span records merged into one Chrome trace with a
  process group per worker host;
* :class:`TopDashboard` / :func:`render_top` — the ``repro top`` live
  fleet dashboard over the coordinator's ``/status`` + ``/metrics``.
"""

from ..simmpi.engine import SchedStats
from ..simmpi import engine as _engine
from .export import (
    chrome_events,
    emit_rank_spans,
    export_chrome,
    export_fleet_chrome,
    export_jsonl,
    fleet_chrome_events,
    load_trace,
    rank_timelines,
    span_records,
    write_trace,
)
from .dashboard import TopDashboard, metric_total, render_top
from .metrics import EXPOSED_LABELS, OVERLAP_LABELS, run_metrics
from .progress import ProgressLine
from .registry import (
    MetricsRegistry,
    absorb_tracer,
    current_registry,
    global_registry,
    metrics_enabled,
    parse_prometheus,
    scoped_registry,
)
from .tracer import (
    Span,
    Tracer,
    VIRTUAL,
    WALL,
    current_tracer,
    install,
    tracing,
    uninstall,
)


def sched_totals() -> SchedStats:
    """The process-wide cumulative scheduler counters (compatibility
    accessor for ``repro.simmpi.engine.TOTALS``)."""
    return _engine.TOTALS


def reset_sched_totals() -> SchedStats:
    """Zero the process-wide scheduler counters; returns a snapshot of
    the values they held (so callers can log-and-reset atomically)."""
    snap = SchedStats(
        backend=_engine.TOTALS.backend,
        handoffs=_engine.TOTALS.handoffs,
        probe_polls=_engine.TOTALS.probe_polls,
        wakeups=_engine.TOTALS.wakeups,
    )
    _engine.TOTALS.reset()
    return snap


__all__ = [
    "EXPOSED_LABELS",
    "MetricsRegistry",
    "OVERLAP_LABELS",
    "ProgressLine",
    "Span",
    "TopDashboard",
    "Tracer",
    "absorb_tracer",
    "current_registry",
    "global_registry",
    "metrics_enabled",
    "parse_prometheus",
    "scoped_registry",
    "VIRTUAL",
    "WALL",
    "chrome_events",
    "current_tracer",
    "emit_rank_spans",
    "export_chrome",
    "export_fleet_chrome",
    "export_jsonl",
    "fleet_chrome_events",
    "install",
    "load_trace",
    "metric_total",
    "rank_timelines",
    "render_top",
    "reset_sched_totals",
    "run_metrics",
    "sched_totals",
    "span_records",
    "tracing",
    "uninstall",
    "write_trace",
]
