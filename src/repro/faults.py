"""Deterministic, seed-keyed fault injection for the simulated machine.

The paper's NEW design hides communication behind computation only when
manual ``MPI_Test`` progression keeps pace with the fabric (Section
3.3); the interesting production question is how much of that overlap
survives a degraded machine.  This module answers it *inside the
model*: a :class:`FaultSpec` describes perturbations of the simulated
cluster — straggler ranks, degraded links, latency jitter and spikes,
delayed progression polls — and the engine/fabric apply them while the
discrete-event simulation stays bit-for-bit deterministic under a fixed
seed.

Fault kinds (the ``--faults`` grammar; clauses joined with ``;``)::

    straggler:rank=3,slow=2.0      # rank 3's CPU runs 2x slower
    degrade:rank=1,bw=0.5          # rank 1 injects at half bandwidth
    jitter:amp=2e-6                # per-message extra latency in [0, amp)
    spike:prob=0.01,extra=5e-4     # with prob, add `extra` s to a message
    poll:rank=2,factor=4.0         # rank 2's MPI_Test epochs 4x sparser
    seed:42                        # RNG seed for jitter/spike draws

``rank=all`` (the default for every clause but ``straggler``) applies a
clause to every rank.  Multiple clauses of the same kind compose (e.g.
two ``straggler`` clauses for two slow ranks).

Determinism: per-message randomness (jitter, spikes) is drawn from a
stateless splitmix64 hash of ``(seed, rank, per-rank draw counter)``.
Ranks draw in program order and the engine's single-token min-time
scheduler makes that order a pure function of the program, so the same
spec and seed always yield the same simulated times — on both rank
backends.

Installation mirrors :mod:`repro.obs`: faults are *ambient*.
:func:`install_faults` / :func:`injected_faults` put a spec on a
process-wide stack; every :class:`~repro.simmpi.engine.Engine`
constructed inside the scope picks it up, so fault injection reaches
every simulation a tuning loop or grid cell runs without threading a
parameter through the whole call graph.  The execution layer ships the
active spec to pool workers (like FFT wisdom), and the benchmark memo /
result store key cells by the active spec so faulty and fault-free
results never alias.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from .errors import FaultSpecError

__all__ = [
    "ALL_RANKS",
    "FaultModel",
    "FaultSpec",
    "FaultSpecError",
    "current_faults",
    "injected_faults",
    "install_faults",
    "parse_faults",
    "uninstall_faults",
]

#: sentinel rank meaning "every rank" in a clause
ALL_RANKS = -1

_MASK = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """One splitmix64 output step (stateless, well-mixed 64-bit hash)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return (x ^ (x >> 31)) & _MASK


def _u01(seed: int, rank: int, counter: int) -> float:
    """Deterministic uniform in [0, 1) keyed by (seed, rank, counter)."""
    h = _splitmix64(seed & _MASK)
    h = _splitmix64(h ^ ((rank + 1) * 0xA24BAED4963EE407))
    h = _splitmix64(h ^ counter)
    return h / float(1 << 64)


@dataclass(frozen=True)
class FaultSpec:
    """Parsed, normalized fault specification.

    Frozen and hashable so it can ride in cache keys; :meth:`key` is the
    canonical string form (stable under clause reordering).
    """

    #: rank -> CPU slowdown multiplier (>= 1)
    stragglers: tuple[tuple[int, float], ...] = ()
    #: rank (or ALL_RANKS) -> injection-bandwidth factor (0 < f <= 1)
    degrade: tuple[tuple[int, float], ...] = ()
    #: per-message extra latency drawn uniformly from [0, amp) seconds
    jitter_amp: float = 0.0
    #: latency-spike probability per message and its size in seconds
    spike_prob: float = 0.0
    spike_s: float = 0.0
    #: rank (or ALL_RANKS) -> progression-poll delay factor (>= 1)
    poll: tuple[tuple[int, float], ...] = ()
    seed: int = 0

    def __bool__(self) -> bool:
        return bool(
            self.stragglers or self.degrade or self.poll
            or self.jitter_amp > 0.0
            or (self.spike_prob > 0.0 and self.spike_s > 0.0)
        )

    def key(self) -> str:
        """Canonical spec string: parseable, order-independent."""
        parts = []
        for rank, slow in sorted(self.stragglers):
            parts.append(f"straggler:rank={_rank_str(rank)},slow={slow:g}")
        for rank, bw in sorted(self.degrade):
            parts.append(f"degrade:rank={_rank_str(rank)},bw={bw:g}")
        if self.jitter_amp > 0.0:
            parts.append(f"jitter:amp={self.jitter_amp:g}")
        if self.spike_prob > 0.0 and self.spike_s > 0.0:
            parts.append(f"spike:prob={self.spike_prob:g},extra={self.spike_s:g}")
        for rank, factor in sorted(self.poll):
            parts.append(f"poll:rank={_rank_str(rank)},factor={factor:g}")
        if parts and self.seed:
            parts.append(f"seed:{self.seed}")
        return ";".join(parts)

    def model(self, nprocs: int) -> "FaultModel | None":
        """Per-run fault state for a ``nprocs``-rank job (``None`` when
        the spec is empty — the engine's fast "no faults" path)."""
        if not self:
            return None
        return FaultModel(self, nprocs)


def _rank_str(rank: int) -> str:
    return "all" if rank == ALL_RANKS else str(rank)


def _parse_rank(value: str) -> int:
    if value.strip().lower() in ("all", "*"):
        return ALL_RANKS
    try:
        rank = int(value)
    except ValueError:
        raise FaultSpecError(f"bad rank {value!r} (int, 'all' or '*')") from None
    if rank < 0:
        raise FaultSpecError(f"rank must be >= 0 or 'all', got {rank}")
    return rank


def _clause_fields(clause: str, body: str) -> dict[str, str]:
    fields: dict[str, str] = {}
    for item in body.split(","):
        key, sep, value = item.partition("=")
        if not sep or not key.strip():
            raise FaultSpecError(
                f"bad field {item!r} in clause {clause!r} (expected key=value)"
            )
        fields[key.strip().lower()] = value.strip()
    return fields


def _take(fields: dict[str, str], clause: str, key: str, default=None) -> str:
    if key in fields:
        return fields.pop(key)
    if default is not None:
        return default
    raise FaultSpecError(f"clause {clause!r} is missing required field {key!r}")


def _float(clause: str, key: str, value: str) -> float:
    try:
        return float(value)
    except ValueError:
        raise FaultSpecError(
            f"bad value {value!r} for {key!r} in clause {clause!r}"
        ) from None


def parse_faults(text: str | None) -> FaultSpec:
    """Parse a ``--faults`` specification string into a :class:`FaultSpec`.

    An empty/None string yields an empty (falsy) spec.  Raises
    :class:`FaultSpecError` with the offending clause on any malformed
    input — never a bare ``ValueError``.
    """
    if not text or not text.strip():
        return FaultSpec()
    stragglers: list[tuple[int, float]] = []
    degrade: list[tuple[int, float]] = []
    poll: list[tuple[int, float]] = []
    jitter_amp = 0.0
    spike_prob = 0.0
    spike_s = 0.0
    seed = 0
    for raw in text.split(";"):
        clause = raw.strip()
        if not clause:
            continue
        kind, _, body = clause.partition(":")
        kind = kind.strip().lower()
        if kind == "seed":
            try:
                seed = int(body)
            except ValueError:
                raise FaultSpecError(f"bad seed {body!r}") from None
            continue
        fields = _clause_fields(clause, body)
        if kind == "straggler":
            rank = _parse_rank(_take(fields, clause, "rank"))
            slow = _float(clause, "slow", _take(fields, clause, "slow"))
            if slow < 1.0:
                raise FaultSpecError(
                    f"straggler slow must be >= 1 (a slowdown), got {slow}"
                )
            stragglers.append((rank, slow))
        elif kind == "degrade":
            rank = _parse_rank(_take(fields, clause, "rank", "all"))
            bw = _float(clause, "bw", _take(fields, clause, "bw"))
            if not 0.0 < bw <= 1.0:
                raise FaultSpecError(
                    f"degrade bw must be in (0, 1], got {bw}"
                )
            degrade.append((rank, bw))
        elif kind == "jitter":
            jitter_amp = _float(clause, "amp", _take(fields, clause, "amp"))
            if jitter_amp < 0.0:
                raise FaultSpecError(f"jitter amp must be >= 0, got {jitter_amp}")
        elif kind == "spike":
            spike_prob = _float(clause, "prob", _take(fields, clause, "prob"))
            spike_s = _float(clause, "extra", _take(fields, clause, "extra"))
            if not 0.0 <= spike_prob <= 1.0:
                raise FaultSpecError(
                    f"spike prob must be in [0, 1], got {spike_prob}"
                )
            if spike_s < 0.0:
                raise FaultSpecError(f"spike extra must be >= 0, got {spike_s}")
        elif kind == "poll":
            rank = _parse_rank(_take(fields, clause, "rank", "all"))
            factor = _float(clause, "factor", _take(fields, clause, "factor"))
            if factor < 1.0:
                raise FaultSpecError(
                    f"poll factor must be >= 1 (a delay), got {factor}"
                )
            poll.append((rank, factor))
        else:
            raise FaultSpecError(
                f"unknown fault kind {kind!r} in clause {clause!r}; known: "
                "straggler, degrade, jitter, spike, poll, seed"
            )
        if fields:
            raise FaultSpecError(
                f"unknown fields {sorted(fields)} in clause {clause!r}"
            )
    return FaultSpec(
        stragglers=tuple(stragglers),
        degrade=tuple(degrade),
        jitter_amp=jitter_amp,
        spike_prob=spike_prob,
        spike_s=spike_s,
        poll=tuple(poll),
        seed=seed,
    )


def _per_rank(pairs, nprocs: int, neutral: float, combine) -> np.ndarray:
    out = np.full(nprocs, neutral)
    for rank, value in pairs:
        if rank == ALL_RANKS:
            for i in range(nprocs):
                out[i] = combine(out[i], value)
        elif rank < nprocs:
            out[rank] = combine(out[rank], value)
        # ranks beyond the job size are inert (a p=4 run with rank=7
        # faults simply has no rank 7), not an error: one spec can
        # drive a whole grid of job sizes.
    return out


@dataclass
class FaultModel:
    """Per-run fault state: resolved per-rank factors plus draw counters.

    One instance per :class:`~repro.simmpi.fabric.Fabric` — constructing
    a fresh engine resets the jitter/spike draw streams, which is what
    makes repeated runs identical.  The ``*_total`` attributes accumulate
    observability numbers the engine folds into an installed tracer.
    """

    spec: FaultSpec
    nprocs: int
    cpu_scale: np.ndarray = field(init=False)
    rate_scale: np.ndarray = field(init=False)
    poll_factor: np.ndarray = field(init=False)
    has_cpu_faults: bool = field(init=False)
    has_latency_faults: bool = field(init=False)
    has_poll_faults: bool = field(init=False)

    def __post_init__(self) -> None:
        p = self.nprocs
        self.cpu_scale = _per_rank(self.spec.stragglers, p, 1.0, max)
        self.rate_scale = _per_rank(self.spec.degrade, p, 1.0, min)
        self.poll_factor = _per_rank(self.spec.poll, p, 1.0, max)
        self.has_cpu_faults = bool((self.cpu_scale != 1.0).any())
        self.has_latency_faults = (
            self.spec.jitter_amp > 0.0
            or (self.spec.spike_prob > 0.0 and self.spec.spike_s > 0.0)
        )
        self.has_poll_faults = bool((self.poll_factor != 1.0).any())
        self._counters = np.zeros(p, dtype=np.int64)
        # observability accumulators
        self.latency_draws = 0
        self.extra_latency_s = 0.0
        self.spikes = 0
        self.tests_suppressed = 0

    # -- CPU ---------------------------------------------------------------

    def cpu_scale_of(self, rank: int) -> float:
        """Slowdown multiplier for CPU time charged on ``rank``."""
        return float(self.cpu_scale[rank])

    # -- progression --------------------------------------------------------

    def effective_tests(self, rank: int, ntests: int) -> int:
        """MPI_Test epochs that actually land in a segment on ``rank``.

        A poll-delay factor ``f`` models the process being descheduled
        between library entries: only every ``f``-th intended test
        happens (at least one survives, so progression never fully
        stops inside a segment that intended to progress).
        """
        if ntests <= 0:
            return ntests
        factor = float(self.poll_factor[rank])
        if factor <= 1.0:
            return ntests
        eff = max(1, int(ntests / factor))
        self.tests_suppressed += ntests - eff
        return eff

    # -- links ---------------------------------------------------------------

    def draw_extra_latency(self, rank: int) -> float:
        """Deterministic per-message extra latency on ``rank``'s sends."""
        c = int(self._counters[rank])
        self._counters[rank] = c + 1
        spec = self.spec
        extra = 0.0
        if spec.jitter_amp > 0.0:
            extra += spec.jitter_amp * _u01(spec.seed, rank, 2 * c)
        if spec.spike_prob > 0.0 and spec.spike_s > 0.0:
            if _u01(~spec.seed & _MASK, rank, 2 * c + 1) < spec.spike_prob:
                extra += spec.spike_s
                self.spikes += 1
        self.latency_draws += 1
        self.extra_latency_s += extra
        return extra

    def draw_extra_latency_batch(self, rank: int, n: int) -> np.ndarray:
        """Vector of ``n`` sequential draws (same stream as the scalar
        form: ``batch(r, n)`` equals ``[draw(r) for _ in range(n)]``)."""
        return np.array(
            [self.draw_extra_latency(rank) for _ in range(n)]
        )

    def counters(self) -> dict[str, float]:
        """Observability totals (folded into a tracer by the engine)."""
        return {
            "faults.latency_draws": self.latency_draws,
            "faults.extra_latency_s": self.extra_latency_s,
            "faults.spikes": self.spikes,
            "faults.tests_suppressed": self.tests_suppressed,
        }


# ---------------------------------------------------------------------------
# ambient installation (mirrors the repro.obs tracer stack)
# ---------------------------------------------------------------------------

_STACK: list[FaultSpec] = []


def current_faults() -> FaultSpec | None:
    """The installed fault spec, or ``None`` (no faults — the default).

    An installed-but-empty spec also reads as ``None`` so that
    ``injected_faults("")`` scopes are true no-ops.
    """
    if not _STACK:
        return None
    spec = _STACK[-1]
    return spec if spec else None


def install_faults(spec: FaultSpec | str) -> FaultSpec:
    """Make ``spec`` the ambient fault model until :func:`uninstall_faults`."""
    if isinstance(spec, str):
        spec = parse_faults(spec)
    _STACK.append(spec)
    return spec


def uninstall_faults(spec: FaultSpec | None = None) -> None:
    """Pop the ambient spec (must be ``spec`` when one is given)."""
    if not _STACK:
        raise RuntimeError("no fault spec installed")
    if spec is not None and _STACK[-1] is not spec:
        raise RuntimeError("uninstall out of order: not the active fault spec")
    _STACK.pop()


@contextmanager
def injected_faults(spec: FaultSpec | str | None):
    """Scoped fault injection: every simulation constructed inside the
    block runs under ``spec`` (a :class:`FaultSpec` or grammar string;
    ``None``/empty means no faults).  Yields the parsed spec."""
    if spec is None:
        yield None
        return
    installed = install_faults(spec)
    try:
        yield installed
    finally:
        uninstall_faults(installed)
