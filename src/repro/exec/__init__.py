"""Execution layer: shard experiment grids across CPU cores.

The repo's wall-clock cost is the harness, not the model — every
Table-2 cell auto-tunes three variants serially, hundreds of full SPMD
simulations each.  Cells are independent experiments keyed by
``(platform, p, n, budget)``, so the grid parallelizes embarrassingly:

* :func:`evaluate_cells` — evaluate a list of cells on a process pool
  with deterministic, order-preserving result merging;
* :func:`parallel_map` — the generic primitive underneath (also used
  for random-search CDF samples and ablation sweeps);
* :class:`ResultStore` — a concurrency-safe on-disk cache (one JSON
  file per cell, atomic write-tmp-then-rename);
* :func:`default_jobs` — the shared ``--jobs``/``$REPRO_JOBS``
  resolution used by the CLI and every ``benchmarks/bench_*.py``
  driver.

Determinism argument: a cell evaluation is a pure function of its key —
the simulation engine is deterministic, the tuner seeds its own RNG,
and workers start from a fresh memo — so *where* a cell runs cannot
change its value, and merging by input order (never completion order)
makes ``jobs=N`` byte-identical to ``jobs=1``.  Cell keys include the
ambient fault spec (:mod:`repro.faults`), so fault-injected grids never
alias fault-free ones.

Fault tolerance (:class:`ExecPolicy`): items are retried with
exponential backoff, per-item timeouts abandon hung workers, a dead
pool is respawned and resubmits only unfinished items, and a pool that
keeps dying degrades to serial execution.  A grid that still cannot
finish salvages its completed cells into the store and raises
:class:`~repro.errors.GridInterrupted`, so the next run resumes via
read-through.
"""

from .pool import (
    DEFAULT_POLICY,
    ExecPolicy,
    default_jobs,
    evaluate_cells,
    parallel_map,
    run_grid,
)
from .store import CorruptStoreWarning, ResultStore

__all__ = [
    "CorruptStoreWarning",
    "DEFAULT_POLICY",
    "ExecPolicy",
    "ResultStore",
    "default_jobs",
    "evaluate_cells",
    "parallel_map",
    "run_grid",
]
