"""Process-pool sharding with deterministic merging and fault tolerance.

:func:`parallel_map` is the one primitive: evaluate ``fn`` over a list
of argument tuples on ``jobs`` worker processes, returning results in
**input order** (never completion order).  Each worker is seeded with
the parent's FFT wisdom (and the ambient fault spec, see
:mod:`repro.faults`) at startup and ships its accumulated wisdom back
with every result, so planner work done anywhere is reused everywhere.
``jobs=1`` (the default) bypasses the pool entirely and runs in-process
— the reference path the parallel one must match byte-for-byte.

Failure handling is governed by an :class:`ExecPolicy`:

* a raising item is retried with exponential backoff, up to
  ``retries`` extra attempts, then reported as an
  :class:`~repro.errors.ItemFailedError` carrying the item's label and
  the worker-side traceback;
* an item exceeding ``timeout_s`` is abandoned (its worker may be hung
  — the process is terminated at pool shutdown) and retried the same
  way, ending in :class:`~repro.errors.ItemTimeoutError`;
* a dead worker (``BrokenProcessPool``) triggers a pool respawn that
  resubmits only the unfinished items, up to ``pool_respawns`` times,
  after which the remaining items degrade gracefully to in-process
  serial execution;
* whatever happens, every item is driven to success or a recorded
  failure — :class:`~repro.errors.ParallelMapError` carries the partial
  results so grid callers can salvage completed work.

:func:`evaluate_cells` specializes this for benchmark grids, layering
the in-process memo and an optional :class:`~repro.exec.store.ResultStore`
in front of the pool; on failure it flushes every completed cell to the
store and raises :class:`~repro.errors.GridInterrupted`, so a re-run
resumes via store read-through and executes only the missing cells.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..bench.runner import (
    CellResult,
    _CACHE,
    active_fault_key,
    cell_key,
    evaluate_cell,
    prime_cache,
)
from ..errors import (
    GridInterrupted,
    ItemFailedError,
    ItemTimeoutError,
    ParallelMapError,
)
from ..faults import current_faults, install_faults, parse_faults
from ..fft.wisdom import GLOBAL_WISDOM
from ..machine.platforms import Platform
from ..obs import registry as metrics
from ..obs.tracer import WALL, current_tracer
from ..tuning.evalstore import EvalStore
from .store import ResultStore

#: completion callback: ``progress(done, total, label)`` — called once
#: per finished item, in completion order (the CLI's live ticker)
ProgressFn = Callable[[int, int, str], None]


@dataclass(frozen=True)
class ExecPolicy:
    """Failure-handling policy for :func:`parallel_map`.

    ``clock`` and ``sleep`` are injectable so the retry/backoff logic is
    testable against a fake clock (no wall-clock waits in the suite).
    ``timeout_s=None`` disables per-item timeouts; timeouts are only
    enforceable on the pool path (a serial in-process item cannot be
    interrupted).
    """

    #: per-item wall-clock timeout in seconds (None = no timeout)
    timeout_s: float | None = None
    #: extra attempts after the first failure/timeout
    retries: int = 2
    #: backoff before retry k (1-based): ``backoff_s * factor**(k-1)``,
    #: capped at ``max_backoff_s``
    backoff_s: float = 0.25
    backoff_factor: float = 2.0
    max_backoff_s: float = 10.0
    #: pool respawns after BrokenProcessPool before degrading to serial
    pool_respawns: int = 2
    clock: Callable[[], float] = time.monotonic
    sleep: Callable[[float], None] = time.sleep

    def backoff(self, failures: int) -> float:
        """Delay before the retry following the ``failures``-th failure."""
        raw = self.backoff_s * self.backoff_factor ** (failures - 1)
        return min(raw, self.max_backoff_s)


#: the default policy every caller gets unless it passes its own
DEFAULT_POLICY = ExecPolicy()


def default_jobs(explicit: int | None = None) -> int:
    """Resolve a worker count: an explicit value wins, then ``$REPRO_JOBS``
    (``0``/``auto`` = all cores), else serial."""
    if explicit is None:
        env = os.environ.get("REPRO_JOBS", "").strip().lower()
        if not env:
            return 1
        explicit = 0 if env == "auto" else int(env)
    if explicit == 0:
        return os.cpu_count() or 1
    return max(1, explicit)


def _chaos_maybe_kill(label: str) -> None:
    """Test/bench hook: die abruptly once, like a real worker crash.

    ``$REPRO_EXEC_CHAOS="kill-once:<substr>@<dir>"`` makes the first
    worker whose item label contains ``<substr>`` hard-exit before doing
    any work.  The "once" latch is an ``O_EXCL``-created sentinel file
    in ``<dir>``, atomic across concurrent workers, so the retried item
    succeeds — this is how the suite and ``bench_smoke`` exercise the
    BrokenProcessPool recovery path end to end.
    """
    spec = os.environ.get("REPRO_EXEC_CHAOS", "")
    if not spec.startswith("kill-once:"):
        return
    substr, _, where = spec[len("kill-once:"):].partition("@")
    if substr and substr not in label:
        return
    sentinel = os.path.join(where or ".", "chaos-killed")
    try:
        fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return
    os.close(fd)
    os._exit(1)


def _worker_init(wisdom_json: str, faults_text: str = "") -> None:
    if wisdom_json:
        GLOBAL_WISDOM.import_json(wisdom_json)
    if faults_text:
        # Mirror the parent's ambient fault spec (repro.faults): every
        # simulation this worker runs sees the same injected machine.
        install_faults(parse_faults(faults_text))


def _invoke(fn: Callable[..., Any], args: tuple, label: str = "") -> tuple[Any, str, float]:
    _chaos_maybe_kill(label)
    t0 = time.perf_counter()
    value = fn(*args)
    return value, GLOBAL_WISDOM.export_json(), time.perf_counter() - t0


def _tb_text(exc: BaseException) -> str:
    return "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    ).rstrip()


class _Run:
    """State of one :func:`parallel_map` invocation (pool path).

    ``tr`` is the tracer spans/counters go to — normally the ambient
    :func:`current_tracer`, but callers may pass an explicit tracer to
    :func:`parallel_map` (the distributed worker does, so per-lease
    telemetry never touches the process-global tracer stack).
    """

    def __init__(self, fn, argtuples, labels, policy, progress, tr):
        self.fn = fn
        self.argtuples = argtuples
        self.labels = labels
        self.policy = policy
        self.progress = progress
        self.tr = tr
        total = len(argtuples)
        self.total = total
        self.results: list[Any] = [None] * total
        self.wisdoms: list[str] = [""] * total
        self.failures: dict[int, ItemFailedError] = {}
        self.attempts = [0] * total
        self.finished = 0
        #: items waiting out a backoff: index -> earliest resubmit time
        self.retry_at: dict[int, float] = {}

    # -- per-item outcomes -------------------------------------------------

    def succeed(self, i: int, value: Any, wisdom: str, worker_s: float,
                mode: str) -> None:
        self.results[i] = value
        self.wisdoms[i] = wisdom
        self.finished += 1
        metrics.count("pool_items_total",
                      help="Pool items driven to success.", mode=mode)
        metrics.observe("pool_item_seconds", worker_s,
                        help="Per-item worker-side wall seconds.")
        if self.tr is not None:
            t1 = self.tr.wall()
            self.tr.count("pool.items")
            self.tr.observe("pool.item_s", worker_s)
            self.tr.add_span(
                "pool", self.labels[i], max(t1 - worker_s, 0.0), t1, WALL,
                {"mode": mode, "worker_s": worker_s},
            )
        if self.progress is not None:
            self.progress(self.finished, self.total, self.labels[i])

    def fail_attempt(self, i: int, cause: str, timed_out: bool) -> bool:
        """Record one failed attempt; returns True if the item should be
        retried (and schedules the backoff), False if it is now failed
        for good."""
        self.attempts[i] += 1
        policy = self.policy
        metrics.count("pool_item_errors_total",
                      help="Failed pool item attempts.")
        if timed_out:
            metrics.count("pool_timeouts_total",
                          help="Pool items abandoned past their deadline.")
        if self.tr is not None:
            self.tr.count("pool.item_errors")
            if timed_out:
                self.tr.count("pool.timeouts")
        if self.attempts[i] <= policy.retries:
            metrics.count("pool_retries_total",
                          help="Pool item retry resubmissions.")
            if self.tr is not None:
                self.tr.count("pool.retries")
            self.retry_at[i] = policy.clock() + policy.backoff(self.attempts[i])
            return True
        cls = ItemTimeoutError if timed_out else ItemFailedError
        self.failures[i] = cls(self.labels[i], cause, attempts=self.attempts[i])
        self.finished += 1
        if self.progress is not None:
            self.progress(self.finished, self.total, self.labels[i])
        return False

    def outcome(self) -> list[Any]:
        # Wisdom merges are first-wins per key and every entry is a pure
        # function of its key, so import order cannot change the final
        # store; input order keeps the merge reproducible regardless.
        for wisdom_json in self.wisdoms:
            if wisdom_json:
                GLOBAL_WISDOM.import_json(wisdom_json)
        if self.failures:
            raise ParallelMapError(self.results, self.failures)
        return self.results


def _run_serial(run: _Run, items: Sequence[int]) -> None:
    """Drive ``items`` to success or recorded failure in-process.

    Both the ``jobs=1`` reference path and the pool's graceful
    degradation land here, so the serial path emits the same progress
    events, spans, and counters as the pool path (``worker_s`` measured
    around the call, ``pool.item_s`` observed) — only the span's
    ``mode`` attribute tells them apart.  Timeouts are not enforceable
    in-process and are ignored.
    """
    policy = run.policy
    for i in items:
        while True:
            t0 = time.perf_counter()
            try:
                value = run.fn(*run.argtuples[i])
            except Exception as exc:
                if run.fail_attempt(i, _tb_text(exc), timed_out=False):
                    policy.sleep(policy.backoff(run.attempts[i]))
                    continue
                break
            run.succeed(i, value, "", time.perf_counter() - t0, "serial")
            break
    run.retry_at.clear()


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Shut a pool down without waiting for hung or dead workers.

    ``_processes`` is a private executor attribute, so everything here
    is best-effort: if a future interpreter renames it we merely lose
    the hard kill, not correctness.
    """
    procs = getattr(pool, "_processes", None)
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    if procs:
        for proc in list(procs.values()):
            try:
                proc.terminate()
            except Exception:
                pass


def _run_pooled(run: _Run, jobs: int) -> None:
    """Drive all items through a (respawnable) process pool."""
    policy = run.policy
    tr = run.tr
    faults = current_faults()
    faults_text = faults.key() if faults is not None else ""

    def make_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=min(jobs, run.total),
            initializer=_worker_init,
            initargs=(GLOBAL_WISDOM.export_json(), faults_text),
        )

    pool = make_pool()
    dirty = False          # hung/killed workers may linger: hard-terminate
    respawns = 0
    tracked: dict[Future, int] = {}
    deadlines: dict[Future, float] = {}

    def submit(i: int) -> None:
        fut = pool.submit(_invoke, run.fn, run.argtuples[i], run.labels[i])
        tracked[fut] = i
        if policy.timeout_s is not None:
            deadlines[fut] = policy.clock() + policy.timeout_s

    def unfinished_items() -> list[int]:
        items = sorted(set(tracked.values()) | set(run.retry_at))
        tracked.clear()
        deadlines.clear()
        run.retry_at.clear()
        return items

    try:
        for i in range(run.total):
            submit(i)
        while tracked or run.retry_at:
            now = policy.clock()
            # resubmit items whose backoff has elapsed
            ready = [i for i, t in run.retry_at.items() if t <= now]
            try:
                for i in sorted(ready):
                    del run.retry_at[i]
                    submit(i)
            except (BrokenProcessPool, RuntimeError):
                pending = unfinished_items() + sorted(ready)
                raise _PoolBroken(sorted(set(pending)))
            if not tracked:
                # everything is waiting out a backoff
                wake = min(run.retry_at.values())
                policy.sleep(max(wake - policy.clock(), 0.0))
                continue
            horizon: list[float] = []
            if deadlines:
                horizon.append(min(deadlines.values()))
            if run.retry_at:
                horizon.append(min(run.retry_at.values()))
            wait_s = max(min(horizon) - now, 0.0) if horizon else None
            done, _ = wait(set(tracked), timeout=wait_s,
                           return_when=FIRST_COMPLETED)
            broken: list[int] | None = None
            for fut in done:
                i = tracked.pop(fut)
                deadlines.pop(fut, None)
                try:
                    value, wisdom_json, worker_s = fut.result()
                except BrokenProcessPool:
                    # every sibling future is about to raise the same
                    # thing: recover the whole in-flight set at once
                    broken = sorted({i} | set(unfinished_items()))
                    break
                except Exception as exc:
                    if not run.fail_attempt(i, _tb_text(exc), timed_out=False):
                        pass  # failed for good; retry_at handles the rest
                    continue
                run.succeed(i, value, wisdom_json, worker_s, "pool")
            if broken is not None:
                raise _PoolBroken(broken)
            # abandon items past their deadline (their worker may be
            # hung; it is reclaimed when the pool is torn down)
            if deadlines:
                now = policy.clock()
                expired = [f for f, t in deadlines.items() if t <= now]
                for fut in expired:
                    i = tracked.pop(fut)
                    del deadlines[fut]
                    dirty = True
                    run.fail_attempt(
                        i,
                        f"exceeded per-item timeout of {policy.timeout_s}s",
                        timed_out=True,
                    )
    except _PoolBroken as pb:
        items = pb.items
        dirty = True
        while True:
            respawns += 1
            metrics.count("pool_respawns_total",
                          help="Process-pool respawns after a broken pool.")
            if tr is not None:
                tr.count("pool.respawns")
            if respawns > policy.pool_respawns:
                # the pool keeps dying: degrade gracefully to serial
                metrics.count(
                    "pool_serial_fallbacks_total",
                    help="Graceful degradations to in-process execution.",
                )
                if tr is not None:
                    tr.count("pool.serial_fallbacks")
                _terminate_pool(pool)
                _run_serial(run, items)
                return
            _terminate_pool(pool)
            pool = make_pool()
            try:
                _run_pooled_resume(run, pool, items, tracked, deadlines)
                return
            except _PoolBroken as again:
                items = again.items
                tracked.clear()
                deadlines.clear()
    finally:
        if dirty:
            _terminate_pool(pool)
        else:
            pool.shutdown(wait=True)


class _PoolBroken(Exception):
    """Internal: the pool died; ``items`` still need to run."""

    def __init__(self, items: list[int]) -> None:
        super().__init__(f"pool broken with {len(items)} unfinished item(s)")
        self.items = items


def _run_pooled_resume(run, pool, items, tracked, deadlines) -> None:
    """Resubmit ``items`` on a fresh pool and drain them (respawn path).

    Shares the main loop's bookkeeping dicts so an escaping
    :class:`_PoolBroken` leaves them consistent for the next respawn.
    """
    policy = run.policy

    def submit(i: int) -> None:
        fut = pool.submit(_invoke, run.fn, run.argtuples[i], run.labels[i])
        tracked[fut] = i
        if policy.timeout_s is not None:
            deadlines[fut] = policy.clock() + policy.timeout_s

    def unfinished() -> list[int]:
        out = sorted(set(tracked.values()) | set(run.retry_at))
        tracked.clear()
        deadlines.clear()
        run.retry_at.clear()
        return out

    try:
        for i in items:
            submit(i)
    except (BrokenProcessPool, RuntimeError):
        raise _PoolBroken(sorted(set(unfinished()) | set(items)))
    while tracked or run.retry_at:
        now = policy.clock()
        ready = [i for i, t in run.retry_at.items() if t <= now]
        try:
            for i in sorted(ready):
                del run.retry_at[i]
                submit(i)
        except (BrokenProcessPool, RuntimeError):
            raise _PoolBroken(sorted(set(unfinished()) | set(ready)))
        if not tracked:
            wake = min(run.retry_at.values())
            policy.sleep(max(wake - policy.clock(), 0.0))
            continue
        horizon = []
        if deadlines:
            horizon.append(min(deadlines.values()))
        if run.retry_at:
            horizon.append(min(run.retry_at.values()))
        wait_s = max(min(horizon) - now, 0.0) if horizon else None
        done, _ = wait(set(tracked), timeout=wait_s,
                       return_when=FIRST_COMPLETED)
        for fut in done:
            i = tracked.pop(fut)
            deadlines.pop(fut, None)
            try:
                value, wisdom_json, worker_s = fut.result()
            except BrokenProcessPool:
                raise _PoolBroken(sorted({i} | set(unfinished())))
            except Exception as exc:
                run.fail_attempt(i, _tb_text(exc), timed_out=False)
                continue
            run.succeed(i, value, wisdom_json, worker_s, "pool")
        if deadlines:
            now = policy.clock()
            for fut in [f for f, t in deadlines.items() if t <= now]:
                i = tracked.pop(fut)
                del deadlines[fut]
                run.fail_attempt(
                    i,
                    f"exceeded per-item timeout of {policy.timeout_s}s",
                    timed_out=True,
                )


def parallel_map(
    fn: Callable[..., Any],
    argtuples: Sequence[tuple],
    jobs: int | None = None,
    labels: Sequence[str] | None = None,
    progress: ProgressFn | None = None,
    policy: ExecPolicy | None = None,
    tracer: "Any | None" = None,
) -> list[Any]:
    """``[fn(*args) for args in argtuples]`` over a process pool.

    ``fn`` must be a module-level (picklable) callable whose value is a
    pure function of its arguments; results are merged by input
    position, making the output independent of worker scheduling.

    ``progress`` receives one completion event per finished item (in
    completion order — the live ticker's feed); ``labels`` names the
    items for progress lines, trace spans, and error reports.  When a
    :mod:`repro.obs` tracer is installed, each item's busy interval is
    recorded as a wall-clock span on the ``pool`` track — workers
    measure their own duration and ship it back with the result.

    ``policy`` (default :data:`DEFAULT_POLICY`) governs retries,
    per-item timeouts, backoff, and pool-respawn budgets; see
    :class:`ExecPolicy`.  Items that still fail after retries surface
    as a single :class:`~repro.errors.ParallelMapError` raised after
    every other item has been driven to completion — the exception
    carries the partial results, so callers can salvage finished work.
    """
    argtuples = [tuple(a) for a in argtuples]
    jobs = default_jobs(jobs)
    total = len(argtuples)
    name = getattr(fn, "__name__", "item")
    if labels is None:
        labels = [f"{name}[{i}]" for i in range(total)]
    run = _Run(fn, argtuples, list(labels), policy or DEFAULT_POLICY,
               progress, tracer if tracer is not None else current_tracer())
    if jobs <= 1 or total <= 1:
        _run_serial(run, range(total))
    else:
        _run_pooled(run, jobs)
    return run.outcome()


def _cell_with_evals(
    plat: str, p: int, n: int, budget: int, evals_jsonl: str
) -> tuple[CellResult, str, int]:
    """One cell evaluation against a private copy of the shared eval
    store (module-level: pool workers pickle it).  Returns the cell plus
    the worker's *new* evaluations as JSONL, the way workers ship FFT
    wisdom back — the parent merges the deltas in input order — and the
    worker's store-hit count for the parent's totals."""
    evals = EvalStore.from_jsonl(evals_jsonl)
    cell = evaluate_cell(plat, p, n, budget, eval_store=evals)
    return cell, evals.new_jsonl(), evals.hits


def evaluate_cells(
    platform: Platform | str,
    cells: Sequence[tuple[int, int]],
    jobs: int | None = None,
    max_evaluations: int | None = None,
    store: ResultStore | None = None,
    progress: ProgressFn | None = None,
    eval_store: EvalStore | None = None,
    policy: ExecPolicy | None = None,
    dispatch: str = "local",
    dist: "Any | None" = None,
    note: Callable[[str], None] | None = None,
) -> list[CellResult]:
    """Evaluate a grid of ``(p, n)`` cells, sharded over ``jobs`` workers.

    Results come back in input order and are primed into the in-process
    memo, so subsequent serial ``evaluate_cell`` calls (the benchmark
    drivers' reporting loops) are cache hits.  Layering, per cell:
    in-process memo → ``store`` (if given) → pool evaluation; computed
    cells are written back to the store.  ``progress`` sees one event
    per cell actually evaluated (memo/store hits are free and silent).
    Cell keys include the ambient fault spec (:mod:`repro.faults`), so
    fault-injected grids never alias fault-free ones.

    ``eval_store`` is the shared per-evaluation pool (see
    :mod:`repro.tuning.evalstore`): each worker starts from a snapshot
    of it, answers already-timed configurations for free, and ships its
    new evaluations back with the cell result; deltas are merged into
    ``eval_store`` in input order (like FFT wisdom), so the outcome is
    independent of worker scheduling.

    If cells still fail after ``policy``'s retries, every *completed*
    cell is flushed to ``store`` (when given) and the memo first, then
    :class:`~repro.errors.GridInterrupted` is raised carrying them — a
    re-run with the same store resumes via read-through and evaluates
    only the missing cells.  ``GridInterrupted.salvaged`` dedupes
    against cells the store already held before this run (read-through
    hits), so the reported salvage count matches the files the run
    actually added to disk.

    ``dispatch`` selects where the ``todo`` cells run: ``"local"`` uses
    the in-process pool, ``"dist"`` serves them from a coordinator to
    ``repro worker`` processes (:func:`repro.dist.dist_map`, configured
    by ``dist``, a :class:`~repro.dist.DistConfig`).  Both modes share
    the memo/store read-through layering, the per-cell eval-store
    snapshot, and this function's input-order harvest — which is why
    they produce byte-identical stores.  ``note`` (dist only) receives
    one-line fleet status strings for the live ticker.
    """
    if dispatch not in ("local", "dist"):
        raise ValueError(f"unknown dispatch mode {dispatch!r}")
    name = platform if isinstance(platform, str) else platform.name
    found: dict[tuple, CellResult] = {}
    from_disk: set[tuple] = set()
    pending: set[tuple] = set()
    todo: list[tuple[str, int, int, int, str]] = []
    for p, n in cells:
        key = cell_key(name, p, n, max_evaluations)
        if key in found or key in pending:
            continue  # duplicate input cell: schedule it once
        if key in _CACHE:
            found[key] = _CACHE[key]
            continue
        if store is not None:
            cached = store.get(*key)
            if cached is not None:
                found[key] = cached
                from_disk.add(key)
                continue
        todo.append(key)
        pending.add(key)
    labels = [f"{plat} p{p} N{n}" for (plat, p, n, _b, _f) in todo]
    # out-of-process evaluation ships eval-store hit counts back instead
    # of tracing them live; dist workers always count as out-of-process
    pooled = dispatch == "dist" or (default_jobs(jobs) > 1 and len(todo) > 1)
    tr = current_tracer()

    def harvest(values: Sequence[Any]) -> None:
        """Fold finished pool values (cells or cell+delta tuples) into
        ``found``, the store, and the shared eval store.  ``None``
        entries (failed items) are skipped — that is the salvage path."""
        for value in values:
            if value is None:
                continue
            if eval_store is None:
                cell = value
            else:
                cell, delta, hits = value
                # Input-order merge of worker deltas (first-wins per
                # key, like the wisdom merge: every record is a pure
                # function of its key).  In-process runs traced their
                # store hits as they happened; pooled workers have no
                # tracer, so their shipped hit counts are folded into
                # the parent's trace here.
                eval_store.merge(EvalStore.from_jsonl(delta))
                eval_store.add_hits(hits)
                if pooled and hits:
                    metrics.count("tune_store_hits_total", hits,
                                  help="Eval-store read-through hits.")
                    if tr is not None:
                        tr.count("tune.store_hits", hits)
            found[cell.key()] = cell
            if store is not None:
                store.put(cell)

    extra: dict[str, Any] = {}
    if policy is not None:
        extra["policy"] = policy
    snapshot = None if eval_store is None else eval_store.to_jsonl()
    if eval_store is None:
        worker_fn = evaluate_cell
        argtuples = [(plat, p, n, budget) for (plat, p, n, budget, _f) in todo]
    else:
        worker_fn = _cell_with_evals
        argtuples = [
            (plat, p, n, budget, snapshot)
            for (plat, p, n, budget, _f) in todo
        ]
    # Per-run registry scope (reset safety): reuse the caller's installed
    # registry when one exists (tests / the tuning service observe the
    # run through it), otherwise push a fresh one so back-to-back grid
    # runs in one process never leak counts into each other.
    with metrics.run_registry():
        try:
            if dispatch == "dist" and todo:
                # Imported lazily: repro.dist's worker loop imports this
                # module, so a top-level import would be circular.
                from ..dist import DistConfig, dist_map

                computed = dist_map(
                    name, todo, labels, snapshot,
                    dist if dist is not None else DistConfig(),
                    store=store, progress=progress, note=note,
                    faults=active_fault_key(),
                )
            else:
                computed = parallel_map(
                    worker_fn, argtuples, jobs, labels=labels,
                    progress=progress, **extra,
                )
        except ParallelMapError as err:
            harvest(err.results)
            # Flush *every* completed cell — memo hits included, which the
            # success path leaves disk-lazy — so the store matches what the
            # salvage message claims survived.
            if store is not None:
                for key, cell in found.items():
                    if key not in from_disk:
                        store.put(cell)
            prime_cache(list(found.values()))
            failures = {
                (todo[i][1], todo[i][2]): item_err
                for i, item_err in err.failures.items()
            }
            salvaged = [
                cell for key, cell in found.items() if key not in from_disk
            ]
            raise GridInterrupted(
                list(found.values()), failures, salvaged=salvaged
            ) from err
        harvest(computed)
    prime_cache(list(found.values()))
    return [found[cell_key(name, p, n, max_evaluations)] for p, n in cells]


def run_grid(
    platform: Platform | str,
    cells: Sequence[tuple[int, int]],
    jobs: int | None = None,
    max_evaluations: int | None = None,
    store_dir: str | os.PathLike | None = None,
    progress: ProgressFn | None = None,
    eval_store_path: str | os.PathLike | None = None,
    policy: ExecPolicy | None = None,
    dispatch: str = "local",
    dist: "Any | None" = None,
    note: Callable[[str], None] | None = None,
) -> tuple[list[CellResult], EvalStore | None]:
    """CLI-facing wrapper: like :func:`evaluate_cells` with an optional
    store directory (cell results) and eval-store path (shared
    per-evaluation pool, loaded before and atomically merge-saved after)
    instead of store objects.  Returns the cells and the loaded/updated
    :class:`EvalStore` (``None`` when no path was given).  On
    :class:`~repro.errors.GridInterrupted` the eval store is still
    saved — the salvaged evaluations survive for the resuming run."""
    store = ResultStore(store_dir) if store_dir is not None else None
    evals = EvalStore.load(eval_store_path) if eval_store_path is not None else None
    try:
        results = evaluate_cells(
            platform, cells, jobs, max_evaluations, store, progress, evals,
            policy, dispatch=dispatch, dist=dist, note=note,
        )
    except GridInterrupted:
        if evals is not None:
            evals.save(eval_store_path)
        raise
    if evals is not None:
        evals.save(eval_store_path)
    return results, evals
