"""Process-pool sharding with deterministic merging.

:func:`parallel_map` is the one primitive: evaluate ``fn`` over a list
of argument tuples on ``jobs`` worker processes, returning results in
**input order** (never completion order).  Each worker is seeded with
the parent's FFT wisdom at startup and ships its accumulated wisdom
back with every result, so planner work done anywhere is reused
everywhere.  ``jobs=1`` (the default) bypasses the pool entirely and
runs in-process — the reference path the parallel one must match
byte-for-byte.

:func:`evaluate_cells` specializes this for benchmark grids, layering
the in-process memo and an optional :class:`~repro.exec.store.ResultStore`
in front of the pool.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, Callable, Sequence

from ..bench.runner import (
    CellResult,
    _CACHE,
    cell_key,
    effective_budget,
    evaluate_cell,
    prime_cache,
)
from ..fft.wisdom import GLOBAL_WISDOM
from ..machine.platforms import Platform
from ..obs.tracer import WALL, current_tracer
from ..tuning.evalstore import EvalStore
from .store import ResultStore

#: completion callback: ``progress(done, total, label)`` — called once
#: per finished item, in completion order (the CLI's live ticker)
ProgressFn = Callable[[int, int, str], None]


def default_jobs(explicit: int | None = None) -> int:
    """Resolve a worker count: an explicit value wins, then ``$REPRO_JOBS``
    (``0``/``auto`` = all cores), else serial."""
    if explicit is None:
        env = os.environ.get("REPRO_JOBS", "").strip().lower()
        if not env:
            return 1
        explicit = 0 if env == "auto" else int(env)
    if explicit == 0:
        return os.cpu_count() or 1
    return max(1, explicit)


def _worker_init(wisdom_json: str) -> None:
    if wisdom_json:
        GLOBAL_WISDOM.import_json(wisdom_json)


def _invoke(fn: Callable[..., Any], args: tuple) -> tuple[Any, str, float]:
    t0 = time.perf_counter()
    value = fn(*args)
    return value, GLOBAL_WISDOM.export_json(), time.perf_counter() - t0


def parallel_map(
    fn: Callable[..., Any],
    argtuples: Sequence[tuple],
    jobs: int | None = None,
    labels: Sequence[str] | None = None,
    progress: ProgressFn | None = None,
) -> list[Any]:
    """``[fn(*args) for args in argtuples]`` over a process pool.

    ``fn`` must be a module-level (picklable) callable whose value is a
    pure function of its arguments; results are merged by input
    position, making the output independent of worker scheduling.

    ``progress`` receives one completion event per finished item (in
    completion order — the live ticker's feed); ``labels`` names the
    items for progress lines and trace spans.  When a :mod:`repro.obs`
    tracer is installed, each item's busy interval is recorded as a
    wall-clock span on the ``pool`` track — workers measure their own
    duration and ship it back with the result.
    """
    argtuples = list(argtuples)
    jobs = default_jobs(jobs)
    total = len(argtuples)
    name = getattr(fn, "__name__", "item")
    if labels is None:
        labels = [f"{name}[{i}]" for i in range(total)]
    tr = current_tracer()
    if jobs <= 1 or total <= 1:
        out: list[Any] = []
        for i, args in enumerate(argtuples):
            t0 = tr.wall() if tr is not None else 0.0
            out.append(fn(*args))
            if tr is not None:
                tr.count("pool.items")
                tr.add_span("pool", labels[i], t0, tr.wall(), WALL,
                            {"mode": "serial"})
            if progress is not None:
                progress(i + 1, total, labels[i])
        return out
    results: list[Any] = [None] * total
    wisdoms: list[str] = [""] * total
    done = 0
    with ProcessPoolExecutor(
        max_workers=min(jobs, total),
        initializer=_worker_init,
        initargs=(GLOBAL_WISDOM.export_json(),),
    ) as pool:
        futures = {
            pool.submit(_invoke, fn, args): i
            for i, args in enumerate(argtuples)
        }
        for fut in as_completed(futures):
            i = futures[fut]
            value, wisdom_json, worker_s = fut.result()
            results[i] = value
            wisdoms[i] = wisdom_json
            done += 1
            if tr is not None:
                t1 = tr.wall()
                tr.count("pool.items")
                tr.observe("pool.item_s", worker_s)
                tr.add_span("pool", labels[i], max(t1 - worker_s, 0.0), t1,
                            WALL, {"mode": "pool", "worker_s": worker_s})
            if progress is not None:
                progress(done, total, labels[i])
    # Wisdom merges are first-wins per key and every entry is a pure
    # function of its key, so import order cannot change the final
    # store; input order keeps the merge reproducible regardless.
    for wisdom_json in wisdoms:
        GLOBAL_WISDOM.import_json(wisdom_json)
    return results


def _cell_with_evals(
    plat: str, p: int, n: int, budget: int, evals_jsonl: str
) -> tuple[CellResult, str, int]:
    """One cell evaluation against a private copy of the shared eval
    store (module-level: pool workers pickle it).  Returns the cell plus
    the worker's *new* evaluations as JSONL, the way workers ship FFT
    wisdom back — the parent merges the deltas in input order — and the
    worker's store-hit count for the parent's totals."""
    evals = EvalStore.from_jsonl(evals_jsonl)
    cell = evaluate_cell(plat, p, n, budget, eval_store=evals)
    return cell, evals.new_jsonl(), evals.hits


def evaluate_cells(
    platform: Platform | str,
    cells: Sequence[tuple[int, int]],
    jobs: int | None = None,
    max_evaluations: int | None = None,
    store: ResultStore | None = None,
    progress: ProgressFn | None = None,
    eval_store: EvalStore | None = None,
) -> list[CellResult]:
    """Evaluate a grid of ``(p, n)`` cells, sharded over ``jobs`` workers.

    Results come back in input order and are primed into the in-process
    memo, so subsequent serial ``evaluate_cell`` calls (the benchmark
    drivers' reporting loops) are cache hits.  Layering, per cell:
    in-process memo → ``store`` (if given) → pool evaluation; computed
    cells are written back to the store.  ``progress`` sees one event
    per cell actually evaluated (memo/store hits are free and silent).

    ``eval_store`` is the shared per-evaluation pool (see
    :mod:`repro.tuning.evalstore`): each worker starts from a snapshot
    of it, answers already-timed configurations for free, and ships its
    new evaluations back with the cell result; deltas are merged into
    ``eval_store`` in input order (like FFT wisdom), so the outcome is
    independent of worker scheduling.
    """
    name = platform if isinstance(platform, str) else platform.name
    found: dict[tuple, CellResult] = {}
    pending: set[tuple[str, int, int, int]] = set()
    todo: list[tuple[str, int, int, int]] = []
    for p, n in cells:
        key = cell_key(name, p, n, max_evaluations)
        if key in found or key in pending:
            continue  # duplicate input cell: schedule it once
        if key in _CACHE:
            found[key] = _CACHE[key]
            continue
        if store is not None:
            cached = store.get(*key)
            if cached is not None:
                found[key] = cached
                continue
        todo.append(key)
        pending.add(key)
    labels = [f"{plat} p{p} N{n}" for (plat, p, n, _b) in todo]
    if eval_store is None:
        computed = parallel_map(
            evaluate_cell,
            [(plat, p, n, budget) for (plat, p, n, budget) in todo],
            jobs,
            labels=labels,
            progress=progress,
        )
    else:
        snapshot = eval_store.to_jsonl()
        shipped = parallel_map(
            _cell_with_evals,
            [(plat, p, n, budget, snapshot)
             for (plat, p, n, budget) in todo],
            jobs,
            labels=labels,
            progress=progress,
        )
        computed = [cell for cell, _delta, _hits in shipped]
        # Input-order merge of worker deltas (first-wins per key, like
        # the wisdom merge: every record is a pure function of its key).
        # In-process runs (the pool bypass) traced their store hits as
        # they happened; pooled workers have no tracer, so their shipped
        # hit counts are folded into the parent's trace here.
        pooled = default_jobs(jobs) > 1 and len(todo) > 1
        tr = current_tracer()
        for _cell, delta, hits in shipped:
            eval_store.merge(EvalStore.from_jsonl(delta))
            eval_store.hits += hits
            if pooled and tr is not None and hits:
                tr.count("tune.store_hits", hits)
    for cell in computed:
        found[(cell.platform, cell.p, cell.n, cell.budget)] = cell
        if store is not None:
            store.put(cell)
    prime_cache(list(found.values()))
    return [found[cell_key(name, p, n, max_evaluations)] for p, n in cells]


def run_grid(
    platform: Platform | str,
    cells: Sequence[tuple[int, int]],
    jobs: int | None = None,
    max_evaluations: int | None = None,
    store_dir: str | os.PathLike | None = None,
    progress: ProgressFn | None = None,
    eval_store_path: str | os.PathLike | None = None,
) -> tuple[list[CellResult], EvalStore | None]:
    """CLI-facing wrapper: like :func:`evaluate_cells` with an optional
    store directory (cell results) and eval-store path (shared
    per-evaluation pool, loaded before and atomically merge-saved after)
    instead of store objects.  Returns the cells and the loaded/updated
    :class:`EvalStore` (``None`` when no path was given)."""
    store = ResultStore(store_dir) if store_dir is not None else None
    evals = EvalStore.load(eval_store_path) if eval_store_path is not None else None
    results = evaluate_cells(
        platform, cells, jobs, max_evaluations, store, progress, evals
    )
    if evals is not None:
        evals.save(eval_store_path)
    return results, evals
