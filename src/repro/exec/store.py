"""Concurrency-safe on-disk result store for grid experiments.

One JSON file per cell, named by the full cache key
(``<platform>__p<p>__n<n>__b<budget>.json``), written atomically: the
payload goes to a temp file in the same directory and is moved into
place with ``os.replace``.  Concurrent writers of the *same* key are
computing the same deterministic value, so last-writer-wins is
lossless; readers never observe a truncated file because the rename is
atomic on POSIX.  Unlike :func:`repro.bench.runner.save_cache` (one
file for the whole memo), per-key files let parallel workers and even
separate benchmark invocations share results without coordination.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..bench.runner import CellResult, cell_from_dict, cell_to_dict


def _safe(token: str) -> str:
    return "".join(c if (c.isalnum() or c in "-.") else "-" for c in token)


class ResultStore:
    """Directory of per-cell JSON results."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, platform: str, p: int, n: int, budget: int) -> Path:
        """File backing one cell key."""
        return self.root / f"{_safe(platform)}__p{p}__n{n}__b{budget}.json"

    def get(self, platform: str, p: int, n: int, budget: int) -> CellResult | None:
        """Stored cell for the key, or ``None`` (missing or unreadable —
        a foreign/corrupt file is treated as a miss, never an error)."""
        file = self.path_for(platform, p, n, budget)
        try:
            item = json.loads(file.read_text())
            cell = cell_from_dict(item)
        except (OSError, ValueError, KeyError, TypeError):
            return None
        if (cell.platform, cell.p, cell.n, cell.budget) != (platform, p, n, budget):
            return None  # file name does not match its contents
        return cell

    def put(self, cell: CellResult) -> Path:
        """Persist one cell atomically; returns its file path."""
        target = self.path_for(cell.platform, cell.p, cell.n, cell.budget)
        tmp = target.with_name(target.name + f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(cell_to_dict(cell), indent=1))
        os.replace(tmp, target)
        return target

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))
