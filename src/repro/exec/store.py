"""Concurrency-safe on-disk result store for grid experiments.

One JSON file per cell, named by the full cache key
(``<platform>__p<p>__n<n>__b<budget>.json``), written atomically: the
payload goes to a temp file in the same directory and is moved into
place with ``os.replace``.  Concurrent writers of the *same* key are
computing the same deterministic value, so last-writer-wins is
lossless; readers never observe a truncated file because the rename is
atomic on POSIX.  Unlike :func:`repro.bench.runner.save_cache` (one
file for the whole memo), per-key files let parallel workers and even
separate benchmark invocations share results without coordination.

Thread safety (the serve-layer audit, DESIGN.md §5.13): per-cell files
were always atomic *across processes*, but same-process concurrency had
two holes once :mod:`repro.serve` started calling one store from many
``ThreadingHTTPServer`` handler threads — the temp name was keyed by
pid alone (two threads putting the same cell shared one temp file, so
an ``os.replace`` could promote a half-written payload), and the
in-memory hit/miss counters were bare read-modify-writes.  Both now sit
behind an internal :class:`threading.Lock`, with the thread id added to
the temp name, matching the :class:`~repro.tuning.evalstore.EvalStore`
treatment.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import warnings
from pathlib import Path

from ..bench.runner import CellResult, cell_from_dict, cell_to_dict


class CorruptStoreWarning(UserWarning):
    """A store file existed but could not be used (skipped, not fatal).

    Crash-resilience policy: a truncated or foreign file in a store
    directory is a *miss*, never an error — an interrupted writer or a
    stray file must not take down the grid run that finds it.  The
    warning keeps the skip observable.
    """


def _safe(token: str) -> str:
    return "".join(c if (c.isalnum() or c in "-.") else "-" for c in token)


class ResultStore:
    """Directory of per-cell JSON results.

    Safe to share across threads: disk writes are atomic per cell and
    the in-memory counters (``hits``/``misses``/``puts`` — what the
    plan server reports as provenance) mutate only under the internal
    lock.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.puts = 0

    def path_for(
        self, platform: str, p: int, n: int, budget: int, faults: str = ""
    ) -> Path:
        """File backing one cell key.

        Fault-injected cells get a ``__f<digest>`` suffix (a short hash
        of the canonical fault spec — specs are free-form text, file
        names are not), so they never shadow the fault-free cell.
        """
        stem = f"{_safe(platform)}__p{p}__n{n}__b{budget}"
        if faults:
            digest = hashlib.sha1(faults.encode()).hexdigest()[:10]
            stem += f"__f{digest}"
        return self.root / f"{stem}.json"

    def get(
        self, platform: str, p: int, n: int, budget: int, faults: str = ""
    ) -> CellResult | None:
        """Stored cell for the key, or ``None`` (missing or unreadable —
        a foreign/corrupt file is treated as a warned miss, never an
        error: the caller just recomputes the cell)."""
        file = self.path_for(platform, p, n, budget, faults)
        if not file.exists():
            self._count(hit=False)
            return None
        try:
            item = json.loads(file.read_text())
            cell = cell_from_dict(item)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            warnings.warn(
                f"skipping corrupt result-store file {file.name}: {exc}",
                CorruptStoreWarning,
                stacklevel=2,
            )
            self._count(hit=False)
            return None
        if cell.key() != (platform, p, n, budget, faults):
            warnings.warn(
                f"skipping result-store file {file.name}: name does not "
                f"match its contents (claims {cell.key()})",
                CorruptStoreWarning,
                stacklevel=2,
            )
            self._count(hit=False)
            return None
        self._count(hit=True)
        return cell

    def _count(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.hits += 1
            else:
                self.misses += 1

    def cells(self) -> list[CellResult]:
        """Every readable cell in the store (corrupt files are skipped
        with a :class:`CorruptStoreWarning`), sorted by key."""
        out: list[CellResult] = []
        for file in sorted(self.root.glob("*.json")):
            try:
                out.append(cell_from_dict(json.loads(file.read_text())))
            except (OSError, ValueError, KeyError, TypeError) as exc:
                warnings.warn(
                    f"skipping corrupt result-store file {file.name}: {exc}",
                    CorruptStoreWarning,
                    stacklevel=2,
                )
        out.sort(key=lambda c: c.key())
        return out

    def put(self, cell: CellResult) -> Path:
        """Persist one cell atomically; returns its file path.

        The temp name carries pid *and* thread id: two handler threads
        storing the same cell each write their own temp file, and
        whichever ``os.replace`` lands last wins with a complete
        payload (the values are identical anyway — cells are pure
        functions of their keys)."""
        target = self.path_for(*cell.key())
        tmp = target.with_name(
            target.name + f".tmp.{os.getpid()}.{threading.get_ident()}"
        )
        tmp.write_text(json.dumps(cell_to_dict(cell), indent=1))
        os.replace(tmp, target)
        with self._lock:
            self.puts += 1
        return target

    def stats(self) -> dict:
        """Point-in-time counter snapshot (serve-layer provenance)."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "puts": self.puts}

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))
