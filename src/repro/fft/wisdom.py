"""FFTW-style "wisdom": a persistent cache of planner decisions.

A wisdom entry maps ``(size, sign, flag-level)`` to the winning kernel
descriptor (policy string), so that re-planning the same transform is
instant.  Wisdom can be exported to / imported from JSON, mirroring
``fftw_export_wisdom``.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path


class WisdomStore:
    """Thread-safe in-memory wisdom cache with JSON import/export."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[tuple[int, int, str], str] = {}

    def lookup(self, n: int, sign: int, level: str) -> str | None:
        """Return the stored kernel descriptor, or ``None`` if unknown."""
        with self._lock:
            return self._entries.get((n, sign, level))

    def record(self, n: int, sign: int, level: str, kernel: str) -> None:
        """Remember that ``kernel`` won planning for this transform."""
        with self._lock:
            self._entries[(n, sign, level)] = kernel

    def forget(self) -> None:
        """Drop all wisdom (``fftw_forget_wisdom``)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- persistence -----------------------------------------------------

    def export_json(self) -> str:
        """Serialize all wisdom to a JSON string."""
        with self._lock:
            payload = [
                {"n": n, "sign": sign, "level": level, "kernel": kernel}
                for (n, sign, level), kernel in sorted(self._entries.items())
            ]
        return json.dumps(payload, indent=0)

    def import_json(self, text: str) -> int:
        """Merge wisdom from a JSON string; returns entries added."""
        payload = json.loads(text)
        added = 0
        with self._lock:
            for item in payload:
                key = (int(item["n"]), int(item["sign"]), str(item["level"]))
                if key not in self._entries:
                    added += 1
                self._entries[key] = str(item["kernel"])
        return added

    def save(self, path: str | Path) -> None:
        """Write wisdom to ``path`` as JSON."""
        Path(path).write_text(self.export_json())

    def load(self, path: str | Path) -> int:
        """Merge wisdom from a JSON file; returns entries added."""
        return self.import_json(Path(path).read_text())


#: Process-global wisdom used by default by :class:`repro.fft.plan.Plan1D`.
GLOBAL_WISDOM = WisdomStore()
