"""Vectorized mixed-radix Cooley-Tukey FFT.

The transform is computed by a decimation-in-time recursion that is fully
vectorized over a batch of rows: at each stage a size-``n`` problem is
split into ``r`` interleaved size-``n/r`` subproblems (``r`` a small prime
or 4), the subresults are twiddled and recombined with a dense ``r``-point
DFT.  All stage constants (radix path, twiddle tables, butterfly
matrices) are precomputed by :class:`StagePlan` so repeated execution does
no trigonometry.

Radix paths are *policies*: the same size can be factorized
smallest-prime-first, largest-first, or with pairs of 2s fused into
radix-4 stages.  The planner (:mod:`repro.fft.plan`) times the candidate
policies under ``MEASURE``/``PATIENT`` flags, mirroring FFTW's planner.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import PlanError
from ..util.intmath import prime_factors
from .dftmat import DIRECT_MAX, FORWARD, dft_matrix, twiddles

#: Factorization policies understood by :func:`radix_path`.
POLICIES = ("small-first", "large-first", "radix4", "radix8")


def radix_path(n: int, policy: str = "small-first") -> list[int]:
    """Return the sequence of radices used to reduce ``n`` to 1.

    The product of the returned radices equals ``n``.  Raises
    :class:`PlanError` for unknown policies.
    """
    if n < 1:
        raise PlanError(f"FFT size must be >= 1, got {n}")
    factors = prime_factors(n)
    if policy == "small-first":
        return factors
    if policy == "large-first":
        return factors[::-1]
    if policy in ("radix4", "radix8"):
        fuse = 2 if policy == "radix4" else 3
        twos = factors.count(2)
        rest = [f for f in factors if f != 2]
        path: list[int] = []
        while twos >= fuse:
            path.append(1 << fuse)
            twos -= fuse
        path.extend([2] * twos)
        return path + rest
    raise PlanError(f"unknown radix policy {policy!r}; choose from {POLICIES}")


@dataclass(frozen=True)
class _Stage:
    """Precomputed constants for one recursion level."""

    n: int          # problem size entering this stage
    r: int          # radix
    m: int          # n // r
    tw: np.ndarray  # (r, m) twiddle table
    wr: np.ndarray  # (r, r) butterfly DFT matrix


@dataclass
class StagePlan:
    """Precomputed mixed-radix execution plan for one (size, sign, policy).

    ``execute`` transforms the last axis of a ``(batch, n)`` array.  The
    recursion is iterative from the caller's point of view: the stage list
    is walked inward (splitting) and back outward (combining).
    """

    n: int
    sign: int = FORWARD
    policy: str = "small-first"
    stages: list[_Stage] = field(init=False, repr=False)
    base: np.ndarray | None = field(init=False, repr=False)
    base_n: int = field(init=False)

    def __post_init__(self) -> None:
        path = radix_path(self.n, self.policy)
        stages: list[_Stage] = []
        size = self.n
        # Peel stages until the remaining subproblem is small enough for a
        # direct dense DFT, or fully reduced.
        for r in path:
            if size <= 8 or (r == size and size <= DIRECT_MAX):
                break
            stages.append(
                _Stage(
                    n=size,
                    r=r,
                    m=size // r,
                    tw=twiddles(size, r, self.sign),
                    wr=dft_matrix(r, self.sign),
                )
            )
            size //= r
        self.stages = stages
        self.base_n = size
        self.base = dft_matrix(size, self.sign).T if size > 1 else None

    # -- execution -----------------------------------------------------

    def execute(self, x: np.ndarray) -> np.ndarray:
        """Transform the last axis of ``x`` (shape ``(..., n)``).

        Returns a new array; the input is not modified.
        """
        if x.shape[-1] != self.n:
            raise PlanError(
                f"plan is for size {self.n}, input last axis is {x.shape[-1]}"
            )
        lead = x.shape[:-1]
        flat = np.ascontiguousarray(x, dtype=np.complex128).reshape(-1, self.n)
        out = self._run(flat, 0)
        return out.reshape(*lead, self.n)

    def _run(self, x: np.ndarray, depth: int) -> np.ndarray:
        """Recursive worker on a ``(B, size)`` array at stage ``depth``."""
        if depth == len(self.stages):
            if self.base is None:
                return x
            return x @ self.base
        st = self.stages[depth]
        b = x.shape[0]
        # Decimate in time: row s of the (r, m) view is x[s::r].
        xs = x.reshape(b, st.m, st.r).transpose(0, 2, 1).reshape(b * st.r, st.m)
        sub = self._run(xs, depth + 1).reshape(b, st.r, st.m)
        sub = sub * st.tw  # twiddle each decimated subtransform
        if st.r == 2:
            # Explicit butterfly: cheaper than einsum for the common radix.
            top = sub[:, 0, :] + sub[:, 1, :]
            bot = sub[:, 0, :] - sub[:, 1, :]
            out = np.concatenate((top, bot), axis=1)
        else:
            out = np.einsum("ks,bsj->bkj", st.wr, sub).reshape(b, st.n)
        return out

    # -- cost metadata ---------------------------------------------------

    @property
    def flop_estimate(self) -> float:
        """Classic ``5 n log2 n`` floating-point-operation estimate."""
        return 5.0 * self.n * np.log2(max(self.n, 2))
