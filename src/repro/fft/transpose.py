"""Layout-rearrangement (transpose) routines for 3-D arrays.

The pipeline's *Transpose* step converts the per-rank slab from ``x-y-z``
row-major layout (z contiguous) to a layout that makes the next FFT axis
contiguous:

* the general case produces ``z-x-y`` (Section 3.1);
* when ``Nx == Ny`` the cheaper ``x-z-y`` rearrangement is legal and
  preferred (Section 3.5) because it permutes only the two innermost axes
  and so has far better locality.

All routines here are cache-blocked: they move data in ``block``-sized
square tiles of the two axes being exchanged, the standard technique for
avoiding pathological strides on large arrays.
"""

from __future__ import annotations

import numpy as np

from ..util.intmath import iter_blocks

#: Default tile edge (elements) for blocked transposes; 64 complex128
#: elements = 1 KiB rows, comfortably inside L1.
DEFAULT_BLOCK = 64


def _blocked_permute(
    x: np.ndarray, perm: tuple[int, int, int], block: int
) -> np.ndarray:
    """Copy ``x`` into a new array laid out as ``x.transpose(perm)``,
    moving data block-by-block over the two axes whose order changes
    most (the first output axis vs. the last input axis)."""
    out = np.empty(tuple(x.shape[p] for p in perm), dtype=x.dtype)
    # Blocking axes: the output's leading axis (largest new stride) and
    # the input's trailing axis (old unit stride).
    a = perm[0]
    b = 2 if perm[0] != 2 else perm[1]
    inv = np.argsort(perm)
    for a0, a1 in iter_blocks(x.shape[a], block):
        for b0, b1 in iter_blocks(x.shape[b], block):
            src_ix: list[slice] = [slice(None)] * 3
            src_ix[a] = slice(a0, a1)
            src_ix[b] = slice(b0, b1)
            dst_ix: list[slice] = [src_ix[p] for p in perm]
            out[tuple(dst_ix)] = x[tuple(src_ix)].transpose(perm)
    return out


def xyz_to_zxy(x: np.ndarray, block: int = DEFAULT_BLOCK) -> np.ndarray:
    """General Transpose step: ``x-y-z`` layout -> ``z-x-y`` layout.

    Input shape ``(nx, ny, nz)``; output shape ``(nz, nx, ny)`` with y
    contiguous, ready for FFTy.
    """
    return _blocked_permute(x, (2, 0, 1), block)


def xyz_to_xzy(x: np.ndarray, block: int = DEFAULT_BLOCK) -> np.ndarray:
    """Fast Transpose for the ``Nx == Ny`` case: ``x-y-z`` -> ``x-z-y``.

    Only the two innermost axes swap, so each x-plane is an independent
    2-D transpose with much better cache reuse than :func:`xyz_to_zxy`.
    Output shape ``(nx, nz, ny)``.
    """
    return _blocked_permute(x, (0, 2, 1), block)


def zxy_to_xyz(x: np.ndarray, block: int = DEFAULT_BLOCK) -> np.ndarray:
    """Inverse of :func:`xyz_to_zxy` (used by the backward transform)."""
    return _blocked_permute(x, (1, 2, 0), block)


def plane_transpose(x: np.ndarray) -> np.ndarray:
    """Transpose the last two axes of a 3-D array (per-plane 2-D
    transpose), returning a contiguous copy.  Used by Unpack."""
    return np.ascontiguousarray(x.transpose(0, 2, 1))


def bytes_moved(shape: tuple[int, int, int], itemsize: int = 16) -> int:
    """Bytes read+written by a full transpose of ``shape`` (2x volume)."""
    n = int(np.prod(shape))
    return 2 * n * itemsize
