"""From-scratch FFT substrate (the library's stand-in for FFTW).

Public surface:

* :class:`Plan1D`, :class:`Plan3D`, :class:`Flag` -- planned transforms
  with FFTW-style effort levels and wisdom;
* :func:`fft` / :func:`ifft` / :func:`fftn` / :func:`ifftn` -- one-shot
  conveniences;
* :class:`RealPlan1D`, :func:`rfft`, :func:`irfft` -- real transforms;
* layout rearrangement in :mod:`repro.fft.transpose`;
* :data:`GLOBAL_WISDOM` -- the process-wide planner cache.
"""

from .dftmat import BACKWARD, FORWARD, direct_dft
from .plan import Flag, Plan1D, Plan3D, fft, fftn, ifft, ifftn
from .realfft import RealPlan1D, irfft, rfft
from .wisdom import GLOBAL_WISDOM, WisdomStore

__all__ = [
    "BACKWARD",
    "FORWARD",
    "Flag",
    "GLOBAL_WISDOM",
    "Plan1D",
    "Plan3D",
    "RealPlan1D",
    "WisdomStore",
    "direct_dft",
    "fft",
    "fftn",
    "ifft",
    "ifftn",
    "irfft",
    "rfft",
]
