"""From-scratch FFT substrate (the library's stand-in for FFTW).

Public surface:

* :class:`Plan1D`, :class:`Plan3D`, :class:`Flag` -- planned transforms
  with FFTW-style effort levels and wisdom;
* :func:`fft` / :func:`ifft` / :func:`fftn` / :func:`ifftn` -- one-shot
  conveniences;
* :class:`RealPlan1D`, :func:`rfft`, :func:`irfft` -- real transforms;
* layout rearrangement in :mod:`repro.fft.transpose`;
* :data:`GLOBAL_WISDOM` -- the process-wide planner cache.
"""

from .dftmat import BACKWARD, FORWARD, direct_dft
from .plan import (
    Flag,
    Plan1D,
    Plan3D,
    clear_plan_cache,
    default_planning_flag,
    fft,
    fftn,
    ifft,
    ifftn,
    planning_effort,
)
from .realfft import RealPlan1D, irfft, rfft
from .wisdom import GLOBAL_WISDOM, WisdomStore

__all__ = [
    "BACKWARD",
    "FORWARD",
    "Flag",
    "GLOBAL_WISDOM",
    "Plan1D",
    "Plan3D",
    "RealPlan1D",
    "WisdomStore",
    "clear_plan_cache",
    "default_planning_flag",
    "direct_dft",
    "fft",
    "fftn",
    "ifft",
    "ifftn",
    "irfft",
    "planning_effort",
    "rfft",
]
