"""FFTW-style planning for the from-scratch FFT kernels.

A :class:`Plan1D` selects, for one transform size and direction, the best
kernel among several candidates:

* mixed-radix Cooley-Tukey with different factorization policies
  (:data:`repro.fft.stockham.POLICIES`),
* Bluestein chirp-z (always applicable; the only fast option for large
  prime sizes),
* a direct dense DFT for tiny sizes.

Candidate selection depends on the planner *flag* — the same four levels
FFTW exposes and the paper discusses in Section 4.1:

``ESTIMATE``
    pick by analytic FLOP estimate, run nothing;
``MEASURE``
    time each candidate once on a small batch;
``PATIENT``
    time each candidate several times on two batch shapes (the level the
    paper uses for all FFTW tuning);
``EXHAUSTIVE``
    like PATIENT with more repetitions.

Winning kernels are recorded in a :class:`~repro.fft.wisdom.WisdomStore`
so identical plans are free.
"""

from __future__ import annotations

import contextlib
import enum
import threading
import time
from dataclasses import dataclass

import numpy as np

from ..errors import PlanError
from ..util.intmath import prime_factors
from .bluestein import BluesteinPlan
from .dftmat import BACKWARD, DIRECT_MAX, FORWARD, dft_matrix
from .stockham import POLICIES, StagePlan
from .wisdom import GLOBAL_WISDOM, WisdomStore


class Flag(enum.Enum):
    """Planner effort level (mirrors FFTW's planning flags)."""

    ESTIMATE = "estimate"
    MEASURE = "measure"
    PATIENT = "patient"
    EXHAUSTIVE = "exhaustive"


#: (repetitions, batch sizes) used when timing candidates per flag level.
_EFFORT = {
    Flag.MEASURE: (1, (8,)),
    Flag.PATIENT: (3, (4, 32)),
    Flag.EXHAUSTIVE: (7, (4, 32, 128)),
}

#: Process-wide default effort used when a plan is built with ``flag=None``.
_DEFAULT_FLAG = Flag.ESTIMATE
_DEFAULT_FLAG_LOCK = threading.Lock()


def default_planning_flag() -> Flag:
    """Current process-wide default planner effort."""
    return _DEFAULT_FLAG


@contextlib.contextmanager
def planning_effort(flag: Flag):
    """Override the default planner effort for plans built in this block.

    Plans (and the 3-D/real helpers built on them) that don't pass an
    explicit ``flag`` pick up this default, so an application can opt a
    whole pipeline into e.g. ``Flag.PATIENT`` — the level the paper uses
    for all FFTW tuning — without threading a flag through every layer.
    The override is process-global (matching the process-global wisdom
    store), so apply it around setup/warmup, not concurrently with other
    planning at different levels.
    """
    global _DEFAULT_FLAG
    if not isinstance(flag, Flag):
        flag = Flag(str(flag).lower())
    with _DEFAULT_FLAG_LOCK:
        previous = _DEFAULT_FLAG
        _DEFAULT_FLAG = flag
    try:
        yield flag
    finally:
        with _DEFAULT_FLAG_LOCK:
            _DEFAULT_FLAG = previous


#: Built kernels shared across plans: kernels are immutable after
#: construction (twiddle tables, chirp vectors), so one instance per
#: ``(descriptor, n, sign)`` serves every plan in the process.
_KERNEL_CACHE: dict[tuple[str, int, int], object] = {}
_KERNEL_CACHE_LOCK = threading.Lock()


def clear_plan_cache() -> None:
    """Drop all cached kernels (test isolation; wisdom is separate)."""
    with _KERNEL_CACHE_LOCK:
        _KERNEL_CACHE.clear()


def _count(name: str, value: int = 1, **labels: str) -> None:
    # Deferred import: repro.obs pulls in the engine stack, and importing
    # it at module scope would cycle back through repro.fft.
    from ..obs.registry import count

    count(name, value, **labels)


def _cached_kernel(descriptor: str, n: int, sign: int):
    """Shared-kernel lookup; builds (and counts) on first use."""
    key = (descriptor, n, sign)
    with _KERNEL_CACHE_LOCK:
        kern = _KERNEL_CACHE.get(key)
    if kern is not None:
        _count("fft_kernel_cache_hits_total")
        return kern
    kern = _make_kernel(descriptor, n, sign)
    _count("fft_kernel_builds_total")
    with _KERNEL_CACHE_LOCK:
        return _KERNEL_CACHE.setdefault(key, kern)


@dataclass(frozen=True)
class _Direct:
    """Dense-DFT kernel wrapper with the common kernel interface."""

    n: int
    sign: int

    def execute(self, x: np.ndarray) -> np.ndarray:
        """Dense DFT of the last axis (direct O(n^2) product)."""
        return x @ dft_matrix(self.n, self.sign).T

    @property
    def flop_estimate(self) -> float:
        """Analytic FLOP count of the dense product."""
        return 8.0 * self.n * self.n


def _make_kernel(descriptor: str, n: int, sign: int):
    """Instantiate a kernel from its wisdom descriptor string."""
    if descriptor == "direct":
        return _Direct(n, sign)
    if descriptor == "bluestein":
        return BluesteinPlan(n, sign)
    if descriptor.startswith("mixed:"):
        return StagePlan(n, sign, descriptor.split(":", 1)[1])
    raise PlanError(f"unknown kernel descriptor {descriptor!r}")


def _candidates(n: int) -> list[str]:
    """Kernel descriptors worth considering for size ``n``."""
    out: list[str] = []
    if n <= DIRECT_MAX:
        out.append("direct")
    factors = prime_factors(n)
    if n > 1 and max(factors) <= DIRECT_MAX:
        seen: set[tuple[int, ...]] = set()
        for policy in POLICIES:
            from .stockham import radix_path

            path = tuple(radix_path(n, policy))
            if path in seen:
                continue
            seen.add(path)
            out.append(f"mixed:{policy}")
    if n > 8:
        out.append("bluestein")
    if not out:  # n == 1
        out.append("direct")
    return out


class Plan1D:
    """A reusable plan for 1-D complex-to-complex FFTs of one size.

    Parameters
    ----------
    n:
        Transform length.
    sign:
        ``-1`` forward (default), ``+1`` backward (unnormalized; divide by
        ``n`` for the inverse, or use :meth:`execute` with
        ``normalize=True``).
    flag:
        Planner effort level (``None`` picks up the process default, see
        :func:`planning_effort`).
    wisdom:
        Wisdom store consulted/updated during planning (defaults to the
        process-global store).
    """

    def __init__(
        self,
        n: int,
        sign: int = FORWARD,
        flag: Flag | None = None,
        wisdom: WisdomStore | None = None,
    ) -> None:
        if n < 1:
            raise PlanError(f"FFT size must be >= 1, got {n}")
        if sign not in (FORWARD, BACKWARD):
            raise PlanError(f"sign must be -1 or +1, got {sign}")
        self.n = n
        self.sign = sign
        self.flag = flag if flag is not None else _DEFAULT_FLAG
        self._wisdom = wisdom if wisdom is not None else GLOBAL_WISDOM
        self.kernel_name = self._plan()
        self._kernel = _cached_kernel(self.kernel_name, n, sign)

    # -- planning --------------------------------------------------------

    def _plan(self) -> str:
        cached = self._wisdom.lookup(self.n, self.sign, self.flag.value)
        if cached is not None:
            _count("fft_wisdom_hits_total")
            return cached
        _count("fft_plans_built_total", flag=self.flag.value)
        names = _candidates(self.n)
        if self.flag is Flag.ESTIMATE or len(names) == 1:
            best = min(names, key=lambda d: _cached_kernel(d, self.n, self.sign).flop_estimate)
        else:
            reps, batches = _EFFORT[self.flag]
            best, best_t = names[0], float("inf")
            for name in names:
                kern = _cached_kernel(name, self.n, self.sign)
                t = 0.0
                for b in batches:
                    x = np.ones((b, self.n), dtype=np.complex128)
                    kern.execute(x)  # warm any lazy caches
                    t0 = time.perf_counter()
                    for _ in range(reps):
                        kern.execute(x)
                    t += time.perf_counter() - t0
                if t < best_t:
                    best, best_t = name, t
        self._wisdom.record(self.n, self.sign, self.flag.value, best)
        return best

    # -- execution ---------------------------------------------------------

    def execute(
        self,
        x: np.ndarray,
        axis: int = -1,
        normalize: bool = False,
    ) -> np.ndarray:
        """Transform ``x`` along ``axis``; returns a new complex array."""
        x = np.asarray(x)
        if x.shape[axis] != self.n:
            raise PlanError(
                f"plan is for size {self.n}, axis {axis} has length {x.shape[axis]}"
            )
        moved = np.moveaxis(x, axis, -1)
        out = self._kernel.execute(np.ascontiguousarray(moved, dtype=np.complex128))
        if normalize:
            out = out / self.n
        return np.moveaxis(out, -1, axis)

    @property
    def flop_estimate(self) -> float:
        """Estimated floating-point operations for one transform."""
        return float(self._kernel.flop_estimate)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        d = "forward" if self.sign == FORWARD else "backward"
        return f"Plan1D(n={self.n}, {d}, {self.flag.value}, kernel={self.kernel_name})"


def fft(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """One-shot forward FFT along ``axis`` (plans with ESTIMATE)."""
    return Plan1D(np.asarray(x).shape[axis]).execute(x, axis=axis)


def ifft(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """One-shot normalized inverse FFT along ``axis``."""
    return Plan1D(np.asarray(x).shape[axis], BACKWARD).execute(
        x, axis=axis, normalize=True
    )


class Plan3D:
    """Serial 3-D complex FFT: three sets of 1-D FFTs, one per axis.

    This is the single-process reference implementation of the method in
    Section 2.1 of the paper ("the composition of a sequence of d sets of
    1-D FFTs along each dimension"); the distributed pipeline in
    :mod:`repro.core` is verified against it.
    """

    def __init__(
        self,
        shape: tuple[int, int, int],
        sign: int = FORWARD,
        flag: Flag | None = None,
    ) -> None:
        if len(shape) != 3:
            raise PlanError(f"Plan3D requires a 3-D shape, got {shape}")
        self.shape = tuple(int(s) for s in shape)
        self.sign = sign
        self.plans = [Plan1D(s, sign, flag) for s in self.shape]

    def execute(self, x: np.ndarray, normalize: bool = False) -> np.ndarray:
        """Transform a ``shape``-shaped array over all three axes."""
        x = np.asarray(x)
        if x.shape != self.shape:
            raise PlanError(f"plan is for shape {self.shape}, got {x.shape}")
        out = x
        for axis, plan in enumerate(self.plans):
            out = plan.execute(out, axis=axis)
        if normalize:
            out = out / (self.shape[0] * self.shape[1] * self.shape[2])
        return out


def fftn(x: np.ndarray) -> np.ndarray:
    """One-shot serial 3-D forward FFT."""
    return Plan3D(tuple(np.asarray(x).shape)).execute(x)


def ifftn(x: np.ndarray) -> np.ndarray:
    """One-shot serial 3-D normalized inverse FFT."""
    return Plan3D(tuple(np.asarray(x).shape), BACKWARD).execute(x, normalize=True)
