"""Bluestein chirp-z transform: FFT of arbitrary (including large prime)
sizes via a power-of-two convolution.

``X[k] = conj(c[k]) * IDFT_M( DFT_M(x*conj(c)) * DFT_M(b) )[k]`` where
``c[j] = exp(-sign*πi*j²/n)`` is the chirp and ``b`` its mirrored
conjugate, zero-padded to a convolution length ``M >= 2n-1`` that is a
power of two.  The inner transforms reuse the radix-2
:class:`~repro.fft.stockham.StagePlan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import PlanError
from ..util.intmath import next_pow2
from .dftmat import BACKWARD, FORWARD
from .stockham import StagePlan


@dataclass
class BluesteinPlan:
    """Precomputed Bluestein plan for one (size, sign)."""

    n: int
    sign: int = FORWARD
    m: int = field(init=False)
    chirp: np.ndarray = field(init=False, repr=False)
    bhat: np.ndarray = field(init=False, repr=False)
    _fwd: StagePlan = field(init=False, repr=False)
    _bwd: StagePlan = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise PlanError(f"FFT size must be >= 1, got {self.n}")
        if self.sign not in (FORWARD, BACKWARD):
            raise PlanError(f"sign must be -1 or +1, got {self.sign}")
        n = self.n
        self.m = next_pow2(2 * n - 1)
        j = np.arange(n)
        # chirp[j] = exp(sign * pi i j^2 / n); using j^2 mod 2n keeps the
        # argument small for large n (j^2 overflows float precision fast).
        jsq = (j.astype(np.int64) ** 2) % (2 * n)
        self.chirp = np.exp(self.sign * 1j * np.pi / n * jsq)
        b = np.zeros(self.m, dtype=np.complex128)
        b[:n] = np.conj(self.chirp)
        b[self.m - n + 1 :] = np.conj(self.chirp[1:][::-1])
        self._fwd = StagePlan(self.m, FORWARD, "radix4")
        self._bwd = StagePlan(self.m, BACKWARD, "radix4")
        self.bhat = self._fwd.execute(b)

    def execute(self, x: np.ndarray) -> np.ndarray:
        """Transform the last axis of ``x`` (shape ``(..., n)``)."""
        if x.shape[-1] != self.n:
            raise PlanError(
                f"plan is for size {self.n}, input last axis is {x.shape[-1]}"
            )
        lead = x.shape[:-1]
        flat = np.asarray(x, dtype=np.complex128).reshape(-1, self.n)
        a = np.zeros((flat.shape[0], self.m), dtype=np.complex128)
        a[:, : self.n] = flat * self.chirp
        conv = self._bwd.execute(self._fwd.execute(a) * self.bhat) / self.m
        out = conv[:, : self.n] * self.chirp
        return out.reshape(*lead, self.n)

    @property
    def flop_estimate(self) -> float:
        """FLOP estimate: three size-``m`` FFTs plus pointwise work."""
        return 3 * 5.0 * self.m * np.log2(self.m) + 8.0 * (self.m + 2 * self.n)
