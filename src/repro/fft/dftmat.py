"""Dense DFT matrices and direct O(n^2) transforms.

These are the "codelets" at the bottom of the mixed-radix recursion: for
small prime sizes the transform is computed as a matrix product against a
precomputed DFT matrix, which is both exact and fast in NumPy for the
sizes (2, 3, 5, 7, ...) that appear as radices.
"""

from __future__ import annotations

import functools

import numpy as np

FORWARD = -1
BACKWARD = +1

#: Largest size for which the planner will consider a direct dense DFT.
DIRECT_MAX = 64


@functools.lru_cache(maxsize=None)
def dft_matrix(n: int, sign: int) -> np.ndarray:
    """Return the dense DFT matrix ``W`` with ``W[k, j] = exp(sign*2πi*k*j/n)``.

    ``sign=-1`` (:data:`FORWARD`) gives the forward transform in the
    paper's Equation 1; ``sign=+1`` the unnormalized inverse.  The result
    is cached and must not be mutated by callers.
    """
    if n < 1:
        raise ValueError(f"DFT size must be >= 1, got {n}")
    if sign not in (FORWARD, BACKWARD):
        raise ValueError(f"sign must be -1 or +1, got {sign}")
    k = np.arange(n)
    w = np.exp(sign * 2j * np.pi / n * np.outer(k, k))
    w.flags.writeable = False
    return w


def direct_dft(x: np.ndarray, sign: int = FORWARD) -> np.ndarray:
    """Direct dense DFT along the last axis (any size, O(n^2)).

    Used as the recursion base case and as an oracle in tests.
    """
    n = x.shape[-1]
    return x @ dft_matrix(n, sign).T


@functools.lru_cache(maxsize=None)
def twiddles(n: int, r: int, sign: int) -> np.ndarray:
    """Twiddle factor table for a radix-``r`` Cooley-Tukey stage of size ``n``.

    Shape ``(r, n // r)`` with ``tw[s, j] = exp(sign*2πi*s*j/n)``.  Cached;
    callers must treat the array as read-only.
    """
    if n % r != 0:
        raise ValueError(f"radix {r} does not divide {n}")
    m = n // r
    s = np.arange(r)[:, None]
    j = np.arange(m)[None, :]
    tw = np.exp(sign * 2j * np.pi / n * (s * j))
    tw.flags.writeable = False
    return tw
