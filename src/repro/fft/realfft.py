"""Real-input transforms built on the complex kernels.

The paper's Section 2.3 notes its overlap method "is also applicable to
the techniques for the real-to-complex transform"; this module provides
that substrate: an ``rfft`` that transforms a real sequence of even
length ``n`` with a single complex FFT of length ``n/2`` (the classic
packing trick, Sorensen et al. [26] in the paper's bibliography), and the
matching inverse.
"""

from __future__ import annotations

import numpy as np

from ..errors import PlanError
from .dftmat import BACKWARD, FORWARD
from .plan import Plan1D


class RealPlan1D:
    """Plan for forward r2c / backward c2r transforms of even length ``n``.

    The forward transform maps ``n`` reals to ``n//2 + 1`` complex
    coefficients (the non-redundant half spectrum); the backward maps
    them back, normalized.
    """

    def __init__(self, n: int) -> None:
        if n < 2 or n % 2 != 0:
            raise PlanError(f"RealPlan1D requires even n >= 2, got {n}")
        self.n = n
        self.half = n // 2
        self._fwd = Plan1D(self.half, FORWARD)
        self._bwd = Plan1D(self.half, BACKWARD)
        k = np.arange(self.half + 1)
        self._w = np.exp(-2j * np.pi * k / n)  # post-processing twiddles

    def rfft(self, x: np.ndarray) -> np.ndarray:
        """Forward real-to-complex transform along the last axis.

        Input shape ``(..., n)`` real; output ``(..., n//2 + 1)`` complex,
        matching ``numpy.fft.rfft``.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self.n:
            raise PlanError(f"plan is for size {self.n}, got {x.shape[-1]}")
        # Pack even/odd samples into one complex sequence of length n/2.
        z = x[..., 0::2] + 1j * x[..., 1::2]
        zf = self._fwd.execute(z)
        h = self.half
        # Unpack: separate the spectra of the even and odd subsequences.
        zf_ext = np.concatenate([zf, zf[..., :1]], axis=-1)  # Z[h] = Z[0]
        rev = np.conj(zf_ext[..., ::-1])  # conj(Z[h-k]) for k=0..h
        fe = 0.5 * (zf_ext + rev)
        fo = -0.5j * (zf_ext - rev)
        return fe + self._w * fo

    def irfft(self, spec: np.ndarray) -> np.ndarray:
        """Inverse complex-to-real transform (normalized), matching
        ``numpy.fft.irfft`` for Hermitian half spectra of length
        ``n//2 + 1``."""
        spec = np.asarray(spec, dtype=np.complex128)
        if spec.shape[-1] != self.half + 1:
            raise PlanError(
                f"expected half spectrum of length {self.half + 1}, got {spec.shape[-1]}"
            )
        h = self.half
        rev = np.conj(spec[..., ::-1])
        fe = 0.5 * (spec + rev)
        fo = 0.5 * (spec - rev) * np.conj(self._w)
        z = (fe + 1j * fo)[..., :h]
        zt = self._bwd.execute(z) / h
        out = np.empty(spec.shape[:-1] + (self.n,), dtype=np.float64)
        out[..., 0::2] = zt.real
        out[..., 1::2] = zt.imag
        return out


def rfft(x: np.ndarray) -> np.ndarray:
    """One-shot forward real FFT along the last axis (even length)."""
    return RealPlan1D(np.asarray(x).shape[-1]).rfft(x)


def irfft(spec: np.ndarray, n: int | None = None) -> np.ndarray:
    """One-shot inverse real FFT along the last axis."""
    m = np.asarray(spec).shape[-1]
    if n is None:
        n = 2 * (m - 1)
    return RealPlan1D(n).irfft(spec)
