"""High-level entry point: run an SPMD function on a simulated cluster.

:func:`run_spmd` hides engine setup and returns a :class:`SimResult`
bundling per-rank return values, the virtual makespan, and the per-rank
step-time breakdowns the benchmarks aggregate (Figure 8 of the paper).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable

from ..machine.platforms import Platform
from .engine import Engine, RankTrace, SchedStats


@dataclass
class SimResult:
    """Outcome of one simulated SPMD run."""

    results: list[Any]
    elapsed: float
    traces: list[RankTrace]
    nprocs: int
    platform: Platform
    stats: SchedStats | None = None
    #: canonical fault-spec key the run executed under ("" = fault-free)
    faults: str = ""

    def breakdown(self, labels: list[str] | None = None) -> dict[str, float]:
        """Average per-rank virtual seconds by step label.

        Averaging across ranks matches how the paper's per-step stacked
        bars are built (symmetric SPMD ranks do near-identical work).
        """
        totals: dict[str, float] = {}
        for tr in self.traces:
            for label, secs in tr.by_label.items():
                totals[label] = totals.get(label, 0.0) + secs
        avg = {k: v / self.nprocs for k, v in totals.items()}
        if labels is None:
            return avg
        return {k: avg.get(k, 0.0) for k in labels}

    def max_by_label(self, label: str) -> float:
        """Largest single-rank total for one label (hot-spot check)."""
        return max(tr.by_label.get(label, 0.0) for tr in self.traces)


def run_spmd(
    nprocs: int,
    fn: Callable[..., Any],
    platform: Platform,
    *args: Any,
    record_events: bool = False,
    backend: str = "auto",
    **kwargs: Any,
) -> SimResult:
    """Run ``fn(ctx, *args, **kwargs)`` on ``nprocs`` simulated ranks.

    ``ctx`` is a :class:`~repro.simmpi.comm.SimContext`; ``ctx.comm`` is
    the world communicator.  The function must be SPMD-correct: every
    rank must participate in every collective it reaches.

    ``backend`` selects the rank substrate: ``"threads"`` (one OS thread
    per rank), ``"tasks"`` (ranks as coroutines — requires ``fn`` to be
    a generator function using the ``co_*`` comm spellings), or
    ``"auto"`` (tasks for generator functions, threads otherwise).
    ``$REPRO_SIM_BACKEND`` overrides ``"auto"`` — the benchmarking knob
    for timing the thread substrate against the task one on the same
    generator program.

    When a :mod:`repro.obs` tracer is installed, the run's scheduler
    counters flow into it, and — for tracers with ``rank_spans`` — event
    recording is forced on and the per-rank timelines are exported as
    virtual-time spans.  None of this can change virtual times: tracing
    only reads clocks (``tests/obs/test_zero_overhead.py``).
    """
    from ..obs.tracer import current_tracer  # cycle-free: obs never imports spmd

    if backend == "auto":
        backend = os.environ.get("REPRO_SIM_BACKEND", "").strip() or "auto"
    tracer = current_tracer()
    want_rank_spans = tracer is not None and tracer.rank_spans
    engine = Engine(
        nprocs, platform,
        record_events=record_events or want_rank_spans,
        backend=backend,
        tracer=tracer,
    )
    results = engine.run(fn, *args, **kwargs)
    sim = SimResult(
        results=results,
        elapsed=engine.final_time,
        traces=engine.traces(),
        nprocs=nprocs,
        platform=platform,
        stats=engine.stats,
        faults=engine.faults.spec.key() if engine.faults is not None else "",
    )
    if want_rank_spans:
        from ..obs.export import emit_rank_spans

        emit_rank_spans(tracer, sim.traces)
    return sim
