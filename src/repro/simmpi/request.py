"""Request objects for non-blocking simulated-MPI operations.

The central class is :class:`AlltoallRequest`, which models the paper's
``MPI_Ialltoall`` with *manual progression* semantics: like LibNBC's
schedule, the collective advances in **rounds** of up to ``max_inflight``
point-to-point sends, and a new round can start only at a *library
entry* that happens after the previous round completed.  Between library
entries nothing is posted — this is why too low an ``MPI_Test``
frequency stalls the exchange (Section 3.3), and why a variant that
never tests during Unpack/FFTx (TH) leaves rounds exposed at Wait.

Library entries come in three forms:

* ``post`` — the initial ``MPI_Ialltoall`` call starts round one;
* ``progress_segment(t0, D, F)`` — the owner computes for ``D`` seconds
  while calling ``MPI_Test`` ``F`` times at evenly spaced epochs; each
  epoch that finds the previous round finished posts the next round
  (the knob the paper's ``Fy/Fp/Fu/Fx`` parameters turn);
* ``enter_wait`` — ``MPI_Wait`` parks the owner in the library, so the
  remaining rounds run back-to-back at full NIC rate.

Completion requires (a) all own rounds finished and (b) all incoming
messages delivered, which is what :meth:`completion_probe` computes for
the engine scheduler.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..errors import MPIUsageError
from .fabric import CollOp, Fabric

#: rotation orders are identical for every exchange of the same shape;
#: cache them per (rank, group size)
_ORDER_CACHE: dict[tuple[int, int], list[int]] = {}


def _rotation_order(rank: int, p: int) -> list[int]:
    order = _ORDER_CACHE.get((rank, p))
    if order is None:
        order = [(rank + k) % p for k in range(1, p)]
        _ORDER_CACHE[(rank, p)] = order
    return order


class Request:
    """Base class for non-blocking operation handles."""

    #: set True once wait() returned; reuse raises.
    consumed: bool = False

    def completion_probe(self) -> float | None:
        """Earliest virtual time at which the operation is complete, or
        ``None`` if not yet determinable from posted events."""
        raise NotImplementedError

    def on_complete(self, t: float) -> Any:
        """Hook run when the owner observes completion (payload handoff)."""
        return None


class AlltoallRequest(Request):
    """Non-blocking all-to-all(v) with manual progression.

    Parameters
    ----------
    fabric, op:
        Shared network state and the collective instance record.
    rank:
        Owner's index within the participating group.
    group:
        World ranks of the participants (``group[rank]`` is the owner).
    sendcounts:
        Bytes destined to each group member (vector form supports
        alltoallv; the owner's own slot is copied locally for free).
    recvcounts:
        Bytes expected from each member (used for assembly bookkeeping).
    """

    def __init__(
        self,
        fabric: Fabric,
        op: CollOp,
        rank: int,
        group: list[int],
        sendcounts: np.ndarray,
        recvcounts: np.ndarray,
        payload: list[Any] | None = None,
    ) -> None:
        p = len(group)
        if len(sendcounts) != p or len(recvcounts) != p:
            raise MPIUsageError(
                f"alltoall counts must have length {p}, got "
                f"{len(sendcounts)}/{len(recvcounts)}"
            )
        self.fabric = fabric
        self.op = op
        self.rank = rank
        self.group = group
        self.sendcounts = np.asarray(sendcounts, dtype=np.int64)
        self.recvcounts = np.asarray(recvcounts, dtype=np.int64)
        # Injection order: rank+1, rank+2, ... (pairwise-style rotation).
        self._pending = _rotation_order(rank, p)
        self._sendcounts_list = self.sendcounts.tolist()
        self._next = 0
        self._own_finish = 0.0
        self._round_ready = 0.0
        self._entered_wait = False
        if payload is not None:
            op.payload[rank] = payload
        #: diagnostics: number of library entries that progressed this op
        self.progress_entries = 0
        #: completion time once determined (arrivals are final when
        #: posted, so the value never changes afterwards)
        self._cached_completion: float | None = None

    # -- progression --------------------------------------------------------

    def remaining_sends(self) -> int:
        """Messages not yet handed to the NIC."""
        return len(self._pending) - self._next

    def _post_round(self, t_post: float, epoch_gap: float) -> None:
        """Post the next round: up to ``max_inflight`` pending sends."""
        count = min(self.fabric.net.max_inflight, self.remaining_sends())
        if count == 0:
            return
        dests = self._pending[self._next : self._next + count]
        sc = self._sendcounts_list
        sizes = [sc[d] for d in dests]
        arrivals = self.fabric.inject_round(
            self.group[self.rank], t_post, sizes, epoch_gap
        )
        row = self.op.arrivals[self.rank]
        counts = self.op.posted_count
        p = self.op.p
        waiters = self.op.waiters
        notify = self.fabric.notify_rank
        for d, a in zip(dests, arrivals):
            row[d] = a
            counts[d] += 1
            if counts[d] >= p and waiters:
                w = waiters.pop(d, None)
                if w is not None and notify is not None:
                    notify(w)
        round_max = max(arrivals)  # jitter can reorder within a round
        if round_max > self._own_finish:
            self._own_finish = round_max
        #: a new round may be posted at the first library entry at or
        #: after this time (the LibNBC round barrier)
        self._round_ready = self._own_finish
        self._next += count

    def post(self, t: float) -> None:
        """Initial library entry (the Ialltoall call itself)."""
        self.op.arrivals[self.rank, self.rank] = t  # self-delivery is free
        self.op.posted_count[self.rank] += 1
        self.op.entered[self.rank] = t
        self._round_ready = t
        self._post_round(t, 0.0)
        self.progress_entries += 1

    def progress_segment(self, t0: float, duration: float, ntests: int) -> None:
        """Model ``ntests`` MPI_Test calls spread over ``[t0, t0+duration]``.

        Test ``j`` (1-based) happens at ``t0 + j*gap`` with
        ``gap = duration/(ntests+1)``; an epoch that finds the previous
        round complete posts the next one.  Processing is O(rounds), so
        huge ``F`` values cost the *simulated* program time (test-call
        overhead, charged by the caller) but not simulator time.
        """
        if ntests <= 0:
            return
        self.progress_entries += 1
        if self.remaining_sends() == 0 or duration <= 0:
            return
        gap = duration / (ntests + 1)
        # Tight scalar loop: one iteration per posted round, with the
        # NIC/arrival math inlined (this path runs O(p/max_inflight)
        # times per tile per rank and dominates simulator cost at scale).
        fabric = self.fabric
        net = fabric.net
        rank_w = self.group[self.rank]
        rate = fabric.rate_for(rank_w)
        jdraw = fabric.lat_draw
        lat = net.latency
        thr = net.eager_threshold
        infl = net.max_inflight
        rdv = 2.0 * lat + 0.5 * gap
        sc = self._sendcounts_list
        pending = self._pending
        row = self.op.arrivals[self.rank]
        counts = self.op.posted_count
        p = self.op.p
        waiters = self.op.waiters
        notify = fabric.notify_rank
        nic = float(fabric.nic_free[rank_w])
        total_bytes = 0
        k = 0  # index of the last used epoch (1-based over 1..ntests)
        n = len(pending)
        ready = self._round_ready
        own = self._own_finish
        while self._next < n:
            # First epoch at or after the previous round's completion.
            k_needed = (ready - t0) / gap
            k_needed = int(k_needed) + (k_needed > int(k_needed))
            if k_needed <= k:
                k_needed = k + 1
            if k_needed > ntests:
                break  # no more library entries in this segment
            k = k_needed
            t_post = t0 + k * gap
            if t_post > nic:
                nic = t_post
            stop = min(self._next + infl, n)
            round_max = 0.0
            for j in range(self._next, stop):
                d = pending[j]
                sz = sc[d]
                nic += sz / rate
                a = nic + lat + (rdv if sz > thr else 0.0)
                if jdraw is not None:
                    a += jdraw(rank_w)
                row[d] = a
                counts[d] += 1
                if counts[d] >= p and waiters:
                    w = waiters.pop(d, None)
                    if w is not None and notify is not None:
                        notify(w)
                total_bytes += sz
                if a > round_max:
                    round_max = a
            self._next = stop
            if round_max > own:
                own = round_max
            ready = own
        fabric.nic_free[rank_w] = nic
        fabric.bytes_injected[rank_w] += total_bytes
        self._own_finish = own
        self._round_ready = ready

    def test(self, t: float) -> bool:
        """One explicit MPI_Test at time ``t``: progress, then poll."""
        if self.remaining_sends() and t >= self._round_ready:
            self._post_round(t, 0.0)
        self.progress_entries += 1
        done_time = self.completion_probe()
        return done_time is not None and done_time <= t

    def enter_wait(self, t: float) -> None:
        """MPI_Wait entry: run the remaining rounds back-to-back."""
        if self.remaining_sends():
            self._flush_rounds(max(t, self._round_ready))
        self._entered_wait = True
        self._wait_entry = t
        self.progress_entries += 1

    def _flush_rounds(self, t0: float) -> None:
        """Post every remaining round, library-resident (gap = 0).

        Uniform message sizes (plain alltoall) take a closed-form path:
        within a round messages serialize on the NIC; each round barrier
        costs the previous round's delivery (latency, plus the
        rendezvous handshake for large messages).  Mixed sizes
        (alltoallv) fall back to the per-round loop.
        """
        sc = self._sendcounts_list
        dests = self._pending[self._next :]
        sizes = [sc[d] for d in dests]
        if len(set(sizes)) != 1 or self.fabric.lat_draw is not None:
            # Mixed sizes (alltoallv), or latency faults — the per-round
            # loop keeps round barriers consistent with jittered
            # arrivals the way the progress_segment path sees them.
            while self.remaining_sends():
                self._post_round(max(t0, self._round_ready), 0.0)
            return
        m = sizes[0]
        fabric = self.fabric
        net = fabric.net
        infl = net.max_inflight
        n = len(dests)
        rank = self.group[self.rank]
        dur = m / fabric.rate_for(rank)
        rdv = 2.0 * net.latency if m > net.eager_threshold else 0.0
        barrier = net.latency + rdv  # delivery gap between rounds
        start0 = max(t0, float(fabric.nic_free[rank]))
        j = np.arange(n)
        ridx = j // infl
        finish = start0 + (j + 1) * dur + ridx * barrier
        arrivals = finish + net.latency + rdv
        row = self.op.arrivals[self.rank]
        counts = self.op.posted_count
        p = self.op.p
        dests_arr = np.asarray(dests)
        row[dests_arr] = arrivals
        counts[dests_arr] += 1  # destinations are unique within a request
        waiters = self.op.waiters
        if waiters:
            notify = fabric.notify_rank
            for d in dests_arr[counts[dests_arr] >= p]:
                w = waiters.pop(int(d), None)
                if w is not None and notify is not None:
                    notify(w)
        fabric.nic_free[rank] = float(finish[-1])
        fabric.bytes_injected[rank] += m * n
        self._own_finish = max(self._own_finish, float(arrivals.max()))
        self._round_ready = self._own_finish
        self._next += n

    # -- completion -----------------------------------------------------------

    def completion_probe(self) -> float | None:
        if self._cached_completion is None:
            if self.remaining_sends():
                return None
            if not self.op.row_complete(self.rank):
                return None
            self._cached_completion = max(
                self._own_finish, self.op.incoming_max(self.rank)
            )
        t = self._cached_completion
        if self._entered_wait:
            t = max(t, self._wait_entry)
        return t

    def on_complete(self, t: float) -> list[Any] | None:
        """Assemble received chunks (real-payload mode) in group order,
        and free the shared op record once every participant finished."""
        payloads = self.op.payload
        out: list[Any] | None = None
        if payloads:
            out = []
            for src in range(len(self.group)):
                chunks = payloads.get(src)
                out.append(None if chunks is None else chunks[self.rank])
        done = self.op.meta.get("done_count", 0) + 1
        self.op.meta["done_count"] = done
        if done == len(self.group):
            self.fabric.release_coll(self.op.key)
        return out


class P2PRequest(Request):
    """Handle for isend (completion = injection done) — trivially timed."""

    def __init__(self, finish_time: float) -> None:
        self.finish_time = finish_time

    def completion_probe(self) -> float | None:
        return self.finish_time


class RecvRequest(Request):
    """Handle for irecv: completes when a matching message is delivered."""

    def __init__(self, fabric: Fabric, dst: int, src: int | None, tag: int | None) -> None:
        self.fabric = fabric
        self.dst = dst
        self.src = src
        self.tag = tag
        self._matched = None

    def completion_probe(self) -> float | None:
        if self._matched is None:
            msg = self.fabric.match_p2p(self.dst, self.src, self.tag)
            if msg is None:
                return None
            self.fabric.take_p2p(msg)
            self._matched = msg
        return self._matched.arrival

    def on_complete(self, t: float):
        msg = self._matched
        return (msg.payload, msg.src, msg.tag, msg.nbytes)
