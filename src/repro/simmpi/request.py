"""Request objects for non-blocking simulated-MPI operations.

The central class is :class:`AlltoallRequest`, which models the paper's
``MPI_Ialltoall`` with *manual progression* semantics: like LibNBC's
schedule, the collective advances in **rounds** of up to ``max_inflight``
point-to-point sends, and a new round can start only at a *library
entry* that happens after the previous round completed.  Between library
entries nothing is posted — this is why too low an ``MPI_Test``
frequency stalls the exchange (Section 3.3), and why a variant that
never tests during Unpack/FFTx (TH) leaves rounds exposed at Wait.

Library entries come in three forms:

* ``post`` — the initial ``MPI_Ialltoall`` call starts round one;
* ``progress_segment(t0, D, F)`` — the owner computes for ``D`` seconds
  while calling ``MPI_Test`` ``F`` times at evenly spaced epochs; each
  epoch that finds the previous round finished posts the next round
  (the knob the paper's ``Fy/Fp/Fu/Fx`` parameters turn);
* ``enter_wait`` — ``MPI_Wait`` parks the owner in the library, so the
  remaining rounds run back-to-back at full NIC rate.

Completion requires (a) all own rounds finished and (b) all incoming
messages delivered, which is what :meth:`completion_probe` computes for
the engine scheduler.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..errors import MPIUsageError
from .fabric import CollOp, Fabric

#: rotation orders are identical for every exchange of the same shape;
#: cache them per (rank, group size)
_ORDER_CACHE: dict[tuple[int, int], list[int]] = {}


def _rotation_order(rank: int, p: int) -> list[int]:
    order = _ORDER_CACHE.get((rank, p))
    if order is None:
        order = [(rank + k) % p for k in range(1, p)]
        _ORDER_CACHE[(rank, p)] = order
    return order


class Request:
    """Base class for non-blocking operation handles."""

    #: set True once wait() returned; reuse raises.
    consumed: bool = False

    def completion_probe(self) -> float | None:
        """Earliest virtual time at which the operation is complete, or
        ``None`` if not yet determinable from posted events."""
        raise NotImplementedError

    def on_complete(self, t: float) -> Any:
        """Hook run when the owner observes completion (payload handoff)."""
        return None


class AlltoallRequest(Request):
    """Non-blocking all-to-all(v) with manual progression.

    Parameters
    ----------
    fabric, op:
        Shared network state and the collective instance record.
    rank:
        Owner's index within the participating group.
    group:
        World ranks of the participants (``group[rank]`` is the owner).
    sendcounts:
        Bytes destined to each group member (vector form supports
        alltoallv; the owner's own slot is copied locally for free).
    recvcounts:
        Bytes expected from each member (used for assembly bookkeeping).
    """

    def __init__(
        self,
        fabric: Fabric,
        op: CollOp,
        rank: int,
        group: list[int],
        sendcounts: np.ndarray,
        recvcounts: np.ndarray,
        payload: list[Any] | None = None,
        sendcounts_list: list[int] | None = None,
        uniform_size: int | None = None,
    ) -> None:
        p = len(group)
        if len(sendcounts) != p or len(recvcounts) != p:
            raise MPIUsageError(
                f"alltoall counts must have length {p}, got "
                f"{len(sendcounts)}/{len(recvcounts)}"
            )
        self.fabric = fabric
        self.op = op
        self.rank = rank
        self.group = group
        self.sendcounts = np.asarray(sendcounts, dtype=np.int64)
        self.recvcounts = np.asarray(recvcounts, dtype=np.int64)
        # Injection order: rank+1, rank+2, ... (pairwise-style rotation).
        self._pending = _rotation_order(rank, p)
        # The communicator's counts memo passes the list form along so
        # per-request posting skips a fresh ndarray->list conversion.
        self._sendcounts_list = (
            sendcounts_list
            if sendcounts_list is not None
            else self.sendcounts.tolist()
        )
        #: every sendcount equals this (uniform alltoall), else None;
        #: an unset hint just means the flush path re-derives uniformity
        self._uniform_size = uniform_size
        self._n = len(self._pending)
        self._next = 0
        self._own_finish = 0.0
        self._round_ready = 0.0
        self._entered_wait = False
        # Hot-loop bindings: progress_segment runs on every MPI_Test
        # epoch batch, so the per-call attribute walks are hoisted here.
        self._rank_w = group[rank]
        self._row = op.arrivals[rank]
        self._counts = op.posted_count
        self._col_max = op.col_max
        # Loop-invariant bundle for the round-posting paths: one tuple
        # unpack replaces ~14 attribute walks per library entry (these
        # run several times per tile and dominate simulator overhead).
        net = fabric.net
        rates = fabric._rates
        self._hot = (
            self._rank_w,
            rates[self._rank_w] if rates is not None else fabric.rank_rate,
            net.latency,
            net.eager_threshold,
            net.max_inflight,
            self._sendcounts_list,
            self._pending,
            self._row,
            self._counts,
            self._col_max,
            op.p,
            op.waiters,
            fabric.notify_rank,
            fabric.lat_draw,
        )
        if payload is not None:
            op.payload[rank] = payload
        #: diagnostics: number of library entries that progressed this op
        self.progress_entries = 0
        #: completion time once determined (arrivals are final when
        #: posted, so the value never changes afterwards)
        self._cached_completion: float | None = None

    # -- progression --------------------------------------------------------

    def remaining_sends(self) -> int:
        """Messages not yet handed to the NIC."""
        return self._n - self._next

    def _post_round(self, t_post: float, epoch_gap: float) -> None:
        """Post the next round: up to ``max_inflight`` pending sends.

        The NIC serialization of :meth:`Fabric.inject_round` is inlined
        into the delivery loop (same IEEE operations in the same order)
        — one pass per round instead of building sizes/arrivals lists.
        """
        (rank_w, rate, lat, thr, infl, sc, pending, row, counts, cmax,
         p, waiters, notify, draw) = self._hot
        n = self._n
        nxt = self._next
        stop = nxt + infl
        if stop > n:
            stop = n
        if stop <= nxt:
            return
        fabric = self.fabric
        rdv = 2.0 * lat + 0.5 * epoch_gap
        nic = float(fabric.nic_free[rank_w])
        if nic < t_post:
            nic = t_post
        total = 0
        round_max = float("-inf")  # jitter can reorder within a round
        for j in range(nxt, stop):
            d = pending[j]
            sz = sc[d]
            nic += sz / rate
            a = nic + lat + (rdv if sz > thr else 0.0)
            if draw is not None:
                a += draw(rank_w)
            row[d] = a
            counts[d] += 1
            if a > cmax[d]:
                cmax[d] = a
            if counts[d] >= p and waiters:
                w = waiters.pop(d, None)
                if w is not None and notify is not None:
                    notify(w)
            total += sz
            if a > round_max:
                round_max = a
        fabric.nic_free[rank_w] = nic
        fabric.bytes_injected[rank_w] += total
        if round_max > self._own_finish:
            self._own_finish = round_max
        #: a new round may be posted at the first library entry at or
        #: after this time (the LibNBC round barrier)
        self._round_ready = self._own_finish
        self._next = stop

    def post(self, t: float) -> None:
        """Initial library entry (the Ialltoall call itself)."""
        r = self.rank
        self._row[r] = t  # self-delivery is free
        self._counts[r] += 1
        if t > self._col_max[r]:
            self._col_max[r] = t
        self.op.entered[r] = t
        self._round_ready = t
        self._post_round(t, 0.0)
        self.progress_entries += 1

    def progress_segment(self, t0: float, duration: float, ntests: int) -> None:
        """Model ``ntests`` MPI_Test calls spread over ``[t0, t0+duration]``.

        Test ``j`` (1-based) happens at ``t0 + j*gap`` with
        ``gap = duration/(ntests+1)``; an epoch that finds the previous
        round complete posts the next one.  Processing is O(rounds), so
        huge ``F`` values cost the *simulated* program time (test-call
        overhead, charged by the caller) but not simulator time.
        """
        if ntests <= 0:
            return
        self.progress_entries += 1
        n = self._n
        if self._next >= n or duration <= 0:
            return
        gap = duration / (ntests + 1)
        ready = self._round_ready
        # Closed-form batch check before any heavy binding: the first
        # epoch that could post a round is ceil((ready - t0)/gap); when
        # it lies past this segment's last test, the whole batch of
        # failed tests is a no-op and the call returns here.  The
        # expression mirrors the loop below bit for bit — an algebraic
        # rearrangement could diverge by a ULP and shift a posted time.
        k_first = (ready - t0) / gap
        k_first = int(k_first) + (k_first > int(k_first))
        if k_first < 1:
            k_first = 1
        if k_first > ntests:
            return
        # Tight scalar loop: one iteration per posted round, with the
        # NIC/arrival math inlined (this path runs O(p/max_inflight)
        # times per tile per rank and dominates simulator cost at scale).
        (rank_w, rate, lat, thr, infl, sc, pending, row, counts, cmax,
         p, waiters, notify, jdraw) = self._hot
        fabric = self.fabric
        rdv = 2.0 * lat + 0.5 * gap
        nic = float(fabric.nic_free[rank_w])
        total_bytes = 0
        k = 0  # index of the last used epoch (1-based over 1..ntests)
        own = self._own_finish
        while self._next < n:
            # First epoch at or after the previous round's completion.
            k_needed = (ready - t0) / gap
            k_needed = int(k_needed) + (k_needed > int(k_needed))
            if k_needed <= k:
                k_needed = k + 1
            if k_needed > ntests:
                break  # no more library entries in this segment
            k = k_needed
            t_post = t0 + k * gap
            if t_post > nic:
                nic = t_post
            stop = min(self._next + infl, n)
            round_max = 0.0
            for j in range(self._next, stop):
                d = pending[j]
                sz = sc[d]
                nic += sz / rate
                a = nic + lat + (rdv if sz > thr else 0.0)
                if jdraw is not None:
                    a += jdraw(rank_w)
                row[d] = a
                counts[d] += 1
                if a > cmax[d]:
                    cmax[d] = a
                if counts[d] >= p and waiters:
                    w = waiters.pop(d, None)
                    if w is not None and notify is not None:
                        notify(w)
                total_bytes += sz
                if a > round_max:
                    round_max = a
            self._next = stop
            if round_max > own:
                own = round_max
            ready = own
        fabric.nic_free[rank_w] = nic
        fabric.bytes_injected[rank_w] += total_bytes
        self._own_finish = own
        self._round_ready = ready

    def test(self, t: float) -> bool:
        """One explicit MPI_Test at time ``t``: progress, then poll."""
        if self._next < self._n and t >= self._round_ready:
            self._post_round(t, 0.0)
        self.progress_entries += 1
        done_time = self.completion_probe()
        return done_time is not None and done_time <= t

    def enter_wait(self, t: float) -> None:
        """MPI_Wait entry: run the remaining rounds back-to-back."""
        if self._next < self._n:
            self._flush_rounds(max(t, self._round_ready))
        self._entered_wait = True
        self._wait_entry = t
        self.progress_entries += 1

    def _flush_rounds(self, t0: float) -> None:
        """Post every remaining round, library-resident (gap = 0).

        Uniform message sizes (plain alltoall) take a closed-form path:
        within a round messages serialize on the NIC; each round barrier
        costs the previous round's delivery (latency, plus the
        rendezvous handshake for large messages).  Mixed sizes
        (alltoallv) fall back to the per-round loop.
        """
        (rank_w, rate, lat, thr, infl, sc, pending, row, counts, cmax,
         p, waiters, notify, jdraw) = self._hot
        dests = pending[self._next :]
        m = self._uniform_size
        if m is None:
            # No uniformity hint: derive it for the remaining slice (a
            # suffix of an alltoallv vector can still be uniform, and
            # path selection must not depend on how the request was
            # constructed).
            sizes = [sc[d] for d in dests]
            if len(set(sizes)) == 1:
                m = sizes[0]
        if m is None or jdraw is not None:
            # Mixed sizes (alltoallv), or latency faults — the per-round
            # loop keeps round barriers consistent with jittered
            # arrivals the way the progress_segment path sees them.
            while self._next < self._n:
                self._post_round(max(t0, self._round_ready), 0.0)
            return
        fabric = self.fabric
        n = len(dests)
        dur = m / rate
        rdv = 2.0 * lat if m > thr else 0.0
        barrier = lat + rdv  # delivery gap between rounds
        start0 = max(t0, float(fabric.nic_free[rank_w]))
        if n <= 48:
            # Scalar path: rounds are short, and for small n the python
            # loop beats five ndarray constructions.  Same IEEE ops in
            # the same order as the vector path below — the expressions
            # are kept textually parallel on purpose.
            last_finish = start0
            own = self._own_finish
            for jj, d in enumerate(dests):
                last_finish = start0 + (jj + 1) * dur + (jj // infl) * barrier
                a = last_finish + lat + rdv
                row[d] = a
                counts[d] += 1
                if a > cmax[d]:
                    cmax[d] = a
                if a > own:
                    own = a
                if counts[d] >= p and waiters:
                    w = waiters.pop(d, None)
                    if w is not None and notify is not None:
                        notify(w)
            fabric.nic_free[rank_w] = last_finish
            fabric.bytes_injected[rank_w] += m * n
            self._own_finish = own
            self._round_ready = own
            self._next += n
            return
        j = np.arange(n)
        ridx = j // infl
        finish = start0 + (j + 1) * dur + ridx * barrier
        arrivals = finish + lat + rdv
        for d, a in zip(dests, arrivals.tolist()):
            row[d] = a
            counts[d] += 1  # destinations are unique within a request
            if a > cmax[d]:
                cmax[d] = a
            if counts[d] >= p and waiters:
                w = waiters.pop(d, None)
                if w is not None and notify is not None:
                    notify(w)
        fabric.nic_free[rank_w] = float(finish[-1])
        fabric.bytes_injected[rank_w] += m * n
        self._own_finish = max(self._own_finish, float(arrivals.max()))
        self._round_ready = self._own_finish
        self._next += n

    # -- completion -----------------------------------------------------------

    def completion_probe(self) -> float | None:
        if self._cached_completion is None:
            if self._next < self._n:
                return None
            if self._counts[self.rank] < self.op.p:  # row incomplete
                return None
            incoming = self._col_max[self.rank]
            self._cached_completion = (
                self._own_finish if self._own_finish > incoming else incoming
            )
        t = self._cached_completion
        if self._entered_wait:
            t = max(t, self._wait_entry)
        return t

    def on_complete(self, t: float) -> list[Any] | None:
        """Assemble received chunks (real-payload mode) in group order,
        and free the shared op record once every participant finished."""
        payloads = self.op.payload
        out: list[Any] | None = None
        if payloads:
            out = []
            for src in range(len(self.group)):
                chunks = payloads.get(src)
                out.append(None if chunks is None else chunks[self.rank])
        done = self.op.meta.get("done_count", 0) + 1
        self.op.meta["done_count"] = done
        if done == len(self.group):
            self.fabric.release_coll(self.op.key)
        return out


class P2PRequest(Request):
    """Handle for isend (completion = injection done) — trivially timed."""

    def __init__(self, finish_time: float) -> None:
        self.finish_time = finish_time

    def completion_probe(self) -> float | None:
        return self.finish_time


class RecvRequest(Request):
    """Handle for irecv: completes when a matching message is delivered."""

    def __init__(self, fabric: Fabric, dst: int, src: int | None, tag: int | None) -> None:
        self.fabric = fabric
        self.dst = dst
        self.src = src
        self.tag = tag
        self._matched = None

    def completion_probe(self) -> float | None:
        if self._matched is None:
            msg = self.fabric.match_p2p(self.dst, self.src, self.tag)
            if msg is None:
                return None
            self.fabric.take_p2p(msg)
            self._matched = msg
        return self._matched.arrival

    def on_complete(self, t: float):
        msg = self._matched
        return (msg.payload, msg.src, msg.tag, msg.nbytes)
