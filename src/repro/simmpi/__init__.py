"""Simulated MPI: a deterministic discrete-event cluster.

SPMD programs written against :class:`Communicator` run on virtual ranks
whose clocks advance through an analytic machine model; non-blocking
all-to-all follows the paper's *manual progression* semantics (MPI_Test
drives injection).  See DESIGN.md section 5 for the model.
"""

from .comm import Communicator, SimContext
from .engine import Engine, RankTrace, SchedStats
from .fabric import Fabric
from .request import AlltoallRequest, P2PRequest, RecvRequest, Request
from .spmd import SimResult, run_spmd

__all__ = [
    "AlltoallRequest",
    "Communicator",
    "Engine",
    "Fabric",
    "P2PRequest",
    "RankTrace",
    "RecvRequest",
    "Request",
    "SchedStats",
    "SimContext",
    "SimResult",
    "run_spmd",
]
