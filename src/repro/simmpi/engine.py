"""Deterministic discrete-event engine for the simulated cluster.

Each simulated rank executes ordinary Python code (the SPMD function),
but exactly one rank is awake at any moment: the scheduler always
resumes the rank with the smallest *virtual* clock.  This single-token,
min-time policy gives conservative parallel-discrete-event correctness —
when a rank at virtual time ``t`` runs, every peer's clock is already
``>= t``, so every message that could influence it by time ``t`` has
been posted — and bit-for-bit determinism (ties break by rank id).

Two **rank backends** share that scheduler:

``threads``
    every rank is a parked OS thread; suspension points hand the token
    over through a pair of ``threading.Event`` waits.  Works for any
    SPMD callable, but each handoff costs two kernel round-trips — at
    p=256 the handoffs, not the model, dominate wall-clock time.
``tasks``
    every rank is a *generator* resumed by ``gen.send`` on the
    scheduler's own stack — no threads, no locks, no context switches.
    Requires the SPMD function to be a generator function whose
    blocking operations are expressed as ``yield from`` of the comm
    layer's ``co_*`` coroutines (all pipelines in :mod:`repro.core` are
    written this way).

Backend selection is automatic: a generator SPMD function runs on the
``tasks`` backend, a plain callable on ``threads``.  Virtual-time
results are bit-identical between the two because every scheduling
decision is taken by the same code on the same ordered events; the
equivalence is enforced by ``tests/simmpi/test_backends.py``.

Virtual time advances only through :meth:`SimContext.compute` /
communication calls; real numpy work done by the rank costs *zero*
virtual time.  Blocking operations hand the scheduler a *probe*: a
callable returning the operation's completion time once that time is
determined by already-posted events, or ``None`` while it is not.

Two scheduling liberties keep the simulation fast without breaking the
model: (1) a running rank keeps the token through local compute and
non-blocking communication — every cross-rank interaction is a
*timestamped final value* (NIC schedules, message arrival times), so
running ahead of a peer's virtual clock cannot change any outcome that a
blocking operation observes; (2) blocked ranks are woken event-driven —
the peer whose send completes an all-to-all arrival row pushes the
waiter onto a completion-time heap instead of the scheduler polling.
The one visible consequence: a non-blocking ``test()`` may
conservatively report "not done" for an exchange whose peers have not
been simulated far enough yet; completion *times* (via ``wait``) are
exact either way.  The completion-time heap also feeds the pick itself:
a blocked rank whose wakeup time precedes every ready clock runs first,
so a rank spinning in a ``test()`` poll loop (which stays ready between
polls) cannot starve peers parked in ``wait``.
"""

from __future__ import annotations

import heapq
import inspect
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import DeadlockError, SimulationError
from ..faults import FaultSpec, current_faults, parse_faults
from ..machine.platforms import Platform
from .fabric import Fabric

_STACK_SIZE = 512 * 1024  # rank threads are shallow; keep 256-rank jobs light

#: engine commands a rank coroutine may yield to the scheduler
_CMD_BLOCK = "block"
_CMD_YIELD = "yield"


@dataclass
class SchedStats:
    """Scheduler instrumentation for one engine run.

    ``handoffs`` counts rank resumptions (token grants); ``probe_polls``
    counts completion-probe invocations made by the scheduler;
    ``wakeups`` counts blocked→runnable transitions (a rank leaving a
    ``wait`` because its completion time became determinable).  All are
    backend-independent — the thread and task backends take identical
    scheduling decisions — so they double as a cheap equivalence check,
    and their wall-clock cost is what the ``tasks`` backend removes.
    """

    backend: str = ""
    handoffs: int = 0
    probe_polls: int = 0
    wakeups: int = 0

    def merge(self, other: "SchedStats") -> None:
        """Accumulate another run's counters into this record."""
        self.handoffs += other.handoffs
        self.probe_polls += other.probe_polls
        self.wakeups += other.wakeups

    def reset(self) -> None:
        """Zero the counters (per-benchmark isolation of :data:`TOTALS`)."""
        self.handoffs = 0
        self.probe_polls = 0
        self.wakeups = 0


#: Process-wide cumulative counters (benchmark/smoke reporting).  Every
#: run still gets its own :attr:`Engine.stats`; this accumulator only
#: serves whole-process summaries and is resettable — via
#: :meth:`SchedStats.reset` or :func:`repro.obs.reset_sched_totals` — so
#: totals no longer leak between benchmarks or test cases that read it.
TOTALS = SchedStats(backend="total")


@dataclass
class RankTrace:
    """Per-rank accounting of virtual time by step label.

    ``events`` (when recorded) keeps its historical ``(t0, t1, label)``
    3-tuple shape; per-event attributes from instrumented callers (tile
    index, byte counts) live in the index-aligned ``attrs`` list so
    existing consumers of ``events`` are unaffected.
    """

    by_label: dict[str, float] = field(default_factory=dict)
    events: list[tuple[float, float, str]] | None = None
    attrs: list[dict | None] | None = None

    def add(
        self, t0: float, t1: float, label: str, attrs: dict | None = None
    ) -> None:
        """Record one event and accumulate its span under ``label``."""
        if t1 < t0:
            raise SimulationError(f"negative-duration event {label}: {t0}..{t1}")
        self.by_label[label] = self.by_label.get(label, 0.0) + (t1 - t0)
        if self.events is not None:
            self.events.append((t0, t1, label))
            if self.attrs is not None:
                self.attrs.append(attrs)


class _Rank:
    """Scheduler-side bookkeeping for one simulated rank."""

    __slots__ = (
        "idx", "clock", "state", "event", "probe", "probe_label",
        "thread", "gen", "block_t0", "result", "exc", "trace", "coll_seq",
    )

    def __init__(self, idx: int, record_events: bool) -> None:
        self.idx = idx
        self.clock = 0.0
        self.state = "ready"  # ready | running | blocked | done
        self.event = None  # threading.Event, created by the threads backend only
        self.probe: Callable[[], float | None] | None = None
        self.probe_label = ""
        self.thread: threading.Thread | None = None
        self.gen = None  # rank coroutine (tasks backend)
        self.block_t0: float | None = None  # pending-block entry time (tasks)
        self.result: Any = None
        self.exc: BaseException | None = None
        self.trace = RankTrace(
            events=[] if record_events else None,
            attrs=[] if record_events else None,
        )
        self.coll_seq: dict[int, int] = {}  # per-communicator collective counter


class Engine:
    """Runs an SPMD function over ``nprocs`` simulated ranks."""

    def __init__(
        self,
        nprocs: int,
        platform: Platform,
        record_events: bool = False,
        backend: str = "auto",
        tracer=None,
        faults: "FaultSpec | str | None" = None,
    ) -> None:
        """``tracer`` (a :class:`repro.obs.Tracer`, or ``None``) receives
        the run's scheduler counters; instrumented callers check it to
        decide whether to build per-event attributes.  It never
        influences a scheduling decision or a virtual clock.

        ``faults`` is a :class:`~repro.faults.FaultSpec` (or grammar
        string) perturbing the simulated machine; ``None`` (the default)
        picks up the ambient spec installed with
        :func:`repro.faults.injected_faults`.  Pass an empty spec to
        force a fault-free run inside an injected scope."""
        if backend not in ("auto", "threads", "tasks"):
            raise SimulationError(
                f"unknown backend {backend!r}; use 'auto', 'threads' or 'tasks'"
            )
        self.nprocs = nprocs
        self.platform = platform
        self.backend = backend
        self.tracer = tracer
        if faults is None:
            faults = current_faults()
        elif isinstance(faults, str):
            faults = parse_faults(faults)
        self.faults = faults.model(nprocs) if faults is not None else None
        #: per-rank CPU slowdown factors, or None (the no-faults fast path
        #: pays one `is None` check per advance and nothing else)
        self._cpu_scale: list[float] | None = (
            [float(s) for s in self.faults.cpu_scale]
            if self.faults is not None and self.faults.has_cpu_faults
            else None
        )
        self.fabric = Fabric(platform, nprocs, faults=self.faults)
        self.ranks = [_Rank(i, record_events) for i in range(nprocs)]
        self.stats = SchedStats()
        self._active_backend = "threads"
        self._sched_event: threading.Event | None = None  # threads backend only
        self._comm_counter = 0
        self._blocked: set[int] = set()
        #: (completion time, idx) heap of blocked ranks whose completion
        #: is already determinable (fed by Fabric.notify_rank / block())
        self._ready_heap: list[tuple[float, int]] = []
        #: the scheduler's (clock, idx) ready heap, shared with the
        #: fast-path checks in block()/_resume_task (see _next_is)
        self._run_heap: list[tuple[float, int]] = []
        #: REPRO_SIM_FASTPATH=0 disables the order-preserving scheduler
        #: fast paths; the slow path is kept as a regression oracle
        #: (tests/simmpi/test_fastpath_equivalence.py)
        self._fastpath = os.environ.get("REPRO_SIM_FASTPATH", "1") != "0"
        self.fabric.notify_rank = self._notify

    def _notify(self, world_rank: int) -> None:
        """A blocked rank's pending operation became determinable."""
        if world_rank in self._blocked:
            self._blocked.discard(world_rank)
            r = self.ranks[world_rank]
            self.stats.probe_polls += 1
            t = r.probe()
            if t is None:  # pragma: no cover - defensive
                self._blocked.add(world_rank)
                return
            heapq.heappush(self._ready_heap, (max(t, r.clock), world_rank))

    # -- identifiers ---------------------------------------------------------

    def new_comm_id(self) -> int:
        """Fresh communicator id (engine-unique)."""
        self._comm_counter += 1
        return self._comm_counter

    # -- rank-side primitives (called while holding the token) ---------------

    def now(self, rank: int) -> float:
        """Virtual clock of ``rank``."""
        return self.ranks[rank].clock

    def cpu_scale_of(self, rank: int) -> float:
        """CPU slowdown factor applied to ``rank`` (1.0 without faults)."""
        return self._cpu_scale[rank] if self._cpu_scale is not None else 1.0

    def advance(
        self, rank: int, dt: float, label: str, attrs: dict | None = None
    ) -> None:
        """Advance ``rank``'s clock by ``dt`` seconds (keeps the token:
        local work cannot affect peers except through timestamped posts,
        so no reschedule is needed until the rank blocks).  ``attrs``
        annotates the traced event (recorded runs only).

        Under an injected straggler fault, CPU time charged on a slowed
        rank is stretched by its slowdown factor here — the single choke
        point through which all modeled CPU work flows."""
        if dt < 0:
            raise SimulationError(f"negative time advance {dt} ({label})")
        if self._cpu_scale is not None:
            dt *= self._cpu_scale[rank]
        # Inlined RankTrace.add (hottest engine entry point): same
        # arithmetic — the accumulated span is (t1 - t0), not dt, so
        # totals stay bit-identical with the traced-event spans.
        r = self.ranks[rank]
        trace = r.trace
        t0 = r.clock
        t1 = t0 + dt
        by_label = trace.by_label
        by_label[label] = by_label.get(label, 0.0) + (t1 - t0)
        if trace.events is not None:
            trace.events.append((t0, t1, label))
            if trace.attrs is not None:
                trace.attrs.append(attrs)
        r.clock = t1

    def reschedule(self, rank: int) -> None:
        """Yield the token without blocking (stay ready).

        Used by polling patterns (``while not test(): ...``): the polling
        rank has usually run ahead of its peers' virtual clocks, so
        giving the token back lets them post the events the poll is
        looking for.
        """
        self._yield(self.ranks[rank])

    def block(
        self,
        rank: int,
        probe: Callable[[], float | None],
        label: str,
    ) -> float:
        """Suspend ``rank`` until ``probe`` yields a completion time.

        Returns the completion time; the rank's clock is advanced to it
        and the blocked interval is traced under ``label``.
        """
        r = self.ranks[rank]
        t0 = r.clock
        self.stats.probe_polls += 1
        t_ready = probe()
        if (
            self._fastpath
            and t_ready is not None
            and t_ready <= t0
            and self._next_is(t0, rank)
        ):
            # Immediate completion while this rank is provably still the
            # scheduler's next pick: the slow path would park the rank
            # and re-resume it at the same clock, so collapsing the
            # round trip preserves execution order exactly and removes
            # one handoff + one wakeup (see DESIGN.md, engine fast paths).
            r.trace.add(t0, t0, label)
            return t0
        r.state = "blocked"
        r.probe = probe
        r.probe_label = label
        if t_ready is not None:
            heapq.heappush(self._ready_heap, (max(t_ready, t0), rank))
        else:
            self._blocked.add(rank)
        self._yield(r, keep_state=True)
        # Scheduler set clock to the completion time before resuming us.
        r.trace.add(t0, r.clock, label)
        return r.clock

    def _next_is(self, c: float, idx: int) -> bool:
        """Would the scheduler resume rank ``idx`` next at clock ``c`` if
        it blocked with an already-determined completion at ``c``?

        True only when no ready rank would pop first (ready-vs-woken
        ties keep the ready rank — ``_pop_woken``'s strict ``<``) and no
        live completion-heap entry precedes ``(c, idx)`` (blocked-vs-
        blocked ties break by the heap's ``(t, idx)`` order).  Collapsing
        the park/resume round trip is then provably order-preserving.
        Stale heap entries discarded here would be discarded by the
        scheduler anyway."""
        heap = self._run_heap
        ranks = self.ranks
        heappop = heapq.heappop
        while heap:
            t, i = heap[0]
            cand = ranks[i]
            if cand.state == "ready" and cand.clock == t:
                if t <= c:
                    return False
                break
            heappop(heap)
        rh = self._ready_heap
        while rh:
            t, i = rh[0]
            if ranks[i].state != "blocked":
                heappop(rh)
                continue
            return t > c or (t == c and i > idx)
        return True

    def _yield(self, r: _Rank, keep_state: bool = False) -> None:
        # Thread-parking handoff: only the threads backend ever gets
        # here; the tasks backend suspends by returning from gen.send.
        if not keep_state:
            r.state = "ready"
        self._sched_event.set()
        r.event.wait()
        r.event.clear()

    def drive(self, rank: int, gen) -> Any:
        """Run a comm-layer coroutine to completion on a rank *thread*.

        This is the bridge that lets the coroutine-style blocking
        operations (``co_wait``, ``co_barrier``, ...) serve the thread
        backend too: each yielded engine command is executed with the
        ordinary thread-parking primitives.  On the ``tasks`` backend
        the command must instead propagate to the scheduler via
        ``yield from`` — calling the synchronous facade there is a
        programming error, reported eagerly.
        """
        if self._active_backend == "tasks":
            raise SimulationError(
                "synchronous blocking call on the coroutine backend; "
                "use the co_* form via 'yield from'"
            )
        value = None
        while True:
            try:
                cmd = gen.send(value)
            except StopIteration as stop:
                return stop.value
            value = self._perform(rank, cmd)

    def _perform(self, rank: int, cmd: tuple) -> Any:
        """Execute one yielded engine command, thread-blocking style."""
        kind = cmd[0]
        if kind == _CMD_BLOCK:
            return self.block(rank, cmd[1], cmd[2])
        if kind == _CMD_YIELD:
            self.reschedule(rank)
            return None
        raise SimulationError(f"unknown engine command {kind!r}")

    # -- run -----------------------------------------------------------------

    def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> list[Any]:
        """Execute ``fn(ctx, *args, **kwargs)`` on every rank; returns the
        per-rank return values.  Any rank exception is re-raised.

        ``fn`` may be a plain callable (runs on the ``threads`` backend)
        or a generator function whose blocking operations are
        ``yield from`` of the comm layer's ``co_*`` coroutines (runs on
        the ``tasks`` backend unless ``backend="threads"`` forces the
        thread trampoline — same virtual times either way).
        """
        is_gen = inspect.isgeneratorfunction(fn)
        backend = self.backend
        if backend == "auto":
            backend = "tasks" if is_gen else "threads"
        if backend == "tasks" and not is_gen:
            raise SimulationError(
                "the tasks backend needs a generator SPMD function; "
                "pass a plain callable to the threads backend instead"
            )
        self._active_backend = backend
        self.stats.backend = backend
        try:
            if backend == "tasks":
                return self._run_tasks(fn, args, kwargs)
            return self._run_threads(fn, args, kwargs, is_gen)
        finally:
            TOTALS.merge(self.stats)
            # Publish into the telemetry-plane registry (repro.obs.registry).
            # Imported lazily: repro.obs imports this module at package
            # init, so a top-level import here would be circular.
            from ..obs.registry import publish_sched_stats

            publish_sched_stats(self.stats)
            if self.tracer is not None:
                self.tracer.count("sched.runs")
                self.tracer.count("sched.handoffs", self.stats.handoffs)
                self.tracer.count("sched.probe_polls", self.stats.probe_polls)
                self.tracer.count("sched.wakeups", self.stats.wakeups)
                if self.faults is not None:
                    self.tracer.count("faults.runs")
                    for name, value in self.faults.counters().items():
                        if value:
                            self.tracer.count(name, value)

    def _collect(self) -> list[Any]:
        for r in self.ranks:
            if r.exc is not None:
                raise SimulationError(f"rank {r.idx} failed") from r.exc
        return [r.result for r in self.ranks]

    # -- threads backend -----------------------------------------------------

    def _run_threads(self, fn, args, kwargs, is_gen: bool) -> list[Any]:
        from .comm import Communicator, SimContext  # cycle-free at runtime

        world = list(range(self.nprocs))

        def main(rank_idx: int) -> None:
            r = self.ranks[rank_idx]
            r.event.wait()  # wait to be scheduled the first time
            r.event.clear()
            ctx = SimContext(self, rank_idx)
            ctx.comm = Communicator(ctx, group=world, comm_id=0)
            try:
                if is_gen:
                    r.result = self.drive(rank_idx, fn(ctx, *args, **kwargs))
                else:
                    r.result = fn(ctx, *args, **kwargs)
            except BaseException as exc:  # surfaced by the scheduler
                r.exc = exc
            finally:
                r.state = "done"
                self._sched_event.set()

        # The Event pairs exist only on this backend; the tasks backend
        # never allocates or touches them (pure gen.send suspension).
        self._sched_event = threading.Event()
        for r in self.ranks:
            r.event = threading.Event()
        old_stack = threading.stack_size(_STACK_SIZE)
        try:
            for r in self.ranks:
                r.thread = threading.Thread(
                    target=main, args=(r.idx,), name=f"simrank-{r.idx}", daemon=True
                )
                r.thread.start()
        finally:
            threading.stack_size(old_stack)

        try:
            self._schedule(self._resume_thread)
        finally:
            for r in self.ranks:
                if r.thread is not None and r.thread.is_alive() and r.state != "done":
                    # A failed run leaves threads parked; they are daemons
                    # and die with the process, but unblock what we can.
                    r.state = "done"
        return self._collect()

    def _resume_thread(self, r: _Rank) -> None:
        r.state = "running"
        self.stats.handoffs += 1
        self._sched_event.clear()
        r.event.set()
        self._sched_event.wait()

    # -- tasks backend -------------------------------------------------------

    def _run_tasks(self, fn, args, kwargs) -> list[Any]:
        from .comm import Communicator, SimContext  # cycle-free at runtime

        world = list(range(self.nprocs))
        for r in self.ranks:
            ctx = SimContext(self, r.idx)
            ctx.comm = Communicator(ctx, group=world, comm_id=0)
            r.gen = fn(ctx, *args, **kwargs)
        self._schedule(self._resume_task)
        return self._collect()

    def _resume_task(self, r: _Rank) -> None:
        r.state = "running"
        stats = self.stats
        stats.handoffs += 1
        value = None
        if r.block_t0 is not None:
            # Waking from a block: the scheduler set the clock to the
            # completion time; account the blocked interval exactly the
            # way the thread backend does on its side of block().
            r.trace.add(r.block_t0, r.clock, r.probe_label)
            value = r.clock
            r.block_t0 = None
        send = r.gen.send
        fastpath = self._fastpath
        while True:
            try:
                cmd = send(value)
            except StopIteration as stop:
                r.result = stop.value
                r.state = "done"
                return
            except BaseException as exc:
                r.exc = exc
                r.state = "done"
                return
            kind = cmd[0]
            if kind == _CMD_BLOCK:
                probe, label = cmd[1], cmd[2]
                stats.probe_polls += 1
                t_ready = probe()
                t0 = r.clock
                if (
                    fastpath
                    and t_ready is not None
                    and t_ready <= t0
                    and self._next_is(t0, r.idx)
                ):
                    # Immediate completion while still the scheduler's
                    # next pick: re-send the resolved completion without
                    # a scheduler round trip.  Order-preserving (mirror
                    # of the fast path in block()); drops one handoff
                    # and one wakeup relative to the slow path.
                    r.trace.add(t0, t0, label)
                    value = t0
                    continue
                r.block_t0 = t0
                r.state = "blocked"
                r.probe = probe
                r.probe_label = label
                if t_ready is not None:
                    heapq.heappush(
                        self._ready_heap, (max(t_ready, t0), r.idx)
                    )
                else:
                    self._blocked.add(r.idx)
                return
            if kind == _CMD_YIELD:
                r.state = "ready"
                return
            r.exc = SimulationError(f"unknown engine command {kind!r}")
            r.state = "done"
            return

    # -- shared scheduling core ----------------------------------------------

    def _schedule(self, resume: Callable[[_Rank], None]) -> None:
        ranks = self.ranks
        stats = self.stats
        rh = self._ready_heap
        heappush = heapq.heappush
        heappop = heapq.heappop
        fastpath = self._fastpath
        # Lazy min-heap of (clock, idx) for ready ranks; stale entries
        # (rank no longer ready, or re-queued with a newer clock) are
        # discarded on pop.  Blocked ranks are probed only when the heap
        # runs dry, which is when their completion can matter.  The heap
        # is published on the engine so the block()-side fast path can
        # consult it (_next_is).
        heap: list[tuple[float, int]] = [(r.clock, r.idx) for r in ranks]
        heapq.heapify(heap)
        self._run_heap = heap
        while True:
            best: _Rank | None = None
            while heap:
                clock, idx = heap[0]
                cand = ranks[idx]
                if cand.state == "ready" and cand.clock == clock:
                    best = cand
                    break
                heappop(heap)
            if best is not None:
                # Min-time includes blocked ranks with a determinable
                # completion: a poller that stays "ready" between failed
                # test() calls must not starve waiting peers whose wakeup
                # times lie before its clock (virtual-time livelock).
                woken = self._pop_woken(before=best.clock)
                if woken is not None:
                    best = woken
                else:
                    heappop(heap)
            if best is None:
                best, best_t = self._pick_blocked()
                if best is None:
                    if all(r.state == "done" for r in ranks):
                        return
                    self._raise_deadlock()
                best.clock = best_t
                best.probe = None
                self._blocked.discard(best.idx)
                stats.wakeups += 1
            while True:
                resume(best)
                if best.exc is not None:
                    # Fail fast: remaining ranks are parked; run() reports.
                    return
                if best.state != "ready":
                    break
                c = best.clock
                if not fastpath:
                    heappush(heap, (c, best.idx))
                    break
                # Same-rank run-through: if the resumed rank is still the
                # unique minimum, the slow path would push it and pop it
                # right back — keep the token instead.  Order-preserving
                # and counter-neutral (resume() still counts a handoff
                # per grant, exactly like the push/pop round trip).
                keep = True
                while heap:
                    t, i = heap[0]
                    cand = ranks[i]
                    if cand.state == "ready" and cand.clock == t:
                        # ready-vs-ready ties break by rank id
                        if t < c or (t == c and i < best.idx):
                            keep = False
                        break
                    heappop(heap)
                if keep:
                    while rh:
                        t, i = rh[0]
                        if ranks[i].state != "blocked":
                            heappop(rh)
                            continue
                        # woken-vs-ready ties keep the ready rank
                        if t < c:
                            keep = False
                        break
                if not keep:
                    heappush(heap, (c, best.idx))
                    break

    def _pop_woken(self, before: float) -> "_Rank | None":
        """Pop the earliest blocked rank whose event-fed completion time
        is strictly earlier than ``before`` and make it runnable; ``None``
        when the ready rank at ``before`` should run instead (ties keep
        the ready rank — matches the pre-wakeup scheduling order)."""
        rh = self._ready_heap
        ranks = self.ranks
        while rh:
            t, idx = rh[0]
            r = ranks[idx]
            if r.state != "blocked":
                heapq.heappop(rh)  # stale: already woken or done
                continue
            if t >= before:
                return None
            heapq.heappop(rh)
            r.clock = t
            r.probe = None
            self._blocked.discard(idx)
            self.stats.wakeups += 1
            return r
        return None

    def _pick_blocked(self) -> tuple["_Rank | None", float | None]:
        """Earliest-completing blocked rank, or (None, None).

        The event-fed completion heap serves the hot path (all-to-all
        waits); the full ``_blocked`` sweep only runs when the heap is
        empty (operations without a notification hook: p2p receives,
        synchronizing collectives)."""
        ranks = self.ranks
        while self._ready_heap:
            t, idx = heapq.heappop(self._ready_heap)
            r = ranks[idx]
            if r.state == "blocked":
                return r, t
        best: _Rank | None = None
        best_t: float | None = None
        for idx in self._blocked:
            r = ranks[idx]
            self.stats.probe_polls += 1
            t = r.probe()
            if t is None:
                continue
            t = max(t, r.clock)
            if best_t is None or t < best_t:
                best, best_t = r, t
        return best, best_t

    def _raise_deadlock(self) -> None:
        blocked = [
            f"rank {r.idx} @t={r.clock:.6f} blocked on {r.probe_label!r}"
            for r in self.ranks
            if r.state == "blocked"
        ]
        raise DeadlockError(
            "simulation deadlock: no rank can make progress\n  " + "\n  ".join(blocked)
        )

    # -- results ---------------------------------------------------------------

    @property
    def final_time(self) -> float:
        """Virtual completion time of the slowest rank."""
        return max(r.clock for r in self.ranks)

    def traces(self) -> list[RankTrace]:
        """Per-rank time accounting, indexed by rank."""
        return [r.trace for r in self.ranks]
