"""Runtime network state for the simulated cluster.

The :class:`Fabric` owns everything ranks share: per-rank NIC schedules,
in-flight collective operation records, and point-to-point mailboxes.
Because the engine runs exactly one rank thread at a time (single-token
scheduling), fabric state needs no locking; determinism follows from the
scheduler's min-virtual-time rank selection.

Message timing follows a LogGP-flavored model:

* a send occupies the sender's NIC for ``nbytes / rank_rate`` seconds
  (injection serialization, with fabric contention folded into the rate);
* it arrives ``latency`` seconds after injection completes;
* messages above the eager threshold additionally pay a rendezvous
  penalty of ``2*latency`` plus half the sender's current MPI_Test epoch
  gap — the modeled cost of waiting for the peer to enter the library
  (manual progression, Section 3.3 of the paper; the symmetric-SPMD
  approximation is documented in DESIGN.md §5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..errors import MPIUsageError
from ..machine.platforms import Platform


@dataclass
class CollOp:
    """Shared record of one collective instance across all participants.

    ``arrivals[src][dst]`` is the virtual time at which src's message to
    dst is fully delivered (NaN until posted).  Rows are plain Python
    lists: the hot paths write one scalar at a time, and creating p
    small lists is far cheaper than a (p, p) ndarray per collective.
    ``payload[src]`` holds the per-destination data chunks in
    real-payload mode.
    """

    key: tuple[Any, ...]
    kind: str
    p: int
    arrivals: list[list[float]]
    entered: np.ndarray  # entry time per local rank index, NaN until entered
    #: messages posted toward each destination (a plain list: senders bump
    #: entries one at a time, where list indexing beats ndarray scalars)
    posted_count: list[int]
    #: running max arrival per destination column, maintained by every
    #: arrivals write — makes incoming_max O(1) instead of a column scan
    col_max: list[float]
    payload: dict[int, Any] = field(default_factory=dict)
    meta: dict[str, Any] = field(default_factory=dict)
    #: local index -> world rank parked in Wait on that row; the poster
    #: that completes the row notifies the engine (event-driven wakeup)
    waiters: dict[int, int] = field(default_factory=dict)

    @classmethod
    def create(cls, key: tuple[Any, ...], kind: str, p: int) -> "CollOp":
        """Fresh record with empty arrival/entry tables."""
        return cls(
            key=key,
            kind=kind,
            p=p,
            arrivals=[[float("nan")] * p for _ in range(p)],
            entered=np.full(p, np.nan),
            posted_count=[0] * p,
            col_max=[float("-inf")] * p,
        )

    def check_kind(self, kind: str) -> None:
        """Verify all participants called the same collective."""
        if kind != self.kind:
            raise MPIUsageError(
                f"collective mismatch on {self.key}: one rank called "
                f"{self.kind!r}, another {kind!r}"
            )

    def row_complete(self, dst: int) -> bool:
        """All incoming messages to local index ``dst`` posted?

        O(1): senders bump :attr:`posted_count` as they inject, so probes
        (which the scheduler issues frequently) avoid scanning arrivals.
        """
        return self.posted_count[dst] >= self.p

    def incoming_max(self, dst: int) -> float:
        """Latest arrival into ``dst`` (valid once the row is complete)."""
        return self.col_max[dst]


@dataclass
class P2PMessage:
    """One point-to-point message in flight."""

    src: int
    dst: int
    tag: int
    nbytes: int
    arrival: float
    payload: Any = None
    seq: int = 0


class Fabric:
    """Shared network state: NIC schedules, collectives, p2p mailboxes."""

    def __init__(self, platform: Platform, nprocs: int, faults=None) -> None:
        if nprocs < 1:
            raise MPIUsageError(f"need at least 1 process, got {nprocs}")
        self.platform = platform
        self.net = platform.net
        self.p = nprocs
        #: virtual time at which each rank's NIC finishes its queued sends
        self.nic_free = np.zeros(nprocs)
        #: effective sustained per-rank injection rate during dense exchange
        self.rank_rate = self.net.rank_rate(nprocs)
        #: injected faults (a :class:`repro.faults.FaultModel`, or None).
        #: Link degradation becomes per-rank rates; latency jitter/spikes
        #: become the ``lat_draw``/``lat_draw_batch`` hooks the hot send
        #: paths apply per message (None = fault-free fast path).
        self.faults = faults
        self._rates: list[float] | None = None
        self.lat_draw = None
        self.lat_draw_batch = None
        if faults is not None:
            if (faults.rate_scale != 1.0).any():
                self._rates = [
                    float(self.rank_rate * s) for s in faults.rate_scale
                ]
            if faults.has_latency_faults:
                self.lat_draw = faults.draw_extra_latency
                self.lat_draw_batch = faults.draw_extra_latency_batch
        self._colls: dict[tuple[Any, ...], CollOp] = {}
        self._p2p: dict[tuple[int, int], list[P2PMessage]] = {}
        self._p2p_seq = 0
        #: engine hook: called with a world rank whose blocked operation
        #: just became determinable (set by Engine at construction)
        self.notify_rank = None
        #: bytes ever injected, per rank (observability / tests)
        self.bytes_injected = np.zeros(nprocs)

    def rate_for(self, rank: int) -> float:
        """Effective injection rate of ``rank`` (fault-degraded links)."""
        return self._rates[rank] if self._rates is not None else self.rank_rate

    # -- collectives -------------------------------------------------------

    def get_coll(self, key: tuple[Any, ...], kind: str, p: int) -> CollOp:
        """Fetch or create the shared record for a collective instance.

        ``key`` identifies the instance: (communicator id, per-rank
        collective sequence number) — ranks match their i-th collective
        call on a communicator with every peer's i-th call, as MPI
        requires.
        """
        op = self._colls.get(key)
        if op is None:
            op = CollOp.create(key, kind, p)
            self._colls[key] = op
        else:
            op.check_kind(kind)
            if op.p != p:
                raise MPIUsageError(
                    f"collective {key} joined with group size {p}, "
                    f"created with {op.p}"
                )
        return op

    def release_coll(self, key: tuple[Any, ...]) -> None:
        """Drop a completed collective record (frees payload memory).

        Safe to call more than once; the last finisher wins.
        """
        self._colls.pop(key, None)

    # -- injection ----------------------------------------------------------

    def inject_round(
        self,
        rank: int,
        t_post: float,
        sizes,
        epoch_gap: float,
    ) -> list[float]:
        """Scalar fast path of :meth:`inject` for one small round.

        Collective rounds are at most ``max_inflight`` messages, where
        plain-Python arithmetic beats numpy dispatch by an order of
        magnitude; semantics are identical to :meth:`inject` with all
        ``postable`` entries equal to ``t_post``.
        """
        nic = float(self.nic_free[rank])
        rate = self.rate_for(rank)
        lat = self.net.latency
        thr = self.net.eager_threshold
        rdv = 2.0 * lat + 0.5 * epoch_gap
        draw = self.lat_draw
        arrivals: list[float] = []
        total = 0
        for sz in sizes:
            start = nic if nic > t_post else t_post
            nic = start + sz / rate
            a = nic + lat + (rdv if sz > thr else 0.0)
            if draw is not None:
                a += draw(rank)
            arrivals.append(a)
            total += sz
        self.nic_free[rank] = nic
        self.bytes_injected[rank] += total
        return arrivals

    def inject(
        self,
        rank: int,
        t: float,
        sizes: np.ndarray,
        postable: np.ndarray,
        epoch_gap: float,
    ) -> np.ndarray:
        """Serialize a batch of sends on ``rank``'s NIC.

        ``sizes[j]`` bytes become postable (CPU enters the library) no
        earlier than ``postable[j]``; the NIC transfers them in order at
        :attr:`rank_rate`.  Returns per-message *arrival* times at their
        destinations, including eager/rendezvous protocol costs.
        ``epoch_gap`` is the sender's current gap between library entries,
        used as the rendezvous-response delay estimate.
        """
        if len(sizes) == 0:
            return np.empty(0)
        sizes = np.asarray(sizes, dtype=np.float64)
        durs = sizes / self.rate_for(rank)
        cum = np.cumsum(durs)
        # finish_j = max_{k<=j}(postable_k - cum_{k-1}) + cum_j, also
        # bounded below by the NIC's previous backlog.
        base = np.maximum.accumulate(postable - (cum - durs))
        finish = np.maximum(base, self.nic_free[rank]) + cum
        self.nic_free[rank] = finish[-1]
        self.bytes_injected[rank] += float(np.sum(sizes))
        rdv = np.where(
            sizes > self.net.eager_threshold,
            2.0 * self.net.latency + 0.5 * epoch_gap,
            0.0,
        )
        del t  # postable already encodes the entry times
        arrivals = finish + self.net.latency + rdv
        if self.lat_draw_batch is not None:
            arrivals = arrivals + self.lat_draw_batch(rank, len(sizes))
        return arrivals

    # -- point-to-point ------------------------------------------------------

    def post_p2p(self, msg: P2PMessage) -> None:
        """Deliver a p2p message into the (src, dst) mailbox (FIFO)."""
        self._p2p_seq += 1
        msg.seq = self._p2p_seq
        self._p2p.setdefault((msg.src, msg.dst), []).append(msg)

    def match_p2p(self, dst: int, src: int | None, tag: int | None) -> P2PMessage | None:
        """Find (without removing) the first matching message for a
        receive posted by ``dst``.  ``None`` src/tag mean ANY."""
        best: P2PMessage | None = None
        sources = [src] if src is not None else range(self.p)
        for s in sources:
            for msg in self._p2p.get((s, dst), ()):
                if tag is not None and msg.tag != tag:
                    continue
                # First tag-matching message in this stream (MPI
                # non-overtaking order); earlier posts win across streams.
                if best is None or msg.seq < best.seq:
                    best = msg
                break
        return best

    def take_p2p(self, msg: P2PMessage) -> None:
        """Remove a matched message from its mailbox."""
        queue = self._p2p.get((msg.src, msg.dst), [])
        queue.remove(msg)

    def pending_p2p(self) -> int:
        """Number of posted-but-unmatched p2p messages (diagnostics)."""
        return sum(len(q) for q in self._p2p.values())
