"""MPI-like communicator API over the discrete-event engine.

:class:`SimContext` is the per-rank handle an SPMD function receives; its
``comm`` attribute is the world :class:`Communicator`.  The API mirrors
the MPI operations the paper's code and common substrates need:

* point-to-point: ``send/recv/isend/irecv/sendrecv``
* blocking collectives: ``barrier, bcast, reduce, allreduce, gather,
  allgather, scatter, alltoall, alltoallv``
* non-blocking: ``ialltoall / ialltoallv`` returning
  :class:`~repro.simmpi.request.AlltoallRequest`, progressed manually via
  ``test`` / ``progress_segment`` and finished with ``wait``
* ``split`` for sub-communicators (used by the 2-D decomposition
  extension).

Every *blocking* operation exists in two spellings sharing one
implementation:

* the plain method (``wait``, ``barrier``, ...) blocks the calling rank
  **thread** — use it from ordinary SPMD callables;
* the ``co_`` twin (``co_wait``, ``co_barrier``, ...) is a coroutine to
  be delegated with ``yield from`` — use it from generator SPMD
  functions, which the engine then runs on its no-threads ``tasks``
  backend (see :mod:`repro.simmpi.engine`).

The coroutine form is the primary implementation: it yields engine
commands (block / reschedule) to whoever drives it — the task scheduler
directly, or :meth:`Engine.drive`'s trampoline on a rank thread — so the
two spellings take bit-identical scheduling decisions.

Payloads are optional everywhere: in virtual mode callers pass byte
counts only, in real mode actual numpy arrays travel with the messages.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Sequence

import numpy as np

from ..errors import MPIUsageError, SimulationError
from .engine import Engine
from .fabric import P2PMessage
from .request import AlltoallRequest, P2PRequest, RecvRequest, Request


class SimContext:
    """Per-rank handle: clock control, tracing, and the world comm."""

    def __init__(self, engine: Engine, rank: int) -> None:
        self.engine = engine
        self.rank = rank
        self.size = engine.nprocs
        self.platform = engine.platform
        self.cpu = engine.platform.cpu
        self.comm: "Communicator" = None  # set by Engine.run
        # Hot-path bindings: the rank record (clock reads), the test-call
        # overhead, and the per-run fault knobs, all constant for the
        # lifetime of this context.
        self._r = engine.ranks[rank]
        self._trace = self._r.trace  # never reassigned by the engine
        self._test_overhead = self.cpu.test_overhead
        faults = engine.faults
        self._cpu_stretch = (
            faults.cpu_scale_of(rank)
            if faults is not None and faults.has_cpu_faults
            else None
        )
        self._poll_faults = faults is not None and faults.has_poll_faults
        self._eff_tests = faults.effective_tests if self._poll_faults else None

    @property
    def now(self) -> float:
        """Current virtual time of this rank."""
        return self._r.clock

    def drive(self, gen) -> Any:
        """Run a ``co_*`` coroutine to completion on this rank's thread
        (threads backend only; generator programs use ``yield from``)."""
        return self.engine.drive(self.rank, gen)

    def compute(
        self, seconds: float, label: str = "compute",
        attrs: dict | None = None,
    ) -> None:
        """Advance virtual time by ``seconds`` of local computation."""
        self.engine.advance(self.rank, seconds, label, attrs)

    def compute_with_progress(
        self,
        seconds: float,
        tests: Sequence[tuple[AlltoallRequest, int]],
        label: str = "compute",
        attrs: dict | None = None,
    ) -> None:
        """Compute for ``seconds`` while manually progressing requests.

        ``tests`` is a sequence of ``(request, n_tests)``: during the
        segment the rank calls MPI_Test ``n_tests`` times on each given
        request (the paper's Algorithms 2-3, where ``Fy/Fp/Fu/Fx`` tests
        are spread over each computation phase).  Test-call overhead is
        charged on top of ``seconds`` and traced under ``"Test"``.

        Never suspends, so it is safe in both SPMD spellings.

        Injected faults act here: a straggler's segment stretches by its
        CPU slowdown (the test epochs spread over the stretched window,
        matching what :meth:`Engine.advance` charges), and a poll-delay
        fault thins the *progression* epochs to ``ntests / factor`` — a
        descheduled process enters the MPI library late and irregularly.
        Test-call overhead stays charged at the requested count: the CPU
        time is burned either way, so a poll fault can only slow a run.
        """
        t0 = self._r.clock
        stretch = self._cpu_stretch
        duration = seconds if stretch is None else seconds * stretch
        poll_faults = self._poll_faults
        total_tests = 0
        for req, ntests in tests:
            if ntests < 0:
                raise MPIUsageError(f"negative test count {ntests}")
            if req is not None and ntests > 0:
                eff = (
                    self.engine.faults.effective_tests(self.rank, ntests)
                    if poll_faults
                    else ntests
                )
                req.progress_segment(t0, duration, eff)
                total_tests += ntests
        advance = self.engine.advance
        advance(self.rank, seconds, label, attrs)
        if total_tests:
            advance(self.rank, total_tests * self._test_overhead, "Test")

    def progress_phase(
        self,
        seconds: float,
        live: Sequence[AlltoallRequest],
        total: int,
        label: str,
        attrs: dict | None = None,
    ) -> None:
        """One pipeline phase: compute ``seconds`` while spreading a
        ``total`` test budget over the ``live`` request window.

        Semantically identical to ``compute_with_progress(seconds,
        ParallelFFT3D._share_tests(live, total), label, attrs)`` — same
        budget split, same progression, same two clock advances (phase
        label, then aggregated Test overhead).  Thin wrapper over
        :meth:`progress_phases`.
        """
        self.progress_phases(((seconds, total, label),), live, attrs)

    def progress_phases(
        self,
        phases: Sequence[tuple[float, int, str]],
        live: Sequence[AlltoallRequest],
        attrs: dict | None = None,
    ) -> None:
        """Run consecutive ``(seconds, test_total, label)`` pipeline
        phases against the same ``live`` request window.

        Each phase is semantically identical to ``compute_with_progress(
        seconds, ParallelFFT3D._share_tests(live, total), label, attrs)``
        — same budget split, same progression, same two clock advances
        (phase label, then aggregated Test overhead) — but fused into one
        pass: no intermediate (request, count) list, no per-call
        attribute walks, and segments that provably cannot post a round
        (all sends already injected, or a zero-length window) are skipped
        with only their library-entry counter bumped, exactly as the
        skipped call would have done.  Accepting a phase *batch* lets the
        tile pipeline charge its back-to-back compute steps (FFTy+Pack,
        Unpack+FFTx) in one call.  This runs twice per tile and dominates
        pipeline overhead, hence the inlining; equivalence with the
        unfused spelling is covered by tests/core/test_pipeline.py and
        the backend-equivalence suite.
        """
        r = self._r
        stretch = self._cpu_stretch
        eff_of = self._eff_tests
        rank = self.rank
        trace = self._trace
        by_label = trace.by_label
        events = trace.events
        for seconds, total, label in phases:
            if seconds < 0:
                raise SimulationError(
                    f"negative time advance {seconds} ({label})"
                )
            t0 = r.clock
            duration = seconds if stretch is None else seconds * stretch
            total_tests = 0
            if total > 0:
                if len(live) == 1:
                    # Window of one (the overlap pipeline's common case):
                    # reuse the caller's list instead of copying it.
                    q0 = live[0]
                    lv = live if q0 is not None and not q0.consumed else ()
                else:
                    lv = [q for q in live if q is not None and not q.consumed]
                if lv:
                    base, extra = divmod(total, len(lv))
                    positive = duration > 0
                    for i, q in enumerate(lv):
                        ntests = base + 1 if i < extra else base
                        if ntests <= 0:
                            continue
                        total_tests += ntests
                        eff = ntests if eff_of is None else eff_of(rank, ntests)
                        if eff <= 0:
                            continue
                        if positive and q._next < q._n:
                            # Same closed-form epoch precheck progress_segment
                            # opens with (same expressions, so same floats):
                            # fall through to posting only when an epoch in
                            # this window can actually post a round.
                            gap = duration / (eff + 1)
                            ready = q._round_ready
                            kf = (ready - t0) / gap
                            kf = int(kf) + (kf > int(kf))
                            if kf < 1:
                                kf = 1
                            q.progress_entries += 1
                            if kf > eff:
                                continue
                            # Inlined body of AlltoallRequest.progress_segment
                            # (verbatim expressions — any rearrangement could
                            # shift a posted time by a ULP).  The method is
                            # kept as the reference implementation for
                            # compute_with_progress and direct callers.
                            (rank_w, rate_q, lat, thr, infl, sc, pending, row,
                             cnts, cmax, np_, waiters, notify, jdraw) = q._hot
                            fabric = q.fabric
                            rdv = 2.0 * lat + 0.5 * gap
                            nic = float(fabric.nic_free[rank_w])
                            total_bytes = 0
                            k = 0  # last used epoch (1-based over 1..eff)
                            own = q._own_finish
                            n_q = q._n
                            nxt = q._next
                            while nxt < n_q:
                                k_needed = (ready - t0) / gap
                                k_needed = int(k_needed) + (k_needed > int(k_needed))
                                if k_needed <= k:
                                    k_needed = k + 1
                                if k_needed > eff:
                                    break  # no more library entries here
                                k = k_needed
                                t_post = t0 + k * gap
                                if t_post > nic:
                                    nic = t_post
                                stop = nxt + infl
                                if stop > n_q:
                                    stop = n_q
                                round_max = 0.0
                                for j in range(nxt, stop):
                                    d = pending[j]
                                    sz = sc[d]
                                    nic += sz / rate_q
                                    a = nic + lat + (rdv if sz > thr else 0.0)
                                    if jdraw is not None:
                                        a += jdraw(rank_w)
                                    row[d] = a
                                    cnts[d] += 1
                                    if a > cmax[d]:
                                        cmax[d] = a
                                    if cnts[d] >= np_ and waiters:
                                        w = waiters.pop(d, None)
                                        if w is not None and notify is not None:
                                            notify(w)
                                    total_bytes += sz
                                    if a > round_max:
                                        round_max = a
                                nxt = stop
                                if round_max > own:
                                    own = round_max
                                ready = own
                            q._next = nxt
                            fabric.nic_free[rank_w] = nic
                            fabric.bytes_injected[rank_w] += total_bytes
                            q._own_finish = own
                            q._round_ready = ready
                        else:
                            # progress_segment would bump the entry counter
                            # and return without touching any other state
                            q.progress_entries += 1
            # Inlined Engine.advance pair (phase label + Test overhead):
            # same IEEE operations in the same order, so clocks and by_label
            # totals are bit-identical to the two-call spelling.
            t1 = t0 + duration
            by_label[label] = by_label.get(label, 0.0) + (t1 - t0)
            if events is not None:
                events.append((t0, t1, label))
                if trace.attrs is not None:
                    trace.attrs.append(attrs)
            if total_tests:
                dt = total_tests * self._test_overhead
                if stretch is not None:
                    dt *= stretch
                t2 = t1 + dt
                by_label["Test"] = by_label.get("Test", 0.0) + (t2 - t1)
                if events is not None:
                    events.append((t1, t2, "Test"))
                    if trace.attrs is not None:
                        trace.attrs.append(None)
                r.clock = t2
            else:
                r.clock = t1


class Communicator:
    """A group of simulated ranks with MPI-style operations."""

    def __init__(self, ctx: SimContext, group: list[int], comm_id: int) -> None:
        self.ctx = ctx
        self.engine = ctx.engine
        self.fabric = ctx.engine.fabric
        self.group = group
        self.comm_id = comm_id
        if ctx.rank not in group:
            raise MPIUsageError(f"rank {ctx.rank} not in group {group}")
        self.rank = group.index(ctx.rank)
        self.size = len(group)
        #: id -> (counts object, validated int64 array).  Keeping the
        #: original object referenced pins its id, so a hit can never be
        #: a recycled address (see _alltoall_counts).
        self._counts_memo: dict[int, tuple[Any, np.ndarray]] = {}
        #: CPU cost of posting a nonblocking collective (constant here)
        self._post_cost = self.fabric.net.post_cost(self.size)
        self._advance = self.engine.advance  # per-tile hot path binding
        self._tracer = self.engine.tracer  # fixed at engine construction

    # ------------------------------------------------------------------ utils

    def _coll_key(self) -> tuple[int, int]:
        seqs = self.ctx._r.coll_seq
        seq = seqs.get(self.comm_id, 0)
        seqs[self.comm_id] = seq + 1
        return (self.comm_id, seq)

    def _charge(
        self, seconds: float, label: str, attrs: dict | None = None
    ) -> None:
        self.engine.advance(self.ctx.rank, seconds, label, attrs)

    def _drive(self, gen) -> Any:
        """Run a co_* coroutine thread-blockingly (threads backend)."""
        return self.engine.drive(self.ctx.rank, gen)

    @property
    def net(self):
        """The platform's network model (shortcut)."""
        return self.fabric.net

    # ------------------------------------------------------------------ p2p

    def isend(self, dest: int, nbytes: int, payload: Any = None, tag: int = 0) -> P2PRequest:
        """Non-blocking send; completes locally at injection finish."""
        if not 0 <= dest < self.size:
            raise MPIUsageError(f"bad destination {dest} for size {self.size}")
        t = self.ctx.now
        world_src = self.group[self.rank]
        world_dst = self.group[dest]
        arrivals = self.fabric.inject(
            world_src, t, np.array([nbytes], dtype=np.int64), np.array([t]), 0.0
        )
        self.fabric.post_p2p(
            P2PMessage(
                src=world_src,
                dst=world_dst,
                tag=tag,
                nbytes=int(nbytes),
                arrival=float(arrivals[0]),
                payload=payload,
            )
        )
        # Local completion: NIC done with this message.
        return P2PRequest(float(arrivals[0]) - self.net.latency)

    def irecv(self, source: int | None = None, tag: int | None = None) -> RecvRequest:
        """Non-blocking receive (``None`` source/tag = ANY)."""
        world_src = None if source is None else self.group[source]
        return RecvRequest(self.fabric, self.group[self.rank], world_src, tag)

    def co_send(self, dest: int, nbytes: int, payload: Any = None, tag: int = 0):
        """Coroutine form of :meth:`send`."""
        req = self.isend(dest, nbytes, payload, tag)
        yield from self.co_wait(req, label="Send")

    def send(self, dest: int, nbytes: int, payload: Any = None, tag: int = 0) -> None:
        """Blocking standard-mode send (completes locally at injection)."""
        return self._drive(self.co_send(dest, nbytes, payload, tag))

    def co_recv(self, source: int | None = None, tag: int | None = None):
        """Coroutine form of :meth:`recv`."""
        req = self.irecv(source, tag)
        payload, world_src, mtag, nbytes = yield from self.co_wait(req, label="Recv")
        return payload, self.group.index(world_src), mtag, nbytes

    def recv(self, source: int | None = None, tag: int | None = None):
        """Blocking receive; returns ``(payload, src, tag, nbytes)`` with
        ``src`` translated back to this communicator's ranks."""
        return self._drive(self.co_recv(source, tag))

    def co_sendrecv(
        self, dest: int, nbytes: int, payload: Any = None,
        source: int | None = None, tag: int = 0,
    ):
        """Coroutine form of :meth:`sendrecv`."""
        rreq = self.irecv(source, tag)
        sreq = self.isend(dest, nbytes, payload, tag)
        yield from self.co_wait(sreq, label="Send")
        payload_in, world_src, mtag, nb = yield from self.co_wait(rreq, label="Recv")
        return payload_in, self.group.index(world_src), mtag, nb

    def sendrecv(
        self, dest: int, nbytes: int, payload: Any = None,
        source: int | None = None, tag: int = 0,
    ):
        """Combined send+recv without deadlock (both posted, then both waited)."""
        return self._drive(self.co_sendrecv(dest, nbytes, payload, source, tag))

    # ------------------------------------------------------------ wait/test

    def co_wait(self, req: Request, label: str = "Wait"):
        """Coroutine form of :meth:`wait`."""
        if req.consumed:
            raise MPIUsageError("request already waited on")
        t = self.ctx._r.clock
        if isinstance(req, AlltoallRequest):
            req.enter_wait(t)
            if req.completion_probe() is None:
                # Event-driven wakeup: the peer whose round completes our
                # arrival row notifies the engine (no polling sweeps).
                req.op.waiters[req.rank] = self.group[self.rank]
        done = yield ("block", req.completion_probe, label)
        req.consumed = True
        return req.on_complete(done)

    def wait(self, req: Request, label: str = "Wait"):
        """Block until ``req`` completes; returns the op's result value."""
        return self._drive(self.co_wait(req, label))

    def co_waitall(self, reqs: Sequence[Request], label: str = "Wait"):
        """Coroutine form of :meth:`waitall`."""
        out = []
        for r in reqs:
            out.append((yield from self.co_wait(r, label)))
        return out

    def waitall(self, reqs: Sequence[Request], label: str = "Wait") -> list[Any]:
        """Wait on every request; returns their results in order."""
        return [self.wait(r, label) for r in reqs]

    def co_test(self, req: Request):
        """Coroutine form of :meth:`test`."""
        if req.consumed:
            raise MPIUsageError("request already waited on")
        t = self.ctx._r.clock
        if isinstance(req, AlltoallRequest):
            flag = req.test(t)
        else:
            done = req.completion_probe()
            flag = done is not None and done <= t
        self._charge(self.ctx._test_overhead, "Test")
        if flag:
            req.consumed = True
            return True, req.on_complete(self.ctx.now)
        # Unsuccessful poll: hand the token back so peers (usually behind
        # in virtual time) can post the events this rank is waiting for.
        yield ("yield",)
        return False, None

    def test(self, req: Request) -> tuple[bool, Any]:
        """Non-blocking completion check (one MPI_Test): progresses the
        request, charges the call overhead, returns ``(flag, result)``."""
        return self._drive(self.co_test(req))

    # -------------------------------------------------------------- alltoall

    def _alltoall_counts(self, counts) -> tuple[np.ndarray, list[int], int | None]:
        """Validate a counts argument, memoized per argument object.

        Returns the validated int64 array, its plain-list form (the
        request's posting loops index the list), and the uniform entry
        value when all counts are equal (``None`` otherwise — lets the
        request's flush path skip re-deriving uniformity).  Pipelines
        pass the
        same (cached) count vectors for every tile, so full validation
        runs once per distinct object; the memo keeps the original
        object alive, making the id-keyed hit safe.  A caller that
        mutates a previously passed vector in place keeps the old
        validated copy — in-tree callers never do.
        """
        memo = self._counts_memo
        hit = memo.get(id(counts))
        if hit is not None and hit[0] is counts:
            return hit[1], hit[2], hit[3]
        arr = np.asarray(counts, dtype=np.int64)
        if arr.ndim == 0:
            arr = np.full(self.size, int(arr), dtype=np.int64)
        if arr.shape != (self.size,):
            raise MPIUsageError(
                f"alltoall counts must be scalar or length {self.size}, got {arr.shape}"
            )
        if (arr < 0).any():
            raise MPIUsageError("negative byte count in alltoall")
        if len(memo) > 64:  # callers passing fresh lists can't grow it
            memo.clear()
        lst = arr.tolist()
        uni = lst[0] if lst else None
        for v in lst:
            if v != uni:
                uni = None
                break
        memo[id(counts)] = (counts, arr, lst, uni)
        return arr, lst, uni

    def ialltoall(
        self,
        sendcounts,
        recvcounts=None,
        payload: list[Any] | None = None,
    ) -> AlltoallRequest:
        """Post a non-blocking all-to-all(v).

        ``sendcounts``/``recvcounts`` are bytes per peer (scalar = uniform
        — plain ``MPI_Ialltoall``; vector = ``MPI_Ialltoallv``).
        ``payload`` optionally carries one object per destination (real
        mode).  The returned request is progressed by ``test`` /
        ``SimContext.compute_with_progress`` and finished by ``wait``.
        """
        send, send_list, send_uniform = self._alltoall_counts(sendcounts)
        recv, _, _ = self._alltoall_counts(
            recvcounts if recvcounts is not None else sendcounts
        )
        if payload is not None and len(payload) != self.size:
            raise MPIUsageError(
                f"payload must have one entry per rank ({self.size}), got {len(payload)}"
            )
        key = self._coll_key()
        op = self.fabric.get_coll(key, "alltoall", self.size)
        req = AlltoallRequest(
            self.fabric, op, self.rank, self.group, send, recv, payload,
            sendcounts_list=send_list, uniform_size=send_uniform,
        )
        attrs = None
        if self._tracer is not None:
            attrs = {"send_bytes": int(send.sum()), "peers": self.size}
        ctx = self.ctx
        # Inlined Engine.advance(rank, post_cost, "Ialltoall", attrs):
        # same IEEE operations in the same order (see progress_phases).
        r = ctx._r
        stretch = ctx._cpu_stretch
        dt = self._post_cost if stretch is None else self._post_cost * stretch
        trace = ctx._trace
        t0 = r.clock
        t1 = t0 + dt
        by_label = trace.by_label
        by_label["Ialltoall"] = by_label.get("Ialltoall", 0.0) + (t1 - t0)
        events = trace.events
        if events is not None:
            events.append((t0, t1, "Ialltoall"))
            if trace.attrs is not None:
                trace.attrs.append(attrs)
        r.clock = t1
        req.post(t1)
        return req

    # Alias for the explicit-v spelling.
    ialltoallv = ialltoall

    def co_alltoall(self, sendcounts, recvcounts=None, payload: list[Any] | None = None):
        """Coroutine form of :meth:`alltoall`."""
        req = self.ialltoall(sendcounts, recvcounts, payload)
        return (yield from self.co_wait(req, label="A2A"))

    def alltoall(self, sendcounts, recvcounts=None, payload: list[Any] | None = None):
        """Blocking all-to-all(v): post then wait (library-resident, so it
        progresses at full NIC rate — the FFTW-baseline communication)."""
        return self._drive(self.co_alltoall(sendcounts, recvcounts, payload))

    alltoallv = alltoall
    co_alltoallv = co_alltoall

    # ---------------------------------------------------------- collectives

    def _tree_depth(self) -> int:
        return max(1, math.ceil(math.log2(max(self.size, 2))))

    def _co_sync_collective(
        self, kind: str, extra_time: float, label: str,
        payload: Any = None, root: int | None = None,
        combine: Callable[[list[Any]], Any] | None = None,
    ):
        """Shared implementation of synchronizing collectives.

        Every participant records its entry time in the op; completion is
        ``max(entries) + extra_time`` for all ranks (a symmetric model of
        a tree algorithm).  ``payload``/``combine`` implement the data
        semantics in real mode.
        """
        key = self._coll_key()
        op = self.fabric.get_coll(key, kind, self.size)
        t = self.ctx.now
        op.entered[self.rank] = t
        if payload is not None or combine is not None:
            op.payload[self.rank] = payload
        op.meta.setdefault("root", root)
        if root is not None and op.meta["root"] != root:
            raise MPIUsageError(f"{kind} called with different roots")

        def probe() -> float | None:
            if not np.isfinite(op.entered).all():
                return None
            return float(op.entered.max()) + extra_time

        yield ("block", probe, label)
        result = None
        if combine is not None:
            payloads = [op.payload.get(i) for i in range(self.size)]
            result = combine(payloads)
        op.meta["done_count"] = op.meta.get("done_count", 0) + 1
        if op.meta["done_count"] == self.size:
            self.fabric.release_coll(key)
        return result

    def co_barrier(self):
        """Coroutine form of :meth:`barrier`."""
        yield from self._co_sync_collective(
            "barrier", self._tree_depth() * self.net.latency, "Barrier"
        )

    def barrier(self) -> None:
        """Synchronize all ranks (dissemination-barrier time model)."""
        return self._drive(self.co_barrier())

    def co_bcast(self, payload: Any = None, nbytes: int = 0, root: int = 0):
        """Coroutine form of :meth:`bcast`."""
        depth = self._tree_depth()
        t_extra = depth * (self.net.latency + nbytes / self.fabric.rank_rate)
        me = self.rank

        def combine(payloads: list[Any]):
            return payloads[root]

        marker = payload if me == root else None
        return (yield from self._co_sync_collective(
            "bcast", t_extra, "Bcast", payload=marker, root=root, combine=combine
        ))

    def bcast(self, payload: Any = None, nbytes: int = 0, root: int = 0):
        """Broadcast ``root``'s payload to everyone (binomial-tree model)."""
        return self._drive(self.co_bcast(payload, nbytes, root))

    def co_reduce(self, value: Any, op: Callable[[Any, Any], Any] = None,
                  nbytes: int = 0, root: int = 0):
        """Coroutine form of :meth:`reduce`."""
        depth = self._tree_depth()
        t_extra = depth * (self.net.latency + nbytes / self.fabric.rank_rate)
        combiner = op if op is not None else (lambda a, b: a + b)
        me = self.rank

        def combine(payloads: list[Any]):
            if me != root:
                return value
            acc = payloads[0]
            for item in payloads[1:]:
                acc = combiner(acc, item)
            return acc

        return (yield from self._co_sync_collective(
            "reduce", t_extra, "Reduce", payload=value, root=root, combine=combine
        ))

    def reduce(self, value: Any, op: Callable[[Any, Any], Any] = None,
               nbytes: int = 0, root: int = 0):
        """Reduce values to ``root`` (returns the reduction on root, the
        local value elsewhere).  ``op`` defaults to elementwise add."""
        return self._drive(self.co_reduce(value, op, nbytes, root))

    def co_allreduce(self, value: Any, op: Callable[[Any, Any], Any] = None,
                     nbytes: int = 0):
        """Coroutine form of :meth:`allreduce`."""
        depth = self._tree_depth()
        t_extra = depth * (self.net.latency + nbytes / self.fabric.rank_rate)
        combiner = op if op is not None else (lambda a, b: a + b)

        def combine(payloads: list[Any]):
            acc = payloads[0]
            for item in payloads[1:]:
                acc = combiner(acc, item)
            return acc

        return (yield from self._co_sync_collective(
            "allreduce", t_extra, "Allreduce", payload=value, combine=combine
        ))

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] = None,
                  nbytes: int = 0):
        """Reduce-to-all (recursive-doubling time model)."""
        return self._drive(self.co_allreduce(value, op, nbytes))

    def co_gather(self, value: Any, nbytes: int = 0, root: int = 0):
        """Coroutine form of :meth:`gather`."""
        t_extra = self._tree_depth() * self.net.latency + (
            (self.size - 1) * nbytes / self.fabric.rank_rate
        )
        me = self.rank

        def combine(payloads: list[Any]):
            return list(payloads) if me == root else None

        return (yield from self._co_sync_collective(
            "gather", t_extra, "Gather", payload=value, root=root, combine=combine
        ))

    def gather(self, value: Any, nbytes: int = 0, root: int = 0):
        """Gather values to ``root`` (list in rank order on root, else None)."""
        return self._drive(self.co_gather(value, nbytes, root))

    def co_allgather(self, value: Any, nbytes: int = 0):
        """Coroutine form of :meth:`allgather`."""
        t_extra = self._tree_depth() * self.net.latency + (
            (self.size - 1) * nbytes / self.fabric.rank_rate
        )
        return (yield from self._co_sync_collective(
            "allgather", t_extra, "Allgather", payload=value, combine=list
        ))

    def allgather(self, value: Any, nbytes: int = 0):
        """Gather values to all ranks (list in rank order)."""
        return self._drive(self.co_allgather(value, nbytes))

    def co_scatter(self, values: Sequence[Any] | None = None, nbytes: int = 0,
                   root: int = 0):
        """Coroutine form of :meth:`scatter`."""
        if self.rank == root:
            if values is None or len(values) != self.size:
                raise MPIUsageError(
                    f"scatter root must pass {self.size} values"
                )
        t_extra = self._tree_depth() * self.net.latency + (
            (self.size - 1) * nbytes / self.fabric.rank_rate
        )
        me = self.rank

        def combine(payloads: list[Any]):
            return payloads[root][me] if payloads[root] is not None else None

        marker = list(values) if self.rank == root else None
        return (yield from self._co_sync_collective(
            "scatter", t_extra, "Scatter", payload=marker, root=root, combine=combine
        ))

    def scatter(self, values: Sequence[Any] | None = None, nbytes: int = 0,
                root: int = 0):
        """Scatter ``root``'s list of per-rank values."""
        return self._drive(self.co_scatter(values, nbytes, root))

    # -------------------------------------------------------------------- split

    def co_split(self, color: int, key: int | None = None):
        """Coroutine form of :meth:`split`."""
        me_key = self.rank if key is None else key
        triples = yield from self.co_allgather(
            (color, me_key, self.group[self.rank])
        )
        mine = sorted(
            (k, wr) for (c, k, wr) in triples if c == color
        )
        new_group = [wr for (_k, wr) in mine]
        # Communicator ids must be shared by the members and distinct
        # across colors: agree on the minimum of the per-rank draws over
        # the *parent*, then qualify it with the color.
        agreed = yield from self.co_allreduce(self.engine.new_comm_id(), op=min)
        return Communicator(self.ctx, new_group, (agreed, color))

    def split(self, color: int, key: int | None = None) -> "Communicator":
        """Partition the communicator by ``color`` (MPI_Comm_split).

        Ranks with equal color form a new communicator ordered by
        ``key`` (default: current rank).  Collective — all members must
        call it.
        """
        return self._drive(self.co_split(color, key))
