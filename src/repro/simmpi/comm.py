"""MPI-like communicator API over the discrete-event engine.

:class:`SimContext` is the per-rank handle an SPMD function receives; its
``comm`` attribute is the world :class:`Communicator`.  The API mirrors
the MPI operations the paper's code and common substrates need:

* point-to-point: ``send/recv/isend/irecv/sendrecv``
* blocking collectives: ``barrier, bcast, reduce, allreduce, gather,
  allgather, scatter, alltoall, alltoallv``
* non-blocking: ``ialltoall / ialltoallv`` returning
  :class:`~repro.simmpi.request.AlltoallRequest`, progressed manually via
  ``test`` / ``progress_segment`` and finished with ``wait``
* ``split`` for sub-communicators (used by the 2-D decomposition
  extension).

Every *blocking* operation exists in two spellings sharing one
implementation:

* the plain method (``wait``, ``barrier``, ...) blocks the calling rank
  **thread** — use it from ordinary SPMD callables;
* the ``co_`` twin (``co_wait``, ``co_barrier``, ...) is a coroutine to
  be delegated with ``yield from`` — use it from generator SPMD
  functions, which the engine then runs on its no-threads ``tasks``
  backend (see :mod:`repro.simmpi.engine`).

The coroutine form is the primary implementation: it yields engine
commands (block / reschedule) to whoever drives it — the task scheduler
directly, or :meth:`Engine.drive`'s trampoline on a rank thread — so the
two spellings take bit-identical scheduling decisions.

Payloads are optional everywhere: in virtual mode callers pass byte
counts only, in real mode actual numpy arrays travel with the messages.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Sequence

import numpy as np

from ..errors import MPIUsageError
from .engine import Engine
from .fabric import P2PMessage
from .request import AlltoallRequest, P2PRequest, RecvRequest, Request


class SimContext:
    """Per-rank handle: clock control, tracing, and the world comm."""

    def __init__(self, engine: Engine, rank: int) -> None:
        self.engine = engine
        self.rank = rank
        self.size = engine.nprocs
        self.platform = engine.platform
        self.cpu = engine.platform.cpu
        self.comm: "Communicator" = None  # set by Engine.run

    @property
    def now(self) -> float:
        """Current virtual time of this rank."""
        return self.engine.now(self.rank)

    def drive(self, gen) -> Any:
        """Run a ``co_*`` coroutine to completion on this rank's thread
        (threads backend only; generator programs use ``yield from``)."""
        return self.engine.drive(self.rank, gen)

    def compute(
        self, seconds: float, label: str = "compute",
        attrs: dict | None = None,
    ) -> None:
        """Advance virtual time by ``seconds`` of local computation."""
        self.engine.advance(self.rank, seconds, label, attrs)

    def compute_with_progress(
        self,
        seconds: float,
        tests: Sequence[tuple[AlltoallRequest, int]],
        label: str = "compute",
        attrs: dict | None = None,
    ) -> None:
        """Compute for ``seconds`` while manually progressing requests.

        ``tests`` is a sequence of ``(request, n_tests)``: during the
        segment the rank calls MPI_Test ``n_tests`` times on each given
        request (the paper's Algorithms 2-3, where ``Fy/Fp/Fu/Fx`` tests
        are spread over each computation phase).  Test-call overhead is
        charged on top of ``seconds`` and traced under ``"Test"``.

        Never suspends, so it is safe in both SPMD spellings.

        Injected faults act here: a straggler's segment stretches by its
        CPU slowdown (the test epochs spread over the stretched window,
        matching what :meth:`Engine.advance` charges), and a poll-delay
        fault thins the *progression* epochs to ``ntests / factor`` — a
        descheduled process enters the MPI library late and irregularly.
        Test-call overhead stays charged at the requested count: the CPU
        time is burned either way, so a poll fault can only slow a run.
        """
        t0 = self.now
        faults = self.engine.faults
        duration = seconds
        if faults is not None and faults.has_cpu_faults:
            duration = seconds * faults.cpu_scale_of(self.rank)
        total_tests = 0
        for req, ntests in tests:
            if ntests < 0:
                raise MPIUsageError(f"negative test count {ntests}")
            if req is not None and ntests > 0:
                eff = ntests
                if faults is not None and faults.has_poll_faults:
                    eff = faults.effective_tests(self.rank, ntests)
                req.progress_segment(t0, duration, eff)
                total_tests += ntests
        self.engine.advance(self.rank, seconds, label, attrs)
        if total_tests:
            self.engine.advance(
                self.rank, total_tests * self.cpu.test_overhead, "Test"
            )


class Communicator:
    """A group of simulated ranks with MPI-style operations."""

    def __init__(self, ctx: SimContext, group: list[int], comm_id: int) -> None:
        self.ctx = ctx
        self.engine = ctx.engine
        self.fabric = ctx.engine.fabric
        self.group = group
        self.comm_id = comm_id
        if ctx.rank not in group:
            raise MPIUsageError(f"rank {ctx.rank} not in group {group}")
        self.rank = group.index(ctx.rank)
        self.size = len(group)

    # ------------------------------------------------------------------ utils

    def _coll_key(self) -> tuple[int, int]:
        seqs = self.engine.ranks[self.ctx.rank].coll_seq
        seq = seqs.get(self.comm_id, 0)
        seqs[self.comm_id] = seq + 1
        return (self.comm_id, seq)

    def _charge(
        self, seconds: float, label: str, attrs: dict | None = None
    ) -> None:
        self.engine.advance(self.ctx.rank, seconds, label, attrs)

    def _drive(self, gen) -> Any:
        """Run a co_* coroutine thread-blockingly (threads backend)."""
        return self.engine.drive(self.ctx.rank, gen)

    @property
    def net(self):
        """The platform's network model (shortcut)."""
        return self.fabric.net

    # ------------------------------------------------------------------ p2p

    def isend(self, dest: int, nbytes: int, payload: Any = None, tag: int = 0) -> P2PRequest:
        """Non-blocking send; completes locally at injection finish."""
        if not 0 <= dest < self.size:
            raise MPIUsageError(f"bad destination {dest} for size {self.size}")
        t = self.ctx.now
        world_src = self.group[self.rank]
        world_dst = self.group[dest]
        arrivals = self.fabric.inject(
            world_src, t, np.array([nbytes], dtype=np.int64), np.array([t]), 0.0
        )
        self.fabric.post_p2p(
            P2PMessage(
                src=world_src,
                dst=world_dst,
                tag=tag,
                nbytes=int(nbytes),
                arrival=float(arrivals[0]),
                payload=payload,
            )
        )
        # Local completion: NIC done with this message.
        return P2PRequest(float(arrivals[0]) - self.net.latency)

    def irecv(self, source: int | None = None, tag: int | None = None) -> RecvRequest:
        """Non-blocking receive (``None`` source/tag = ANY)."""
        world_src = None if source is None else self.group[source]
        return RecvRequest(self.fabric, self.group[self.rank], world_src, tag)

    def co_send(self, dest: int, nbytes: int, payload: Any = None, tag: int = 0):
        """Coroutine form of :meth:`send`."""
        req = self.isend(dest, nbytes, payload, tag)
        yield from self.co_wait(req, label="Send")

    def send(self, dest: int, nbytes: int, payload: Any = None, tag: int = 0) -> None:
        """Blocking standard-mode send (completes locally at injection)."""
        return self._drive(self.co_send(dest, nbytes, payload, tag))

    def co_recv(self, source: int | None = None, tag: int | None = None):
        """Coroutine form of :meth:`recv`."""
        req = self.irecv(source, tag)
        payload, world_src, mtag, nbytes = yield from self.co_wait(req, label="Recv")
        return payload, self.group.index(world_src), mtag, nbytes

    def recv(self, source: int | None = None, tag: int | None = None):
        """Blocking receive; returns ``(payload, src, tag, nbytes)`` with
        ``src`` translated back to this communicator's ranks."""
        return self._drive(self.co_recv(source, tag))

    def co_sendrecv(
        self, dest: int, nbytes: int, payload: Any = None,
        source: int | None = None, tag: int = 0,
    ):
        """Coroutine form of :meth:`sendrecv`."""
        rreq = self.irecv(source, tag)
        sreq = self.isend(dest, nbytes, payload, tag)
        yield from self.co_wait(sreq, label="Send")
        payload_in, world_src, mtag, nb = yield from self.co_wait(rreq, label="Recv")
        return payload_in, self.group.index(world_src), mtag, nb

    def sendrecv(
        self, dest: int, nbytes: int, payload: Any = None,
        source: int | None = None, tag: int = 0,
    ):
        """Combined send+recv without deadlock (both posted, then both waited)."""
        return self._drive(self.co_sendrecv(dest, nbytes, payload, source, tag))

    # ------------------------------------------------------------ wait/test

    def co_wait(self, req: Request, label: str = "Wait"):
        """Coroutine form of :meth:`wait`."""
        if req.consumed:
            raise MPIUsageError("request already waited on")
        t = self.ctx.now
        if isinstance(req, AlltoallRequest):
            req.enter_wait(t)
            if req.completion_probe() is None:
                # Event-driven wakeup: the peer whose round completes our
                # arrival row notifies the engine (no polling sweeps).
                req.op.waiters[req.rank] = self.group[self.rank]
        done = yield ("block", req.completion_probe, label)
        req.consumed = True
        return req.on_complete(done)

    def wait(self, req: Request, label: str = "Wait"):
        """Block until ``req`` completes; returns the op's result value."""
        return self._drive(self.co_wait(req, label))

    def co_waitall(self, reqs: Sequence[Request], label: str = "Wait"):
        """Coroutine form of :meth:`waitall`."""
        out = []
        for r in reqs:
            out.append((yield from self.co_wait(r, label)))
        return out

    def waitall(self, reqs: Sequence[Request], label: str = "Wait") -> list[Any]:
        """Wait on every request; returns their results in order."""
        return [self.wait(r, label) for r in reqs]

    def co_test(self, req: Request):
        """Coroutine form of :meth:`test`."""
        if req.consumed:
            raise MPIUsageError("request already waited on")
        t = self.ctx.now
        if isinstance(req, AlltoallRequest):
            flag = req.test(t)
        else:
            done = req.completion_probe()
            flag = done is not None and done <= t
        self._charge(self.ctx.cpu.test_overhead, "Test")
        if flag:
            req.consumed = True
            return True, req.on_complete(self.ctx.now)
        # Unsuccessful poll: hand the token back so peers (usually behind
        # in virtual time) can post the events this rank is waiting for.
        yield ("yield",)
        return False, None

    def test(self, req: Request) -> tuple[bool, Any]:
        """Non-blocking completion check (one MPI_Test): progresses the
        request, charges the call overhead, returns ``(flag, result)``."""
        return self._drive(self.co_test(req))

    # -------------------------------------------------------------- alltoall

    def _alltoall_counts(self, counts) -> np.ndarray:
        arr = np.asarray(counts, dtype=np.int64)
        if arr.ndim == 0:
            arr = np.full(self.size, int(arr), dtype=np.int64)
        if arr.shape != (self.size,):
            raise MPIUsageError(
                f"alltoall counts must be scalar or length {self.size}, got {arr.shape}"
            )
        if (arr < 0).any():
            raise MPIUsageError("negative byte count in alltoall")
        return arr

    def ialltoall(
        self,
        sendcounts,
        recvcounts=None,
        payload: list[Any] | None = None,
    ) -> AlltoallRequest:
        """Post a non-blocking all-to-all(v).

        ``sendcounts``/``recvcounts`` are bytes per peer (scalar = uniform
        — plain ``MPI_Ialltoall``; vector = ``MPI_Ialltoallv``).
        ``payload`` optionally carries one object per destination (real
        mode).  The returned request is progressed by ``test`` /
        ``SimContext.compute_with_progress`` and finished by ``wait``.
        """
        send = self._alltoall_counts(sendcounts)
        recv = self._alltoall_counts(
            recvcounts if recvcounts is not None else sendcounts
        )
        if payload is not None and len(payload) != self.size:
            raise MPIUsageError(
                f"payload must have one entry per rank ({self.size}), got {len(payload)}"
            )
        key = self._coll_key()
        op = self.fabric.get_coll(key, "alltoall", self.size)
        req = AlltoallRequest(
            self.fabric, op, self.rank, self.group, send, recv, payload
        )
        attrs = None
        if self.engine.tracer is not None:
            attrs = {"send_bytes": int(send.sum()), "peers": self.size}
        self._charge(self.net.post_cost(self.size), "Ialltoall", attrs)
        req.post(self.ctx.now)
        return req

    # Alias for the explicit-v spelling.
    ialltoallv = ialltoall

    def co_alltoall(self, sendcounts, recvcounts=None, payload: list[Any] | None = None):
        """Coroutine form of :meth:`alltoall`."""
        req = self.ialltoall(sendcounts, recvcounts, payload)
        return (yield from self.co_wait(req, label="A2A"))

    def alltoall(self, sendcounts, recvcounts=None, payload: list[Any] | None = None):
        """Blocking all-to-all(v): post then wait (library-resident, so it
        progresses at full NIC rate — the FFTW-baseline communication)."""
        return self._drive(self.co_alltoall(sendcounts, recvcounts, payload))

    alltoallv = alltoall
    co_alltoallv = co_alltoall

    # ---------------------------------------------------------- collectives

    def _tree_depth(self) -> int:
        return max(1, math.ceil(math.log2(max(self.size, 2))))

    def _co_sync_collective(
        self, kind: str, extra_time: float, label: str,
        payload: Any = None, root: int | None = None,
        combine: Callable[[list[Any]], Any] | None = None,
    ):
        """Shared implementation of synchronizing collectives.

        Every participant records its entry time in the op; completion is
        ``max(entries) + extra_time`` for all ranks (a symmetric model of
        a tree algorithm).  ``payload``/``combine`` implement the data
        semantics in real mode.
        """
        key = self._coll_key()
        op = self.fabric.get_coll(key, kind, self.size)
        t = self.ctx.now
        op.entered[self.rank] = t
        if payload is not None or combine is not None:
            op.payload[self.rank] = payload
        op.meta.setdefault("root", root)
        if root is not None and op.meta["root"] != root:
            raise MPIUsageError(f"{kind} called with different roots")

        def probe() -> float | None:
            if not np.isfinite(op.entered).all():
                return None
            return float(op.entered.max()) + extra_time

        yield ("block", probe, label)
        result = None
        if combine is not None:
            payloads = [op.payload.get(i) for i in range(self.size)]
            result = combine(payloads)
        op.meta["done_count"] = op.meta.get("done_count", 0) + 1
        if op.meta["done_count"] == self.size:
            self.fabric.release_coll(key)
        return result

    def co_barrier(self):
        """Coroutine form of :meth:`barrier`."""
        yield from self._co_sync_collective(
            "barrier", self._tree_depth() * self.net.latency, "Barrier"
        )

    def barrier(self) -> None:
        """Synchronize all ranks (dissemination-barrier time model)."""
        return self._drive(self.co_barrier())

    def co_bcast(self, payload: Any = None, nbytes: int = 0, root: int = 0):
        """Coroutine form of :meth:`bcast`."""
        depth = self._tree_depth()
        t_extra = depth * (self.net.latency + nbytes / self.fabric.rank_rate)
        me = self.rank

        def combine(payloads: list[Any]):
            return payloads[root]

        marker = payload if me == root else None
        return (yield from self._co_sync_collective(
            "bcast", t_extra, "Bcast", payload=marker, root=root, combine=combine
        ))

    def bcast(self, payload: Any = None, nbytes: int = 0, root: int = 0):
        """Broadcast ``root``'s payload to everyone (binomial-tree model)."""
        return self._drive(self.co_bcast(payload, nbytes, root))

    def co_reduce(self, value: Any, op: Callable[[Any, Any], Any] = None,
                  nbytes: int = 0, root: int = 0):
        """Coroutine form of :meth:`reduce`."""
        depth = self._tree_depth()
        t_extra = depth * (self.net.latency + nbytes / self.fabric.rank_rate)
        combiner = op if op is not None else (lambda a, b: a + b)
        me = self.rank

        def combine(payloads: list[Any]):
            if me != root:
                return value
            acc = payloads[0]
            for item in payloads[1:]:
                acc = combiner(acc, item)
            return acc

        return (yield from self._co_sync_collective(
            "reduce", t_extra, "Reduce", payload=value, root=root, combine=combine
        ))

    def reduce(self, value: Any, op: Callable[[Any, Any], Any] = None,
               nbytes: int = 0, root: int = 0):
        """Reduce values to ``root`` (returns the reduction on root, the
        local value elsewhere).  ``op`` defaults to elementwise add."""
        return self._drive(self.co_reduce(value, op, nbytes, root))

    def co_allreduce(self, value: Any, op: Callable[[Any, Any], Any] = None,
                     nbytes: int = 0):
        """Coroutine form of :meth:`allreduce`."""
        depth = self._tree_depth()
        t_extra = depth * (self.net.latency + nbytes / self.fabric.rank_rate)
        combiner = op if op is not None else (lambda a, b: a + b)

        def combine(payloads: list[Any]):
            acc = payloads[0]
            for item in payloads[1:]:
                acc = combiner(acc, item)
            return acc

        return (yield from self._co_sync_collective(
            "allreduce", t_extra, "Allreduce", payload=value, combine=combine
        ))

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] = None,
                  nbytes: int = 0):
        """Reduce-to-all (recursive-doubling time model)."""
        return self._drive(self.co_allreduce(value, op, nbytes))

    def co_gather(self, value: Any, nbytes: int = 0, root: int = 0):
        """Coroutine form of :meth:`gather`."""
        t_extra = self._tree_depth() * self.net.latency + (
            (self.size - 1) * nbytes / self.fabric.rank_rate
        )
        me = self.rank

        def combine(payloads: list[Any]):
            return list(payloads) if me == root else None

        return (yield from self._co_sync_collective(
            "gather", t_extra, "Gather", payload=value, root=root, combine=combine
        ))

    def gather(self, value: Any, nbytes: int = 0, root: int = 0):
        """Gather values to ``root`` (list in rank order on root, else None)."""
        return self._drive(self.co_gather(value, nbytes, root))

    def co_allgather(self, value: Any, nbytes: int = 0):
        """Coroutine form of :meth:`allgather`."""
        t_extra = self._tree_depth() * self.net.latency + (
            (self.size - 1) * nbytes / self.fabric.rank_rate
        )
        return (yield from self._co_sync_collective(
            "allgather", t_extra, "Allgather", payload=value, combine=list
        ))

    def allgather(self, value: Any, nbytes: int = 0):
        """Gather values to all ranks (list in rank order)."""
        return self._drive(self.co_allgather(value, nbytes))

    def co_scatter(self, values: Sequence[Any] | None = None, nbytes: int = 0,
                   root: int = 0):
        """Coroutine form of :meth:`scatter`."""
        if self.rank == root:
            if values is None or len(values) != self.size:
                raise MPIUsageError(
                    f"scatter root must pass {self.size} values"
                )
        t_extra = self._tree_depth() * self.net.latency + (
            (self.size - 1) * nbytes / self.fabric.rank_rate
        )
        me = self.rank

        def combine(payloads: list[Any]):
            return payloads[root][me] if payloads[root] is not None else None

        marker = list(values) if self.rank == root else None
        return (yield from self._co_sync_collective(
            "scatter", t_extra, "Scatter", payload=marker, root=root, combine=combine
        ))

    def scatter(self, values: Sequence[Any] | None = None, nbytes: int = 0,
                root: int = 0):
        """Scatter ``root``'s list of per-rank values."""
        return self._drive(self.co_scatter(values, nbytes, root))

    # -------------------------------------------------------------------- split

    def co_split(self, color: int, key: int | None = None):
        """Coroutine form of :meth:`split`."""
        me_key = self.rank if key is None else key
        triples = yield from self.co_allgather(
            (color, me_key, self.group[self.rank])
        )
        mine = sorted(
            (k, wr) for (c, k, wr) in triples if c == color
        )
        new_group = [wr for (_k, wr) in mine]
        # Communicator ids must be shared by the members and distinct
        # across colors: agree on the minimum of the per-rank draws over
        # the *parent*, then qualify it with the color.
        agreed = yield from self.co_allreduce(self.engine.new_comm_id(), op=min)
        return Communicator(self.ctx, new_group, (agreed, color))

    def split(self, color: int, key: int | None = None) -> "Communicator":
        """Partition the communicator by ``color`` (MPI_Comm_split).

        Ranks with equal color form a new communicator ordered by
        ``key`` (default: current rank).  Collective — all members must
        call it.
        """
        return self._drive(self.co_split(color, key))
