"""Text rendering of reproduced tables and figures."""

from .ascii import format_bars, format_stacked_breakdown, format_table
from .cdf import format_cdf, summarize_cdf
from .gantt import occupancy, render_strip, render_traces
from .markdown import apps_table, md_section, md_table, overlap_table

__all__ = [
    "format_bars",
    "format_cdf",
    "format_stacked_breakdown",
    "format_table",
    "md_section",
    "occupancy",
    "apps_table",
    "overlap_table",
    "render_strip",
    "render_traces",
    "md_table",
    "summarize_cdf",
]
