"""ASCII Gantt rendering of simulated rank timelines.

Formalizes what ``examples/overlap_timeline.py`` demonstrates: turn a
rank's recorded ``(t0, t1, label)`` events into a one-line strip (or a
multi-rank stack), making the computation-communication overlap of the
paper's Figure 3 directly visible in a terminal.
"""

from __future__ import annotations

from ..simmpi.engine import RankTrace

#: Default glyphs for the pipeline's step labels.
DEFAULT_GLYPHS = {
    "FFTz": "z", "Transpose": "t", "FFTy": "y", "Pack": "p",
    "Unpack": "u", "FFTx": "x", "Ialltoall": "i", "Wait": "W", "Test": ".",
}


def render_strip(
    events: list[tuple[float, float, str]],
    total: float,
    width: int = 100,
    glyphs: dict[str, str] | None = None,
) -> str:
    """One rank's timeline as a ``width``-character strip.

    Each event paints its proportional span with its glyph, rounded up
    to at least one cell.  Events are painted longest-first (a stable
    sort by descending duration), so when several share a cell the
    *shortest* is drawn last and wins: a sub-character ``Pack`` stays
    visible inside a long ``FFTy``, instead of whichever event happened
    to come later in the log overpainting it.
    """
    if total <= 0:
        raise ValueError(f"total must be positive, got {total}")
    table = glyphs if glyphs is not None else DEFAULT_GLYPHS
    strip = [" "] * width
    # Stable: equal-duration events keep log order, later-logged on top.
    ordered = sorted(events, key=lambda ev: -(ev[1] - ev[0]))
    for t0, t1, label in ordered:
        g = table.get(label, "?")
        c0 = int(t0 / total * (width - 1))
        c1 = max(c0 + 1, int(t1 / total * (width - 1)) + 1)
        for c in range(c0, min(c1, width)):
            strip[c] = g
    return "".join(strip)


def render_traces(
    traces: list[RankTrace],
    total: float,
    width: int = 100,
    max_ranks: int = 8,
    glyphs: dict[str, str] | None = None,
) -> str:
    """Stack the first ``max_ranks`` ranks' strips with a legend.

    Requires the run to have been made with ``record_events=True``.
    """
    table = glyphs if glyphs is not None else DEFAULT_GLYPHS
    lines = ["legend: " + "  ".join(f"{g}={k}" for k, g in table.items())]
    for idx, trace in enumerate(traces[:max_ranks]):
        if trace.events is None:
            raise ValueError(
                "traces have no event timelines; run with record_events=True"
            )
        lines.append(
            f"rank {idx:>3} |{render_strip(trace.events, total, width, glyphs)}|"
        )
    if len(traces) > max_ranks:
        lines.append(f"... ({len(traces) - max_ranks} more ranks)")
    return "\n".join(lines)


def occupancy(
    events: list[tuple[float, float, str]], labels: set[str] | None = None
) -> float:
    """Fraction of the rank's span covered by the given labels (all
    labels when ``None``) — a scalar 'how busy' metric."""
    if not events:
        return 0.0
    span = max(t1 for _t0, t1, _l in events) - min(t0 for t0, _t1, _l in events)
    if span <= 0:
        return 0.0
    covered = sum(
        t1 - t0
        for t0, t1, label in events
        if labels is None or label in labels
    )
    return covered / span
