"""Plain-text tables and bar charts for benchmark output.

The benchmark harness prints every reproduced table/figure in a form
directly comparable with the paper; these helpers keep that formatting
in one place.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width table with a header rule; floats get 3 decimals."""

    def cell(v: object) -> str:
        if isinstance(v, float):
            return f"{v:.3f}"
        return str(v)

    srows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, v in enumerate(row):
            widths[i] = max(widths[i], len(v))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in srows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_bars(
    items: Sequence[tuple[str, float]],
    width: int = 48,
    unit: str = "s",
) -> str:
    """Horizontal ASCII bar chart (used for the Figure 8 breakdowns)."""
    if not items:
        return "(empty)"
    peak = max(v for _, v in items) or 1.0
    label_w = max(len(k) for k, _ in items)
    lines = []
    for k, v in items:
        n = int(round(width * v / peak))
        lines.append(f"{k.rjust(label_w)} | {'#' * n}{' ' * (width - n)} {v:.4f}{unit}")
    return "\n".join(lines)


def format_stacked_breakdown(
    columns: Sequence[tuple[str, dict[str, float]]],
    labels: Sequence[str],
) -> str:
    """Per-variant step breakdown as a label x variant matrix plus
    totals — the textual equivalent of Figure 8's stacked bars."""
    headers = ["step"] + [name for name, _ in columns]
    rows = []
    for label in labels:
        rows.append([label] + [bd.get(label, 0.0) for _, bd in columns])
    rows.append(["TOTAL"] + [sum(bd.values()) for _, bd in columns])
    return format_table(headers, rows)
