"""Markdown rendering for EXPERIMENTS.md-style reports."""

from __future__ import annotations

from typing import Iterable, Sequence


def md_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """GitHub-flavored markdown table; floats get 3 decimals."""

    def cell(v: object) -> str:
        if isinstance(v, float):
            return f"{v:.3f}"
        return str(v)

    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(cell(v) for v in row) + " |")
    return "\n".join(lines)


def md_section(title: str, body: str, level: int = 2) -> str:
    """A heading plus body with blank-line separation."""
    return f"{'#' * level} {title}\n\n{body}\n"


def overlap_table(cells) -> str:
    """Per-variant overlap metrics of a cell list as a markdown table.

    Consumes :class:`~repro.bench.runner.CellResult.metrics` (the
    :func:`repro.obs.run_metrics` summaries attached when the cells were
    tuned); cells evaluated before the observability layer existed have
    no metrics and are skipped.
    """
    rows = []
    for cell in cells:
        for variant in sorted(cell.metrics):
            m = cell.metrics[variant]
            rows.append([
                cell.p, cell.n, variant,
                m["overlap_efficiency_pct"],
                m["exposed_comm_s"],
                m.get("test_calls_per_rank", 0),
            ])
    if not rows:
        return "*(no overlap metrics recorded for these cells)*"
    return md_table(
        ["p", "N", "variant", "overlap eff %", "exposed comm (s)",
         "tests/rank"],
        rows,
    )
