"""Markdown rendering for EXPERIMENTS.md-style reports."""

from __future__ import annotations

from typing import Iterable, Sequence


def md_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """GitHub-flavored markdown table; floats get 3 decimals."""

    def cell(v: object) -> str:
        if isinstance(v, float):
            return f"{v:.3f}"
        return str(v)

    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(cell(v) for v in row) + " |")
    return "\n".join(lines)


def md_section(title: str, body: str, level: int = 2) -> str:
    """A heading plus body with blank-line separation."""
    return f"{'#' * level} {title}\n\n{body}\n"


def overlap_table(cells) -> str:
    """Per-variant overlap metrics of a cell list as a markdown table.

    Consumes :class:`~repro.bench.runner.CellResult.metrics` (the
    :func:`repro.obs.run_metrics` summaries attached when the cells were
    tuned); cells evaluated before the observability layer existed have
    no metrics and are skipped.  When any cell was evaluated under
    injected faults (:mod:`repro.faults`), a ``faults`` column shows the
    spec — overlap efficiency under a degraded machine next to the
    clean rows.
    """
    rows = []
    any_faults = any(cell.faults for cell in cells)
    for cell in cells:
        for variant in sorted(cell.metrics):
            m = cell.metrics[variant]
            row = [
                cell.p, cell.n, variant,
                m["overlap_efficiency_pct"],
                m["exposed_comm_s"],
                m.get("test_calls_per_rank", 0),
            ]
            if any_faults:
                row.append(cell.faults or "—")
            rows.append(row)
    if not rows:
        return "*(no overlap metrics recorded for these cells)*"
    headers = ["p", "N", "variant", "overlap eff %", "exposed comm (s)",
               "tests/rank"]
    if any_faults:
        headers.append("faults")
    return md_table(headers, rows)
