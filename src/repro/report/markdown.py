"""Markdown rendering for EXPERIMENTS.md-style reports."""

from __future__ import annotations

from typing import Iterable, Sequence

#: pipeline steps that carry per-tile attrs, in pipeline order
TILE_STEPS = ("FFTy", "Pack", "Unpack", "FFTx")

_SHADE = "▁▂▃▄▅▆▇█"


def md_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """GitHub-flavored markdown table; floats get 3 decimals."""

    def cell(v: object) -> str:
        if isinstance(v, float):
            return f"{v:.3f}"
        return str(v)

    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(cell(v) for v in row) + " |")
    return "\n".join(lines)


def md_section(title: str, body: str, level: int = 2) -> str:
    """A heading plus body with blank-line separation."""
    return f"{'#' * level} {title}\n\n{body}\n"


def tile_step_durations(
    trace, steps: Sequence[str] = TILE_STEPS
) -> dict[int, dict[str, float]]:
    """Mean per-tile step durations from a trace's rank spans.

    ``trace`` is a :class:`~repro.obs.Tracer` or a span iterable; only
    spans carrying a ``tile`` attr contribute (the pipeline records one
    on every FFTy/Pack/Unpack/FFTx span when tracing is on).  Returns
    ``{tile: {step: mean_seconds}}`` — the mean is across ranks (and
    across repeats, for multi-run traces), because the question this
    view answers is *which tile* is slow, not which rank.
    """
    spans = getattr(trace, "spans", trace)
    sums: dict[int, dict[str, list[float]]] = {}
    for span in spans:
        tile = span.attrs.get("tile")
        if tile is None or span.name not in steps:
            continue
        sums.setdefault(int(tile), {}).setdefault(span.name, []).append(
            span.duration
        )
    return {
        tile: {step: sum(vals) / len(vals) for step, vals in by_step.items()}
        for tile, by_step in sums.items()
    }


def tile_heatmap(trace, steps: Sequence[str] = TILE_STEPS) -> str:
    """Tile × step duration heatmap as a markdown table.

    Each cell shows the mean duration plus a shade glyph normalized
    *within its step column*, so a straggling tile stands out per step —
    the pipeline imbalance that per-step averages (Figure-8 style
    breakdowns) wash out.  The last column shades each tile's total
    against the heaviest tile.
    """
    per_tile = tile_step_durations(trace, steps)
    if not per_tile:
        return ("*(no per-tile spans in this trace — record one with rank "
                "timelines, e.g. `repro run --trace`)*")

    def shade(value: float, peak: float) -> str:
        if peak <= 0.0:
            return _SHADE[0]
        idx = round(value / peak * (len(_SHADE) - 1))
        return _SHADE[max(0, min(idx, len(_SHADE) - 1))]

    present = [
        s for s in steps if any(s in by for by in per_tile.values())
    ]
    peaks = {
        s: max(per_tile[t].get(s, 0.0) for t in per_tile) for s in present
    }
    totals = {
        t: sum(per_tile[t].get(s, 0.0) for s in present) for t in per_tile
    }
    peak_total = max(totals.values())
    rows = []
    for tile in sorted(per_tile):
        row: list[object] = [tile]
        for s in present:
            v = per_tile[tile].get(s)
            row.append("—" if v is None else f"{v:.4f} {shade(v, peaks[s])}")
        row.append(f"{totals[tile]:.4f} {shade(totals[tile], peak_total)}")
        rows.append(row)
    return md_table(["tile"] + [f"{s} (s)" for s in present] + ["total (s)"],
                    rows)


def overlap_table(cells) -> str:
    """Per-variant overlap metrics of a cell list as a markdown table.

    Consumes :class:`~repro.bench.runner.CellResult.metrics` (the
    :func:`repro.obs.run_metrics` summaries attached when the cells were
    tuned); cells evaluated before the observability layer existed have
    no metrics and are skipped.  When any cell was evaluated under
    injected faults (:mod:`repro.faults`), a ``faults`` column shows the
    spec — overlap efficiency under a degraded machine next to the
    clean rows.
    """
    rows = []
    any_faults = any(cell.faults for cell in cells)
    for cell in cells:
        for variant in sorted(cell.metrics):
            m = cell.metrics[variant]
            row = [
                cell.p, cell.n, variant,
                m["overlap_efficiency_pct"],
                m["exposed_comm_s"],
                m.get("test_calls_per_rank", 0),
            ]
            if any_faults:
                row.append(cell.faults or "—")
            rows.append(row)
    if not rows:
        return "*(no overlap metrics recorded for these cells)*"
    headers = ["p", "N", "variant", "overlap eff %", "exposed comm (s)",
               "tests/rank"]
    if any_faults:
        headers.append("faults")
    return md_table(headers, rows)


def apps_table(results) -> str:
    """Application-workload results as a markdown table.

    ``results`` is an iterable of :class:`~repro.apps.AppResult` (or the
    dicts their ``as_dict`` produces) — one row per app run: plan
    source, steady-state throughput with warmup excluded, per-step
    percentiles, the plan-reuse speedup, and the oracle check.
    """
    rows = []
    for res in results:
        d = res if isinstance(res, dict) else res.as_dict()
        nx, ny, nz = d["shape"]
        rows.append([
            d["app"],
            f"{nx}x{ny}x{nz}",
            d["p"],
            d["plan"]["source"],
            f"{d['transforms_per_sec']:.1f}",
            f"{d['step_p50_s'] * 1e3:.2f}",
            f"{d['step_p95_s'] * 1e3:.2f}",
            f"{d['plan_reuse_speedup']:.2f}x",
            "ok" if d["numerics_ok"] else "FAIL",
        ])
    if not rows:
        return "*(no application runs recorded)*"
    return md_table(
        ["app", "grid", "p", "plan", "transforms/s",
         "step p50 (ms)", "step p95 (ms)", "reuse speedup", "numerics"],
        rows,
    )
