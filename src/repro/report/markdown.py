"""Markdown rendering for EXPERIMENTS.md-style reports."""

from __future__ import annotations

from typing import Iterable, Sequence


def md_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """GitHub-flavored markdown table; floats get 3 decimals."""

    def cell(v: object) -> str:
        if isinstance(v, float):
            return f"{v:.3f}"
        return str(v)

    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(cell(v) for v in row) + " |")
    return "\n".join(lines)


def md_section(title: str, body: str, level: int = 2) -> str:
    """A heading plus body with blank-line separation."""
    return f"{'#' * level} {title}\n\n{body}\n"
