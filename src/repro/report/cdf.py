"""ASCII cumulative-distribution plot (Figure 5's form)."""

from __future__ import annotations

import numpy as np


def format_cdf(
    samples: np.ndarray,
    width: int = 60,
    height: int = 16,
    xlabel: str = "time (seconds)",
) -> str:
    """Render the empirical CDF of ``samples`` as an ASCII plot.

    X axis spans [min, max] of the samples; Y axis is the cumulative
    fraction 0..1, like the paper's Figure 5.
    """
    xs = np.sort(np.asarray(samples, dtype=float))
    n = len(xs)
    if n == 0:
        return "(no samples)"
    lo, hi = float(xs[0]), float(xs[-1])
    span = hi - lo or 1.0
    grid = [[" "] * width for _ in range(height)]
    for i, x in enumerate(xs):
        frac = (i + 1) / n
        col = min(width - 1, int((x - lo) / span * (width - 1)))
        row = min(height - 1, int((1.0 - frac) * (height - 1)))
        grid[row][col] = "*"
    lines = []
    for r, row in enumerate(grid):
        frac = 1.0 - r / (height - 1)
        lines.append(f"{frac:4.2f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      {lo:<12.4f}{'':^{max(0, width - 24)}}{hi:>12.4f}")
    lines.append(f"      {xlabel}")
    return "\n".join(lines)


def summarize_cdf(samples: np.ndarray) -> dict[str, float]:
    """Headline numbers the paper quotes about Figure 5."""
    xs = np.asarray(samples, dtype=float)
    return {
        "min": float(xs.min()),
        "p1": float(np.percentile(xs, 1)),
        "median": float(np.percentile(xs, 50)),
        "p99": float(np.percentile(xs, 99)),
        "max": float(xs.max()),
        "spread": float(xs.max() / xs.min()),
    }
