"""The paper's experiment grid and published reference numbers.

Cell grids drive the benchmark harness; the ``PAPER_*`` dictionaries
hold the numbers printed in the paper's tables so every benchmark can
report *paper vs. measured* side by side (the comparison target is the
shape — orderings, ratios, crossovers — not absolute seconds; see
DESIGN.md §2).
"""

from __future__ import annotations

import os

from ..core.params import TuningParams

#: (p, N) cells of Tables 2(a)/2(b), Figures 7(a)/7(b), Table 3(a)/3(b).
SMALL_CELLS: list[tuple[int, int]] = [
    (p, n) for p in (16, 32) for n in (256, 384, 512, 640)
]

#: (p, N) cells of Table 2(c), Figure 7(c), Table 3(c) — Hopper only.
LARGE_CELLS: list[tuple[int, int]] = [
    (p, n) for p in (128, 256) for n in (1280, 1536, 1792, 2048)
]

#: Figure 8 breakdown settings: (platform name, p, N).
BREAKDOWN_CELLS: list[tuple[str, int, int]] = [
    ("UMD-Cluster", 32, 640),
    ("Hopper", 32, 640),
    ("Hopper", 256, 2048),
]

VARIANT_ORDER = ("FFTW", "NEW", "TH")


def bench_scale() -> str:
    """``full`` (default) or ``quick`` via $REPRO_BENCH_SCALE.

    ``quick`` trims cell grids and tuning budgets so the whole benchmark
    suite runs in a couple of minutes; ``full`` regenerates everything.
    """
    return os.environ.get("REPRO_BENCH_SCALE", "full").lower()


def cells_for(kind: str) -> list[tuple[int, int]]:
    """Cell grid for ``"small"`` or ``"large"``, honoring the scale."""
    cells = SMALL_CELLS if kind == "small" else LARGE_CELLS
    if bench_scale() == "quick":
        return [cells[0], cells[-1]]
    return cells


def tuning_budget(p: int) -> int:
    """Max Nelder-Mead suggestions per tuning session.

    Large-scale cells get a smaller cap: each evaluation simulates a
    256-rank machine, and Nelder-Mead has long since converged to its
    neighborhood by 100 suggestions (cache hits dominate after ~40).
    """
    if bench_scale() == "quick":
        return 40
    return 100 if p >= 128 else 300


# ---------------------------------------------------------------------------
# published numbers (seconds) — Table 2: {(p, N): (FFTW, NEW, TH)}
# ---------------------------------------------------------------------------

PAPER_TABLE2A_UMD: dict[tuple[int, int], tuple[float, float, float]] = {
    (16, 256): (0.369, 0.245, 0.319),
    (16, 384): (1.207, 0.725, 1.063),
    (16, 512): (2.948, 1.966, 2.514),
    (16, 640): (5.927, 3.515, 5.234),
    (32, 256): (0.189, 0.153, 0.197),
    (32, 384): (0.653, 0.477, 0.644),
    (32, 512): (1.580, 1.119, 1.520),
    (32, 640): (3.129, 2.158, 3.061),
}

PAPER_TABLE2B_HOPPER: dict[tuple[int, int], tuple[float, float, float]] = {
    (16, 256): (0.096, 0.087, 0.106),
    (16, 384): (0.322, 0.293, 0.354),
    (16, 512): (0.836, 0.693, 0.885),
    (16, 640): (1.636, 1.428, 1.725),
    (32, 256): (0.061, 0.046, 0.061),
    (32, 384): (0.189, 0.146, 0.198),
    (32, 512): (0.475, 0.340, 0.488),
    (32, 640): (0.920, 0.747, 0.930),
}

PAPER_TABLE2C_HOPPER_LARGE: dict[tuple[int, int], tuple[float, float, float]] = {
    (128, 1280): (2.426, 1.638, 2.505),
    (128, 1536): (4.722, 3.092, 4.573),
    (128, 1792): (8.029, 5.115, 7.746),
    (128, 2048): (11.269, 7.079, 12.994),
    (256, 1280): (1.373, 0.920, 1.389),
    (256, 1536): (2.574, 1.650, 2.452),
    (256, 1792): (4.781, 2.850, 4.253),
    (256, 2048): (6.467, 3.679, 6.850),
}

PAPER_TABLE2: dict[str, dict[tuple[int, int], tuple[float, float, float]]] = {
    "UMD-Cluster": PAPER_TABLE2A_UMD,
    "Hopper": PAPER_TABLE2B_HOPPER,
    "Hopper-large": PAPER_TABLE2C_HOPPER_LARGE,
}

# ------------------------------------------------------------------------
# Table 4 — auto-tuning time (seconds): {(p, N): (FFTW, NEW, TH)}
# ------------------------------------------------------------------------

PAPER_TABLE4A_UMD = {
    (16, 256): (22.569, 16.443, 5.732),
    (16, 384): (60.859, 27.178, 13.279),
    (16, 512): (87.568, 123.993, 30.916),
    (16, 640): (202.134, 197.916, 71.724),
    (32, 256): (14.388, 11.385, 3.768),
    (32, 384): (44.795, 28.489, 7.834),
    (32, 512): (67.426, 45.308, 25.124),
    (32, 640): (174.081, 73.263, 52.897),
}

PAPER_TABLE4B_HOPPER = {
    (16, 256): (11.413, 9.091, 2.221),
    (16, 384): (37.786, 17.342, 17.984),
    (16, 512): (69.912, 43.718, 27.020),
    (16, 640): (249.358, 87.573, 22.857),
    (32, 256): (6.614, 6.467, 1.382),
    (32, 384): (23.317, 155.975, 10.425),
    (32, 512): (41.969, 165.527, 6.666),
    (32, 640): (188.474, 38.279, 15.027),
}

PAPER_TABLE4C_HOPPER_LARGE = {
    (128, 1280): (461.240, 140.986, 34.474),
    (128, 1536): (460.229, 198.068, 60.475),
    (128, 1792): (484.678, 335.273, 83.986),
    (128, 2048): (562.398, 396.553, 120.555),
    (256, 1280): (400.582, 80.085, 17.172),
    (256, 1536): (401.474, 109.250, 34.568),
    (256, 1792): (414.020, 144.743, 46.684),
    (256, 2048): (465.411, 224.744, 75.616),
}

PAPER_TABLE4 = {
    "UMD-Cluster": PAPER_TABLE4A_UMD,
    "Hopper": PAPER_TABLE4B_HOPPER,
    "Hopper-large": PAPER_TABLE4C_HOPPER_LARGE,
}


def _tp(t, w, px, pz, uy, uz, fy, fp, fu, fx) -> TuningParams:
    return TuningParams(T=t, W=w, Px=px, Pz=pz, Uy=uy, Uz=uz,
                        Fy=fy, Fp=fp, Fu=fu, Fx=fx)


# -------------------------------------------------------------------------
# Table 3 — parameter values the paper's tuner found for NEW
# -------------------------------------------------------------------------

PAPER_TABLE3A_UMD: dict[tuple[int, int], TuningParams] = {
    (16, 256): _tp(32, 3, 8, 2, 16, 4, 32, 8, 8, 16),
    (16, 384): _tp(16, 2, 16, 1, 16, 2, 16, 16, 8, 16),
    (16, 512): _tp(64, 3, 16, 2, 16, 2, 32, 16, 32, 32),
    (16, 640): _tp(32, 3, 16, 1, 16, 2, 16, 16, 16, 16),
    (32, 256): _tp(64, 3, 8, 8, 8, 4, 64, 8, 16, 64),
    (32, 384): _tp(32, 2, 12, 2, 8, 2, 32, 8, 8, 16),
    (32, 512): _tp(32, 2, 16, 4, 16, 4, 64, 8, 8, 16),
    (32, 640): _tp(32, 2, 8, 1, 8, 1, 16, 16, 16, 16),
}

PAPER_TABLE3B_HOPPER: dict[tuple[int, int], TuningParams] = {
    (16, 256): _tp(32, 3, 16, 2, 8, 2, 16, 16, 16, 32),
    (16, 384): _tp(32, 3, 24, 1, 24, 2, 16, 16, 16, 16),
    (16, 512): _tp(64, 3, 32, 1, 16, 2, 64, 64, 64, 64),
    (16, 640): _tp(64, 3, 16, 2, 16, 2, 64, 32, 64, 32),
    (32, 256): _tp(64, 2, 8, 4, 8, 4, 64, 16, 16, 64),
    (32, 384): _tp(64, 3, 12, 2, 8, 2, 128, 32, 64, 128),
    (32, 512): _tp(128, 3, 16, 2, 8, 4, 128, 64, 32, 64),
    (32, 640): _tp(64, 3, 16, 2, 16, 2, 64, 64, 64, 64),
}

PAPER_TABLE3C_HOPPER_LARGE: dict[tuple[int, int], TuningParams] = {
    (128, 1280): _tp(256, 4, 10, 2, 8, 2, 512, 128, 256, 512),
    (128, 1536): _tp(128, 3, 12, 1, 8, 2, 1024, 128, 128, 1024),
    (128, 1792): _tp(128, 4, 14, 1, 8, 2, 256, 128, 128, 512),
    (128, 2048): _tp(128, 4, 16, 1, 8, 2, 512, 128, 128, 512),
    (256, 1280): _tp(256, 4, 5, 4, 2, 8, 1280, 64, 64, 1024),
    (256, 1536): _tp(256, 3, 6, 2, 4, 2, 1024, 128, 256, 1024),
    (256, 1792): _tp(256, 3, 7, 2, 4, 2, 512, 128, 256, 1024),
    (256, 2048): _tp(512, 3, 8, 2, 4, 2, 2048, 256, 512, 2048),
}

PAPER_TABLE3 = {
    "UMD-Cluster": PAPER_TABLE3A_UMD,
    "Hopper": PAPER_TABLE3B_HOPPER,
    "Hopper-large": PAPER_TABLE3C_HOPPER_LARGE,
}

#: Headline speedup ranges the paper reports (Section 5.2).
PAPER_SPEEDUP_RANGES = {
    "UMD-Cluster": (1.23, 1.68),
    "Hopper": (1.10, 1.40),
    "Hopper-large": (1.48, 1.76),
}
