"""Model-calibration report: simulated vs. published absolute times.

The reproduction target is shape, not seconds — but the machine models
were calibrated so the FFTW baseline lands near the paper's Table 2
columns, and this module quantifies how near.  Run it after touching any
constant in :mod:`repro.machine.platforms`:

    python -m repro.bench.calibrate
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.api import run_case
from ..core.params import ProblemShape
from ..machine.platforms import HOPPER, UMD_CLUSTER, Platform
from ..report.ascii import format_table
from .workloads import PAPER_TABLE2, PAPER_TABLE3


@dataclass
class CalibrationRow:
    """One paper-vs-simulated comparison cell."""
    platform: str
    p: int
    n: int
    variant: str
    paper: float
    ours: float

    @property
    def log_error(self) -> float:
        """|log(ours / paper)| — symmetric relative error."""
        return abs(math.log(self.ours / self.paper))


def calibration_rows(
    grids: dict[str, tuple[Platform, dict]] | None = None,
) -> list[CalibrationRow]:
    """FFTW-baseline and paper-config NEW times vs. the paper's numbers.

    ``NEW`` runs with the *paper's* Table 3 configuration (no tuning), so
    the comparison isolates the machine model from the search.
    """
    if grids is None:
        grids = {
            "UMD-Cluster": (UMD_CLUSTER, PAPER_TABLE2["UMD-Cluster"]),
            "Hopper": (HOPPER, PAPER_TABLE2["Hopper"]),
            "Hopper-large": (HOPPER, PAPER_TABLE2["Hopper-large"]),
        }
    rows: list[CalibrationRow] = []
    for key, (platform, table) in grids.items():
        params_table = PAPER_TABLE3[key]
        for (p, n), (t_fftw, t_new, _t_th) in table.items():
            shape = ProblemShape(n, n, n, p)
            fftw, _ = run_case("FFTW", platform, shape)
            rows.append(
                CalibrationRow(platform.name, p, n, "FFTW", t_fftw, fftw.elapsed)
            )
            new, _ = run_case("NEW", platform, shape, params_table[(p, n)])
            rows.append(
                CalibrationRow(platform.name, p, n, "NEW", t_new, new.elapsed)
            )
    return rows


def geometric_mean_ratio(rows: list[CalibrationRow]) -> float:
    """exp(mean |log(ours/paper)|): 1.0 = perfect, 1.3 = within 30%."""
    if not rows:
        return float("nan")
    return math.exp(sum(r.log_error for r in rows) / len(rows))


def main() -> None:
    """Print the full calibration table (CLI entry point)."""  # pragma: no cover - manual tool
    rows = calibration_rows()
    print(
        format_table(
            ["platform", "p", "N", "variant", "paper (s)", "ours (s)", "ratio"],
            [
                [r.platform, r.p, r.n, r.variant, r.paper, r.ours,
                 r.ours / r.paper]
                for r in rows
            ],
            title="Machine-model calibration vs. the paper's Table 2",
        )
    )
    print(f"\ngeometric-mean deviation: {geometric_mean_ratio(rows):.3f}x")


if __name__ == "__main__":  # pragma: no cover
    main()
