"""Benchmark harness: experiment grids, paper reference data, runners."""

from .runner import (
    CellResult,
    clear_cache,
    cross_platform_time,
    evaluate_cell,
    load_cache,
    run_breakdown,
    save_cache,
)
from .workloads import (
    BREAKDOWN_CELLS,
    LARGE_CELLS,
    PAPER_SPEEDUP_RANGES,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    SMALL_CELLS,
    VARIANT_ORDER,
    bench_scale,
    cells_for,
    tuning_budget,
)

__all__ = [
    "BREAKDOWN_CELLS",
    "CellResult",
    "LARGE_CELLS",
    "PAPER_SPEEDUP_RANGES",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "SMALL_CELLS",
    "VARIANT_ORDER",
    "bench_scale",
    "cells_for",
    "clear_cache",
    "cross_platform_time",
    "evaluate_cell",
    "load_cache",
    "run_breakdown",
    "save_cache",
    "tuning_budget",
]
