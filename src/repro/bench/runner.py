"""Shared cell evaluation for the benchmark suite.

``evaluate_cell`` tunes NEW and TH and runs FFTW for one (platform, p, N)
setting, exactly the way the paper built each Table 2 row; results are
memoized per process (and optionally on disk) because Tables 2/3/4 and
Figures 7/9 all consume the same cells.

The memo key includes the *effective tuning budget*: the same cell
evaluated with a different ``max_evaluations`` is a different
experiment and must not alias a cached one.  For multi-core machines,
:mod:`repro.exec` shards grids of cells over worker processes and feeds
this same memo through :func:`prime_cache`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from ..core.api import RunResult, run_case
from ..core.params import ProblemShape, TuningParams
from ..faults import current_faults
from ..machine.platforms import Platform, get_platform
from ..tuning.evalstore import EvalStore
from ..tuning.tuner import TuningResult, autotune
from .workloads import tuning_budget


@dataclass
class CellResult:
    """One (platform, p, N) row of Table 2 with its tuning byproducts."""

    platform: str
    p: int
    n: int
    times: dict[str, float]           # variant -> tuned 3-D FFT seconds
    tuning_times: dict[str, float]    # variant -> Table 4 seconds
    params: dict[str, TuningParams]   # variant -> winning configuration
    evaluations: dict[str, int]       # variant -> tuning evaluations
    budget: int = 0                   # tuning budget the cell was built with
    #: variant -> overlap summary of the tuned full run
    #: (:func:`repro.obs.run_metrics`: overlap_efficiency_pct,
    #: exposed_comm_s, scheduler counters, ...)
    metrics: dict[str, dict] = field(default_factory=dict)
    #: canonical fault-spec key the cell was evaluated under ("" =
    #: fault-free); part of the memo/store key, so faulty and fault-free
    #: results never alias
    faults: str = ""

    def speedup(self, variant: str) -> float:
        """Speedup of ``variant`` over the FFTW baseline (Figure 7)."""
        return self.times["FFTW"] / self.times[variant]

    def key(self) -> tuple[str, int, int, int, str]:
        """This cell's full memo/store key."""
        return (self.platform, self.p, self.n, self.budget, self.faults)


_CACHE: dict[tuple[str, int, int, int, str], CellResult] = {}


def effective_budget(p: int, max_evaluations: int | None = None) -> int:
    """The tuning budget a cell evaluation will actually use."""
    return max_evaluations if max_evaluations is not None else tuning_budget(p)


def active_fault_key() -> str:
    """Canonical key of the ambient fault spec ("" when fault-free)."""
    spec = current_faults()
    return spec.key() if spec is not None else ""


def cell_key(
    platform: str, p: int, n: int, max_evaluations: int | None = None
) -> tuple[str, int, int, int, str]:
    """Memo/store key for one cell:
    (platform, p, n, effective budget, ambient fault key)."""
    return (
        platform, p, n, effective_budget(p, max_evaluations),
        active_fault_key(),
    )


def evaluate_cell(
    platform: Platform | str,
    p: int,
    n: int,
    max_evaluations: int | None = None,
    eval_store: EvalStore | None = None,
) -> CellResult:
    """Tune and time FFTW/NEW/TH for one cell (memoized).

    Cache layering, outermost first: the in-process memo answers whole
    cells; ``eval_store`` (when given) answers the *individual tuning
    evaluations* inside a cell that the shared pool has already timed —
    a cell missing from the memo can still tune for free point by point.
    """
    plat = get_platform(platform) if isinstance(platform, str) else platform
    budget = effective_budget(p, max_evaluations)
    fault_key = active_fault_key()
    key = (plat.name, p, n, budget, fault_key)
    if key in _CACHE:
        return _CACHE[key]
    shape = ProblemShape(n, n, n, p)
    times, tunings, params, evals, metrics = {}, {}, {}, {}, {}
    for variant in ("FFTW", "NEW", "TH"):
        result: TuningResult = autotune(
            variant, plat, shape, max_evaluations=budget,
            eval_store=eval_store,
        )
        times[variant] = result.fft_time
        tunings[variant] = result.tuning_time
        params[variant] = result.best_params
        evals[variant] = result.evaluations
        if result.full_run.sim is not None:
            from ..obs.metrics import run_metrics

            metrics[variant] = run_metrics(result.full_run.sim)
    cell = CellResult(
        platform=plat.name, p=p, n=n,
        times=times, tuning_times=tunings, params=params, evaluations=evals,
        budget=budget, metrics=metrics, faults=fault_key,
    )
    _CACHE[key] = cell
    return cell


def prime_cache(cells: list[CellResult]) -> None:
    """Insert externally computed cells (parallel workers) into the memo."""
    for cell in cells:
        _CACHE[cell.key()] = cell


def run_breakdown(
    platform: Platform | str,
    p: int,
    n: int,
    variants: tuple[str, ...] = ("NEW", "NEW-0", "TH", "TH-0"),
) -> dict[str, RunResult]:
    """Figure 8 data: per-step breakdowns; the overlapped variants run
    with their tuned configuration, the ``-0`` twins reuse it with
    overlap disabled ("with all the other parameters equal", §5.2.1)."""
    plat = get_platform(platform) if isinstance(platform, str) else platform
    cell = evaluate_cell(plat, p, n)
    shape = ProblemShape(n, n, n, p)
    out: dict[str, RunResult] = {}
    for variant in variants:
        tuned_source = "NEW" if variant.startswith("NEW") else "TH"
        params = cell.params.get(tuned_source)
        res, _ = run_case(variant, plat, shape, params)
        out[variant] = res
    return out


def cross_platform_time(
    run_on: Platform | str,
    tuned_on: Platform | str,
    p: int,
    n: int,
    variant: str = "NEW",
) -> float:
    """Figure 9's CROSS bar: run on one platform with the configuration
    tuned on the other."""
    plat = get_platform(run_on) if isinstance(run_on, str) else run_on
    foreign = evaluate_cell(tuned_on, p, n)
    shape = ProblemShape(n, n, n, p)
    res, _ = run_case(variant, plat, shape, foreign.params[variant])
    return res.elapsed


# ------------------------------------------------------------------------
# serialization (shared by the disk cache and the exec-layer store)
# ------------------------------------------------------------------------


def cell_to_dict(cell: CellResult) -> dict:
    """JSON-ready representation of one cell."""
    return {
        "platform": cell.platform,
        "p": cell.p,
        "n": cell.n,
        "budget": cell.budget,
        "faults": cell.faults,
        "times": cell.times,
        "tuning_times": cell.tuning_times,
        "evaluations": cell.evaluations,
        "params": {k: v.as_dict() for k, v in cell.params.items()},
        "metrics": cell.metrics,
    }


def cell_from_dict(item: dict) -> CellResult:
    """Inverse of :func:`cell_to_dict`."""
    return CellResult(
        platform=item["platform"],
        p=item["p"],
        n=item["n"],
        times=item["times"],
        tuning_times=item["tuning_times"],
        evaluations=item["evaluations"],
        params={k: TuningParams(**v) for k, v in item["params"].items()},
        budget=item["budget"],
        # pre-observability stores have no metrics section; an empty
        # dict keeps those cells loadable (summaries just omit them)
        metrics=item.get("metrics", {}),
        # pre-fault-injection stores were all fault-free
        faults=item.get("faults", ""),
    )


# ------------------------------------------------------------------------
# optional on-disk cache so repeated benchmark invocations skip tuning
# ------------------------------------------------------------------------


def save_cache(path: str | Path) -> None:
    """Persist all memoized cells to JSON (atomically: an interrupted or
    concurrent run can never leave a truncated file for load_cache)."""
    payload = [cell_to_dict(cell) for cell in _CACHE.values()]
    target = Path(path)
    tmp = target.with_name(target.name + f".tmp.{os.getpid()}")
    tmp.write_text(json.dumps(payload, indent=1))
    os.replace(tmp, target)


def load_cache(path: str | Path) -> int:
    """Load previously saved cells; returns the number restored.

    Entries from the pre-budget schema (no ``"budget"`` field) are
    skipped: their key is ambiguous, and silently aliasing them to some
    budget would resurrect the stale-cell bug the key exists to fix.
    """
    file = Path(path)
    if not file.exists():
        return 0
    restored = 0
    for item in json.loads(file.read_text()):
        if "budget" not in item:
            continue
        cell = cell_from_dict(item)
        _CACHE[cell.key()] = cell
        restored += 1
    return restored


def clear_cache() -> None:
    """Drop all memoized cells (test isolation)."""
    _CACHE.clear()
