"""Configuration for the long-lived tuned-plan server."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class ServeConfig:
    """Knobs for one :class:`~repro.serve.PlanServer`.

    The shape deliberately mirrors :class:`~repro.dist.DistConfig`:
    injectable ``clock``, ephemeral-port binding, an ``announce``
    callback for the CLI, and the same bearer-token story — one shared
    secret covers plan clients *and* the tuning-job worker fleet.
    """

    #: address the server binds; port 0 picks an ephemeral port
    #: (the chosen URL is printed / available as ``PlanServer.url``)
    host: str = "127.0.0.1"
    port: int = 0
    #: base directory for the per-tenant store pairs
    #: (``<root>/<tenant>/results/`` + ``<root>/<tenant>/evals.jsonl``)
    root: str = "plan_store"
    #: bearer token every client request must present; None disables
    #: auth (no header sent or checked).  Also forwarded to the tuning
    #: jobs' coordinator + spawned workers, so one secret covers both.
    token: str | None = None
    #: worker launch spec for cold-miss tuning jobs (see
    #: :class:`~repro.dist.DistConfig.workers`); empty = tune in-process
    #: on the job thread instead of dispatching to a fleet
    workers: str = ""
    #: ``--jobs`` forwarded to each spawned fleet worker
    worker_jobs: int = 1
    #: lease TTL for the tuning jobs' internal coordinator
    lease_ttl: float = 15.0
    #: concurrent background tuning jobs (requests never block on this
    #: — a miss always returns 202 immediately)
    job_threads: int = 1
    #: tuning budget when a request omits ``budget`` (None = the
    #: paper-scale default for the requested p, like the grid command)
    default_budget: int | None = None
    #: write every job state transition to ``<root>/jobs.journal.jsonl``
    #: and replay interrupted jobs on startup (:mod:`repro.serve.journal`)
    journal: bool = True
    #: seconds a graceful shutdown (SIGTERM/SIGINT) waits for active
    #: tuning jobs before journaling them ``interrupted`` and exiting
    drain_timeout: float = 30.0
    #: wall seconds a single tuning job may run before the watchdog
    #: fails it and frees its single-flight key (None = no watchdog)
    job_timeout: float | None = None
    #: ``Retry-After`` seconds sent with 503s while draining (None =
    #: derive from ``drain_timeout``)
    retry_after_s: int | None = None
    #: called with the server URL once it is listening
    announce: Callable[[str], None] | None = None
    clock: Callable[[], float] = time.monotonic
