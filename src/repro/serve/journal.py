"""Per-root job journal: every job state transition, durable on disk.

The stores make tuning *results* durable (a restarted server answers
warm plans from disk), but before this module the job *pipeline* was
not: a crashed or SIGKILLed ``repro serve`` silently dropped every
queued and running tuning job, and the clients polling them got 404s
forever.  The journal closes that gap with a write-ahead log in the
same spirit as the :class:`~repro.tuning.evalstore.EvalStore` JSONL
idiom — append-only records, atomic single-``write`` lines, and a
tolerant loader that skips (and warns about) a half-written trailing
line from a killed writer instead of refusing to start.

One journal per server root (``<root>/jobs.journal.jsonl``), shared by
all tenants; the tenant rides in each record.  A record is::

    {"ts": ..., "job": "job-000003", "state": "queued", "inc": 0,
     "tenant": "teamA", "request": {...}, "error": ""}

``state`` is one of the :mod:`repro.serve.jobs` lifecycle states plus
``interrupted`` — the journal-only marker for an incarnation that was
cut short (crash, drain timeout, executor shutdown).  ``request`` is
carried on ``queued`` records so a replay can re-enqueue without any
other source of truth; ``inc`` counts incarnations of one job id
across restarts.

Recovery is last-record-wins per job id, which makes replay idempotent
by construction: records are append-ordered, so duplicated transitions
collapse, and a crash *during* replay leaves the re-enqueued ``queued``
record (or the prior active record) as the tail — the next start simply
replays again.  Jobs whose final record is ``queued``, ``running``, or
``interrupted`` are offered for re-enqueue; ``done``/``failed`` are
terminal (the stores hold their product).
"""

from __future__ import annotations

import json
import os
import threading
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path

from .jobs import DONE, FAILED, QUEUED, RUNNING

#: journal-only state: this incarnation was cut short and (unless a
#: later record supersedes it) the job should be replayed on restart
INTERRUPTED = "interrupted"

#: every state a journal record may carry
JOURNAL_STATES = (QUEUED, RUNNING, DONE, FAILED, INTERRUPTED)

#: final-record states that make a job eligible for replay
REPLAY_STATES = (QUEUED, RUNNING, INTERRUPTED)


@dataclass
class JournalEntry:
    """The folded (last-record-wins) view of one job id."""

    job_id: str
    state: str
    tenant: str = ""
    request: dict = field(default_factory=dict)
    error: str = ""
    incarnation: int = 0

    @property
    def replayable(self) -> bool:
        """Whether this job was cut short and should be re-enqueued."""
        return self.state in REPLAY_STATES


class JobJournal:
    """Append-only JSONL write-ahead log of job state transitions.

    Appends are serialized by an internal lock and issued as one
    ``write`` of one newline-terminated line, then fsynced — a torn
    line can only be the file's tail (the SIGKILL case), which
    :meth:`load` skips with a warning.  Transitions are rare (a handful
    per job), so the fsync cost is irrelevant next to a tuning run.
    """

    def __init__(self, path: str | Path,
                 clock=time.time) -> None:
        self.path = Path(path)
        self._clock = clock
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def record(
        self,
        job_id: str,
        state: str,
        tenant: str = "",
        request: dict | None = None,
        error: str = "",
        incarnation: int = 0,
    ) -> None:
        """Append one transition record (atomic line, fsynced)."""
        if state not in JOURNAL_STATES:
            raise ValueError(f"unknown journal state {state!r}")
        rec: dict = {
            "ts": round(self._clock(), 6),
            "job": job_id,
            "state": state,
            "inc": incarnation,
        }
        if tenant:
            rec["tenant"] = tenant
        if request:
            rec["request"] = dict(request)
        if error:
            rec["error"] = error
        line = json.dumps(rec) + "\n"
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(line)
                fh.flush()
                try:
                    os.fsync(fh.fileno())
                except OSError:  # pragma: no cover - exotic filesystems
                    pass

    # -- recovery ----------------------------------------------------------

    def load(self) -> dict[str, JournalEntry]:
        """Fold the journal into one last-record-wins entry per job id.

        Tolerant by the same contract as
        :meth:`~repro.tuning.evalstore.EvalStore.from_jsonl`: lines
        that do not parse (a half-written tail from a killed writer),
        records missing required fields, and records with unknown
        states are skipped — counted and warned about, never fatal.
        Unknown extra fields are ignored, so a journal written by a
        future schema still yields every record this schema understands.
        """
        entries: dict[str, JournalEntry] = {}
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return entries
        skipped = 0
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
                job_id = rec["job"]
                state = rec["state"]
                if not isinstance(rec, dict) or not isinstance(job_id, str):
                    raise TypeError("malformed record")
                if state not in JOURNAL_STATES:
                    raise ValueError(f"unknown state {state!r}")
            except (ValueError, KeyError, TypeError):
                skipped += 1
                continue
            entry = entries.get(job_id)
            if entry is None:
                entry = entries[job_id] = JournalEntry(
                    job_id=job_id, state=state
                )
            entry.state = state
            try:
                entry.incarnation = max(
                    entry.incarnation, int(rec.get("inc", 0) or 0)
                )
            except (TypeError, ValueError):
                pass
            tenant = rec.get("tenant")
            if isinstance(tenant, str) and tenant:
                entry.tenant = tenant
            request = rec.get("request")
            if isinstance(request, dict) and request:
                entry.request = request
            error = rec.get("error")
            if isinstance(error, str) and error:
                entry.error = error
        if skipped:
            warnings.warn(
                f"job journal {self.path}: skipped {skipped} unreadable "
                f"record(s) (torn tail from a killed writer, or a foreign "
                f"schema); recovered {len(entries)} job(s) from the rest",
                RuntimeWarning,
                stacklevel=2,
            )
        return entries

    def replayable(self) -> list[JournalEntry]:
        """Jobs cut short by the previous incarnation, in job-id order
        (creation order — ids are zero-padded sequence numbers)."""
        return sorted(
            (e for e in self.load().values() if e.replayable),
            key=lambda e: e.job_id,
        )

    @staticmethod
    def max_seq(entries: dict[str, JournalEntry]) -> int:
        """Largest numeric suffix among ``job-NNNNNN`` ids (0 if none);
        a restarted server seeds its id sequence past this so fresh
        jobs never collide with journaled history."""
        best = 0
        for job_id in entries:
            _, _, tail = job_id.rpartition("-")
            try:
                best = max(best, int(tail))
            except ValueError:
                continue
        return best
