"""Tiny client for the plan server (stdlib only, like the rest).

Thin wrappers over :func:`repro.dist.protocol.call` so tests, the
bench harness, and scripts can ask a server for a plan without
hand-rolling HTTP::

    from repro.serve import request_plan, wait_for_plan

    code, body = request_plan(url, platform="BlueGene-P", p=64, n=256)
    if code == 202:                       # cold: a tuning job is running
        body = wait_for_plan(url, body["job"], timeout=600)
    params = body["plan"]["params"]
"""

from __future__ import annotations

import time

from ..dist.protocol import call
from ..errors import (
    DistProtocolError,
    DistUnreachableError,
    ItemTimeoutError,
)


def request_plan(
    base_url: str,
    platform: str,
    p: int,
    n: int,
    variant: str = "NEW",
    budget: int | None = None,
    faults: str = "",
    objective: str = "fft_time",
    tenant: str | None = None,
    token: str | None = None,
) -> tuple[int, dict]:
    """``POST /plan``; returns ``(status_code, body)``.

    200 = warm hit (body carries ``plan`` + ``provenance``); 202 = a
    tuning job was enqueued or joined (body carries ``job`` + ``poll``).
    4xx/5xx raise :class:`DistProtocolError` like every protocol call.
    """
    body: dict = {"platform": platform, "p": p, "n": n,
                  "variant": variant, "objective": objective}
    if budget is not None:
        body["budget"] = budget
    if faults:
        body["faults"] = faults
    if tenant is not None:
        body["tenant"] = tenant
    return call(base_url, "/plan", body, token=token, with_status=True)


def poll_plan(base_url: str, job_id: str,
              token: str | None = None) -> tuple[int, dict]:
    """``GET /plan/<id>``; returns ``(status_code, body)``."""
    return call(base_url, f"/plan/{job_id}", token=token, with_status=True)


def wait_for_plan(
    base_url: str,
    job_id: str,
    timeout: float = 600.0,
    poll_s: float = 0.25,
    token: str | None = None,
) -> dict:
    """Poll a job until its plan is ready; returns the plan body.

    Rides out server restarts: a poll that fails with
    :class:`DistUnreachableError` (connection refused while the server
    is down, 503 while it drains) is retried until the deadline — the
    job journal replays interrupted jobs under the *same* job id, so the
    handle this client is polling stays valid across the restart.  Only
    when the deadline expires does the transport error surface.

    Raises :class:`ItemTimeoutError` on timeout and
    :class:`DistProtocolError` if the job failed (the server's error
    message is carried through).
    """
    deadline = time.monotonic() + timeout
    state: str | None = None
    while True:
        try:
            _, body = poll_plan(base_url, job_id, token=token)
        except DistUnreachableError:
            if time.monotonic() >= deadline:
                raise
        else:
            state = body.get("state")
            if state == "done":
                return body
            if state == "failed":
                raise DistProtocolError(
                    f"tuning job {job_id} failed: {body.get('error', '?')}"
                )
            if time.monotonic() >= deadline:
                raise ItemTimeoutError(
                    f"plan job {job_id}",
                    f"still {state!r} after {timeout:.0f}s",
                )
        time.sleep(poll_s)
