"""The long-lived tuned-plan server (`repro serve`).

One process that answers "what configuration should I run?" for any
number of clients, the Active-Harmony-as-a-service shape the ROADMAP
calls for:

* ``POST /plan`` — body ``{platform, p, n, variant?, budget?, faults?,
  objective?, tenant?}``.  A warm hit (the tenant's
  :class:`~repro.exec.ResultStore` already holds the cell) answers
  ``200`` immediately with tuned params + provenance and **zero
  simulations**; a cold miss enqueues a background tuning job
  (single-flight per plan key) and answers ``202`` with a pollable
  handle.
* ``GET /plan/<id>`` — poll a job; ``done`` jobs answer with the same
  payload a warm hit produces.
* ``GET /status`` — uptime, tenants, job counts, store counters.
* ``GET /metrics`` — the server's registry (``serve_*`` lifecycle
  counters + everything the tuning jobs published, including the
  internal coordinator's ``dist_*`` when a fleet ran) as Prometheus
  text exposition, same idiom as the coordinator's.

Tuning jobs run through the standard
:func:`~repro.exec.evaluate_cells` path — in-process on the job thread
by default, or dispatched to a ``repro worker`` fleet via the PR-5
coordinator when :attr:`ServeConfig.workers` is set — so a served plan
is byte-identical to what ``repro grid`` would have stored for the
same cell.  Warm stores are held by a
:class:`~repro.serve.stores.StoreRegistry` (one pair per tenant) and
are safe under concurrent handler threads because the stores themselves
lock internally (DESIGN.md §5.13).

Auth: with :attr:`ServeConfig.token` set, every request must carry
``Authorization: Bearer <token>`` or is rejected with 401 before any
store or job state is touched; the same secret is forwarded to the
job fleet's coordinator/workers.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from ..bench.runner import CellResult, effective_budget
from ..dist.config import DistConfig
from ..dist.protocol import encode
from ..errors import FaultSpecError
from ..faults import injected_faults, parse_faults
from ..machine.platforms import get_platform
from ..obs.registry import current_registry, scoped_registry
from .config import ServeConfig
from .jobs import DONE, FAILED, JobManager, PlanJob
from .stores import DEFAULT_TENANT, GridStores, StoreRegistry

#: variants a plan can ask for; ``best`` picks the fastest tuned one
VARIANT_CHOICES = ("NEW", "TH", "FFTW", "best")

#: objective spellings a request may use and how they are reported
OBJECTIVE_CHOICES = ("fft_time", "speedup")


class BadRequest(ValueError):
    """A malformed plan request (mapped to HTTP 400)."""


class _AmbientGate:
    """Readers/writer gate around the process-global fault stack.

    A fault-injected tuning job must install its spec ambiently
    (:mod:`repro.faults` is process-global by design — pool workers
    inherit it), so while one runs, no other job may compute cell keys.
    Fault-free jobs are readers (any number at once), faulted jobs are
    writers (exclusive).  With the default single job thread this gate
    never blocks.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False

    @contextmanager
    def reading(self):
        with self._cond:
            while self._writer:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                self._cond.notify_all()

    @contextmanager
    def writing(self):
        with self._cond:
            while self._writer or self._readers:
                self._cond.wait()
            self._writer = True
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


def normalize_request(body: dict, config: ServeConfig) -> dict:
    """Validate and canonicalize one ``POST /plan`` body.

    Returns the normalized request dict (canonical platform name,
    effective budget, canonical fault key, ...) or raises
    :class:`BadRequest` with a client-facing message.
    """
    if not isinstance(body, dict):
        raise BadRequest("plan request must be a JSON object")
    try:
        platform = get_platform(str(body["platform"])).name
    except KeyError as exc:
        raise BadRequest(str(exc.args[0] if exc.args else exc)) from exc
    try:
        p = int(body["p"])
        n = int(body["n"])
    except (KeyError, TypeError, ValueError) as exc:
        raise BadRequest(f"need integer 'p' and 'n' fields: {exc}") from exc
    if p <= 0 or n <= 0:
        raise BadRequest(f"p and n must be positive (got p={p}, n={n})")
    variant = str(body.get("variant", "NEW"))
    if variant not in VARIANT_CHOICES:
        raise BadRequest(
            f"unknown variant {variant!r}; choose from {VARIANT_CHOICES}"
        )
    objective = str(body.get("objective", "fft_time"))
    if objective not in OBJECTIVE_CHOICES:
        raise BadRequest(
            f"unknown objective {objective!r}; choose from "
            f"{OBJECTIVE_CHOICES}"
        )
    try:
        budget = body.get("budget")
        budget = effective_budget(
            p, int(budget) if budget is not None else config.default_budget
        )
    except (TypeError, ValueError) as exc:
        raise BadRequest(f"bad 'budget': {exc}") from exc
    faults_text = str(body.get("faults", "") or "")
    faults_key = ""
    if faults_text:
        try:
            faults_key = parse_faults(faults_text).key()
        except FaultSpecError as exc:
            raise BadRequest(f"bad 'faults': {exc}") from exc
    tenant = str(body.get("tenant", DEFAULT_TENANT))
    return {
        "tenant": tenant,
        "platform": platform,
        "p": p,
        "n": n,
        "variant": variant,
        "objective": objective,
        "budget": budget,
        "faults": faults_key,
    }


def plan_key(req: dict) -> tuple:
    """The single-flight/store identity of a request.

    The variant and objective are *not* part of it: one tuning job
    produces the whole cell (all variants tuned), so requests differing
    only in variant share the job and the stored cell.
    """
    return (req["tenant"], req["platform"], req["p"], req["n"],
            req["budget"], req["faults"])


class PlanServer:
    """HTTP front end + job runner for one store root (see module doc)."""

    def __init__(self, config: ServeConfig = ServeConfig()) -> None:
        self.config = config
        self.stores = StoreRegistry(config.root)
        self.jobs = JobManager(
            self._run_job, threads=config.job_threads, clock=config.clock
        )
        self._gate = _AmbientGate()
        # captured at construction, like the coordinator's: handler and
        # job threads have their own (empty) thread-local stacks
        self.registry = current_registry()
        self._t0 = config.clock()
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        for name, help_ in (
            ("serve_plan_hits_total",
             "Plan requests answered from a warm store."),
            ("serve_plan_misses_total",
             "Plan requests that needed a tuning job."),
            ("serve_jobs_enqueued_total",
             "Background tuning jobs created (single-flight)."),
            ("serve_jobs_completed_total",
             "Background tuning jobs finished successfully."),
            ("serve_jobs_failed_total",
             "Background tuning jobs that raised."),
            ("serve_auth_rejects_total",
             "Requests rejected for a missing or wrong bearer token."),
            ("serve_bad_requests_total",
             "Malformed plan requests rejected with 400."),
        ):
            self.registry.inc(name, 0, help=help_)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> str:
        """Bind and serve on a daemon thread; returns the URL."""
        handler = _make_handler(self)
        self._server = ThreadingHTTPServer(
            (self.config.host, self.config.port), handler
        )
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()
        if self.config.announce is not None:
            self.config.announce(self.url)
        return self.url

    @property
    def url(self) -> str:
        if self._server is None:
            raise RuntimeError("plan server not started")
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def stop(self, wait_jobs: bool = True) -> None:
        """Stop serving, drain (or abandon) jobs, flush eval stores."""
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.jobs.shutdown(wait=wait_jobs)
        self.stores.flush_all()

    # -- request handling (called from handler threads) --------------------

    def authorized(self, header: str | None) -> bool:
        token = self.config.token
        if not token:
            return True
        if header == f"Bearer {token}":
            return True
        self.registry.inc("serve_auth_rejects_total")
        return False

    def handle_plan(self, body: dict) -> tuple[int, dict]:
        """``POST /plan``: warm hit -> 200, cold miss -> 202 + job."""
        req = normalize_request(body, self.config)
        stores = self.stores.get(req["tenant"])
        cell = stores.results.get(
            req["platform"], req["p"], req["n"], req["budget"], req["faults"]
        )
        if cell is not None:
            self.registry.inc("serve_plan_hits_total")
            return 200, self._plan_payload(req, cell, stores,
                                           source="result-store")
        self.registry.inc("serve_plan_misses_total")
        job, created = self.jobs.submit(plan_key(req), req["tenant"], req)
        if created:
            self.registry.inc("serve_jobs_enqueued_total")
        out = job.snapshot()
        out["poll"] = f"/plan/{job.id}"
        out["created"] = created
        return 202, out

    def handle_plan_poll(self, job_id: str) -> tuple[int, dict]:
        """``GET /plan/<id>``: job state; the plan itself once done."""
        job = self.jobs.get(job_id)
        if job is None:
            return 404, {"error": f"unknown job {job_id!r}"}
        snap = job.snapshot()
        if snap["state"] != DONE:
            return 200, snap
        req = job.request
        stores = self.stores.get(req["tenant"])
        cell = stores.results.get(
            req["platform"], req["p"], req["n"], req["budget"], req["faults"]
        )
        if cell is None:  # store vanished under a finished job
            snap["error"] = "job finished but its cell left the store"
            snap["state"] = FAILED
            return 500, snap
        out = self._plan_payload(req, cell, stores, source="job")
        out.update(snap)
        return 200, out

    def handle_status(self) -> dict:
        now = self.config.clock()
        counts = self.jobs.counts()
        return {
            "uptime_s": round(max(now - self._t0, 0.0), 3),
            "tenants": self.stores.tenants(),
            "jobs": counts,
            "stores": {
                tenant: {
                    "cells": len(self.stores.get(tenant).results),
                    "eval_records": len(self.stores.get(tenant).evals),
                    **self.stores.get(tenant).results.stats(),
                }
                for tenant in self.stores.tenants()
            },
        }

    def metrics_text(self) -> str:
        """``/metrics``: refresh the point-in-time gauges, then render
        the whole registry as Prometheus text exposition."""
        reg = self.registry
        counts = self.jobs.counts()
        for state, value in counts.items():
            reg.set("serve_jobs", value, help="Tuning jobs per state.",
                    state=state)
        reg.set("serve_tenants", len(self.stores.tenants()),
                help="Tenants with a store pair.")
        uptime = max(self.config.clock() - self._t0, 0.0)
        reg.set("serve_uptime_seconds", round(uptime, 6),
                help="Seconds since the plan server started.")
        return reg.render_prometheus()

    def _plan_payload(self, req: dict, cell: CellResult,
                      stores: GridStores, source: str) -> dict:
        """The 200 body for a served plan (warm hit or finished job)."""
        variant = req["variant"]
        if variant == "best":
            variant = min(cell.times, key=lambda v: cell.times[v])
        if req["objective"] == "speedup":
            objective = cell.speedup(variant)
        else:
            objective = cell.times[variant]
        cell_file = stores.results.path_for(
            req["platform"], req["p"], req["n"], req["budget"], req["faults"]
        )
        try:
            age_s = round(max(time.time() - cell_file.stat().st_mtime, 0.0), 3)
        except OSError:
            age_s = None
        return {
            "plan": {
                "tenant": req["tenant"],
                "platform": req["platform"],
                "p": req["p"],
                "n": req["n"],
                "budget": req["budget"],
                "faults": req["faults"],
                "variant": variant,
                "params": cell.params[variant].as_dict(),
                "objective": objective,
                "objective_kind": req["objective"],
                "fft_time": cell.times[variant],
                "times": dict(cell.times),
                "tuning_time": cell.tuning_times[variant],
                "evaluations": cell.evaluations[variant],
            },
            "provenance": {
                "source": source,
                "store_key": cell_file.name,
                "age_s": age_s,
                "eval_records": len(stores.evals),
                "simulations": 0 if source == "result-store" else None,
            },
        }

    # -- job side (runs on JobManager pool threads) -------------------------

    def _run_job(self, job: PlanJob) -> None:
        """Tune one cold cell and write it through the tenant's stores.

        Runs under the server's registry (job telemetry — including the
        internal coordinator's ``dist_*`` counters when a fleet is
        configured — lands on ``/metrics``) and under the ambient-fault
        gate (see :class:`_AmbientGate`).
        """
        from ..exec import evaluate_cells  # heavy import, job-side only

        req = job.request
        stores = self.stores.get(req["tenant"])
        dispatch, dist_cfg = "local", None
        if self.config.workers:
            dispatch = "dist"
            dist_cfg = DistConfig(
                workers=self.config.workers,
                worker_jobs=self.config.worker_jobs,
                lease_ttl=self.config.lease_ttl,
                token=self.config.token,
                poll_s=0.05,
            )

        def tune() -> None:
            cells = evaluate_cells(
                req["platform"], [(req["p"], req["n"])],
                max_evaluations=req["budget"],
                store=stores.results,
                eval_store=stores.evals,
                dispatch=dispatch,
                dist=dist_cfg,
            )
            # evaluate_cells leaves memo hits disk-lazy; a job is only
            # done when *this tenant's* store holds the cell (another
            # tenant may have primed the process memo with it)
            for cell in cells:
                if not stores.results.path_for(*cell.key()).exists():
                    stores.results.put(cell)

        with scoped_registry(self.registry):
            try:
                if req["faults"]:
                    with self._gate.writing(), \
                            injected_faults(parse_faults(req["faults"])):
                        tune()
                else:
                    with self._gate.reading():
                        tune()
            except Exception:
                self.registry.inc("serve_jobs_failed_total")
                raise
            self.registry.inc("serve_jobs_completed_total")
            stores.flush()


def _make_handler(server: PlanServer) -> type[BaseHTTPRequestHandler]:
    """A handler class closed over one plan server (coordinator idiom)."""
    from ..dist.protocol import decode

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, format: str, *args: Any) -> None:
            pass  # the CLI summary is the UI; no per-request spam

        def _reply(self, payload: dict, code: int = 200) -> None:
            raw = encode(payload)
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(raw)))
            self.end_headers()
            self.wfile.write(raw)

        def _reply_text(self, text: str, code: int = 200) -> None:
            raw = text.encode("utf-8")
            self.send_response(code)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(raw)))
            self.end_headers()
            self.wfile.write(raw)

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            try:
                if not server.authorized(self.headers.get("Authorization")):
                    self._reply({"error": "unauthorized"}, 401)
                elif self.path == "/status":
                    self._reply(server.handle_status())
                elif self.path == "/metrics":
                    self._reply_text(server.metrics_text())
                elif self.path.startswith("/plan/"):
                    code, payload = server.handle_plan_poll(
                        self.path[len("/plan/"):]
                    )
                    self._reply(payload, code)
                else:
                    self._reply({"error": f"unknown path {self.path}"}, 404)
            except Exception as exc:
                self._reply({"error": str(exc)}, 500)

        def do_POST(self) -> None:  # noqa: N802 (http.server API)
            try:
                if not server.authorized(self.headers.get("Authorization")):
                    self._reply({"error": "unauthorized"}, 401)
                    return
                if self.path != "/plan":
                    self._reply({"error": f"unknown path {self.path}"}, 404)
                    return
                length = int(self.headers.get("Content-Length", 0))
                body = decode(self.rfile.read(length)) if length else {}
                code, payload = server.handle_plan(body)
                self._reply(payload, code)
            except (BadRequest, ValueError) as exc:
                server.registry.inc("serve_bad_requests_total")
                self._reply({"error": str(exc)}, 400)
            except Exception as exc:
                self._reply({"error": str(exc)}, 500)

    return Handler
