"""The long-lived tuned-plan server (`repro serve`).

One process that answers "what configuration should I run?" for any
number of clients, the Active-Harmony-as-a-service shape the ROADMAP
calls for:

* ``POST /plan`` — body ``{platform, p, n, variant?, budget?, faults?,
  objective?, tenant?}``.  A warm hit (the tenant's
  :class:`~repro.exec.ResultStore` already holds the cell) answers
  ``200`` immediately with tuned params + provenance and **zero
  simulations**; a cold miss enqueues a background tuning job
  (single-flight per plan key) and answers ``202`` with a pollable
  handle.
* ``GET /plan/<id>`` — poll a job; ``done`` jobs answer with the same
  payload a warm hit produces.
* ``GET /status`` — uptime, tenants, job counts, store counters.
* ``GET /metrics`` — the server's registry (``serve_*`` lifecycle
  counters + everything the tuning jobs published, including the
  internal coordinator's ``dist_*`` when a fleet ran) as Prometheus
  text exposition, same idiom as the coordinator's.

Tuning jobs run through the standard
:func:`~repro.exec.evaluate_cells` path — in-process on the job thread
by default, or dispatched to a ``repro worker`` fleet via the PR-5
coordinator when :attr:`ServeConfig.workers` is set — so a served plan
is byte-identical to what ``repro grid`` would have stored for the
same cell.  Warm stores are held by a
:class:`~repro.serve.stores.StoreRegistry` (one pair per tenant) and
are safe under concurrent handler threads because the stores themselves
lock internally (DESIGN.md §5.13).

Auth: with :attr:`ServeConfig.token` set, every request must carry
``Authorization: Bearer <token>`` or is rejected with 401 before any
store or job state is touched; the same secret is forwarded to the
job fleet's coordinator/workers.  ``GET /healthz`` is the one
unauthenticated path — load balancers and process supervisors probe it
without credentials, and it leaks nothing but liveness/readiness.

Durability (DESIGN.md §5.14): with :attr:`ServeConfig.journal` on
(default), every job state transition is journaled to
``<root>/jobs.journal.jsonl`` and :meth:`PlanServer.start` replays
jobs that were queued/running when the previous incarnation died —
under their original ids, so clients polling across the restart keep
their handles.  :meth:`PlanServer.drain` is the SIGTERM path: refuse
new plans with 503 + ``Retry-After``, wait for active jobs up to
``drain_timeout``, journal every final state, flush stores, stop.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import warnings
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any

from ..bench.runner import CellResult, effective_budget
from ..dist.config import DistConfig
from ..dist.protocol import encode
from ..errors import FaultSpecError
from ..faults import injected_faults, parse_faults
from ..machine.platforms import get_platform
from ..obs.registry import current_registry, scoped_registry
from .config import ServeConfig
from .jobs import DONE, FAILED, JobManager, JobsDraining, PlanJob
from .journal import INTERRUPTED, JobJournal
from .stores import DEFAULT_TENANT, GridStores, StoreRegistry

#: variants a plan can ask for; ``best`` picks the fastest tuned one
VARIANT_CHOICES = ("NEW", "TH", "FFTW", "best")

#: objective spellings a request may use and how they are reported
OBJECTIVE_CHOICES = ("fft_time", "speedup")


class BadRequest(ValueError):
    """A malformed plan request (mapped to HTTP 400)."""


def _chaos_maybe_kill(label: str) -> None:
    """Test/bench hook: SIGKILL the serve process once, mid-job.

    ``$REPRO_SERVE_CHAOS="kill-once:<substr>@<dir>"`` makes the first
    tuning job whose label contains ``<substr>`` kill the whole server
    process — after the job's stores are flushed but *before* its
    terminal state reaches the journal, the worst-possible crash point
    for the recovery story (mirrors ``$REPRO_EXEC_CHAOS`` in
    :mod:`repro.exec.pool`).  The "once" latch is an ``O_EXCL``-created
    sentinel file in ``<dir>``, so the restarted incarnation's replay
    of the same job runs to completion.
    """
    spec = os.environ.get("REPRO_SERVE_CHAOS", "")
    if not spec.startswith("kill-once:"):
        return
    substr, _, where = spec[len("kill-once:"):].partition("@")
    if substr and substr not in label:
        return
    sentinel = os.path.join(where or ".", "serve-chaos-killed")
    try:
        fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return
    os.close(fd)
    os.kill(os.getpid(), signal.SIGKILL)


class _AmbientGate:
    """Readers/writer gate around the process-global fault stack.

    A fault-injected tuning job must install its spec ambiently
    (:mod:`repro.faults` is process-global by design — pool workers
    inherit it), so while one runs, no other job may compute cell keys.
    Fault-free jobs are readers (any number at once), faulted jobs are
    writers (exclusive).  With the default single job thread this gate
    never blocks.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False

    @contextmanager
    def reading(self):
        with self._cond:
            while self._writer:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                self._cond.notify_all()

    @contextmanager
    def writing(self):
        with self._cond:
            while self._writer or self._readers:
                self._cond.wait()
            self._writer = True
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


def normalize_request(body: dict, config: ServeConfig) -> dict:
    """Validate and canonicalize one ``POST /plan`` body.

    Returns the normalized request dict (canonical platform name,
    effective budget, canonical fault key, ...) or raises
    :class:`BadRequest` with a client-facing message.
    """
    if not isinstance(body, dict):
        raise BadRequest("plan request must be a JSON object")
    try:
        platform = get_platform(str(body["platform"])).name
    except KeyError as exc:
        raise BadRequest(str(exc.args[0] if exc.args else exc)) from exc
    try:
        p = int(body["p"])
        n = int(body["n"])
    except (KeyError, TypeError, ValueError) as exc:
        raise BadRequest(f"need integer 'p' and 'n' fields: {exc}") from exc
    if p <= 0 or n <= 0:
        raise BadRequest(f"p and n must be positive (got p={p}, n={n})")
    variant = str(body.get("variant", "NEW"))
    if variant not in VARIANT_CHOICES:
        raise BadRequest(
            f"unknown variant {variant!r}; choose from {VARIANT_CHOICES}"
        )
    objective = str(body.get("objective", "fft_time"))
    if objective not in OBJECTIVE_CHOICES:
        raise BadRequest(
            f"unknown objective {objective!r}; choose from "
            f"{OBJECTIVE_CHOICES}"
        )
    try:
        budget = body.get("budget")
        budget = effective_budget(
            p, int(budget) if budget is not None else config.default_budget
        )
    except (TypeError, ValueError) as exc:
        raise BadRequest(f"bad 'budget': {exc}") from exc
    faults_text = str(body.get("faults", "") or "")
    faults_key = ""
    if faults_text:
        try:
            faults_key = parse_faults(faults_text).key()
        except FaultSpecError as exc:
            raise BadRequest(f"bad 'faults': {exc}") from exc
    tenant = str(body.get("tenant", DEFAULT_TENANT))
    return {
        "tenant": tenant,
        "platform": platform,
        "p": p,
        "n": n,
        "variant": variant,
        "objective": objective,
        "budget": budget,
        "faults": faults_key,
    }


def plan_key(req: dict) -> tuple:
    """The single-flight/store identity of a request.

    The variant and objective are *not* part of it: one tuning job
    produces the whole cell (all variants tuned), so requests differing
    only in variant share the job and the stored cell.
    """
    return (req["tenant"], req["platform"], req["p"], req["n"],
            req["budget"], req["faults"])


class PlanServer:
    """HTTP front end + job runner for one store root (see module doc)."""

    def __init__(self, config: ServeConfig = ServeConfig()) -> None:
        self.config = config
        self.stores = StoreRegistry(config.root)
        self.journal = (
            JobJournal(Path(config.root) / "jobs.journal.jsonl")
            if config.journal else None
        )
        self.jobs = JobManager(
            self._run_job,
            threads=config.job_threads,
            clock=config.clock,
            journal=self.journal,
            job_timeout=config.job_timeout,
            on_timeout=self._job_timed_out,
        )
        self._gate = _AmbientGate()
        # captured at construction, like the coordinator's: handler and
        # job threads have their own (empty) thread-local stacks
        self.registry = current_registry()
        self._t0 = config.clock()
        self._draining = False
        #: jobs replayed from the journal by the last :meth:`start`
        self.recovered_jobs = 0
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        for name, help_ in (
            ("serve_plan_hits_total",
             "Plan requests answered from a warm store."),
            ("serve_plan_misses_total",
             "Plan requests that needed a tuning job."),
            ("serve_jobs_enqueued_total",
             "Background tuning jobs created (single-flight)."),
            ("serve_jobs_completed_total",
             "Background tuning jobs finished successfully."),
            ("serve_jobs_failed_total",
             "Background tuning jobs that raised."),
            ("serve_jobs_recovered_total",
             "Interrupted jobs re-enqueued from the journal on startup."),
            ("serve_job_timeouts_total",
             "Jobs failed by the stuck-job watchdog."),
            ("serve_drains_total",
             "Graceful drains initiated (SIGTERM/SIGINT)."),
            ("serve_auth_rejects_total",
             "Requests rejected for a missing or wrong bearer token."),
            ("serve_bad_requests_total",
             "Malformed plan requests rejected with 400."),
        ):
            self.registry.inc(name, 0, help=help_)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> str:
        """Recover journaled jobs, then bind and serve; returns the URL."""
        self.recovered_jobs = self.recover()
        handler = _make_handler(self)
        self._server = ThreadingHTTPServer(
            (self.config.host, self.config.port), handler
        )
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()
        if self.config.announce is not None:
            self.config.announce(self.url)
        return self.url

    def recover(self) -> int:
        """Replay the journal: re-enqueue jobs the previous incarnation
        left queued/running (or interrupted), under their original ids.

        Replayed work is near-free by construction — the tuning path
        reads through the warm per-tenant stores, so every evaluation
        the dead incarnation managed to flush answers without a
        simulation, and a job killed after its final flush re-tunes
        with zero simulations at all.  Returns the number of jobs
        re-enqueued; malformed journal entries and vanished tenant
        directories degrade to warnings, never startup failures.
        """
        if self.journal is None:
            return 0
        entries = self.journal.load()
        self.jobs.reserve_seq(JobJournal.max_seq(entries))
        recovered = 0
        for entry in sorted(
            (e for e in entries.values() if e.replayable),
            key=lambda e: e.job_id,
        ):
            try:
                req = normalize_request(dict(entry.request), self.config)
            except BadRequest as exc:
                warnings.warn(
                    f"job journal: cannot replay {entry.job_id} "
                    f"(unusable request: {exc}); dropping it",
                    RuntimeWarning,
                )
                continue
            tenant_dir = Path(self.config.root) / req["tenant"]
            if not tenant_dir.exists():
                warnings.warn(
                    f"job journal: tenant directory {tenant_dir} is gone; "
                    f"{entry.job_id} will re-tune against a cold store",
                    RuntimeWarning,
                )
            # mark the prior incarnation interrupted (provenance), then
            # re-enqueue under the same id with the incarnation bumped
            self.journal.record(
                entry.job_id, INTERRUPTED, tenant=req["tenant"],
                error="interrupted by server restart",
                incarnation=entry.incarnation,
            )
            job = self.jobs.resubmit(
                plan_key(req), req["tenant"], req,
                job_id=entry.job_id, incarnation=entry.incarnation + 1,
            )
            if job is not None:
                recovered += 1
                self.registry.inc("serve_jobs_recovered_total")
        return recovered

    @property
    def url(self) -> str:
        if self._server is None:
            raise RuntimeError("plan server not started")
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def draining(self) -> bool:
        return self._draining

    def drain(self) -> dict:
        """Graceful shutdown (the SIGTERM/SIGINT path).

        Flips readiness (``/healthz`` answers 503, ``POST /plan``
        answers 503 + ``Retry-After``) while *keeping the HTTP server
        up* so clients can poll their jobs to completion, waits for
        active jobs up to ``drain_timeout``, journals every job's final
        state (``interrupted`` for any survivor, which the next
        incarnation replays), flushes the stores, then stops serving.
        Returns ``{"drained": bool, "interrupted": [job ids]}``.
        """
        self._draining = True
        self.registry.inc("serve_drains_total")
        leftover = self.jobs.drain(self.config.drain_timeout)
        self.stores.flush_all()
        self._stop_http()
        return {
            "drained": not leftover,
            "interrupted": [job.id for job in leftover],
        }

    def stop(self, wait_jobs: bool = True) -> None:
        """Stop serving, drain (or abandon) jobs, flush eval stores."""
        self._draining = True
        self._stop_http()
        self.jobs.shutdown(wait=wait_jobs)
        self.stores.flush_all()

    def _stop_http(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def retry_after_s(self) -> int:
        """Seconds clients should wait before retrying a drained 503."""
        if self.config.retry_after_s is not None:
            return max(int(self.config.retry_after_s), 1)
        return max(int(round(self.config.drain_timeout)), 1)

    def _job_timed_out(self, job: PlanJob) -> None:
        self.registry.inc("serve_job_timeouts_total")

    # -- request handling (called from handler threads) --------------------

    def authorized(self, header: str | None) -> bool:
        token = self.config.token
        if not token:
            return True
        if header == f"Bearer {token}":
            return True
        self.registry.inc("serve_auth_rejects_total")
        return False

    def handle_plan(self, body: dict) -> tuple[int, dict]:
        """``POST /plan``: warm hit -> 200, cold miss -> 202 + job.

        While draining (or when the job executor shut down under a
        racing request) answers 503 with a ``retry_after`` hint — the
        handler mirrors it into a real ``Retry-After`` header.
        """
        if self._draining:
            return 503, self._unavailable_payload()
        req = normalize_request(body, self.config)
        stores = self.stores.get(req["tenant"])
        cell = stores.results.get(
            req["platform"], req["p"], req["n"], req["budget"], req["faults"]
        )
        if cell is not None:
            self.registry.inc("serve_plan_hits_total")
            return 200, self._plan_payload(req, cell, stores,
                                           source="result-store")
        self.registry.inc("serve_plan_misses_total")
        try:
            job, created = self.jobs.submit(plan_key(req), req["tenant"], req)
        except JobsDraining as exc:
            return 503, self._unavailable_payload(str(exc))
        if created:
            self.registry.inc("serve_jobs_enqueued_total")
        out = job.snapshot()
        out["poll"] = f"/plan/{job.id}"
        out["created"] = created
        return 202, out

    def _unavailable_payload(self, message: str = "") -> dict:
        return {
            "error": message or "server is draining; retry later",
            "retry_after": self.retry_after_s(),
        }

    def handle_healthz(self) -> tuple[int, dict]:
        """``GET /healthz``: liveness is answering at all; readiness
        flips to 503 during drain so load balancers stop routing plans
        here while in-flight jobs finish."""
        ready = not self._draining
        return (200 if ready else 503), {
            "live": True,
            "ready": ready,
            "draining": self._draining,
            "uptime_s": round(max(self.config.clock() - self._t0, 0.0), 3),
        }

    def handle_plan_poll(self, job_id: str) -> tuple[int, dict]:
        """``GET /plan/<id>``: job state; the plan itself once done."""
        job = self.jobs.get(job_id)
        if job is None:
            return 404, {"error": f"unknown job {job_id!r}"}
        snap = job.snapshot()
        if snap["state"] != DONE:
            return 200, snap
        req = job.request
        stores = self.stores.get(req["tenant"])
        cell = stores.results.get(
            req["platform"], req["p"], req["n"], req["budget"], req["faults"]
        )
        if cell is None:  # store vanished under a finished job
            snap["error"] = "job finished but its cell left the store"
            snap["state"] = FAILED
            return 500, snap
        out = self._plan_payload(req, cell, stores, source="job")
        out.update(snap)
        return 200, out

    def handle_status(self) -> dict:
        now = self.config.clock()
        counts = self.jobs.counts()
        return {
            "uptime_s": round(max(now - self._t0, 0.0), 3),
            "tenants": self.stores.tenants(),
            "jobs": counts,
            "stores": {
                tenant: {
                    "cells": len(self.stores.get(tenant).results),
                    "eval_records": len(self.stores.get(tenant).evals),
                    **self.stores.get(tenant).results.stats(),
                }
                for tenant in self.stores.tenants()
            },
        }

    def metrics_text(self) -> str:
        """``/metrics``: refresh the point-in-time gauges, then render
        the whole registry as Prometheus text exposition."""
        reg = self.registry
        counts = self.jobs.counts()
        for state, value in counts.items():
            reg.set("serve_jobs", value, help="Tuning jobs per state.",
                    state=state)
        reg.set("serve_tenants", len(self.stores.tenants()),
                help="Tenants with a store pair.")
        reg.set("serve_draining", 1.0 if self._draining else 0.0,
                help="1 while a graceful drain is in progress.")
        uptime = max(self.config.clock() - self._t0, 0.0)
        reg.set("serve_uptime_seconds", round(uptime, 6),
                help="Seconds since the plan server started.")
        return reg.render_prometheus()

    def _plan_payload(self, req: dict, cell: CellResult,
                      stores: GridStores, source: str) -> dict:
        """The 200 body for a served plan (warm hit or finished job)."""
        variant = req["variant"]
        if variant == "best":
            variant = min(cell.times, key=lambda v: cell.times[v])
        if req["objective"] == "speedup":
            objective = cell.speedup(variant)
        else:
            objective = cell.times[variant]
        cell_file = stores.results.path_for(
            req["platform"], req["p"], req["n"], req["budget"], req["faults"]
        )
        try:
            age_s = round(max(time.time() - cell_file.stat().st_mtime, 0.0), 3)
        except OSError:
            age_s = None
        return {
            "plan": {
                "tenant": req["tenant"],
                "platform": req["platform"],
                "p": req["p"],
                "n": req["n"],
                "budget": req["budget"],
                "faults": req["faults"],
                "variant": variant,
                "params": cell.params[variant].as_dict(),
                "objective": objective,
                "objective_kind": req["objective"],
                "fft_time": cell.times[variant],
                "times": dict(cell.times),
                "tuning_time": cell.tuning_times[variant],
                "evaluations": cell.evaluations[variant],
            },
            "provenance": {
                "source": source,
                "store_key": cell_file.name,
                "age_s": age_s,
                "eval_records": len(stores.evals),
                "simulations": 0 if source == "result-store" else None,
            },
        }

    # -- job side (runs on JobManager pool threads) -------------------------

    def _run_job(self, job: PlanJob) -> None:
        """Tune one cold cell and write it through the tenant's stores.

        Runs under the server's registry (job telemetry — including the
        internal coordinator's ``dist_*`` counters when a fleet is
        configured — lands on ``/metrics``) and under the ambient-fault
        gate (see :class:`_AmbientGate`).
        """
        from ..exec import evaluate_cells  # heavy import, job-side only

        req = job.request
        stores = self.stores.get(req["tenant"])
        dispatch, dist_cfg = "local", None
        if self.config.workers:
            dispatch = "dist"
            dist_cfg = DistConfig(
                workers=self.config.workers,
                worker_jobs=self.config.worker_jobs,
                lease_ttl=self.config.lease_ttl,
                token=self.config.token,
                poll_s=0.05,
            )

        def tune() -> None:
            cells = evaluate_cells(
                req["platform"], [(req["p"], req["n"])],
                max_evaluations=req["budget"],
                store=stores.results,
                eval_store=stores.evals,
                dispatch=dispatch,
                dist=dist_cfg,
            )
            # evaluate_cells leaves memo hits disk-lazy; a job is only
            # done when *this tenant's* store holds the cell (another
            # tenant may have primed the process memo with it)
            for cell in cells:
                if not stores.results.path_for(*cell.key()).exists():
                    stores.results.put(cell)

        with scoped_registry(self.registry):
            try:
                if req["faults"]:
                    with self._gate.writing(), \
                            injected_faults(parse_faults(req["faults"])):
                        tune()
                else:
                    with self._gate.reading():
                        tune()
            except Exception:
                self.registry.inc("serve_jobs_failed_total")
                raise
            self.registry.inc("serve_jobs_completed_total")
            stores.flush()
        # chaos hook *after* the flush and *before* the manager journals
        # DONE: the crash point where all the work is on disk but the
        # journal still says running — replay must then cost ~nothing
        _chaos_maybe_kill(
            f"{job.id} {req['platform']} p{req['p']} N{req['n']}"
        )


def _make_handler(server: PlanServer) -> type[BaseHTTPRequestHandler]:
    """A handler class closed over one plan server (coordinator idiom)."""
    from ..dist.protocol import decode

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, format: str, *args: Any) -> None:
            pass  # the CLI summary is the UI; no per-request spam

        def _reply(self, payload: dict, code: int = 200) -> None:
            raw = encode(payload)
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(raw)))
            if code == 503 and "retry_after" in payload:
                self.send_header("Retry-After", str(payload["retry_after"]))
            self.end_headers()
            self.wfile.write(raw)

        def _reply_text(self, text: str, code: int = 200) -> None:
            raw = text.encode("utf-8")
            self.send_response(code)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(raw)))
            self.end_headers()
            self.wfile.write(raw)

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            try:
                if self.path == "/healthz":
                    # deliberately unauthenticated: probes come from
                    # supervisors without credentials, and the body is
                    # liveness/readiness only
                    code, payload = server.handle_healthz()
                    self._reply(payload, code)
                elif not server.authorized(self.headers.get("Authorization")):
                    self._reply({"error": "unauthorized"}, 401)
                elif self.path == "/status":
                    self._reply(server.handle_status())
                elif self.path == "/metrics":
                    self._reply_text(server.metrics_text())
                elif self.path.startswith("/plan/"):
                    code, payload = server.handle_plan_poll(
                        self.path[len("/plan/"):]
                    )
                    self._reply(payload, code)
                else:
                    self._reply({"error": f"unknown path {self.path}"}, 404)
            except Exception as exc:
                self._reply({"error": str(exc)}, 500)

        def do_POST(self) -> None:  # noqa: N802 (http.server API)
            try:
                if not server.authorized(self.headers.get("Authorization")):
                    self._reply({"error": "unauthorized"}, 401)
                    return
                if self.path != "/plan":
                    self._reply({"error": f"unknown path {self.path}"}, 404)
                    return
                length = int(self.headers.get("Content-Length", 0))
                body = decode(self.rfile.read(length)) if length else {}
                code, payload = server.handle_plan(body)
                self._reply(payload, code)
            except (BadRequest, ValueError) as exc:
                server.registry.inc("serve_bad_requests_total")
                self._reply({"error": str(exc)}, 400)
            except Exception as exc:
                self._reply({"error": str(exc)}, 500)

    return Handler
