"""Tuning-as-a-service: the long-lived tuned-plan server (DESIGN.md §5.13).

Public surface:

* :class:`PlanServer` / :class:`ServeConfig` — the server itself
* :class:`JobJournal` / :class:`JournalEntry` — the per-root job
  write-ahead journal behind crash recovery (DESIGN.md §5.14)
* :class:`StoreRegistry` / :class:`GridStores` — per-tenant warm stores
* :func:`request_plan` / :func:`poll_plan` / :func:`wait_for_plan` —
  stdlib client helpers
"""

from .client import poll_plan, request_plan, wait_for_plan
from .config import ServeConfig
from .jobs import JobManager, JobsDraining, PlanJob
from .journal import JobJournal, JournalEntry
from .server import PlanServer, normalize_request, plan_key
from .stores import DEFAULT_TENANT, GridStores, StoreRegistry

__all__ = [
    "DEFAULT_TENANT",
    "GridStores",
    "JobJournal",
    "JobManager",
    "JobsDraining",
    "JournalEntry",
    "PlanJob",
    "PlanServer",
    "ServeConfig",
    "StoreRegistry",
    "normalize_request",
    "plan_key",
    "poll_plan",
    "request_plan",
    "wait_for_plan",
]
