"""Background tuning jobs: dedup by plan key, run off the request path.

A cold ``POST /plan`` never tunes inline — it enqueues a job here and
returns ``202`` with a handle immediately, so one slow tuning session
cannot stall the serving threads.  The manager's core guarantee is
**single-flight per plan key**: any number of concurrent identical
requests collapse onto one job (the first submitter creates it, every
later one gets the same handle back), which is what makes "N clients
ask for the same cold plan" cost exactly one fleet tuning run.

Jobs survive completion: a finished job stays pollable at
``GET /plan/<id>`` until the server exits, while the *store* is the
durable record — a restarted server answers the same plan from the
warm store without any job at all.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

#: job lifecycle states
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: states during which a plan key collapses onto the existing job
ACTIVE_STATES = (QUEUED, RUNNING)


@dataclass
class PlanJob:
    """One background tuning job for one plan key."""

    id: str
    plan_key: tuple
    tenant: str
    request: dict                  # the normalized plan request fields
    state: str = QUEUED
    error: str = ""
    created_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def snapshot(self) -> dict:
        """JSON-ready view for ``/plan/<id>`` and ``/status``."""
        with self.lock:
            out = {
                "job": self.id,
                "state": self.state,
                "tenant": self.tenant,
                "request": dict(self.request),
            }
            if self.error:
                out["error"] = self.error
            if self.started_at is not None and self.finished_at is not None:
                out["tuning_wall_s"] = round(
                    self.finished_at - self.started_at, 3
                )
            return out

    def _set_state(self, state: str, error: str = "") -> None:
        with self.lock:
            self.state = state
            if error:
                self.error = error


class JobManager:
    """Single-flight job table + a small worker pool to run them.

    ``runner`` is the function that actually tunes (the server's
    ``_run_job``); it is called on a pool thread with the job as its
    only argument and must raise on failure.
    """

    def __init__(
        self,
        runner: Callable[[PlanJob], None],
        threads: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._runner = runner
        self._clock = clock
        self._pool = ThreadPoolExecutor(
            max_workers=max(threads, 1),
            thread_name_prefix="repro-serve-job",
        )
        self._lock = threading.Lock()
        self._jobs: dict[str, PlanJob] = {}
        self._active: dict[tuple, str] = {}   # plan key -> active job id
        self._seq = 0

    def submit(self, plan_key: tuple, tenant: str,
               request: dict) -> tuple[PlanJob, bool]:
        """The job for ``plan_key`` — existing-active or freshly created.

        Returns ``(job, created)``; ``created`` is False when the call
        collapsed onto a job another request already enqueued (the
        single-flight path).  The check-then-create is one critical
        section, so two racing cold requests can never both create.
        """
        with self._lock:
            active_id = self._active.get(plan_key)
            if active_id is not None:
                return self._jobs[active_id], False
            self._seq += 1
            job = PlanJob(
                id=f"job-{self._seq:06d}",
                plan_key=plan_key,
                tenant=tenant,
                request=request,
                created_at=self._clock(),
            )
            self._jobs[job.id] = job
            self._active[plan_key] = job.id
        self._pool.submit(self._run, job)
        return job, True

    def get(self, job_id: str) -> PlanJob | None:
        with self._lock:
            return self._jobs.get(job_id)

    def counts(self) -> dict[str, int]:
        """Jobs per state (for ``/status`` and the serve gauges)."""
        out = {QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0}
        with self._lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            with job.lock:
                out[job.state] = out.get(job.state, 0) + 1
        return out

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait)

    # -- pool side -----------------------------------------------------------

    def _run(self, job: PlanJob) -> None:
        with job.lock:
            job.state = RUNNING
            job.started_at = self._clock()
        try:
            self._runner(job)
        except Exception as exc:  # noqa: BLE001 - surfaced via the job
            job._set_state(FAILED, error=f"{type(exc).__name__}: {exc}")
        else:
            job._set_state(DONE)
        finally:
            with job.lock:
                job.finished_at = self._clock()
            # only now may a new request re-create a job for this key
            # (and only if the store somehow still misses — normally
            # the finished job's cell answers from the store forever)
            with self._lock:
                if self._active.get(job.plan_key) == job.id:
                    del self._active[job.plan_key]
