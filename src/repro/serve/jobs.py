"""Background tuning jobs: dedup by plan key, run off the request path.

A cold ``POST /plan`` never tunes inline — it enqueues a job here and
returns ``202`` with a handle immediately, so one slow tuning session
cannot stall the serving threads.  The manager's core guarantee is
**single-flight per plan key**: any number of concurrent identical
requests collapse onto one job (the first submitter creates it, every
later one gets the same handle back), which is what makes "N clients
ask for the same cold plan" cost exactly one fleet tuning run.

Jobs survive completion: a finished job stays pollable at
``GET /plan/<id>`` until the server exits, while the *store* is the
durable record — a restarted server answers the same plan from the
warm store without any job at all.  Since PR 9 the job *pipeline* is
durable too: every state transition is written to a per-root
write-ahead journal (:mod:`repro.serve.journal`) before/after the
transition takes effect, and a restarted server replays jobs that were
queued or running when its predecessor died, under their original ids
(clients keep polling the same handle across the restart).

Operational guards:

* **graceful drain** — :meth:`JobManager.drain` stops accepting jobs
  (submits raise :class:`JobsDraining`, which the server maps to 503 +
  ``Retry-After``), waits for active jobs up to a deadline, and
  journals ``interrupted`` for any survivor so the next incarnation
  replays it;
* **stuck-job watchdog** — with a ``job_timeout``, a daemon thread
  fails any job running longer than the allowance and frees its
  single-flight key, so clients can resubmit instead of polling a
  zombie forever (the abandoned runner thread's late transition is
  discarded: terminal states are sticky);
* **shutdown race** — ``ThreadPoolExecutor.submit`` after shutdown
  raises ``RuntimeError``; the manager catches it, rolls the job table
  back (no forever-queued job holding its key), journals the rejection,
  and surfaces :class:`JobsDraining`.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (journal
    from .journal import JobJournal  # imports the states defined here)

#: job lifecycle states
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: states during which a plan key collapses onto the existing job
ACTIVE_STATES = (QUEUED, RUNNING)

#: states a job can never leave (watchdog-failed jobs stay failed even
#: when their abandoned runner thread eventually reports in)
TERMINAL_STATES = (DONE, FAILED)


class JobsDraining(RuntimeError):
    """The manager is draining/shut down and accepts no new jobs.

    The server maps this to ``503`` with a ``Retry-After`` header — the
    client-visible spelling of "ask again once the restart settles".
    """


@dataclass
class PlanJob:
    """One background tuning job for one plan key."""

    id: str
    plan_key: tuple
    tenant: str
    request: dict                  # the normalized plan request fields
    state: str = QUEUED
    error: str = ""
    created_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    #: >0 when this run is a journal replay of an interrupted job; the
    #: count of prior incarnations marked ``interrupted`` in the journal
    incarnation: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def snapshot(self) -> dict:
        """JSON-ready view for ``/plan/<id>`` and ``/status``."""
        with self.lock:
            out = {
                "job": self.id,
                "state": self.state,
                "tenant": self.tenant,
                "request": dict(self.request),
            }
            if self.error:
                out["error"] = self.error
            if self.incarnation:
                out["recovered"] = True
                out["interrupted_incarnations"] = self.incarnation
            if self.started_at is not None and self.finished_at is not None:
                out["tuning_wall_s"] = round(
                    self.finished_at - self.started_at, 3
                )
            return out


class JobManager:
    """Single-flight job table + a small worker pool to run them.

    ``runner`` is the function that actually tunes (the server's
    ``_run_job``); it is called on a pool thread with the job as its
    only argument and must raise on failure.  ``journal`` (optional)
    receives every state transition; ``job_timeout`` arms the stuck-job
    watchdog, with ``on_timeout`` called once per timed-out job (the
    server's metrics hook).
    """

    def __init__(
        self,
        runner: Callable[[PlanJob], None],
        threads: int = 1,
        clock: Callable[[], float] = time.monotonic,
        journal: "JobJournal | None" = None,
        job_timeout: float | None = None,
        on_timeout: Callable[[PlanJob], None] | None = None,
    ) -> None:
        self._runner = runner
        self._clock = clock
        self._journal = journal
        self._job_timeout = job_timeout
        self._on_timeout = on_timeout
        self._pool = ThreadPoolExecutor(
            max_workers=max(threads, 1),
            thread_name_prefix="repro-serve-job",
        )
        self._lock = threading.Lock()
        self._jobs: dict[str, PlanJob] = {}
        self._active: dict[tuple, str] = {}   # plan key -> active job id
        self._seq = 0
        self._draining = False
        # O(1) per-state counters maintained on every transition;
        # `/status` is polled (by `repro top` among others) while
        # finished jobs accumulate for the server's lifetime, so a
        # scan over all jobs ever would grow without bound
        self._counts = {QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0}
        self._stop_watchdog = threading.Event()
        self._watchdog: threading.Thread | None = None
        if job_timeout is not None and job_timeout > 0:
            self._watchdog = threading.Thread(
                target=self._watch, name="repro-serve-watchdog", daemon=True
            )
            self._watchdog.start()

    def reserve_seq(self, floor: int) -> None:
        """Advance the id sequence past ``floor`` (journal replay seeds
        this so fresh jobs never collide with recovered ids)."""
        with self._lock:
            self._seq = max(self._seq, floor)

    def submit(self, plan_key: tuple, tenant: str,
               request: dict) -> tuple[PlanJob, bool]:
        """The job for ``plan_key`` — existing-active or freshly created.

        Returns ``(job, created)``; ``created`` is False when the call
        collapsed onto a job another request already enqueued (the
        single-flight path).  The check-then-create is one critical
        section, so two racing cold requests can never both create.
        Raises :class:`JobsDraining` while draining/shut down.
        """
        with self._lock:
            if self._draining:
                raise JobsDraining("server is draining; retry later")
            active_id = self._active.get(plan_key)
            if active_id is not None:
                return self._jobs[active_id], False
            self._seq += 1
            job = PlanJob(
                id=f"job-{self._seq:06d}",
                plan_key=plan_key,
                tenant=tenant,
                request=request,
                created_at=self._clock(),
            )
            self._register(job)
        self._start(job)
        return job, True

    def resubmit(self, plan_key: tuple, tenant: str, request: dict,
                 job_id: str, incarnation: int = 1) -> PlanJob | None:
        """Re-enqueue a journal-recovered job under its original id.

        Returns ``None`` (instead of creating) when the id is already
        live, another job owns the plan key, or the manager is draining
        — all cases where replaying would double the work.
        """
        with self._lock:
            if (self._draining or job_id in self._jobs
                    or plan_key in self._active):
                return None
            job = PlanJob(
                id=job_id,
                plan_key=plan_key,
                tenant=tenant,
                request=request,
                created_at=self._clock(),
                incarnation=incarnation,
            )
            self._register(job)
        self._start(job)
        return job

    def get(self, job_id: str) -> PlanJob | None:
        with self._lock:
            return self._jobs.get(job_id)

    def counts(self) -> dict[str, int]:
        """Jobs per state (for ``/status`` and the serve gauges) — O(1)
        from the transition-maintained counters, however many finished
        jobs have accumulated."""
        with self._lock:
            return dict(self._counts)

    def active(self) -> list[PlanJob]:
        """Jobs currently queued or running, in id order."""
        with self._lock:
            return sorted(
                (j for j in self._jobs.values() if j.state in ACTIVE_STATES),
                key=lambda j: j.id,
            )

    # -- lifecycle ----------------------------------------------------------

    def drain(self, timeout: float,
              poll_s: float = 0.05) -> list[PlanJob]:
        """Graceful shutdown: refuse new jobs, wait for active ones.

        Blocks until every queued/running job reaches a terminal state
        or ``timeout`` elapses, then shuts the pool down (cancelling
        never-started queued jobs) and journals ``interrupted`` for
        every survivor so the next incarnation replays it.  Returns the
        survivors (empty = fully drained).
        """
        with self._lock:
            self._draining = True
        deadline = time.monotonic() + max(timeout, 0.0)
        while True:
            with self._lock:
                remaining = self._counts[QUEUED] + self._counts[RUNNING]
            if not remaining or time.monotonic() >= deadline:
                break
            time.sleep(poll_s)
        self._stop_watchdog.set()
        self._pool.shutdown(wait=False, cancel_futures=True)
        leftover = self.active()
        for job in leftover:
            self._record(job, "interrupted",
                         error=f"drain timeout ({timeout:g}s) expired")
        return leftover

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            self._draining = True
        self._stop_watchdog.set()
        self._pool.shutdown(wait=wait)

    # -- internals -----------------------------------------------------------

    def _register(self, job: PlanJob) -> None:
        """Insert a fresh QUEUED job (caller holds the manager lock)."""
        self._jobs[job.id] = job
        self._active[job.plan_key] = job.id
        self._counts[QUEUED] += 1

    def _start(self, job: PlanJob) -> None:
        """Journal the enqueue, then hand the job to the pool.

        Journal-first is the write-ahead ordering: a crash between the
        two leaves a ``queued`` record, and replay re-enqueues.  A pool
        that was shut down concurrently raises ``RuntimeError`` from
        ``submit`` — roll the table back so the plan key is not leaked
        behind a job that will never run, journal the rejection, and
        surface :class:`JobsDraining` (the 503 path).
        """
        self._record(job, QUEUED, with_request=True)
        try:
            self._pool.submit(self._run, job)
        except RuntimeError:
            with self._lock:
                if self._active.get(job.plan_key) == job.id:
                    del self._active[job.plan_key]
                if self._jobs.pop(job.id, None) is not None:
                    self._counts[QUEUED] -= 1
            self._record(job, "interrupted",
                         error="rejected: job executor already shut down")
            raise JobsDraining(
                "server is shutting down; retry later"
            ) from None

    def _transition(self, job: PlanJob, state: str, error: str = "") -> bool:
        """Move a job to ``state``, maintaining counters, the
        single-flight table, and the journal.  Returns False (and does
        nothing) when the job is already terminal — that is what makes
        a watchdog-failed job immune to its abandoned runner thread
        reporting a late success."""
        with self._lock:
            with job.lock:
                prev = job.state
                if prev in TERMINAL_STATES:
                    return False
                job.state = state
                if error:
                    job.error = error
                if state == RUNNING:
                    job.started_at = self._clock()
                if state in TERMINAL_STATES:
                    job.finished_at = self._clock()
            self._counts[prev] -= 1
            self._counts[state] += 1
            if (state in TERMINAL_STATES
                    and self._active.get(job.plan_key) == job.id):
                # only now may a new request re-create a job for this
                # key (and only if the store somehow still misses —
                # normally the finished job's cell answers from the
                # store forever)
                del self._active[job.plan_key]
            # journal inside the critical section: transition order and
            # record order must agree (replay is last-record-wins)
            self._record(job, state, error=error)
        return True

    def _record(self, job: PlanJob, state: str, error: str = "",
                with_request: bool = False) -> None:
        if self._journal is None:
            return
        self._journal.record(
            job.id,
            state,
            tenant=job.tenant,
            request=job.request if with_request else None,
            error=error,
            incarnation=job.incarnation,
        )

    # -- watchdog ------------------------------------------------------------

    def _watch(self) -> None:
        """Fail jobs that exceed ``job_timeout``; frees their keys."""
        assert self._job_timeout is not None
        interval = min(max(self._job_timeout / 4.0, 0.02), 1.0)
        while not self._stop_watchdog.wait(interval):
            now = self._clock()
            with self._lock:
                stuck = [
                    (job, now - job.started_at)
                    for job in self._jobs.values()
                    if job.state == RUNNING
                    and job.started_at is not None
                    and now - job.started_at > self._job_timeout
                ]
            for job, elapsed in stuck:
                timed_out = self._transition(
                    job, FAILED,
                    error=(
                        f"watchdog: still running after {elapsed:.1f}s "
                        f"(> --job-timeout {self._job_timeout:g}s); "
                        f"single-flight key freed for resubmission"
                    ),
                )
                if timed_out and self._on_timeout is not None:
                    self._on_timeout(job)

    # -- pool side -----------------------------------------------------------

    def _run(self, job: PlanJob) -> None:
        if not self._transition(job, RUNNING):
            return
        try:
            self._runner(job)
        except Exception as exc:  # noqa: BLE001 - surfaced via the job
            self._transition(job, FAILED, error=f"{type(exc).__name__}: {exc}")
        else:
            self._transition(job, DONE)
