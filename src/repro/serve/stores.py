"""Multi-grid store registry: one warm store pair per tenant.

The plan server is multi-tenant in the narrow sense the ROADMAP asks
for: several independent grids (teams, experiments, clusters) behind
one process, each with its own :class:`~repro.exec.ResultStore`
directory and :class:`~repro.tuning.evalstore.EvalStore` JSONL under a
shared root::

    <root>/<tenant>/results/*.json    per-cell tuned results
    <root>/<tenant>/evals.jsonl       every timed configuration

Store pairs are created lazily on first touch and kept warm for the
life of the server — that is the whole point of serving plans instead
of re-deriving them.  The registry itself is guarded by a lock;
the stores it hands out carry their own internal locks (the PR-8
concurrency hardening), so handler threads can share them freely.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path

from ..exec.store import ResultStore
from ..tuning.evalstore import EvalStore

#: the tenant used when a request does not name one
DEFAULT_TENANT = "default"


def valid_tenant(name: str) -> bool:
    """Tenant names become directory names; keep them boring."""
    return bool(name) and all(
        c.isalnum() or c in "-_." for c in name
    ) and name not in (".", "..")


@dataclass
class GridStores:
    """One tenant's warm store pair."""

    tenant: str
    results: ResultStore
    evals: EvalStore
    evals_path: Path

    def flush(self) -> int:
        """Merge-save the eval store back to disk (same-process saves
        are serialized inside :meth:`EvalStore.save`)."""
        return self.evals.save(self.evals_path)


class StoreRegistry:
    """Lazily populated map from tenant name to :class:`GridStores`."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._grids: dict[str, GridStores] = {}

    def get(self, tenant: str = DEFAULT_TENANT) -> GridStores:
        """The tenant's store pair, created/loaded on first touch.

        Raises :class:`ValueError` for names that cannot safely become
        directories (the server maps that to a 400).
        """
        if not valid_tenant(tenant):
            raise ValueError(f"invalid tenant name {tenant!r}")
        with self._lock:
            grids = self._grids.get(tenant)
            if grids is None:
                base = self.root / tenant
                evals_path = base / "evals.jsonl"
                grids = self._grids[tenant] = GridStores(
                    tenant=tenant,
                    results=ResultStore(base / "results"),
                    evals=EvalStore.load(evals_path),
                    evals_path=evals_path,
                )
            return grids

    def tenants(self) -> list[str]:
        """Every tenant: loaded ones plus any found on disk (a restart
        lists its predecessors' grids before they are touched)."""
        with self._lock:
            loaded = set(self._grids)
        on_disk = {
            p.name for p in self.root.iterdir()
            if p.is_dir() and valid_tenant(p.name)
        }
        return sorted(loaded | on_disk)

    def flush_all(self) -> int:
        """Merge-save every loaded eval store; returns records written."""
        with self._lock:
            grids = list(self._grids.values())
        return sum(g.flush() for g in grids)
