"""Application-driver base: traffic-shaped workloads over the pipelines.

The rest of the repo measures isolated transforms; real parallel-FFT
traffic (mpi4py-fft, P3DFFT — see PAPERS.md) is *applications* that call
forward/inverse FFTs thousands of times with plan and wisdom reuse
across steps.  :class:`AppDriver` is the harness for such workloads:

* a **plan-resolution** phase (:func:`resolve_plan`) that turns the
  app's setting into tuned parameters — explicit ``--params``, a warm
  plan-server fetch through :mod:`repro.serve` (zero local simulations),
  a local :func:`~repro.tuning.autotune` session, or the variant's
  untuned baseline;
* **warmup steps** excluded from every steady-state statistic, so the
  first-step planning/caching cost never pollutes throughput;
* **measured steps**, each wall-timed and traced as an ``app.step`` span
  with step-index attributes, publishing ``app_*`` counters/histograms
  to the ambient metrics registry (PR-7 plane);
* a final **numerics check** against a serial oracle.

Steady-state statistics follow the convention benchmarks expect:
``transforms_per_sec`` covers exactly the measured (post-warmup) steps;
the per-step p50/p95 and the ``plan_reuse_speedup`` ratio additionally
drop the very first process step even when ``warmup=0``, because that
step *is* the cold-plan measurement the speedup compares against.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..core.params import ProblemShape, TuningParams
from ..errors import ParameterError
from ..fft import Flag, planning_effort
from ..machine.platforms import Platform
from ..obs.registry import count, observe, scoped_registry, set_gauge
from ..obs.tracer import current_tracer


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (same convention as the bench harnesses)."""
    if not values:
        return float("nan")
    ordered = sorted(values)
    k = max(0, min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[k]


@dataclass
class AppConfig:
    """One application run: setting, traffic shape, and plan source."""

    shape: ProblemShape
    platform: Platform
    variant: str = "NEW"
    steps: int = 10
    warmup: int = 2
    seed: int = 0
    params: TuningParams | None = None
    plan_server: str | None = None
    tenant: str | None = None
    token: str | None = None
    budget: int | None = None
    eval_store: Any = None
    plan_effort: str | None = None
    clock: Callable[[], float] | None = None

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ParameterError(f"steps must be >= 1, got {self.steps}")
        if self.warmup < 0:
            raise ParameterError(f"warmup must be >= 0, got {self.warmup}")


@dataclass
class PlanResolution:
    """Where an app's tuned parameters came from, and what it cost."""

    source: str                      # explicit | server | tuned | baseline
    variant: str
    params: TuningParams | None
    sim_runs: int = 0                # simulations spent resolving the plan
    wall_s: float = 0.0
    provenance: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "source": self.source,
            "variant": self.variant,
            "params": None if self.params is None else self.params.as_dict(),
            "sim_runs": self.sim_runs,
            "wall_s": self.wall_s,
            "provenance": self.provenance,
        }


def _registry_total(reg, name: str) -> float:
    fam = reg.snapshot().get(name)
    if not fam:
        return 0.0
    return sum(value for _key, value in fam["samples"])


def resolve_plan(config: AppConfig) -> PlanResolution:
    """Resolve tuned parameters for an app run.

    Precedence: explicit ``params`` → ``plan_server`` (warm fetch via the
    serve client; the scoped registry proves the client side ran zero
    simulations) → local ``budget``-bounded autotuning (optionally
    through a shared eval store) → the variant's untuned baseline.
    """
    shape, variant = config.shape, config.variant
    if config.params is not None:
        return PlanResolution("explicit", variant, config.params)

    if config.plan_server:
        if not (shape.nx == shape.ny == shape.nz):
            raise ParameterError(
                "--plan-server plans are keyed by a single cubic N; "
                f"got {shape.nx}x{shape.ny}x{shape.nz} (resolve "
                "anisotropic shapes locally instead)"
            )
        from ..serve.client import request_plan, wait_for_plan

        t0 = time.perf_counter()
        with scoped_registry() as reg:
            code, body = request_plan(
                config.plan_server,
                platform=config.platform.name,
                p=shape.p,
                n=shape.nx,
                variant=variant,
                budget=config.budget,
                tenant=config.tenant,
                token=config.token,
            )
            if code == 202:
                body = wait_for_plan(
                    config.plan_server, body["job"], token=config.token
                )
            client_sims = int(_registry_total(reg, "sim_runs_total"))
        plan = body["plan"]
        provenance = dict(body.get("provenance", {}))
        provenance["status_code"] = code
        return PlanResolution(
            "server",
            plan.get("variant", variant),
            TuningParams(**plan["params"]),
            sim_runs=client_sims,
            wall_s=time.perf_counter() - t0,
            provenance=provenance,
        )

    if config.budget is not None:
        from ..tuning import autotune

        t0 = time.perf_counter()
        with scoped_registry() as reg:
            result = autotune(
                variant,
                config.platform,
                shape,
                max_evaluations=config.budget,
                eval_store=config.eval_store,
            )
            sims = int(_registry_total(reg, "sim_runs_total"))
        return PlanResolution(
            "tuned",
            variant,
            result.best_params,
            sim_runs=sims,
            wall_s=time.perf_counter() - t0,
            provenance={"objective": result.best_objective,
                        "tuning_time_virtual_s": result.tuning_time},
        )

    return PlanResolution("baseline", variant, None)


@dataclass
class AppResult:
    """Outcome of one application run, warmup excluded where it matters."""

    app: str
    shape: ProblemShape
    variant: str
    steps: int
    warmup: int
    transforms_per_step: int
    plan: PlanResolution
    step_wall_s: list[float]
    step_virtual_s: list[float]
    numerics_error: float
    numerics_tol: float

    @property
    def measured_wall_s(self) -> list[float]:
        """Wall times of the measured (post-warmup) steps."""
        return self.step_wall_s[self.warmup:]

    @property
    def steady_wall_s(self) -> list[float]:
        """Measured steps minus the cold first process step (see module
        docstring) — the population p50/p95 and the reuse speedup use."""
        return self.step_wall_s[max(self.warmup, 1):]

    @property
    def first_step_s(self) -> float:
        return self.step_wall_s[0]

    @property
    def step_p50_s(self) -> float:
        return percentile(self.steady_wall_s, 50)

    @property
    def step_p95_s(self) -> float:
        return percentile(self.steady_wall_s, 95)

    @property
    def transforms_per_sec(self) -> float:
        """Steady-state throughput over exactly the measured steps."""
        total = sum(self.measured_wall_s)
        if total <= 0:
            return float("nan")
        return self.transforms_per_step * len(self.measured_wall_s) / total

    @property
    def plan_reuse_speedup(self) -> float:
        """Cold first step vs steady p50 — what plan/wisdom reuse buys."""
        p50 = self.step_p50_s
        return self.first_step_s / p50 if p50 > 0 else float("nan")

    @property
    def virtual_step_s(self) -> float:
        """Mean simulated seconds per measured step."""
        vs = self.step_virtual_s[self.warmup:]
        return sum(vs) / len(vs) if vs else 0.0

    @property
    def numerics_ok(self) -> bool:
        return bool(self.numerics_error <= self.numerics_tol)

    def as_dict(self) -> dict:
        return {
            "app": self.app,
            "shape": [self.shape.nx, self.shape.ny, self.shape.nz],
            "p": self.shape.p,
            "variant": self.variant,
            "steps": self.steps,
            "warmup": self.warmup,
            "transforms_per_step": self.transforms_per_step,
            "plan": self.plan.as_dict(),
            "first_step_s": self.first_step_s,
            "step_p50_s": self.step_p50_s,
            "step_p95_s": self.step_p95_s,
            "transforms_per_sec": self.transforms_per_sec,
            "plan_reuse_speedup": self.plan_reuse_speedup,
            "virtual_step_s": self.virtual_step_s,
            "numerics_error": self.numerics_error,
            "numerics_ok": self.numerics_ok,
        }


class AppDriver:
    """Base class for traffic-shaped application workloads.

    Subclasses set :attr:`name` / :attr:`transforms_per_step` /
    :attr:`numerics_tol` and implement :meth:`prepare` (build initial
    state), :meth:`step` (one application step; returns per-step info
    with at least ``virtual_s``), and :meth:`oracle_error` (max relative
    error of the final state vs a serial reference).
    """

    name = "app"
    transforms_per_step = 2
    numerics_tol = 1e-8

    def __init__(self, config: AppConfig) -> None:
        self.config = config
        self.params: TuningParams | None = None
        self.variant = config.variant
        self._clock = config.clock or time.perf_counter

    # -- subclass hooks ----------------------------------------------------

    def prepare(self) -> None:
        raise NotImplementedError

    def step(self, index: int) -> dict:
        raise NotImplementedError

    def oracle_error(self) -> float:
        raise NotImplementedError

    # -- harness -----------------------------------------------------------

    def run(self) -> AppResult:
        cfg = self.config
        plan = resolve_plan(cfg)
        self.params = plan.params
        self.variant = plan.variant
        effort = (
            planning_effort(Flag(cfg.plan_effort.lower()))
            if cfg.plan_effort else nullcontext()
        )
        tracer = current_tracer()
        walls: list[float] = []
        virtuals: list[float] = []
        with effort:
            self.prepare()
            total = cfg.warmup + cfg.steps
            for i in range(total):
                phase = "warmup" if i < cfg.warmup else "measure"
                span = (
                    tracer.span("app.step", track="app", app=self.name,
                                step=i, phase=phase)
                    if tracer is not None else nullcontext({})
                )
                with span as attrs:
                    t0 = self._clock()
                    info = self.step(i) or {}
                    wall = self._clock() - t0
                    attrs.update(info)
                    attrs["wall_s"] = wall
                walls.append(wall)
                virtuals.append(float(info.get("virtual_s", 0.0)))
                count("app_steps_total", app=self.name, phase=phase)
                count("app_transforms_total", self.transforms_per_step,
                      app=self.name)
                observe("app_step_seconds", wall, app=self.name, phase=phase)
        result = AppResult(
            app=self.name,
            shape=cfg.shape,
            variant=self.variant,
            steps=cfg.steps,
            warmup=cfg.warmup,
            transforms_per_step=self.transforms_per_step,
            plan=plan,
            step_wall_s=walls,
            step_virtual_s=virtuals,
            numerics_error=float(self.oracle_error()),
            numerics_tol=self.numerics_tol,
        )
        set_gauge("app_steady_transforms_per_sec", result.transforms_per_sec,
                  app=self.name)
        set_gauge("app_plan_reuse_speedup", result.plan_reuse_speedup,
                  app=self.name)
        return result

    # -- shared numerics helpers ------------------------------------------

    def wavenumbers(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Integer wavenumber grids ``kx, ky, kz`` broadcast to 3-D."""
        s = self.config.shape
        kx = np.fft.fftfreq(s.nx, d=1.0 / s.nx).reshape(-1, 1, 1)
        ky = np.fft.fftfreq(s.ny, d=1.0 / s.ny).reshape(1, -1, 1)
        kz = np.fft.fftfreq(s.nz, d=1.0 / s.nz).reshape(1, 1, -1)
        return kx, ky, kz

    def ksq(self) -> np.ndarray:
        kx, ky, kz = self.wavenumbers()
        return kx * kx + ky * ky + kz * kz
