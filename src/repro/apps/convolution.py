"""3-D convolution app: periodic Gaussian smoothing via the FFT.

Convolution is the classic "two transforms per product" FFT workload:
the kernel spectrum is computed once at prepare time and every step pays
one forward and one inverse distributed transform around a pointwise
spectral product — exactly the traffic shape where a cached plan earns
its keep.
"""

from __future__ import annotations

import numpy as np

from ..core.api import parallel_fft3d, parallel_ifft3d
from .driver import AppDriver


def gaussian_kernel(shape: tuple[int, int, int], sigma: float) -> np.ndarray:
    """Periodic, unit-mass Gaussian on the grid (real space)."""
    axes = []
    for n in shape:
        d = np.minimum(np.arange(n), n - np.arange(n)).astype(float)
        axes.append(d * d)
    d2 = (
        axes[0].reshape(-1, 1, 1)
        + axes[1].reshape(1, -1, 1)
        + axes[2].reshape(1, 1, -1)
    )
    g = np.exp(-d2 / (2.0 * sigma * sigma))
    return g / g.sum()


class ConvolutionDriver(AppDriver):
    """Repeated Gaussian convolutions of a drifting input field."""

    name = "convolution"
    transforms_per_step = 2
    numerics_tol = 1e-8
    sigma = 1.5

    def prepare(self) -> None:
        s = self.config.shape
        rng = np.random.default_rng(self.config.seed)
        self.base = rng.standard_normal((s.nx, s.ny, s.nz))
        self.kernel = gaussian_kernel((s.nx, s.ny, s.nz), self.sigma)
        # One setup transform; the per-step loop reuses its spectrum.
        self.kernel_hat, _ = parallel_fft3d(
            self.kernel.astype(np.complex128), s.p, self.config.platform,
            self.params, self.variant,
        )
        self.last_in: np.ndarray | None = None
        self.last_out: np.ndarray | None = None

    def step(self, index: int) -> dict:
        s = self.config.shape
        x = np.roll(self.base, index, axis=0)
        x_hat, fwd = parallel_fft3d(
            x.astype(np.complex128), s.p, self.config.platform,
            self.params, self.variant,
        )
        y, inv = parallel_ifft3d(
            x_hat * self.kernel_hat, s.p, self.config.platform,
            self.params, self.variant,
        )
        self.last_in, self.last_out = x, y.real
        return {"virtual_s": fwd.elapsed + inv.elapsed}

    def oracle_error(self) -> float:
        assert self.last_in is not None and self.last_out is not None
        ref = np.fft.ifftn(
            np.fft.fftn(self.last_in) * np.fft.fftn(self.kernel)
        ).real
        scale = float(np.abs(ref).max()) or 1.0
        return float(np.abs(self.last_out - ref).max()) / scale
