"""Traffic-shaped application workloads over the simulated pipelines.

Public surface:

* :class:`AppDriver` / :class:`AppConfig` / :class:`AppResult` — the
  warmup/measure harness with steady-state throughput accounting;
* :func:`resolve_plan` / :class:`PlanResolution` — tuned-parameter
  resolution (explicit → plan server → local tuner → baseline);
* the concrete drivers (:data:`APPS`): spectral Poisson solve, 3-D
  convolution, and the turbulence-style pseudo-spectral stepper;
* :func:`solve_poisson` — the shared single-solve helper the examples
  wrap.
"""

from .convolution import ConvolutionDriver, gaussian_kernel
from .driver import (
    AppConfig,
    AppDriver,
    AppResult,
    PlanResolution,
    percentile,
    resolve_plan,
)
from .poisson import (
    PoissonDriver,
    manufactured_problem,
    serial_poisson,
    solve_poisson,
)
from .turbulence import (
    TurbulenceDriver,
    shell_spectrum,
    smooth_field,
    synth_velocity,
)

#: CLI / bench name -> driver class.
APPS: dict[str, type[AppDriver]] = {
    "poisson": PoissonDriver,
    "convolution": ConvolutionDriver,
    "turbulence": TurbulenceDriver,
}

__all__ = [
    "APPS",
    "AppConfig",
    "AppDriver",
    "AppResult",
    "ConvolutionDriver",
    "PlanResolution",
    "PoissonDriver",
    "TurbulenceDriver",
    "gaussian_kernel",
    "manufactured_problem",
    "percentile",
    "resolve_plan",
    "serial_poisson",
    "shell_spectrum",
    "smooth_field",
    "solve_poisson",
    "synth_velocity",
]
