"""Spectral Poisson solver app: forward → k-space scale → inverse.

Differential-equation solving is the FFT use the paper's introduction
leads with; this driver makes it a *traffic* shape — the same periodic
Poisson solve repeated step after step with per-step source amplitudes,
so plan/wisdom reuse across steps is what the harness measures.

:func:`solve_poisson` is the shared single-solve helper (the examples'
ad-hoc copies of the k-space division now live here).
"""

from __future__ import annotations

import numpy as np

from ..core.api import RunResult, parallel_fft3d, parallel_ifft3d
from ..machine.platforms import Platform
from .driver import AppDriver


def _k2_grid(shape: tuple[int, int, int], box: float) -> np.ndarray:
    """|k|^2 on the physical wavenumber grid of a periodic ``box``."""
    axes = [
        2.0 * np.pi * np.fft.fftfreq(n, d=box / n) for n in shape
    ]
    kx = axes[0].reshape(-1, 1, 1)
    ky = axes[1].reshape(1, -1, 1)
    kz = axes[2].reshape(1, 1, -1)
    return kx * kx + ky * ky + kz * kz


def solve_poisson(
    source: np.ndarray,
    p: int,
    platform: Platform,
    params=None,
    variant: str = "NEW",
    box: float = 2.0 * np.pi,
) -> tuple[np.ndarray, tuple[RunResult, RunResult]]:
    """Solve ``laplace(u) = source`` on the simulated cluster.

    Periodic box of extent ``box`` per side; the zero mode is removed
    (the solution's mean is pinned to zero).  Returns ``(u, (fwd, inv))``
    with the two distributed-transform results for timing.
    """
    src = np.asarray(source, dtype=np.complex128)
    s_hat, fwd = parallel_fft3d(src, p, platform, params, variant)
    k2 = _k2_grid(src.shape, box)
    k2[0, 0, 0] = 1.0
    u_hat = -s_hat / k2
    u_hat[0, 0, 0] = 0.0
    u, inv = parallel_ifft3d(u_hat, p, platform, params, variant)
    return u.real, (fwd, inv)


def serial_poisson(source: np.ndarray, box: float = 2.0 * np.pi) -> np.ndarray:
    """Serial numpy oracle for :func:`solve_poisson`."""
    s_hat = np.fft.fftn(np.asarray(source, dtype=np.complex128))
    k2 = _k2_grid(s_hat.shape, box)
    k2[0, 0, 0] = 1.0
    u_hat = -s_hat / k2
    u_hat[0, 0, 0] = 0.0
    return np.fft.ifftn(u_hat).real


def manufactured_problem(
    shape: tuple[int, int, int],
) -> tuple[np.ndarray, np.ndarray]:
    """``(f, u_exact)`` for ``-laplace(u) = f`` on ``[0, 2*pi)^3``.

    ``u = sin(x) sin(2y) cos(3z)`` is a Laplacian eigenfunction with
    eigenvalue 14, so the spectral solve is exact to round-off.
    """
    grids = [2.0 * np.pi * np.arange(n) / n for n in shape]
    x = grids[0].reshape(-1, 1, 1)
    y = grids[1].reshape(1, -1, 1)
    z = grids[2].reshape(1, 1, -1)
    u_exact = np.sin(x) * np.sin(2 * y) * np.cos(3 * z)
    return 14.0 * u_exact, u_exact


class PoissonDriver(AppDriver):
    """Repeated spectral Poisson solves with per-step source amplitudes."""

    name = "poisson"
    transforms_per_step = 2
    numerics_tol = 1e-9

    def prepare(self) -> None:
        s = self.config.shape
        self.rhs, self.u_exact = manufactured_problem((s.nx, s.ny, s.nz))
        self.last_scale = 1.0
        self.last_u: np.ndarray | None = None

    def step(self, index: int) -> dict:
        s = self.config.shape
        # Distinct data each step (the solve is linear, so the exact
        # solution just scales with the source).
        self.last_scale = 1.0 + 0.25 * index
        u, (fwd, inv) = solve_poisson(
            -self.last_scale * self.rhs, s.p, self.config.platform,
            self.params, self.variant,
        )
        self.last_u = u
        return {"virtual_s": fwd.elapsed + inv.elapsed}

    def oracle_error(self) -> float:
        assert self.last_u is not None
        ref = serial_poisson(-self.last_scale * self.rhs)
        scale = float(np.abs(ref).max()) or 1.0
        return float(np.abs(self.last_u - ref).max()) / scale

    def analytic_error(self) -> float:
        """Max error vs the manufactured eigenfunction solution."""
        assert self.last_u is not None
        return float(
            np.abs(self.last_u - self.last_scale * self.u_exact).max()
        )
