"""Turbulence-style pseudo-spectral time-stepper.

The headline traffic shape from the paper's motivating applications
(petascale flow simulation, ref [25]; mpi4py-fft's Navier-Stokes demos):
a state kept in spectral space, advanced N steps, each step paying an
inverse transform to real space, a pointwise nonlinear term, and a
forward transform back — plus dealiasing and an integrating-factor
viscous decay.  The nonlinear term here is a *placeholder* (the scalar
Burgers flux ``u^2/2``), enough to exercise the real data path without
claiming fluid dynamics.

Also home to the synthetic-spectrum helpers the turbulence example used
to carry: :func:`synth_velocity` and :func:`shell_spectrum`.
"""

from __future__ import annotations

import numpy as np

from ..core.api import parallel_fft3d, parallel_ifft3d
from .driver import AppDriver


def synth_velocity(seed: int, n: int) -> np.ndarray:
    """Random field with amplitude ~ k^(-(5/3+2)/2) so E(k) ~ k^-5/3."""
    rng = np.random.default_rng(seed)
    k = np.fft.fftfreq(n, d=1.0 / n)
    kx, ky, kz = np.meshgrid(k, k, k, indexing="ij")
    kk = np.sqrt(kx**2 + ky**2 + kz**2)
    kk[0, 0, 0] = 1.0
    amp = kk ** (-(5.0 / 3.0 + 2.0) / 2.0)
    amp[0, 0, 0] = 0.0
    amp[kk > n // 3] = 0.0  # dealias the high shell
    phase = np.exp(2j * np.pi * rng.random((n, n, n)))
    spec = amp * phase
    # Hermitian-symmetrize so the field is real.
    u = np.fft.ifftn(spec).real
    return u / np.abs(u).max()


def shell_spectrum(half_spec: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Bin |u_hat|^2 into integer-|k| shells from an rfft half spectrum."""
    k = np.fft.fftfreq(n, d=1.0 / n)
    kzh = np.arange(n // 2 + 1)
    kx, ky, kz = np.meshgrid(k, k, kzh, indexing="ij")
    kk = np.sqrt(kx**2 + ky**2 + kz**2)
    # rfft keeps only half of z: double interior-plane energy.
    weight = np.full(half_spec.shape, 2.0)
    weight[:, :, 0] = 1.0
    if n % 2 == 0:
        weight[:, :, -1] = 1.0
    energy = weight * np.abs(half_spec) ** 2
    shells = np.arange(1, n // 3)
    e_k = np.array(
        [energy[(kk >= s - 0.5) & (kk < s + 0.5)].sum() for s in shells]
    )
    return shells, e_k


def smooth_field(shape: tuple[int, int, int], seed: int) -> np.ndarray:
    """Low-pass-filtered random real field (any grid shape)."""
    rng = np.random.default_rng(seed)
    raw = rng.standard_normal(shape)
    spec = np.fft.fftn(raw)
    axes = [np.fft.fftfreq(n) for n in shape]  # cycles/sample in [-.5, .5)
    fx = axes[0].reshape(-1, 1, 1)
    fy = axes[1].reshape(1, -1, 1)
    fz = axes[2].reshape(1, 1, -1)
    f2 = fx * fx + fy * fy + fz * fz
    spec *= np.exp(-((f2 / 0.02) ** 2))
    u = np.fft.ifftn(spec).real
    return u / np.abs(u).max()


class TurbulenceDriver(AppDriver):
    """N pseudo-spectral Euler steps of a scalar Burgers-type equation.

    State lives in spectral space; each step is one inverse + one
    forward distributed transform around the placeholder nonlinearity,
    with 2/3-rule dealiasing and an exact integrating factor for the
    viscous term.  The oracle replays the identical evolution with
    ``numpy.fft`` from the same initial state.
    """

    name = "turbulence"
    transforms_per_step = 2
    numerics_tol = 1e-8
    dt = 1e-3
    nu = 1e-2

    def prepare(self) -> None:
        s = self.config.shape
        shape3 = (s.nx, s.ny, s.nz)
        u0 = smooth_field(shape3, self.config.seed)
        self.u_hat0 = np.fft.fftn(u0)
        self.u_hat = self.u_hat0.copy()
        kx, ky, kz = self.wavenumbers()
        self.ik_sum = 1j * (kx + ky + kz)
        k2 = self.ksq()
        self.visc = np.exp(-self.nu * k2 * self.dt)
        self.dealias = (
            (np.abs(kx) <= s.nx // 3)
            & (np.abs(ky) <= s.ny // 3)
            & (np.abs(kz) <= s.nz // 3)
        ).astype(float)
        self.steps_done = 0

    def _advance(self, u_hat, fftn, ifftn):
        """One Euler step; ``fftn``/``ifftn`` supply the transform pair."""
        u = ifftn(u_hat)
        flux_hat = fftn(0.5 * u * u)
        return (u_hat - self.dt * self.ik_sum * self.dealias * flux_hat) * self.visc

    def step(self, index: int) -> dict:
        s = self.config.shape
        elapsed = [0.0]

        def ifftn(u_hat):
            out, res = parallel_ifft3d(u_hat, s.p, self.config.platform,
                                       self.params, self.variant)
            elapsed[0] += res.elapsed
            return out

        def fftn(u):
            out, res = parallel_fft3d(u, s.p, self.config.platform,
                                      self.params, self.variant)
            elapsed[0] += res.elapsed
            return out

        self.u_hat = self._advance(self.u_hat, fftn, ifftn)
        self.steps_done += 1
        return {"virtual_s": elapsed[0]}

    def oracle_error(self) -> float:
        ref = self.u_hat0.copy()
        for _ in range(self.steps_done):
            ref = self._advance(ref, np.fft.fftn, np.fft.ifftn)
        scale = float(np.abs(ref).max()) or 1.0
        return float(np.abs(self.u_hat - ref).max()) / scale
