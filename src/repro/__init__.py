"""repro: a full reproduction of "Designing and Auto-Tuning Parallel
3-D FFT for Computation-Communication Overlap" (Song & Hollingsworth,
PPoPP 2014).

Subpackages
-----------
``repro.fft``
    From-scratch FFT substrate (mixed-radix + Bluestein kernels, an
    FFTW-style planner with wisdom, layout transposes, real transforms).
``repro.machine``
    Analytic machine models of the paper's two platforms.
``repro.simmpi``
    Deterministic discrete-event simulated MPI with manual-progression
    non-blocking collectives.
``repro.core``
    The paper's contribution: the tiled, overlapped, ten-parameter
    parallel 3-D FFT pipeline and the compared baselines.
``repro.tuning``
    Active-Harmony-style Nelder-Mead auto-tuning with the paper's
    penalty / history / skip / log-reduction / initial-simplex
    techniques.
``repro.bench`` / ``repro.report``
    Experiment grids, paper reference data, and report rendering.

Quickstart
----------
>>> import numpy as np
>>> from repro import parallel_fft3d, UMD_CLUSTER
>>> a = np.random.default_rng(0).standard_normal((16, 16, 16)) + 0j
>>> spectrum, result = parallel_fft3d(a, p=4, platform=UMD_CLUSTER)
>>> bool(np.allclose(spectrum, np.fft.fftn(a)))
True
"""

from .core import (
    ParallelFFT3D,
    ProblemShape,
    RunResult,
    TuningParams,
    default_params,
    parallel_fft3d,
    parallel_ifft3d,
    run_case,
)
from .faults import FaultSpec, injected_faults, parse_faults
from .machine import HOPPER, UMD_CLUSTER, Platform, get_platform
from .tuning import TuningResult, autotune

__version__ = "1.0.0"

__all__ = [
    "FaultSpec",
    "HOPPER",
    "injected_faults",
    "parse_faults",
    "ParallelFFT3D",
    "Platform",
    "ProblemShape",
    "RunResult",
    "TuningParams",
    "TuningResult",
    "UMD_CLUSTER",
    "autotune",
    "default_params",
    "get_platform",
    "parallel_fft3d",
    "parallel_ifft3d",
    "run_case",
    "__version__",
]
