"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    Simulate one 3-D FFT (any variant/platform/size) and print the time
    and per-step breakdown.
``app``
    Run a traffic-shaped application workload (spectral Poisson solve,
    3-D convolution, turbulence-style time-stepper) for N steps with
    plan/wisdom reuse, reporting steady-state transforms/sec (warmup
    excluded), per-step p50/p95, and a numerics check vs a serial
    oracle; tuned params come from ``--params``, ``--plan-server``, a
    local ``--budget`` tuning session, or the variant baseline.
``tune``
    Auto-tune a variant for a setting; prints the winning configuration,
    objective, and tuning cost.
``sweep``
    One-parameter ablation sweep (tile size, window, test frequency...).
``random``
    Figure-5-style random-configuration CDF.
``grid``
    Evaluate a Table-2 style benchmark grid, optionally sharded over
    worker processes (``--jobs``) with an on-disk result store — or
    distributed: ``--serve [HOST:PORT]`` starts a coordinator and
    ``--workers local,local`` (or ssh hosts) launches a fleet against
    it; stores come out byte-identical to a local run.
``worker``
    Join a ``grid --serve`` coordinator as a worker: lease cells,
    evaluate them on a local pool, ship results back.
``top``
    Live terminal dashboard for a running ``grid --serve`` coordinator:
    queue depth, lease ages, per-worker heartbeat lag, throughput and
    fleet-wide metric totals, polled from ``/status`` + ``/metrics``.
``trace``
    Replay a saved trace (JSONL or Chrome JSON) as an ASCII gantt;
    ``--out FILE`` re-exports it (JSONL <-> Chrome conversion).
``calibrate``
    Machine-model calibration against the paper's published numbers.
``platforms``
    List available platform models.

``tune``, ``sweep`` and ``grid`` accept ``--eval-store PATH``: a shared
JSONL pool of every timed configuration (see
:mod:`repro.tuning.evalstore`) is loaded before the command and
atomically merge-saved after it, so repeated or cross-strategy
invocations answer known configurations for free.

``run``, ``sweep`` and ``grid`` accept ``--trace FILE``: the run is
executed under a :mod:`repro.obs` tracer and the result written as a
Chrome trace-event JSON (``.json``, Perfetto-viewable) or a JSONL event
log (``.jsonl``, replayable with ``repro trace``).  ``grid``/``sweep``
render a live per-cell progress line with ETA on stderr.

``run`` and ``grid`` accept ``--profile [FILE]``: the command body runs
under cProfile and the top-25 cumulative functions are printed to
stderr (host time, complementing ``--trace``'s virtual time); with a
``FILE`` the full pstats dump is written there too.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
import time
from contextlib import contextmanager

from .core.api import BREAKDOWN_LABELS, run_case
from .core.params import ProblemShape, TuningParams
from .core.variants import VARIANTS
from .machine.platforms import PLATFORMS, get_platform
from .report.ascii import format_table
from .report.cdf import format_cdf, summarize_cdf


def _add_setting_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("-n", "--size", type=int, default=256,
                   help="array extent N (N^3 elements)")
    p.add_argument("-p", "--procs", type=int, default=16,
                   help="number of simulated ranks")
    p.add_argument("-m", "--machine", default="UMD-Cluster",
                   help="platform model (see `platforms`)")
    p.add_argument("-v", "--variant", default="NEW",
                   help=f"method: {', '.join(sorted(VARIANTS))}")


def _add_jobs_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "-j", "--jobs", type=int, default=None,
        help="worker processes (0 = all cores; default: $REPRO_JOBS or 1)",
    )
    p.add_argument(
        "--no-progress", action="store_true",
        help="suppress the live progress line on stderr",
    )


def _add_trace_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write a trace: .jsonl = event log (replayable with "
             "`repro trace`), anything else = Chrome trace-event JSON "
             "(open in Perfetto)",
    )


def _add_faults_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="inject deterministic faults into the simulated machine, "
             "e.g. 'straggler:rank=3,slow=2.0;jitter:amp=2e-6;seed:42' "
             "(kinds: straggler, degrade, jitter, spike, poll, seed)",
    )


@contextmanager
def _maybe_faults(args):
    """Install the ``--faults`` spec ambiently for the command body, so
    every simulation it runs — including in pool workers — sees the
    same degraded machine."""
    text = getattr(args, "faults", None)
    if not text:
        yield None
        return
    from .errors import FaultSpecError
    from .faults import injected_faults, parse_faults

    try:
        spec = parse_faults(text)
    except FaultSpecError as exc:
        raise SystemExit(f"error: {exc}")
    with injected_faults(spec):
        yield spec


@contextmanager
def _maybe_trace(args, rank_spans: bool):
    """Install a tracer for the command body when ``--trace`` was given,
    and export it on the way out."""
    path = getattr(args, "trace", None)
    if not path:
        yield None
        return
    from .obs import Tracer, tracing, write_trace

    meta = {"command": args.command, "argv": " ".join(sys.argv[1:])}
    with tracing(Tracer(rank_spans=rank_spans, meta=meta)) as tracer:
        yield tracer
    n = write_trace(tracer, path)
    print(f"trace: {n} records -> {path}")


def _add_profile_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--profile", metavar="FILE", nargs="?", const="-", default=None,
        help="profile the command under cProfile and print the top 25 "
             "functions by cumulative host time to stderr; with FILE, "
             "also write the full pstats dump there (parent process "
             "only — pool workers are not profiled)",
    )


@contextmanager
def _maybe_profile(args):
    """Run the command body under cProfile when ``--profile`` was given.

    Prints the top-25 cumulative functions to stderr — the host-time
    view of where a simulation spends itself (the virtual-time view is
    ``--trace``).  Never wraps the report printing, so profiling cannot
    change command output.
    """
    target = getattr(args, "profile", None)
    if target is None:
        yield None
        return
    import cProfile
    import io
    import pstats

    prof = cProfile.Profile()
    prof.enable()
    try:
        yield prof
    finally:
        prof.disable()
        if target != "-":
            prof.dump_stats(target)
            print(f"profile: full pstats dump -> {target}", file=sys.stderr)
        buf = io.StringIO()
        pstats.Stats(prof, stream=buf).sort_stats("cumulative").print_stats(25)
        print(buf.getvalue(), file=sys.stderr, end="")


def _progress(args):
    """The live per-cell progress renderer (None when suppressed)."""
    if getattr(args, "no_progress", False):
        return None
    from .obs import ProgressLine

    return ProgressLine()


def _add_eval_store_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--eval-store", metavar="PATH", default=None,
        help="shared evaluation store (JSONL): answer already-timed "
             "configurations for free and record new ones (atomic "
             "merge-save, shared across strategies/commands/runs)",
    )


def _load_eval_store(args):
    """The shared evaluation store named by ``--eval-store`` (or None)."""
    if getattr(args, "eval_store", None) is None:
        return None
    from .tuning.evalstore import EvalStore

    return EvalStore.load(args.eval_store)


def _save_eval_store(args, store) -> None:
    """Merge-save the store back and print its hit/record summary."""
    if store is None:
        return
    n = store.save(args.eval_store)
    print(f"eval store: {store.hits} hits, {store.new_records} new "
          f"evaluations, {n} records -> {args.eval_store}")


def _add_token_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--token", metavar="SECRET", default=None,
        help="bearer token for the coordinator/plan server (default: "
             "$REPRO_DIST_TOKEN; omit entirely to disable auth)",
    )


def _resolve_token(args) -> str | None:
    """``--token``, falling back to ``$REPRO_DIST_TOKEN`` (how spawned
    local fleet workers inherit the coordinator's token)."""
    return getattr(args, "token", None) or os.environ.get(
        "REPRO_DIST_TOKEN") or None


def _shape(args) -> ProblemShape:
    return ProblemShape(args.size, args.size, args.size, args.procs)


def _parse_params(text: str | None) -> TuningParams | None:
    """Parse 'T=32,W=2,...' into a TuningParams (missing keys error)."""
    if not text:
        return None
    fields = {}
    for item in text.split(","):
        key, _, value = item.partition("=")
        fields[key.strip()] = int(value)
    return TuningParams(**fields)


def _print_overlap(sim) -> None:
    """One-line overlap summary under a run's breakdown table."""
    from .obs import run_metrics

    m = run_metrics(sim)
    print(f"overlap: {m['overlap_efficiency_pct']:.1f}% of the exchange "
          f"window covered by compute; exposed comm "
          f"{m['exposed_comm_s']:.4f} s")
    if m.get("faults"):
        print(f"faults: {m['faults']}")


def cmd_run(args) -> int:
    """``repro run``: simulate one FFT and print the breakdown."""
    platform = get_platform(args.machine)
    shape = _shape(args)
    with _maybe_faults(args), _maybe_trace(args, rank_spans=True), \
            _maybe_profile(args):
        if args.decomposition == "pencil":
            from .core.pencil import PencilFFT3D
            from .simmpi.spmd import run_spmd

            def prog(ctx):
                plan = PencilFFT3D(ctx, (args.size, args.size, args.size))
                yield from plan.steps(None)

            sim = run_spmd(args.procs, prog, platform)
            print(f"pencil FFT on {platform.name}: N={args.size}^3, p={args.procs}")
            print(f"simulated time: {sim.elapsed:.4f} s")
            rows = [[k, v] for k, v in sorted(sim.breakdown().items())]
            print(format_table(["step", "seconds"], rows))
            return 0
        if args.real:
            from .core.realfft3d import ParallelRFFT3D
            from .simmpi.spmd import run_spmd

            def prog(ctx):
                yield from ParallelRFFT3D(
                    ctx, shape, _parse_params(args.params)
                ).steps(None)

            sim = run_spmd(args.procs, prog, platform)
            print(f"r2c FFT on {platform.name}: N={args.size}^3, p={args.procs}")
            print(f"simulated time: {sim.elapsed:.4f} s")
            return 0
        result, _ = run_case(
            args.variant, platform, shape, _parse_params(args.params)
        )
        print(f"{result.variant} on {result.platform}: "
              f"N={args.size}^3, p={args.procs}")
        print(f"simulated time: {result.elapsed:.4f} s")
        rows = [
            [label, secs, 100.0 * secs / result.elapsed]
            for label, secs in result.breakdown.items()
            if label in BREAKDOWN_LABELS
        ]
        print(format_table(["step", "seconds", "% of total"], rows))
        if result.sim is not None:
            _print_overlap(result.sim)
        return 0


def cmd_multi(args) -> int:
    """``repro multi``: compare the four multi-array overlap modes."""
    from .core.multiarray import MODES, run_multi_array

    platform = get_platform(args.machine)
    shape = _shape(args)
    rows = []
    for mode in MODES:
        sim, _ = run_multi_array(platform, shape, args.arrays, mode)
        rows.append([mode, sim.elapsed, sim.elapsed / args.arrays])
    print(format_table(
        ["mode", "total (s)", "per array (s)"],
        rows,
        title=f"{args.arrays} successive FFTs on {platform.name}"
              f" (N={args.size}^3, p={args.procs})",
    ))
    return 0


def cmd_app(args) -> int:
    """``repro app``: run a traffic-shaped application workload."""
    from .apps import APPS, AppConfig
    from .errors import DistProtocolError, DistUnreachableError, ItemTimeoutError

    platform = get_platform(args.machine)
    if args.shape:
        try:
            nx, ny, nz = (int(v) for v in args.shape.split(","))
        except ValueError:
            raise SystemExit("error: --shape expects NX,NY,NZ")
        shape = ProblemShape(nx, ny, nz, args.procs)
    else:
        shape = _shape(args)
    evals = _load_eval_store(args)
    cfg = AppConfig(
        shape=shape, platform=platform, variant=args.variant,
        steps=args.steps, warmup=args.warmup, seed=args.seed,
        params=_parse_params(args.params),
        plan_server=args.plan_server, tenant=args.tenant,
        token=_resolve_token(args), budget=args.budget,
        eval_store=evals, plan_effort=args.plan_effort,
    )
    with _maybe_faults(args), _maybe_trace(args, rank_spans=False):
        try:
            result = APPS[args.app](cfg).run()
        except (DistUnreachableError, DistProtocolError,
                ItemTimeoutError) as exc:
            raise SystemExit(f"error: {exc}")
    _save_eval_store(args, evals)

    if args.json:
        import json

        print(json.dumps(result.as_dict(), indent=2, sort_keys=True))
        return 0 if result.numerics_ok else 1

    plan = result.plan
    print(f"{result.app} on {platform.name}: "
          f"{shape.nx}x{shape.ny}x{shape.nz}, p={shape.p}, {result.variant}")
    if plan.source == "server":
        print(f"plan: {plan.source} ({args.plan_server}), "
              f"{plan.sim_runs} local simulations, "
              f"{plan.wall_s:.3f} s fetch, "
              f"provenance {plan.provenance.get('source', '?')}")
    elif plan.source == "tuned":
        print(f"plan: locally tuned, {plan.sim_runs} simulations, "
              f"{plan.wall_s:.2f} s")
    else:
        print(f"plan: {plan.source}")
    print(f"steps: {result.steps} measured + {result.warmup} warmup, "
          f"{result.transforms_per_step} transforms/step")
    print(f"steady-state: {result.transforms_per_sec:.1f} transforms/s "
          f"(warmup excluded); per-step p50 {result.step_p50_s * 1e3:.2f} ms, "
          f"p95 {result.step_p95_s * 1e3:.2f} ms")
    print(f"plan-reuse speedup: {result.plan_reuse_speedup:.2f}x "
          f"(first step {result.first_step_s * 1e3:.2f} ms)")
    print(f"virtual time: {result.virtual_step_s * 1e3:.2f} ms/step")
    status = "ok" if result.numerics_ok else "FAIL"
    print(f"numerics: max rel error {result.numerics_error:.2e} vs serial "
          f"oracle (tol {result.numerics_tol:g}) -- {status}")
    return 0 if result.numerics_ok else 1


def cmd_tune(args) -> int:
    """``repro tune``: auto-tune a variant and print the winner."""
    from .tuning.tuner import autotune

    platform = get_platform(args.machine)
    evals = _load_eval_store(args)
    result = autotune(
        args.variant, platform, _shape(args), max_evaluations=args.budget,
        strategy=args.strategy, eval_store=evals,
    )
    print(f"tuned {result.variant} on {result.platform}: "
          f"N={args.size}^3, p={args.procs}")
    print(f"  FFT time       : {result.fft_time:.4f} s")
    print(f"  objective      : {result.best_objective:.4f} s "
          f"(FFTz/Transpose excluded)")
    print(f"  evaluations    : {result.evaluations} "
          f"({result.session.executed_evaluations} executed)")
    print(f"  tuning time    : {result.tuning_time:.1f} simulated s")
    print(f"  configuration  : {result.best_params.as_dict()}")
    _save_eval_store(args, evals)
    return 0


def cmd_sweep(args) -> int:
    """``repro sweep``: one-parameter ablation table."""
    from .tuning.gridsearch import sweep_parameter

    platform = get_platform(args.machine)
    evals = _load_eval_store(args)
    with _maybe_faults(args), _maybe_trace(args, rank_spans=False):
        pts = sweep_parameter(
            args.variant, platform, _shape(args), args.name, jobs=args.jobs,
            progress=_progress(args), eval_store=evals,
        )
    _save_eval_store(args, evals)
    print(format_table(
        [args.name, "time (s)"],
        [[p.value, p.objective] for p in pts],
        title=f"sweep of {args.name} ({args.variant}, {platform.name}, "
              f"N={args.size}^3, p={args.procs})",
    ))
    return 0


def cmd_random(args) -> int:
    """``repro random``: Figure-5-style random-configuration CDF."""
    from .tuning.random_search import random_search

    platform = get_platform(args.machine)
    rs = random_search(
        args.variant, platform, _shape(args),
        n_samples=args.samples, seed=args.seed, jobs=args.jobs,
    )
    print(format_cdf(rs.times))
    stats = summarize_cdf(rs.times)
    print(format_table(
        ["min", "median", "max", "max/min"],
        [[stats["min"], stats["median"], stats["max"], stats["spread"]]],
    ))
    return 0


def cmd_grid(args) -> int:
    """``repro grid``: evaluate a benchmark grid of (p, N) cells."""
    from .bench.workloads import VARIANT_ORDER
    from .exec import run_grid

    cells = []
    try:
        for spec_str in args.cells.split(";"):
            p_str, _, n_str = spec_str.partition(":")
            for n in n_str.split(","):
                cells.append((int(p_str), int(n)))
    except ValueError:
        print(f"error: bad --cells {args.cells!r}; expected 'p:N,N,...;p:N,...'"
              " (e.g. '16:256,384;32:256')", file=sys.stderr)
        return 2
    from .errors import GridInterrupted

    dispatch, dist_cfg = "local", None
    if args.serve is not None or args.workers:
        from .dist import DistConfig

        dispatch = "dist"
        addr = args.serve if args.serve is not None else "127.0.0.1:0"
        host, _, port_str = addr.partition(":")
        try:
            port = int(port_str) if port_str else 0
        except ValueError:
            print(f"error: bad --serve address {addr!r}; expected HOST[:PORT]",
                  file=sys.stderr)
            return 2
        dist_cfg = DistConfig(
            host=host or "127.0.0.1", port=port,
            workers=args.workers or "", worker_jobs=args.worker_jobs,
            lease_ttl=args.lease_ttl, trace_dir=args.trace_dir,
            token=_resolve_token(args),
            announce=lambda url: print(f"coordinator serving at {url}",
                                       file=sys.stderr, flush=True),
        )
    line = _progress(args)
    try:
        with _maybe_faults(args) as spec, \
                _maybe_trace(args, rank_spans=False), _maybe_profile(args):
            results, evals = run_grid(
                args.machine, cells,
                jobs=args.jobs, max_evaluations=args.budget,
                store_dir=args.store,
                progress=line, eval_store_path=args.eval_store,
                dispatch=dispatch, dist=dist_cfg,
                note=None if line is None else line.set_note,
            )
    except GridInterrupted as exc:
        if line is not None:
            line.close()
        print(f"error: {exc}", file=sys.stderr)
        for (p, n), err in sorted(exc.failures.items()):
            print(f"  p{p} N{n}: {err}", file=sys.stderr)
        if args.store:
            already = len(exc.completed) - len(exc.salvaged)
            resumed = f" ({already} were already stored)" if already else ""
            print(f"{len(exc.salvaged)} newly completed cell(s) saved to "
                  f"{args.store}{resumed}; re-run the same command to resume",
                  file=sys.stderr)
        return 3
    if spec is not None:
        print(f"faults: {spec.key()}")
    if evals is not None:
        print(f"eval store: {evals.hits} hits, {evals.new_records} new "
              f"evaluations, {len(evals)} records -> {args.eval_store}")
    rows = []
    for cell in results:
        rows.append(
            [cell.p, cell.n]
            + [cell.times[v] for v in VARIANT_ORDER]
            + [cell.speedup("NEW")]
        )
    print(format_table(
        ["p", "N"] + list(VARIANT_ORDER) + ["NEW speedup"],
        rows,
        title=f"grid on {args.machine} (budget={args.budget}, "
              f"jobs={args.jobs if args.jobs is not None else 'auto'})",
    ))
    overlap_rows = [
        [cell.p, cell.n, variant,
         cell.metrics[variant]["overlap_efficiency_pct"],
         cell.metrics[variant]["exposed_comm_s"],
         cell.metrics[variant].get("test_calls_per_rank", 0)]
        for cell in results
        for variant in VARIANT_ORDER
        if variant in cell.metrics
    ]
    if overlap_rows:
        print()
        print(format_table(
            ["p", "N", "variant", "overlap eff %", "exposed comm (s)",
             "tests/rank"],
            overlap_rows,
            title="overlap summary (tuned full runs)",
        ))
    return 0


def cmd_worker(args) -> int:
    """``repro worker``: serve a ``grid --serve`` coordinator."""
    from .dist import run_worker
    from .errors import DistError

    try:
        stats = run_worker(
            args.coordinator,
            jobs=args.jobs,
            max_cells=args.max_cells,
            poll_s=args.poll,
            progress=_progress(args),
            token=_resolve_token(args),
        )
    except DistError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 4
    except KeyboardInterrupt:
        print("worker interrupted; leased cells will expire and requeue",
              file=sys.stderr)
        return 130
    print(f"worker {stats.worker}: {stats.cells_done} cell(s) evaluated, "
          f"{stats.cells_failed} failed, over {stats.leases} lease(s)")
    return 0


def cmd_serve(args) -> int:
    """``repro serve``: long-lived tuned-plan server (DESIGN.md §5.13)."""
    import signal

    from .serve import PlanServer, ServeConfig

    host, _, port_text = args.bind.partition(":")
    try:
        port = int(port_text) if port_text else 0
    except ValueError:
        print(f"error: bad --bind port {port_text!r}", file=sys.stderr)
        return 2
    config = ServeConfig(
        host=host or "127.0.0.1",
        port=port,
        root=args.root,
        token=_resolve_token(args),
        workers=args.workers or "",
        worker_jobs=args.worker_jobs,
        lease_ttl=args.lease_ttl,
        job_threads=args.job_threads,
        default_budget=args.budget,
        journal=not args.no_journal,
        drain_timeout=args.drain_timeout,
        job_timeout=args.job_timeout,
    )
    # SIGTERM (supervisors) and SIGINT (ctrl-C) both take the graceful
    # path: flip readiness, let active jobs finish up to --drain-timeout,
    # journal survivors as interrupted for the next incarnation to
    # replay.  Installed before the server binds so a signal racing
    # startup still drains instead of dying on the default disposition.
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    signal.signal(signal.SIGINT, lambda *_: stop.set())

    server = PlanServer(config)
    url = server.start()
    mode = (f"fleet: {config.workers}" if config.workers
            else "in-process tuning")
    auth = "bearer-token auth" if config.token else "auth disabled"
    # flush=True throughout: subprocess harnesses (chaos tests, the
    # recovery benchmark) parse the URL from a pipe before any newline
    # pressure would flush it naturally
    print(f"plan server listening on {url} ({mode}, {auth})", flush=True)
    print(f"  stores under {args.root}/<tenant>/ ; "
          f"POST {url}/plan , GET {url}/status , GET {url}/metrics , "
          f"GET {url}/healthz", flush=True)
    if server.recovered_jobs:
        print(f"  recovered {server.recovered_jobs} interrupted job(s) "
              f"from the journal", flush=True)

    while not stop.is_set():
        stop.wait(1.0)
    print(f"\nplan server draining (up to {config.drain_timeout:g}s)...",
          file=sys.stderr, flush=True)
    outcome = server.drain()
    if outcome["drained"]:
        print("plan server drained cleanly; all jobs journaled final",
              file=sys.stderr, flush=True)
    else:
        ids = ", ".join(outcome["interrupted"])
        print(f"drain timeout expired; journaled as interrupted: {ids}",
              file=sys.stderr, flush=True)
    return 0


def cmd_top(args) -> int:
    """``repro top``: live dashboard for a running coordinator."""
    from .obs import TopDashboard

    dash = TopDashboard(
        args.coordinator, interval=args.interval, max_polls=args.polls,
        token=_resolve_token(args),
    )
    try:
        return dash.run()
    except KeyboardInterrupt:
        print(file=sys.stderr)
        return 130


def cmd_trace(args) -> int:
    """``repro trace``: replay a saved trace as an ASCII gantt."""
    from .obs import load_trace, rank_timelines
    from .report.gantt import render_traces
    from .simmpi.engine import RankTrace

    try:
        tracer = load_trace(args.file)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read trace {args.file!r}: {exc}", file=sys.stderr)
        return 2
    if args.out:
        from .obs import write_trace

        try:
            n = write_trace(tracer, args.out)
        except OSError as exc:
            print(f"error: cannot write trace {args.out!r}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"trace: {n} records -> {args.out}")
        return 0
    timelines, total = rank_timelines(tracer)
    if timelines and total > 0:
        traces = [RankTrace(events=events) for events in timelines]
        print(render_traces(traces, total, width=args.width,
                            max_ranks=args.max_ranks))
        print(f"({len(timelines)} ranks, makespan {total:.4f} virtual s)")
    else:
        print("no per-rank spans in this trace (recorded without rank "
              "timelines, e.g. from `sweep`/`grid`)")
    if tracer.spans and not timelines:
        by_track: dict[str, int] = {}
        for sp in tracer.spans:
            by_track[sp.track] = by_track.get(sp.track, 0) + 1
        print(format_table(
            ["track", "spans"], sorted(by_track.items()),
        ))
    from .report.markdown import tile_heatmap, tile_step_durations

    if tile_step_durations(tracer):
        print()
        print("per-tile step durations (mean across ranks):")
        print(tile_heatmap(tracer))
    summary = tracer.summary()
    if summary:
        rows = [[k, v] for k, v in sorted(summary.items())
                if not isinstance(v, dict)]
        if rows:
            print(format_table(["counter", "value"], rows))
    return 0


def cmd_calibrate(_args) -> int:
    """``repro calibrate``: machine-model vs paper numbers."""
    from .bench.calibrate import main as calibrate_main

    calibrate_main()
    return 0


def cmd_platforms(_args) -> int:
    """``repro platforms``: list the machine models."""
    rows = []
    for name, plat in sorted(PLATFORMS.items()):
        rows.append([
            name,
            f"{plat.cpu.flops / 1e9:.2f} GF/s",
            f"{plat.net.node_bw / 1e6:.0f} MB/s",
            plat.net.ranks_per_node,
            plat.net.contention_model,
        ])
    print(format_table(
        ["platform", "core", "node NIC", "ranks/node", "contention"], rows
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Auto-tuned overlapped parallel 3-D FFT (PPoPP'14 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate one 3-D FFT")
    _add_setting_args(p_run)
    p_run.add_argument("--params", help="config as 'T=32,W=2,Px=8,...'")
    p_run.add_argument(
        "--decomposition", choices=("slab", "pencil"), default="slab",
        help="slab (the paper's 1-D method) or pencil (2-D extension)",
    )
    p_run.add_argument(
        "--real", action="store_true",
        help="real-to-complex transform (half spectrum, Section 2.3)",
    )
    _add_trace_arg(p_run)
    _add_faults_arg(p_run)
    _add_profile_arg(p_run)
    p_run.set_defaults(func=cmd_run)

    p_multi = sub.add_parser(
        "multi", help="compare inter/intra/combined multi-array overlap"
    )
    _add_setting_args(p_multi)
    p_multi.add_argument("--arrays", type=int, default=4,
                         help="number of successive transforms")
    p_multi.set_defaults(func=cmd_multi)

    p_app = sub.add_parser(
        "app", help="run a traffic-shaped application workload"
    )
    p_app.add_argument("app", choices=("poisson", "convolution", "turbulence"),
                       help="application driver (see repro.apps)")
    _add_setting_args(p_app)
    p_app.add_argument("--shape", metavar="NX,NY,NZ", default=None,
                       help="anisotropic grid (overrides -n)")
    p_app.add_argument("--steps", type=int, default=10,
                       help="measured application steps")
    p_app.add_argument("--warmup", type=int, default=2,
                       help="untimed warmup steps excluded from throughput")
    p_app.add_argument("--seed", type=int, default=0,
                       help="seed for the synthetic input fields")
    p_app.add_argument("--params", help="config as 'T=32,W=2,Px=8,...'")
    p_app.add_argument("--plan-server", metavar="URL", default=None,
                       help="resolve tuned params from a running "
                            "`repro serve` (warm hit = zero simulations)")
    p_app.add_argument("--tenant", default=None,
                       help="plan-server tenant namespace")
    p_app.add_argument("--budget", type=int, default=None,
                       help="tune locally with this evaluation budget "
                            "(ignored when --params/--plan-server resolve)")
    p_app.add_argument("--plan-effort", default=None,
                       choices=("estimate", "measure", "patient", "exhaustive"),
                       help="FFTW-style planner effort for the app's plans "
                            "(default: estimate; the paper tunes with patient)")
    p_app.add_argument("--json", action="store_true",
                       help="emit the result record as JSON")
    _add_eval_store_arg(p_app)
    _add_token_arg(p_app)
    _add_trace_arg(p_app)
    _add_faults_arg(p_app)
    p_app.set_defaults(func=cmd_app)

    p_tune = sub.add_parser("tune", help="auto-tune a variant")
    _add_setting_args(p_tune)
    p_tune.add_argument("--budget", type=int, default=300,
                        help="max Nelder-Mead suggestions")
    p_tune.add_argument("--strategy", default="nelder-mead",
                        choices=("nelder-mead", "coordinate"),
                        help="search strategy (share an --eval-store to "
                             "compare them without re-simulating)")
    _add_eval_store_arg(p_tune)
    p_tune.set_defaults(func=cmd_tune)

    p_sweep = sub.add_parser("sweep", help="sweep one parameter")
    _add_setting_args(p_sweep)
    _add_jobs_arg(p_sweep)
    _add_trace_arg(p_sweep)
    _add_eval_store_arg(p_sweep)
    _add_faults_arg(p_sweep)
    p_sweep.add_argument("name", help="parameter to sweep (T, W, Fy, ...)")
    p_sweep.set_defaults(func=cmd_sweep)

    p_rand = sub.add_parser("random", help="random-config CDF (Figure 5)")
    _add_setting_args(p_rand)
    _add_jobs_arg(p_rand)
    p_rand.add_argument("--samples", type=int, default=200)
    p_rand.add_argument("--seed", type=int, default=0)
    p_rand.set_defaults(func=cmd_random)

    p_grid = sub.add_parser(
        "grid", help="evaluate a (p, N) benchmark grid, optionally in parallel"
    )
    p_grid.add_argument("-m", "--machine", default="UMD-Cluster",
                        help="platform model (see `platforms`)")
    p_grid.add_argument(
        "--cells", default="16:256,384,512,640;32:256,384,512,640",
        help="grid as 'p:N,N,...;p:N,...' (default: the Table-2a cells)",
    )
    p_grid.add_argument("--budget", type=int, default=None,
                        help="tuning budget per cell (default: paper scale)")
    p_grid.add_argument("--store", default=None,
                        help="directory for the on-disk result store")
    _add_eval_store_arg(p_grid)
    _add_jobs_arg(p_grid)
    _add_trace_arg(p_grid)
    _add_faults_arg(p_grid)
    _add_profile_arg(p_grid)
    p_grid.add_argument(
        "--serve", metavar="HOST[:PORT]", nargs="?", const="127.0.0.1:0",
        default=None,
        help="distributed dispatch: start a coordinator on HOST:PORT "
             "(default 127.0.0.1 with an ephemeral port; bind 0.0.0.0 "
             "for remote workers) and serve cells to `repro worker`s",
    )
    p_grid.add_argument(
        "--workers", metavar="LIST", default=None,
        help="comma-separated worker launch spec for --serve: 'local' "
             "spawns a worker subprocess here, anything else is an ssh "
             "host (e.g. 'local,local' or 'node1,node2'); implies --serve",
    )
    p_grid.add_argument(
        "--worker-jobs", type=int, default=1, metavar="N",
        help="--jobs forwarded to each spawned worker (default 1)",
    )
    p_grid.add_argument(
        "--lease-ttl", type=float, default=15.0, metavar="SECS",
        help="seconds an unrenewed worker lease survives before its "
             "cells requeue (default 15)",
    )
    _add_token_arg(p_grid)
    p_grid.add_argument(
        "--trace-dir", metavar="DIR", default=None,
        help="with --serve: write the merged fleet telemetry here when "
             "the grid ends (fleet_trace.json, one Chrome trace with a "
             "process group per worker host, renderable with `repro "
             "trace`; fleet_metrics.prom, the final /metrics snapshot)",
    )
    p_grid.set_defaults(func=cmd_grid)

    p_worker = sub.add_parser(
        "worker", help="join a `grid --serve` coordinator as a worker"
    )
    p_worker.add_argument(
        "--coordinator", metavar="URL", required=True,
        help="coordinator base URL (printed by `grid --serve`)",
    )
    _add_jobs_arg(p_worker)
    p_worker.add_argument(
        "--max-cells", type=int, default=None, metavar="K",
        help="cells per lease (default: max(coordinator batch, --jobs))",
    )
    p_worker.add_argument(
        "--poll", type=float, default=0.5, metavar="SECS",
        help="idle poll interval while waiting for pending cells",
    )
    _add_token_arg(p_worker)
    p_worker.set_defaults(func=cmd_worker)

    p_serve = sub.add_parser(
        "serve", help="long-lived tuned-plan server (tuning-as-a-service)"
    )
    p_serve.add_argument(
        "--bind", metavar="HOST[:PORT]", default="127.0.0.1:0",
        help="address to listen on (default 127.0.0.1 with an ephemeral "
             "port; bind 0.0.0.0 for remote clients)",
    )
    p_serve.add_argument(
        "--root", metavar="DIR", default="plan_store",
        help="base directory for per-tenant stores "
             "(<root>/<tenant>/results/ + <root>/<tenant>/evals.jsonl)",
    )
    p_serve.add_argument(
        "--workers", metavar="LIST", default=None,
        help="worker launch spec for cold-miss tuning jobs, as in `grid "
             "--workers` ('local,local' or ssh hosts); default: tune "
             "in-process on the job thread",
    )
    p_serve.add_argument(
        "--worker-jobs", type=int, default=1, metavar="N",
        help="--jobs forwarded to each spawned fleet worker (default 1)",
    )
    p_serve.add_argument(
        "--lease-ttl", type=float, default=15.0, metavar="SECS",
        help="lease TTL for the tuning jobs' coordinator (default 15)",
    )
    p_serve.add_argument(
        "--job-threads", type=int, default=1, metavar="N",
        help="concurrent background tuning jobs (default 1; requests "
             "never block on this — a cold miss always returns 202)",
    )
    p_serve.add_argument(
        "--budget", type=int, default=None,
        help="tuning budget when a request omits one (default: paper "
             "scale for the requested p)",
    )
    p_serve.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="SECS",
        help="on SIGTERM/SIGINT, wait this long for active tuning jobs "
             "before journaling them interrupted and exiting (default 30)",
    )
    p_serve.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECS",
        help="fail a tuning job stuck RUNNING past this wall time and "
             "free its single-flight key (default: no watchdog)",
    )
    p_serve.add_argument(
        "--no-journal", action="store_true",
        help="disable the job journal (<root>/jobs.journal.jsonl): no "
             "crash recovery, interrupted jobs are lost on restart",
    )
    _add_token_arg(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_top = sub.add_parser(
        "top", help="live dashboard for a `grid --serve` coordinator"
    )
    p_top.add_argument(
        "--coordinator", metavar="URL", required=True,
        help="coordinator base URL (printed by `grid --serve`)",
    )
    p_top.add_argument(
        "--interval", type=float, default=1.0, metavar="SECS",
        help="poll interval (default 1s)",
    )
    p_top.add_argument(
        "--polls", type=int, default=None, metavar="N",
        help="stop after N successful polls (default: run until the "
             "coordinator vanishes, which is a clean exit)",
    )
    _add_token_arg(p_top)
    p_top.set_defaults(func=cmd_top)

    p_trace = sub.add_parser(
        "trace", help="replay a saved trace file as an ASCII gantt"
    )
    p_trace.add_argument("file", help="trace file (.jsonl event log or "
                                      "Chrome trace-event .json)")
    p_trace.add_argument("--width", type=int, default=100,
                         help="gantt width in characters")
    p_trace.add_argument("--max-ranks", type=int, default=8,
                         help="rank strips to show before eliding")
    p_trace.add_argument(
        "--out", metavar="FILE", default=None,
        help="re-export the loaded trace instead of rendering it "
             "(.jsonl = event log, anything else = Chrome JSON; missing "
             "parent directories are created)",
    )
    p_trace.set_defaults(func=cmd_trace)

    p_cal = sub.add_parser("calibrate", help="model-vs-paper calibration")
    p_cal.set_defaults(func=cmd_calibrate)

    p_plat = sub.add_parser("platforms", help="list platform models")
    p_plat.set_defaults(func=cmd_platforms)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. `repro-fft ... | head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
