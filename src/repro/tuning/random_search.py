"""Random search over the parameter space.

Two uses from the paper:

* Figure 5 — the cumulative distribution of execution time over 200
  random configurations (p=16, 256^3), which motivates auto-tuning;
* Section 5.3.1 — comparing how fast Nelder-Mead reaches the first
  percentile of that distribution versus random sampling.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from ..core.params import ProblemShape, TuningParams
from ..core.variants import VariantSpec, baseline_params, get_variant
from ..errors import TuningError
from ..machine.platforms import Platform
from ..obs.tracer import current_tracer
from .evalstore import EvalStore
from .space import SearchSpace

#: resampling bound for :func:`sample_params` — generous next to any
#: realistic feasible fraction, small next to an infinite loop.
MAX_SAMPLE_TRIES = 10_000


@dataclass
class RandomSearchResult:
    """Samples from a random-configuration sweep."""

    params: list[TuningParams]
    times: np.ndarray  # objective per sample (parameter-dependent steps)

    def cdf(self) -> tuple[np.ndarray, np.ndarray]:
        """Sorted times and cumulative fractions (Figure 5's axes)."""
        xs = np.sort(self.times)
        ys = np.arange(1, len(xs) + 1) / len(xs)
        return xs, ys

    def percentile(self, q: float) -> float:
        """Time at the q-th percentile (q in [0, 100])."""
        return float(np.percentile(self.times, q))


def sample_params(
    space: SearchSpace,
    shape: ProblemShape,
    base: TuningParams,
    rng: random.Random,
    max_tries: int = MAX_SAMPLE_TRIES,
) -> TuningParams:
    """Draw one *feasible* configuration uniformly over the reduced grid
    (resampling constraint violations, so every draw is runnable — the
    paper measured execution time for all 200 of its random configs).

    Raises :class:`~repro.errors.TuningError` after ``max_tries``
    rejected draws: a reduced space with no feasible point (e.g. an
    infeasible ``base`` in an untuned dimension) must fail loudly, not
    loop forever.
    """
    for _ in range(max_tries):
        idx = tuple(rng.randrange(len(d)) for d in space.dims)
        params = space.params_at(idx, base)
        if params.is_feasible(shape):
            return params
    raise TuningError(
        f"no feasible configuration found in {max_tries} draws over "
        f"{[d.name for d in space.dims]} for shape "
        f"{shape.nx}x{shape.ny}x{shape.nz} p={shape.p} (base {base.as_dict()})"
    )


def _time_params(spec, platform, shape, params, include_fixed_steps):
    """One sample's objective (module-level: pool workers pickle it)."""
    from ..core.api import run_case  # local import to avoid cycles

    res, _ = run_case(
        spec, platform, shape, params, include_fixed_steps=include_fixed_steps
    )
    return res.elapsed


def random_search(
    variant: str | VariantSpec,
    platform: Platform,
    shape: ProblemShape,
    n_samples: int = 200,
    seed: int = 0,
    include_fixed_steps: bool = False,
    jobs: int | None = None,
    eval_store: EvalStore | None = None,
) -> RandomSearchResult:
    """Measure ``n_samples`` random configurations (Figure 5).

    ``include_fixed_steps=False`` matches the paper: "We exclude the FFTz
    and Transpose steps as those steps have the fixed performance
    regardless of parameter values."

    ``jobs`` shards the sample evaluations over worker processes (see
    :mod:`repro.exec`); all draws come from the single seeded RNG up
    front, so the sample set — and hence the result — is identical for
    every worker count.

    ``eval_store`` answers already-timed configurations from the shared
    evaluation pool (traced as ``tune.store_hits``) and records the new
    ones, so a CDF re-run — or a tuning session after it — is free where
    the pool is warm.  The returned samples are identical either way.
    """
    from ..exec.pool import parallel_map  # local import to avoid cycles

    spec = get_variant(variant) if isinstance(variant, str) else variant
    base = baseline_params(spec, shape)
    space = SearchSpace(shape, spec.tunable)
    rng = random.Random(seed)
    params_list = [
        sample_params(space, shape, base, rng) for _ in range(n_samples)
    ]
    scoped = (
        eval_store.scope(platform.name, spec.name, shape, include_fixed_steps)
        if eval_store is not None else None
    )
    known: dict[int, float] = {}
    todo: list[TuningParams] = []
    if scoped is not None:
        for i, p in enumerate(params_list):
            rec = scoped.get(p)
            if rec is not None:
                known[i] = rec.objective
            else:
                todo.append(p)
    else:
        todo = list(params_list)
    computed = parallel_map(
        _time_params,
        [(spec, platform, shape, p, include_fixed_steps) for p in todo],
        jobs,
    )
    if scoped is not None:
        for p, t in zip(todo, computed):
            scoped.put(p, t, t)
        tr = current_tracer()
        if tr is not None and known:
            tr.count("tune.store_hits", len(known))
    fresh = iter(computed)
    elapsed = [
        known[i] if i in known else next(fresh)
        for i in range(len(params_list))
    ]
    return RandomSearchResult(params=params_list, times=np.asarray(elapsed))
