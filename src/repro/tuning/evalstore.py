"""Shared persistent evaluation store — every timed configuration, once.

:class:`~repro.tuning.store.TuningStore` is winners-only wisdom: one
record per setting.  :class:`EvalStore` is the *all-evaluations*
analogue, the cross-strategy generalization of the paper's history-reuse
technique (Section 4.4, technique 2): a map from ``(platform, variant,
shape, objective mode, params)`` to the measured ``(objective, cost,
executed)``.  Nelder-Mead, coordinate descent, random search, and
exhaustive/grid sweeps all key their evaluations the same way, so a
configuration timed by any strategy — in any process, in any past run —
is a free hit for every other one, the way FFTW wisdom makes planner
work done anywhere reusable everywhere.

Persistence is JSONL with atomic replace (the ``save_cache`` pattern):
``save`` merges with whatever is on disk before writing a temp file and
``os.replace``-ing it into place, so concurrent grid workers and
interrupted runs can never truncate the store and never lose each
other's records.  Loading is tolerant: unparseable lines (a partial
trailing line from a killed writer), records missing required fields,
and unknown extra fields are all skipped or ignored — a store written by
a future schema still yields every record this schema understands.

Keys are opaque strings (see :func:`eval_key`), so merging is a plain
dict union — first-wins per key, which is lossless because every value
is a deterministic pure function of its key (the simulator is
deterministic and the objective mode is part of the key).

Thread safety: every store is shared state the moment it is served —
the plan server (:mod:`repro.serve`) and the distributed coordinator
both read and mutate one store from ``ThreadingHTTPServer`` handler
threads.  All mutating and reading paths therefore hold an internal
:class:`threading.RLock` (re-entrant because ``save`` merges, and
``merge`` may be called under the lock), and same-process saves to one
path are additionally serialized by a per-path module lock — without
it two threads can each merge the *same* stale disk snapshot and the
``os.replace`` loser's new records silently vanish.  Cross-process
concurrency stays what it always was: first-wins read-merge-replace.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path

from ..core.params import ProblemShape, TuningParams
from ..faults import current_faults

#: objective modes a record can be keyed under: ``tuned`` excludes the
#: parameter-independent FFTz/Transpose steps (technique 3, the tuning
#: objective), ``full`` is the end-to-end time (ablation sweeps).
MODE_TUNED = "tuned"
MODE_FULL = "full"


def eval_key(
    platform: str,
    variant: str,
    shape: ProblemShape,
    params: TuningParams,
    include_fixed_steps: bool = False,
) -> str:
    """Canonical key for one evaluation.

    The objective mode is part of the key because the same configuration
    has *different* objectives with and without the fixed steps; aliasing
    them would corrupt every consumer.  So is the ambient fault spec
    (:mod:`repro.faults`): a measurement taken on a degraded simulated
    machine must never answer a fault-free query, or vice versa.
    """
    mode = MODE_FULL if include_fixed_steps else MODE_TUNED
    cfg = ",".join(f"{k}={v}" for k, v in params.as_dict().items())
    key = (
        f"{platform}|{variant}|{shape.nx}x{shape.ny}x{shape.nz}"
        f"|p{shape.p}|{mode}|{cfg}"
    )
    spec = current_faults()
    if spec is not None:
        key += f"|faults={spec.key()}"
    return key


#: per-path locks serializing same-process :meth:`EvalStore.save` calls;
#: two stores saving the same file must not interleave their
#: read-merge-replace cycles (the lost-update race pinned by
#: ``tests/tuning/test_evalstore_threads.py``)
_SAVE_LOCKS: dict[str, threading.Lock] = {}
_SAVE_LOCKS_GUARD = threading.Lock()


def _save_lock(target: Path) -> threading.Lock:
    """The process-wide lock for saves to ``target`` (created on first
    use; keyed by the resolved path so spellings of one file alias)."""
    key = str(target.resolve())
    with _SAVE_LOCKS_GUARD:
        lock = _SAVE_LOCKS.get(key)
        if lock is None:
            lock = _SAVE_LOCKS[key] = threading.Lock()
        return lock


@dataclass(frozen=True)
class EvalRecord:
    """One stored measurement."""

    objective: float
    cost: float          # simulated seconds spent running the target
    executed: bool = True  # False would mark a derived/replayed record


class EvalStore:
    """Merge-safe map from evaluation keys to :class:`EvalRecord`.

    Tracks which records were added after construction/loading
    (:meth:`new_jsonl`) so pool workers can ship *only their deltas*
    back to the parent, and counts hits/misses for reporting.

    All record/counter access holds :attr:`_lock` (re-entrant), so one
    store can be hammered by many HTTP handler threads without losing
    records, dropping new-record deltas, or skewing hit/miss counters.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._records: dict[str, EvalRecord] = {}
        self._new: set[str] = set()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._records

    @property
    def new_records(self) -> int:
        """Records added since this store was constructed or loaded."""
        with self._lock:
            return len(self._new)

    # -- queries ---------------------------------------------------------

    def get_key(self, key: str) -> EvalRecord | None:
        """Record for an exact key, or ``None`` (counts hit/miss)."""
        with self._lock:
            rec = self._records.get(key)
            if rec is None:
                self.misses += 1
            else:
                self.hits += 1
            return rec

    def add_hits(self, n: int) -> None:
        """Fold ``n`` externally counted hits in (worker-shipped hit
        counts; the read-modify-write must happen under the lock)."""
        with self._lock:
            self.hits += n

    def get(
        self,
        platform: str,
        variant: str,
        shape: ProblemShape,
        params: TuningParams,
        include_fixed_steps: bool = False,
    ) -> EvalRecord | None:
        """Stored measurement for a configuration, or ``None``."""
        return self.get_key(
            eval_key(platform, variant, shape, params, include_fixed_steps)
        )

    # -- updates ---------------------------------------------------------

    def put_key(self, key: str, record: EvalRecord) -> None:
        """Insert a record (first-wins: an existing key is kept)."""
        with self._lock:
            if key in self._records:
                return
            self._records[key] = record
            self._new.add(key)

    def put(
        self,
        platform: str,
        variant: str,
        shape: ProblemShape,
        params: TuningParams,
        objective: float,
        cost: float,
        executed: bool = True,
        include_fixed_steps: bool = False,
    ) -> None:
        """Store one measurement."""
        self.put_key(
            eval_key(platform, variant, shape, params, include_fixed_steps),
            EvalRecord(objective, cost, executed),
        )

    def merge(self, other: "EvalStore", mark_new: bool = True) -> int:
        """Union another store's records into this one (first-wins per
        key — lossless, values are pure functions of their keys).
        Returns the number of records actually added.  ``mark_new=False``
        folds records in without counting them as this store's own work
        (used when reconciling with a file another writer updated).

        Lock order: ``other``'s lock is taken only to copy its records,
        and released before this store's lock is acquired — the locks
        are never nested, so two stores merging each other from two
        threads cannot deadlock."""
        with other._lock:
            incoming = list(other._records.items())
        added = 0
        with self._lock:
            for key, rec in incoming:
                if key not in self._records:
                    self._records[key] = rec
                    if mark_new:
                        self._new.add(key)
                    added += 1
        return added

    def scope(
        self,
        platform: str,
        variant: str,
        shape: ProblemShape,
        include_fixed_steps: bool = False,
    ) -> "ScopedEvalStore":
        """Params-keyed view for one setting (what the tuning loop uses)."""
        return ScopedEvalStore(self, platform, variant, shape, include_fixed_steps)

    # -- persistence ------------------------------------------------------

    def to_jsonl(self, keys: set[str] | None = None) -> str:
        """Serialize (a subset of) the store, one record per line."""
        lines = []
        with self._lock:
            for key in sorted(self._records if keys is None else keys):
                rec = self._records[key]
                lines.append(json.dumps({
                    "key": key,
                    "objective": rec.objective,
                    "cost": rec.cost,
                    "executed": rec.executed,
                }))
        return "\n".join(lines) + ("\n" if lines else "")

    def new_jsonl(self) -> str:
        """Only the records added since construction (worker deltas)."""
        with self._lock:
            return self.to_jsonl(set(self._new))

    @classmethod
    def from_jsonl(cls, text: str) -> "EvalStore":
        """Rebuild a store from JSONL; skips lines that do not parse
        (e.g. a partial tail from an interrupted writer) and records
        missing required fields; ignores unknown extra fields.  Loaded
        records do not count as new."""
        store = cls()
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                item = json.loads(line)
                key = item["key"]
                rec = EvalRecord(
                    objective=float(item["objective"]),
                    cost=float(item.get("cost", 0.0)),
                    executed=bool(item.get("executed", True)),
                )
            except (ValueError, KeyError, TypeError):
                continue
            if not isinstance(key, str):
                continue
            if key not in store._records:
                store._records[key] = rec
        return store

    def save(self, path: str | Path) -> int:
        """Merge with the on-disk store and atomically replace it.

        Cross-process, read-merge-replace makes concurrent savers
        additive: whichever writer loses the ``os.replace`` race has
        already folded the other's records in (both read before
        writing), and a reader never observes a truncated file because
        the rename is atomic.  That argument fails *within* a process —
        two threads can both read the same stale snapshot before either
        replaces it, and the loser's new records vanish — so
        same-process saves to one path are serialized by a per-path
        lock: the second saver's read is guaranteed to see the first
        saver's file.  The temp name carries the thread id as well as
        the pid, so two in-flight saves can never clobber each other's
        temp file.  Returns the number of records written.
        """
        target = Path(path)
        with _save_lock(target):
            if target.exists():
                try:
                    self.merge(EvalStore.from_jsonl(target.read_text()),
                               mark_new=False)
                except OSError:
                    pass
            with self._lock:
                payload = self.to_jsonl()
                count = len(self._records)
            tmp = target.with_name(
                target.name + f".tmp.{os.getpid()}.{threading.get_ident()}"
            )
            tmp.write_text(payload)
            os.replace(tmp, target)
        return count

    @classmethod
    def load(cls, path: str | Path) -> "EvalStore":
        """Load a store; a missing or unreadable file yields an empty one."""
        file = Path(path)
        try:
            text = file.read_text()
        except OSError:
            return cls()
        return cls.from_jsonl(text)


class ScopedEvalStore:
    """One setting's view of an :class:`EvalStore`, keyed by params.

    This is the object the tuning loop and the search baselines hold: it
    pins ``(platform, variant, shape, objective mode)`` so call sites
    deal only in :class:`~repro.core.params.TuningParams`.
    """

    def __init__(
        self,
        store: EvalStore,
        platform: str,
        variant: str,
        shape: ProblemShape,
        include_fixed_steps: bool = False,
    ) -> None:
        self.store = store
        self.platform = platform
        self.variant = variant
        self.shape = shape
        self.include_fixed_steps = include_fixed_steps

    def get(self, params: TuningParams) -> EvalRecord | None:
        """Stored measurement for a configuration, or ``None``."""
        return self.store.get(
            self.platform, self.variant, self.shape, params,
            self.include_fixed_steps,
        )

    def put(
        self, params: TuningParams, objective: float, cost: float,
        executed: bool = True,
    ) -> None:
        """Store one measurement under this scope's setting."""
        self.store.put(
            self.platform, self.variant, self.shape, params,
            objective, cost, executed, self.include_fixed_steps,
        )
