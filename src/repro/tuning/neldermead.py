"""Nelder-Mead simplex search (Nelder & Mead 1965), from scratch.

This is the search strategy Active Harmony runs for the paper (Section
4.3).  The implementation is the standard reflect / expand / contract /
shrink scheme over a (d+1)-point simplex in continuous space, exposed as
an *ask/tell* generator so the Harmony server can own the control loop:

    nm = NelderMead(initial_simplex)
    while not nm.converged:
        x = nm.ask()
        nm.tell(x, objective(x))

``tell`` accepts ``inf`` objectives, which is how infeasible penalized
configurations steer the simplex back into the feasible region.
"""

from __future__ import annotations

import numpy as np

from ..errors import TuningError


class NelderMead:
    """Ask/tell Nelder-Mead minimizer.

    Parameters
    ----------
    initial_simplex:
        ``(d+1) x d`` array of starting points.
    alpha, gamma, rho, sigma:
        Reflection, expansion, contraction, and shrink coefficients
        (standard values by default).
    xtol:
        Convergence: simplex edge lengths all below this (index space
        uses 0.75 so all vertices round to one grid point).
    ftol:
        Relative improvement threshold feeding the stall counter.
    stall_limit:
        Convergence: this many consecutive tell() calls without improving
        the best value by ``ftol`` relative.  This is what terminates the
        search on plateaus — a discretized objective is piecewise
        constant, and a simplex sitting on one flat piece can cycle
        forever on the xtol criterion alone.
    """

    def __init__(
        self,
        initial_simplex: np.ndarray,
        alpha: float = 1.0,
        gamma: float = 2.0,
        rho: float = 0.5,
        sigma: float = 0.5,
        xtol: float = 0.75,
        ftol: float = 1e-3,
        stall_limit: int | None = None,
    ) -> None:
        simplex = np.asarray(initial_simplex, dtype=np.float64)
        if simplex.ndim != 2 or simplex.shape[0] != simplex.shape[1] + 1:
            raise TuningError(
                f"initial simplex must be (d+1) x d, got {simplex.shape}"
            )
        self.simplex = simplex.copy()
        self.ndim = simplex.shape[1]
        self.values = np.full(self.ndim + 1, np.nan)
        self.alpha, self.gamma, self.rho, self.sigma = alpha, gamma, rho, sigma
        self.xtol = xtol
        self.ftol = ftol
        self.stall_limit = (
            stall_limit if stall_limit is not None else 6 * (self.ndim + 1)
        )
        self._best_seen = np.inf
        self._stall = 0
        # phase machine: first evaluate every vertex, then iterate.
        self._phase = "init"
        self._init_idx = 0
        self._pending: np.ndarray | None = None
        self._reflected: tuple[np.ndarray, float] | None = None
        self._shrink_idx = 0
        self.n_iterations = 0

    # -- public API -------------------------------------------------------------

    @property
    def converged(self) -> bool:
        """Convergence: simplex collapse (xtol) or stall limit."""
        if self._phase == "init":
            return False
        spread = np.max(np.abs(self.simplex - self.simplex[0]), axis=0)
        if bool(np.all(spread <= self.xtol)):
            return True
        # Plateaus (value ties are routine on a discretized objective)
        # terminate via the stall counter, not a value-spread test: equal
        # values at distant vertices do not mean the search is done.
        return self._stall >= self.stall_limit

    def best(self) -> tuple[np.ndarray, float]:
        """Best vertex and its value seen so far."""
        if bool(np.all(np.isnan(self.values))):
            # np.nanargmin raises a bare ValueError on all-NaN input —
            # surface the actual condition (no vertex evaluated yet).
            raise TuningError(
                "no vertex has been evaluated yet (init phase); "
                "call ask()/tell() before best()"
            )
        i = int(np.nanargmin(self.values))
        return self.simplex[i].copy(), float(self.values[i])

    def ask(self) -> np.ndarray:
        """Next point to evaluate."""
        if self._pending is not None:
            return self._pending.copy()
        if self._phase == "init":
            self._pending = self.simplex[self._init_idx].copy()
        elif self._phase == "reflect":
            self._order()
            centroid = self.simplex[:-1].mean(axis=0)
            self._centroid = centroid
            self._pending = centroid + self.alpha * (centroid - self.simplex[-1])
        elif self._phase == "expand":
            c = self._centroid
            self._pending = c + self.gamma * (self._reflected[0] - c)
        elif self._phase == "contract":
            c = self._centroid
            if self._reflected[1] < self.values[-1]:
                # outside contraction (toward the reflected point)
                self._pending = c + self.rho * (self._reflected[0] - c)
            else:
                # inside contraction (toward the worst point)
                self._pending = c + self.rho * (self.simplex[-1] - c)
        elif self._phase == "shrink":
            i = self._shrink_idx
            self._pending = self.simplex[0] + self.sigma * (
                self.simplex[i] - self.simplex[0]
            )
        else:  # pragma: no cover - defensive
            raise TuningError(f"bad NM phase {self._phase}")
        return self._pending.copy()

    def tell(self, x: np.ndarray, value: float) -> None:
        """Report the objective for the point last returned by ask()."""
        if self._pending is None or not np.allclose(x, self._pending):
            raise TuningError("tell() must answer the last ask()")
        self._pending = None
        if not np.isfinite(self._best_seen):
            improved = value < self._best_seen
        else:
            improved = value < self._best_seen - self.ftol * max(
                abs(self._best_seen), 1e-30
            )
        if improved:
            self._best_seen = value
            self._stall = 0
        else:
            self._stall += 1
        if self._phase == "init":
            self.values[self._init_idx] = value
            self._init_idx += 1
            if self._init_idx > self.ndim:
                self._phase = "reflect"
            return

        if self._phase == "reflect":
            self.n_iterations += 1
            if value < self.values[0]:
                self._reflected = (x, value)
                self._phase = "expand"
            elif value < self.values[-2]:
                self._replace_worst(x, value)
                self._phase = "reflect"
            else:
                self._reflected = (x, value)
                self._phase = "contract"
        elif self._phase == "expand":
            rx, rv = self._reflected
            if value < rv:
                self._replace_worst(x, value)
            else:
                self._replace_worst(rx, rv)
            self._reflected = None
            self._phase = "reflect"
        elif self._phase == "contract":
            rx, rv = self._reflected
            threshold = min(rv, self.values[-1])
            if value <= threshold:
                self._replace_worst(x, value)
                self._reflected = None
                self._phase = "reflect"
            else:
                self._reflected = None
                self._shrink_idx = 1
                self._phase = "shrink"
        elif self._phase == "shrink":
            self.simplex[self._shrink_idx] = x
            self.values[self._shrink_idx] = value
            self._shrink_idx += 1
            if self._shrink_idx > self.ndim:
                self._phase = "reflect"
        else:  # pragma: no cover - defensive
            raise TuningError(f"bad NM phase {self._phase}")

    # -- internals ----------------------------------------------------------

    def _order(self) -> None:
        order = np.argsort(self.values, kind="stable")
        self.simplex = self.simplex[order]
        self.values = self.values[order]

    def _replace_worst(self, x: np.ndarray, value: float) -> None:
        self.simplex[-1] = x
        self.values[-1] = value
