"""Persistent store of tuned configurations ("tuning wisdom").

Section 5.3.2's lesson is that tuned configurations are per-platform
(and per-size, per-p): a production deployment tunes once per setting
and reuses the winner thereafter.  :class:`TuningStore` is that reuse
mechanism — the ten-parameter analogue of FFTW's wisdom files:

    store = TuningStore.load("fft_wisdom.json")
    params = store.lookup("Hopper", "NEW", shape)
    if params is None:
        result = autotune("NEW", HOPPER, shape)
        store.record_result(result)
        store.save("fft_wisdom.json")
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING

from ..core.params import ProblemShape, TuningParams

if TYPE_CHECKING:  # pragma: no cover
    from .tuner import TuningResult


def _key(platform: str, variant: str, shape: ProblemShape) -> str:
    return f"{platform}|{variant}|{shape.nx}x{shape.ny}x{shape.nz}|p{shape.p}"


class TuningStore:
    """JSON-backed map from (platform, variant, shape) to the winner."""

    def __init__(self) -> None:
        self._entries: dict[str, dict] = {}

    def __len__(self) -> int:
        return len(self._entries)

    # -- queries ---------------------------------------------------------

    def lookup(
        self, platform: str, variant: str, shape: ProblemShape
    ) -> TuningParams | None:
        """Stored configuration for an exact setting, or ``None``."""
        entry = self._entries.get(_key(platform, variant, shape))
        if entry is None:
            return None
        return TuningParams(**entry["params"])

    def lookup_nearest(
        self, platform: str, variant: str, shape: ProblemShape
    ) -> TuningParams | None:
        """Best-effort fallback: the stored setting (same platform,
        variant, and p) with the closest problem volume.  Useful as a
        warm start (`autotune(..., base=...)`) — the paper's Figure 9
        warns it is *not* a substitute for tuning the exact setting."""
        best, best_dist = None, None
        target = shape.nx * shape.ny * shape.nz
        for key, entry in self._entries.items():
            plat, var, dims, pp = key.split("|")
            if plat != platform or var != variant or pp != f"p{shape.p}":
                continue
            nx, ny, nz = (int(v) for v in dims.split("x"))
            dist = abs(nx * ny * nz - target)
            if best_dist is None or dist < best_dist:
                best, best_dist = TuningParams(**entry["params"]), dist
        return best

    def settings(self) -> list[str]:
        """All stored setting keys (sorted)."""
        return sorted(self._entries)

    # -- updates ------------------------------------------------------------

    def record(
        self,
        platform: str,
        variant: str,
        shape: ProblemShape,
        params: TuningParams,
        fft_time: float | None = None,
    ) -> None:
        """Store (or overwrite) the winner for a setting."""
        self._entries[_key(platform, variant, shape)] = {
            "params": params.as_dict(),
            "fft_time": fft_time,
        }

    def record_result(self, result: "TuningResult") -> None:
        """Store a :class:`~repro.tuning.tuner.TuningResult`'s winner."""
        self.record(
            result.platform,
            result.variant,
            result.shape,
            result.best_params,
            result.fft_time,
        )

    # -- persistence -------------------------------------------------------

    def to_json(self) -> str:
        """Serialize the store to a JSON string."""
        return json.dumps(self._entries, indent=1, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "TuningStore":
        """Rebuild a store from :meth:`to_json` output."""
        store = cls()
        store._entries = json.loads(text)
        return store

    def save(self, path: str | Path) -> None:
        """Write the store to ``path`` as JSON."""
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "TuningStore":
        """Load a store; a missing file yields an empty store."""
        file = Path(path)
        if not file.exists():
            return cls()
        return cls.from_json(file.read_text())
