"""Persistent store of tuned configurations ("tuning wisdom").

Section 5.3.2's lesson is that tuned configurations are per-platform
(and per-size, per-p): a production deployment tunes once per setting
and reuses the winner thereafter.  :class:`TuningStore` is that reuse
mechanism — the ten-parameter analogue of FFTW's wisdom files:

    store = TuningStore.load("fft_wisdom.json")
    params = store.lookup("Hopper", "NEW", shape)
    if params is None:
        result = autotune("NEW", HOPPER, shape)
        store.record_result(result)
        store.save("fft_wisdom.json")
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import TYPE_CHECKING

from ..core.params import ProblemShape, TuningParams

if TYPE_CHECKING:  # pragma: no cover
    from .tuner import TuningResult


def _key(platform: str, variant: str, shape: ProblemShape) -> str:
    return f"{platform}|{variant}|{shape.nx}x{shape.ny}x{shape.nz}|p{shape.p}"


class TuningStore:
    """JSON-backed map from (platform, variant, shape) to the winner."""

    def __init__(self) -> None:
        self._entries: dict[str, dict] = {}

    def __len__(self) -> int:
        return len(self._entries)

    # -- queries ---------------------------------------------------------

    def lookup(
        self, platform: str, variant: str, shape: ProblemShape
    ) -> TuningParams | None:
        """Stored configuration for an exact setting, or ``None``."""
        entry = self._entries.get(_key(platform, variant, shape))
        if entry is None:
            return None
        return TuningParams(**entry["params"])

    def lookup_nearest(
        self, platform: str, variant: str, shape: ProblemShape
    ) -> TuningParams | None:
        """Best-effort fallback: the stored setting (same platform,
        variant, and p) with the closest problem volume.  Useful as a
        warm start (`autotune(..., base=...)`) — the paper's Figure 9
        warns it is *not* a substitute for tuning the exact setting."""
        best, best_dist = None, None
        target = shape.nx * shape.ny * shape.nz
        for key, entry in self._entries.items():
            plat, var, dims, pp = key.split("|")
            if plat != platform or var != variant or pp != f"p{shape.p}":
                continue
            nx, ny, nz = (int(v) for v in dims.split("x"))
            dist = abs(nx * ny * nz - target)
            if best_dist is None or dist < best_dist:
                best, best_dist = TuningParams(**entry["params"]), dist
        return best

    def settings(self) -> list[str]:
        """All stored setting keys (sorted)."""
        return sorted(self._entries)

    # -- updates ------------------------------------------------------------

    def record(
        self,
        platform: str,
        variant: str,
        shape: ProblemShape,
        params: TuningParams,
        fft_time: float | None = None,
    ) -> None:
        """Store (or overwrite) the winner for a setting."""
        self._entries[_key(platform, variant, shape)] = {
            "params": params.as_dict(),
            "fft_time": fft_time,
        }

    def record_result(self, result: "TuningResult") -> None:
        """Store a :class:`~repro.tuning.tuner.TuningResult`'s winner."""
        self.record(
            result.platform,
            result.variant,
            result.shape,
            result.best_params,
            result.fft_time,
        )

    # -- persistence -------------------------------------------------------

    def to_json(self) -> str:
        """Serialize the store to a JSON string."""
        return json.dumps(self._entries, indent=1, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "TuningStore":
        """Rebuild a store from :meth:`to_json` output.

        Loading is tolerant the way :class:`~repro.tuning.evalstore.
        EvalStore` is: a file truncated by a killed writer yields an
        empty store, and individual entries that do not decode into a
        usable configuration are skipped — in both cases with a
        warning, never an exception, so one bad wisdom file cannot take
        down the run that opens it.
        """
        store = cls()
        try:
            raw = json.loads(text)
        except ValueError as exc:
            warnings.warn(
                f"unreadable tuning store (starting empty): {exc}",
                UserWarning,
                stacklevel=2,
            )
            return store
        if not isinstance(raw, dict):
            warnings.warn(
                "unreadable tuning store (not a JSON object); starting empty",
                UserWarning,
                stacklevel=2,
            )
            return store
        for key, entry in raw.items():
            try:
                TuningParams(**entry["params"])  # must round-trip
            except (KeyError, TypeError, ValueError) as exc:
                warnings.warn(
                    f"skipping corrupt tuning-store entry {key!r}: {exc}",
                    UserWarning,
                    stacklevel=2,
                )
                continue
            store._entries[key] = entry
        return store

    def save(self, path: str | Path) -> None:
        """Write the store to ``path`` as JSON."""
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "TuningStore":
        """Load a store; a missing or unreadable file yields an empty
        store (with a warning when the file existed but was corrupt)."""
        file = Path(path)
        try:
            text = file.read_text()
        except OSError:
            return cls()
        return cls.from_json(text)
