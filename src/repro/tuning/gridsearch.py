"""Exhaustive / coordinate sweeps over the reduced space.

Not part of the paper's method (the whole point of Section 4 is that the
full space is too big), but essential tooling: the ablation benchmarks
sweep one parameter at a time to show each knob's effect, and tiny
problems can be searched exhaustively to bound how far Nelder-Mead lands
from the true grid optimum.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

from ..core.params import ProblemShape, TuningParams
from ..core.variants import VariantSpec, baseline_params, get_variant
from ..machine.platforms import Platform
from ..obs.tracer import current_tracer
from .evalstore import EvalStore
from .space import SearchSpace


@dataclass
class SweepPoint:
    """One evaluated configuration in a sweep."""

    params: TuningParams
    value: int          # the swept parameter's value (for 1-D sweeps)
    objective: float


def _time_point(spec, platform, shape, params, include_fixed_steps):
    """One sweep point's objective (module-level: pool workers pickle it)."""
    from ..core.api import run_case

    res, _ = run_case(
        spec, platform, shape, params, include_fixed_steps=include_fixed_steps
    )
    return res.elapsed


def sweep_parameter(
    variant: str | VariantSpec,
    platform: Platform,
    shape: ProblemShape,
    name: str,
    base: TuningParams | None = None,
    include_fixed_steps: bool = True,
    jobs: int | None = None,
    progress=None,
    eval_store: EvalStore | None = None,
) -> list[SweepPoint]:
    """Vary one parameter over its candidate list, others fixed at
    ``base``; skips infeasible combinations.  ``jobs`` shards the point
    evaluations over worker processes (see :mod:`repro.exec`) with
    order-preserving merging; ``progress`` receives one completion event
    per evaluated point (``repro.exec.pool.ProgressFn``).

    ``eval_store`` skips points the shared evaluation pool has already
    timed (traced as ``tune.store_hits``) and records the rest."""
    from ..exec.pool import parallel_map

    spec = get_variant(variant) if isinstance(variant, str) else variant
    if base is None:
        base = baseline_params(spec, shape)
    space = SearchSpace(shape, (name,))
    points = []
    for value in space.dims[0].values:
        params = base.replace(**{name: value})
        if params.is_feasible(shape):
            points.append((value, params))
    scoped = (
        eval_store.scope(platform.name, spec.name, shape, include_fixed_steps)
        if eval_store is not None else None
    )
    known: dict[int, float] = {}
    todo = list(range(len(points)))
    if scoped is not None:
        todo = []
        for i, (_v, params) in enumerate(points):
            rec = scoped.get(params)
            if rec is not None:
                known[i] = rec.objective
            else:
                todo.append(i)
        tr = current_tracer()
        if tr is not None and known:
            tr.count("tune.store_hits", len(known))
    computed = parallel_map(
        _time_point,
        [(spec, platform, shape, points[i][1], include_fixed_steps)
         for i in todo],
        jobs,
        labels=[f"{name}={points[i][0]}" for i in todo],
        progress=progress,
    )
    objectives: list[float] = [0.0] * len(points)
    for i, obj in zip(todo, computed):
        objectives[i] = obj
        if scoped is not None:
            scoped.put(points[i][1], obj, obj)
    for i, obj in known.items():
        objectives[i] = obj
    return [
        SweepPoint(params=params, value=value, objective=obj)
        for (value, params), obj in zip(points, objectives)
    ]


def exhaustive_search(
    variant: str | VariantSpec,
    platform: Platform,
    shape: ProblemShape,
    max_points: int = 20000,
    include_fixed_steps: bool = False,
    eval_store: EvalStore | None = None,
) -> tuple[TuningParams, float, int]:
    """Evaluate every feasible grid point (small spaces only).

    Returns ``(best_params, best_objective, n_evaluated)``; raises
    :class:`ValueError` if the grid exceeds ``max_points``.  Points
    already in ``eval_store`` are answered from the pool and do not
    count as evaluated; new measurements are written through, so an
    exhaustive pass fully warms the store for every other strategy.
    """
    from ..core.api import run_case

    spec = get_variant(variant) if isinstance(variant, str) else variant
    base = baseline_params(spec, shape)
    space = SearchSpace(shape, spec.tunable)
    if space.size() > max_points:
        raise ValueError(
            f"grid has {space.size()} points, over the {max_points} limit"
        )
    scoped = (
        eval_store.scope(platform.name, spec.name, shape, include_fixed_steps)
        if eval_store is not None else None
    )
    tr = current_tracer()
    best_params, best_val, n = None, math.inf, 0
    for idx in itertools.product(*(range(len(d)) for d in space.dims)):
        params = space.params_at(idx, base)
        if not params.is_feasible(shape):
            continue
        if scoped is not None:
            rec = scoped.get(params)
            if rec is not None:
                if tr is not None:
                    tr.count("tune.store_hits")
                if rec.objective < best_val:
                    best_params, best_val = params, rec.objective
                continue
        res, _ = run_case(
            spec, platform, shape, params, include_fixed_steps=include_fixed_steps
        )
        n += 1
        if scoped is not None:
            scoped.put(params, res.elapsed, res.elapsed)
        if res.elapsed < best_val:
            best_params, best_val = params, res.elapsed
    return best_params, best_val, n
