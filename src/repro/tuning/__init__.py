"""Auto-tuning: Active-Harmony-style Nelder-Mead search with the paper's
penalty / history / skip / log-reduction / initial-simplex techniques."""

from .coordinate import CoordinateDescent
from .evalstore import EvalRecord, EvalStore, ScopedEvalStore, eval_key
from .gridsearch import exhaustive_search, sweep_parameter
from .harmony import (
    Evaluation,
    HarmonyClient,
    HarmonyServer,
    TuningSession,
    run_tuning_loop,
)
from .initial import initial_simplex
from .neldermead import NelderMead
from .random_search import RandomSearchResult, random_search, sample_params
from .space import Dimension, SearchSpace
from .store import TuningStore
from .tuner import TuningResult, autotune, fftw_tuning_time

__all__ = [
    "CoordinateDescent",
    "Dimension",
    "EvalRecord",
    "EvalStore",
    "Evaluation",
    "HarmonyClient",
    "HarmonyServer",
    "NelderMead",
    "ScopedEvalStore",
    "eval_key",
    "RandomSearchResult",
    "SearchSpace",
    "TuningResult",
    "TuningSession",
    "TuningStore",
    "autotune",
    "exhaustive_search",
    "fftw_tuning_time",
    "initial_simplex",
    "random_search",
    "run_tuning_loop",
    "sample_params",
    "sweep_parameter",
]
