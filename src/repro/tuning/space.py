"""The ten-dimensional search space and its log-scale reduction.

Section 4.4, technique 4: "Instead of searching a whole set of all
possible values of a parameter, we reduce a search space to a log scale
and consider power-of-two values for testing.  The minimum and maximum
values are additionally considered ... As an exception, the log-scale
reduction is not applied to W because there are few possible values."

A :class:`SearchSpace` maps a continuous point in *index space* (one
coordinate per parameter, ranging over that parameter's candidate list)
to a :class:`~repro.core.params.TuningParams`.  Index space is the
hyperrectangle Nelder-Mead needs; dependent constraints (``Pz <= T``,
...) surface later as infeasible evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.params import PARAM_NAMES, ProblemShape, TuningParams, W_MAX
from ..errors import TuningError
from ..util.intmath import pow2_candidates


@dataclass(frozen=True)
class Dimension:
    """One tunable parameter: its name and ordered candidate values."""

    name: str
    values: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise TuningError(f"dimension {self.name} has no candidate values")
        if list(self.values) != sorted(set(self.values)):
            raise TuningError(f"dimension {self.name} values must be sorted unique")

    def __len__(self) -> int:
        return len(self.values)

    def value_at(self, index: int) -> int:
        """Candidate at ``index``; raises IndexError outside the range
        (the tuner converts that into an infeasible report)."""
        if not 0 <= index < len(self.values):
            raise IndexError(f"{self.name} index {index} outside [0, {len(self.values)})")
        return self.values[index]

    def index_of(self, value: int) -> int:
        """Index of the candidate closest to ``value``."""
        best = min(range(len(self.values)), key=lambda i: abs(self.values[i] - value))
        return best


class SearchSpace:
    """Index-space view of the tunable parameters for one problem."""

    def __init__(self, shape: ProblemShape, tunable: tuple[str, ...] = PARAM_NAMES):
        self.shape = shape
        self.tunable = tuple(tunable)
        dims: list[Dimension] = []
        for name in self.tunable:
            dims.append(Dimension(name, tuple(self._candidates(name, shape))))
        self.dims = dims

    #: Search-space floor on the tile count: below ~16 bytes-per-element
    #: tiles the exchange is pure per-message latency and the config is
    #: never competitive, so the grid skips the degenerate tail (same
    #: spirit as the paper's log-scale reduction).
    MAX_TILES = 256

    @classmethod
    def _candidates(cls, name: str, shape: ProblemShape) -> list[int]:
        if name == "T":
            t_min = max(1, -(-shape.nz // cls.MAX_TILES))
            return pow2_candidates(t_min, shape.nz)
        if name == "W":
            # Searched linearly: few possible values (paper's exception).
            return list(range(1, W_MAX + 1))
        if name == "Px":
            return pow2_candidates(1, shape.nxl_max)
        if name == "Uy":
            return pow2_candidates(1, shape.nyl_max)
        if name in ("Pz", "Uz"):
            # Bounded by T at evaluation time; the independent range goes
            # to Nz so every feasible (T, Pz) pair is reachable.
            return pow2_candidates(1, shape.nz)
        if name in ("Fy", "Fp", "Fu", "Fx"):
            return pow2_candidates(1, shape.f_max)
        raise TuningError(f"unknown parameter {name!r}")

    # -- conversions ------------------------------------------------------------

    @property
    def ndim(self) -> int:
        """Number of tuned dimensions."""
        return len(self.dims)

    def size(self) -> int:
        """Number of grid points in the reduced space (for reporting)."""
        n = 1
        for d in self.dims:
            n *= len(d)
        return n

    def round_point(self, x: list[float]) -> tuple[int, ...]:
        """Continuous index-space point -> integer grid point.

        Matches Active Harmony's handling of discrete parameters: "the AH
        server determines the closest integer point to a simplex point in
        a continuous domain" (Section 4.4, technique 2).  No clamping —
        out-of-range stays out-of-range so it can be penalized.
        """
        if len(x) != self.ndim:
            raise TuningError(f"point has {len(x)} coords, space has {self.ndim}")
        return tuple(int(round(v)) for v in x)

    def in_bounds(self, idx: tuple[int, ...]) -> bool:
        """Whether a grid point lies inside every dimension's range."""
        return all(0 <= i < len(d) for i, d in zip(idx, self.dims))

    def params_at(
        self, idx: tuple[int, ...], base: TuningParams
    ) -> TuningParams:
        """Materialize a configuration: tuned dimensions from ``idx``,
        everything else from ``base``.  Raises IndexError out of bounds."""
        updates = {
            d.name: d.value_at(i) for d, i in zip(self.dims, idx)
        }
        return base.replace(**updates)

    def index_of(self, params: TuningParams) -> tuple[int, ...]:
        """Grid point nearest to ``params`` (used to seed the simplex)."""
        return tuple(
            d.index_of(getattr(params, d.name)) for d in self.dims
        )
