"""Initial-simplex construction (Section 4.4, technique 5).

"We construct an initial simplex by first defining a default point and
determining the other ten points around the default point."  The default
point is :func:`repro.core.params.default_params` (T = Nz/16, W = 2,
cache-sized sub-tiles, F* = p/2); the remaining d points perturb one
index coordinate each, stepping toward whichever side has room.
"""

from __future__ import annotations

import numpy as np

from ..core.params import ProblemShape, TuningParams, default_params
from .space import SearchSpace


def initial_simplex(
    space: SearchSpace,
    shape: ProblemShape,
    base: TuningParams | None = None,
    step: int = 2,
) -> np.ndarray:
    """Build the (d+1) x d index-space starting simplex.

    Vertex 0 is the default point; vertex i+1 moves coordinate ``i`` by
    ``step`` grid indices (downward when the upper end has no room), so
    the simplex is non-degenerate and stays mostly in bounds.
    """
    if base is None:
        base = default_params(shape)
    center = np.array(space.index_of(base), dtype=np.float64)
    d = space.ndim
    simplex = np.tile(center, (d + 1, 1))
    for i, dim in enumerate(space.dims):
        hi = len(dim) - 1
        delta = step if center[i] + step <= hi else -step
        if center[i] + delta < 0:
            delta = max(1, hi - int(center[i]))  # tiny dimension: go up
        simplex[i + 1, i] = center[i] + delta
    return simplex
