"""High-level auto-tuning of the parallel 3-D FFT (Section 4 end to end).

:func:`autotune` wires the pieces together exactly the way the paper
tunes NEW (and TH):

1. the objective runs the variant's pipeline in virtual-payload mode
   with ``include_fixed_steps=False`` — FFTz and Transpose have fixed
   cost, so they are skipped while tuning (technique 3);
2. the search space is the log-reduced grid over the variant's tunable
   parameters;
3. Nelder-Mead starts from the constructed initial simplex around the
   default point;
4. infeasible suggestions are penalized, repeats served from cache;
5. the winner is re-run once in full to report the end-to-end time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.api import RunResult, run_case
from ..core.params import ProblemShape, TuningParams
from ..core.variants import VariantSpec, baseline_params, get_variant
from ..errors import TuningError
from ..machine.platforms import Platform
from .evalstore import EvalStore
from .harmony import HarmonyClient, HarmonyServer, TuningSession, run_tuning_loop
from .initial import initial_simplex
from .neldermead import NelderMead
from .space import SearchSpace


@dataclass
class TuningResult:
    """Outcome of one auto-tuning session."""

    variant: str
    platform: str
    shape: ProblemShape
    best_params: TuningParams
    best_objective: float      # parameter-dependent steps only (tuning metric)
    full_run: RunResult        # end-to-end run with the winner
    session: TuningSession

    @property
    def fft_time(self) -> float:
        """End-to-end 3-D FFT time with the tuned configuration."""
        return self.full_run.elapsed

    @property
    def tuning_time(self) -> float:
        """Simulated seconds the tuning session spent (Table 4 metric)."""
        return self.session.tuning_time

    @property
    def evaluations(self) -> int:
        """Suggestions the session processed."""
        return self.session.evaluations


def autotune(
    variant: str | VariantSpec,
    platform: Platform,
    shape: ProblemShape,
    max_evaluations: int = 400,
    base: TuningParams | None = None,
    strategy: str = "nelder-mead",
    eval_store: EvalStore | None = None,
) -> TuningResult:
    """Auto-tune a variant's parameters for one (platform, p, N) setting.

    ``strategy`` selects the search: ``"nelder-mead"`` (the paper's
    choice) or ``"coordinate"`` (cyclic coordinate descent — the kind of
    alternative §7 proposes to try).

    ``eval_store`` shares timed configurations *across* strategies and
    sessions (see :mod:`repro.tuning.evalstore`): evaluations found in
    the store are free, and new ones are written through, so comparing
    strategies against one warm store measures search policy instead of
    redundant simulation.
    """
    spec = get_variant(variant) if isinstance(variant, str) else variant
    if not spec.tunable:
        # The FFTW baseline tunes internally (FFTW_PATIENT), not via
        # Harmony; model that as a fixed-configuration session (see
        # fftw_tuning_time for its Table 4 cost).
        params = baseline_params(spec, shape)
        full, _ = run_case(spec, platform, shape, params)
        session = TuningSession(space=SearchSpace(shape, ()))
        session.tuning_time = fftw_tuning_time(full.elapsed)
        return TuningResult(
            variant=spec.name,
            platform=platform.name,
            shape=shape,
            best_params=params,
            best_objective=full.elapsed,
            full_run=full,
            session=session,
        )

    if base is None:
        base = baseline_params(spec, shape)
    space = SearchSpace(shape, spec.tunable)
    session = TuningSession(space=space)

    def measure(params: TuningParams) -> tuple[float, float]:
        res, _ = run_case(
            spec, platform, shape, params, include_fixed_steps=False
        )
        return res.elapsed, res.elapsed

    scoped = (
        eval_store.scope(platform.name, spec.name, shape,
                         include_fixed_steps=False)
        if eval_store is not None else None
    )
    client = HarmonyClient(space, shape, base, measure, session, evals=scoped)
    if strategy == "nelder-mead":
        search = NelderMead(initial_simplex(space, shape, base))
    elif strategy == "coordinate":
        from .coordinate import CoordinateDescent

        search = CoordinateDescent(
            np.asarray(space.index_of(base), dtype=float),
            [len(d) for d in space.dims],
        )
    else:
        raise TuningError(
            f"unknown strategy {strategy!r}; use 'nelder-mead' or 'coordinate'"
        )
    server = HarmonyServer(search, space)
    run_tuning_loop(server, client, max_evaluations)

    best = session.best()
    best_params = best.params
    if best_params is None:
        # A replayed record can win an objective tie without carrying its
        # configuration; resolve it from the winning grid index.
        best_params = space.params_at(best.index, base)
    full, _ = run_case(spec, platform, shape, best_params)
    return TuningResult(
        variant=spec.name,
        platform=platform.name,
        shape=shape,
        best_params=best_params,
        best_objective=best.objective,
        full_run=full,
        session=session,
    )


#: Number of candidate plans FFTW_PATIENT effectively times; calibrated
#: so modeled FFTW tuning time lands in the paper's Table 4 range of
#: ~60-120x one 3-D FFT execution.
FFTW_PATIENT_PLANS = 64


def fftw_tuning_time(fft_time: float) -> float:
    """Modeled FFTW_PATIENT planning cost for the baseline (Table 4)."""
    return FFTW_PATIENT_PLANS * fft_time
