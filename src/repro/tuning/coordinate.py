"""Cyclic coordinate descent — an alternative search strategy.

Section 7: "we plan to try optimization strategies other than
Nelder-Mead."  Coordinate descent is the natural first candidate for a
log-reduced integer grid: sweep one parameter at a time around the
current best, accept improvements, and cycle until a full pass changes
nothing.  It exposes the same ask/tell interface as
:class:`~repro.tuning.neldermead.NelderMead`, so it plugs into the same
Harmony server/client loop.
"""

from __future__ import annotations

import numpy as np

from ..errors import TuningError


class CoordinateDescent:
    """Ask/tell cyclic coordinate descent over index space.

    Parameters
    ----------
    start:
        Initial index-space point (d integers as floats).
    dim_sizes:
        Candidate-list length per dimension (bounds the probes).
    span:
        Offsets probed around the incumbent in each sweep (default
        ``(-2, -1, +1, +2)``).
    """

    def __init__(
        self,
        start: np.ndarray,
        dim_sizes: list[int],
        span: tuple[int, ...] = (-2, -1, 1, 2),
    ) -> None:
        self.x = np.asarray(start, dtype=np.float64).copy()
        if self.x.ndim != 1:
            raise TuningError(f"start must be 1-D, got shape {self.x.shape}")
        if len(dim_sizes) != len(self.x):
            raise TuningError("dim_sizes must match the point's arity")
        self.dim_sizes = list(dim_sizes)
        self.span = tuple(span)
        self.ndim = len(self.x)
        self.best_value = np.inf
        self._evaluated_start = False
        self._dim = 0
        self._probe_idx = 0
        self._pending: np.ndarray | None = None
        self._improved_this_cycle = False
        self._done = False

    # -- protocol -----------------------------------------------------------

    @property
    def converged(self) -> bool:
        """True once a full sweep produced no improvement."""
        return self._done

    def best(self) -> tuple[np.ndarray, float]:
        """Incumbent point and its objective value."""
        return self.x.copy(), float(self.best_value)

    def _next_probe(self) -> np.ndarray | None:
        """Next in-bounds probe point, advancing the sweep state."""
        while True:
            if self._probe_idx >= len(self.span):
                self._probe_idx = 0
                self._dim += 1
                if self._dim >= self.ndim:
                    if not self._improved_this_cycle:
                        self._done = True
                        return None
                    self._dim = 0
                    self._improved_this_cycle = False
            offset = self.span[self._probe_idx]
            self._probe_idx += 1
            cand = self.x.copy()
            cand[self._dim] += offset
            if 0 <= cand[self._dim] < self.dim_sizes[self._dim]:
                return cand

    def ask(self) -> np.ndarray:
        """Next point to evaluate."""
        if self._done:
            raise TuningError("search already converged")
        if self._pending is not None:
            return self._pending.copy()
        if not self._evaluated_start:
            self._pending = self.x.copy()
            return self._pending.copy()
        nxt = self._next_probe()
        if nxt is None:  # converged during advance
            # Return the incumbent; tell() will be a no-op record.
            self._pending = self.x.copy()
        else:
            self._pending = nxt
        return self._pending.copy()

    def tell(self, x: np.ndarray, value: float) -> None:
        """Report the objective for the point last returned by ask()."""
        if self._pending is None or not np.allclose(x, self._pending):
            raise TuningError("tell() must answer the last ask()")
        self._pending = None
        if not self._evaluated_start:
            self._evaluated_start = True
            self.best_value = value
            return
        if value < self.best_value:
            self.best_value = value
            self.x = np.asarray(x, dtype=np.float64).copy()
            self._improved_this_cycle = True
            # Restart the sweep of this dimension around the new point.
            self._probe_idx = 0
