"""Active-Harmony-style auto-tuning framework (Sections 4.3-4.4).

The paper's architecture (Figure 6) splits tuning into a *server* that
searches the parameter space and a *client* that runs the tuning target
and reports performance.  This module reproduces that split plus the
paper's four client-side techniques:

1. **Infeasible-point penalty** — a configuration violating a dependent
   constraint is reported as ``inf`` *without executing* the target.
2. **History reuse** — the discrete rounding of NM means the server can
   re-suggest an already-tested grid point; the client answers from its
   evaluation cache instead of re-running.
3. **Fixed-step skipping** — the objective excludes FFTz/Transpose
   (handled by the caller's objective function; see
   :func:`repro.tuning.tuner.autotune`).
4. **Search-space reduction** — lives in
   :class:`~repro.tuning.space.SearchSpace`.

Accounting mirrors Table 4: the session's ``tuning_time`` is the summed
*simulated* duration of the evaluations actually executed (cache hits
and penalized points are free) plus a per-evaluation harness overhead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.params import ProblemShape, TuningParams
from ..errors import InfeasibleConfigError, TuningError
from ..obs.tracer import WALL, current_tracer
from .evalstore import ScopedEvalStore
from .neldermead import NelderMead
from .space import SearchSpace

#: modeled client/server round-trip + setup per evaluation (seconds);
#: small next to any real FFT execution, matching the paper's claim that
#: tuning time is dominated by running the target.
HARNESS_OVERHEAD = 0.05


@dataclass
class Evaluation:
    """One tested configuration."""

    index: tuple[int, ...]
    params: TuningParams | None
    objective: float
    executed: bool  # False for cache hits and infeasible penalties
    cost: float     # simulated seconds spent running the target


@dataclass
class TuningSession:
    """Joint record of a server/client tuning run."""

    space: SearchSpace
    history: list[Evaluation] = field(default_factory=list)
    cache: dict[tuple[int, ...], float] = field(default_factory=dict)
    tuning_time: float = 0.0

    @property
    def evaluations(self) -> int:
        """Total suggestions processed (including cache hits)."""
        return len(self.history)

    @property
    def executed_evaluations(self) -> int:
        """Suggestions that actually ran the tuning target."""
        return sum(1 for e in self.history if e.executed)

    def best(self) -> Evaluation:
        """Best feasible evaluation seen so far.

        Objective ties are broken toward records that carry their
        ``params`` (executed runs and store hits): a session-cache
        replay records ``params=None``, and returning such a record
        would hand the caller a winner it cannot re-run.
        """
        finite = [e for e in self.history if math.isfinite(e.objective)]
        if not finite:
            raise TuningError("no feasible configuration was found")
        return min(finite, key=lambda e: (e.objective, e.params is None))

    def evals_to_reach(self, objective: float) -> int | None:
        """How many suggestions it took to first reach ``objective`` or
        better (the paper's "found the first percentile configuration
        after testing 35 configurations" metric)."""
        for i, e in enumerate(self.history, start=1):
            if e.objective <= objective:
                return i
        return None


class HarmonyServer:
    """Search-strategy side: suggests configurations, absorbs reports."""

    def __init__(self, strategy: NelderMead, space: SearchSpace) -> None:
        self.strategy = strategy
        self.space = space

    @property
    def converged(self) -> bool:
        """Whether the search strategy has converged."""
        return self.strategy.converged

    def suggest(self) -> tuple[np.ndarray, tuple[int, ...]]:
        """Next continuous point and its rounded grid index."""
        x = self.strategy.ask()
        return x, self.space.round_point(x)

    def report(self, x: np.ndarray, objective: float) -> None:
        """Feed an objective value back to the strategy."""
        self.strategy.tell(x, objective)


class HarmonyClient:
    """Target side: materializes, validates, caches, and runs configs.

    ``measure`` maps a feasible :class:`TuningParams` to ``(objective,
    cost_seconds)`` — for the FFT target both are the simulated execution
    time of the parameter-dependent steps.

    ``evals`` is an optional :class:`~repro.tuning.evalstore.ScopedEvalStore`
    — the cross-session/cross-strategy generalization of technique 2.  A
    configuration any strategy has already timed under the same setting
    is answered from the store without running the target (free, like a
    cache hit, traced as ``tune.store_hits``); every executed measurement
    is written through so other strategies and future sessions reuse it.
    """

    def __init__(
        self,
        space: SearchSpace,
        shape: ProblemShape,
        base: TuningParams,
        measure: Callable[[TuningParams], tuple[float, float]],
        session: TuningSession,
        evals: ScopedEvalStore | None = None,
    ) -> None:
        self.space = space
        self.shape = shape
        self.base = base
        self.measure = measure
        self.session = session
        self.evals = evals

    def evaluate(self, index: tuple[int, ...]) -> float:
        """Objective for a grid point, applying the paper's techniques."""
        s = self.session
        tr = current_tracer()
        t0 = tr.wall() if tr is not None else 0.0
        if index in s.cache:  # technique 2: reuse history
            value = s.cache[index]
            s.history.append(Evaluation(index, None, value, False, 0.0))
            self._trace_eval(tr, t0, index, None, value, cache_hit=True)
            return value
        try:
            params = self.space.params_at(index, self.base)
            params.check_feasible(self.shape)
        except (IndexError, InfeasibleConfigError):
            # technique 1: penalize without running the target
            s.cache[index] = math.inf
            s.history.append(Evaluation(index, None, math.inf, False, 0.0))
            self._trace_eval(tr, t0, index, None, math.inf, cache_hit=False)
            return math.inf
        if self.evals is not None:
            rec = self.evals.get(params)
            if rec is not None:  # shared history: another strategy's work
                s.cache[index] = rec.objective
                s.history.append(
                    Evaluation(index, params, rec.objective, False, 0.0)
                )
                self._trace_eval(tr, t0, index, params, rec.objective,
                                 cache_hit=False, store_hit=True)
                return rec.objective
        value, cost = self.measure(params)
        s.cache[index] = value
        s.tuning_time += cost + HARNESS_OVERHEAD
        s.history.append(Evaluation(index, params, value, True, cost))
        if self.evals is not None:
            self.evals.put(params, value, cost)
        self._trace_eval(tr, t0, index, params, value, cache_hit=False,
                         executed=True, cost=cost)
        return value

    def _trace_eval(
        self, tr, t0, index, params, value,
        cache_hit: bool, executed: bool = False, cost: float = 0.0,
        store_hit: bool = False,
    ) -> None:
        """One wall-clock span + counters per tuning-loop evaluation."""
        if tr is None:
            return
        tr.count("tune.evals")
        if cache_hit:
            tr.count("tune.cache_hits")
        elif store_hit:
            tr.count("tune.store_hits")
        elif not math.isfinite(value):
            tr.count("tune.infeasible")
        attrs = {
            "index": list(index),
            "cache_hit": cache_hit,
            "store_hit": store_hit,
            "feasible": math.isfinite(value),
            "executed": executed,
            "objective": value if math.isfinite(value) else None,
            "sim_cost_s": cost,
        }
        if params is not None:
            attrs["params"] = params.as_dict()
        tr.add_span("tuning", "tune.eval", t0, tr.wall(), WALL, attrs)
        if executed:
            tr.observe("tune.objective_s", value)


def run_tuning_loop(
    server: HarmonyServer,
    client: HarmonyClient,
    max_evaluations: int = 400,
) -> TuningSession:
    """Drive suggest/evaluate/report until NM converges (Figure 6 loop)."""
    session = client.session
    while not server.converged and session.evaluations < max_evaluations:
        x, index = server.suggest()
        server.report(x, client.evaluate(index))
    return session
