"""Grid coordinator: serve cells over HTTP, merge results in input order.

The coordinator is the distributed twin of the pool driver in
:mod:`repro.exec.pool`: it owns the grid's ``todo`` list, hands cells to
workers via leases (:mod:`repro.dist.queue`), and folds accepted
completions into a ``results`` list indexed exactly like
:func:`~repro.exec.parallel_map`'s — so :func:`dist_map` can return (or
raise) in the same shape and ``evaluate_cells`` harvests both dispatch
modes with the same code.

Durability: every accepted completion is flushed to the shared
:class:`~repro.exec.ResultStore` *immediately* (atomic per-cell files),
so a coordinator killed mid-grid loses nothing — a restart re-reads the
store, serves only the missing cells, and re-simulates zero of the
completed ones.

Trust boundary: completions are validated, not believed.  A payload's
reconstructed :meth:`CellResult.key` must equal the key the coordinator
itself computed for that index, or the completion is rejected — a
worker with a different ambient fault spec (or a stale snapshot of the
grid) cannot poison the store.

Telemetry (DESIGN.md §5.12): the coordinator is also the fleet's
metrics aggregation point.  It publishes its own ``dist_*`` counters
into the registry captured at construction, folds the metric deltas and
trace spans workers attach to ``/complete`` into that registry and a
per-host span map, serves the merged view at ``GET /metrics``
(Prometheus text exposition), and — when ``DistConfig.trace_dir`` is
set — writes ``fleet_trace.json`` / ``fleet_metrics.prom`` when the
grid ends.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Sequence

from ..bench.runner import CellResult, cell_from_dict
from ..errors import (
    DistWorkersLost,
    ItemFailedError,
    ItemTimeoutError,
    ParallelMapError,
)
from ..exec.store import ResultStore
from ..fft.wisdom import GLOBAL_WISDOM
from ..obs.export import export_fleet_chrome
from ..obs.registry import current_registry
from ..obs.tracer import current_tracer
from .config import DistConfig
from .fleet import launch_workers
from .protocol import PROTOCOL_VERSION, decode, encode
from .queue import WorkQueue

#: ``note(text)`` — one-line fleet status for the live progress ticker
NoteFn = Callable[[str], None]


@dataclass
class GridJob:
    """Everything a worker needs to evaluate this grid's cells.

    ``todo`` holds full 5-tuple cell keys
    ``(platform, p, n, budget, faults)`` in input order;
    ``evals_snapshot`` is the eval-store JSONL taken once before
    dispatch (``None`` when no eval store is in play) — every worker
    starts every cell from this same snapshot, mirroring the local
    pool's semantics so results are byte-identical across dispatch
    modes.
    """

    platform: str
    todo: list[tuple[str, int, int, int, str]]
    labels: list[str]
    evals_snapshot: str | None = None
    faults: str = ""
    lease_ttl: float = 15.0
    batch: int = 1

    def descriptor(self) -> dict:
        """The /config response body."""
        return {
            "version": PROTOCOL_VERSION,
            "platform": self.platform,
            "faults": self.faults,
            "evals": self.evals_snapshot,
            "lease_ttl": self.lease_ttl,
            "batch": self.batch,
            "total": len(self.todo),
            "cells": [
                {"index": i, "p": p, "n": n, "budget": b}
                for i, (_plat, p, n, b, _f) in enumerate(self.todo)
            ],
        }


@dataclass
class _WorkerNote:
    """Last heartbeat from one worker (for the aggregated ticker)."""

    done: int = 0
    total: int = 0
    label: str = ""
    last_seen: float = 0.0


class Coordinator:
    """One grid's coordinator: HTTP server + lease queue + result merge."""

    def __init__(
        self,
        job: GridJob,
        config: DistConfig = DistConfig(),
        store: ResultStore | None = None,
        progress: Callable[[int, int, str], None] | None = None,
        note: NoteFn | None = None,
    ) -> None:
        self.job = job
        self.config = config
        self.store = store
        self.progress = progress
        self.note = note
        self.queue = WorkQueue(
            len(job.todo), lease_ttl=job.lease_ttl, clock=config.clock
        )
        self.results: list[Any] = [None] * len(job.todo)
        self.failures: dict[int, ItemFailedError] = {}
        self.workers_seen: set[str] = set()
        self._notes: dict[str, _WorkerNote] = {}
        self._finished_events = 0
        self._lock = threading.Lock()
        self._tr = current_tracer()
        # captured at construction: HTTP handler threads have their own
        # (empty) thread-local registry stacks, so a lookup there would
        # miss the registry the grid run installed on the driver thread
        self.registry = current_registry()
        self._t0 = config.clock()
        #: worker host id -> shipped span records (the fleet trace input)
        self._fleet_spans: dict[str, list[dict]] = {}
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        for name, help_ in (
            ("dist_leases_total", "Leases granted to workers."),
            ("dist_heartbeats_total", "Lease renewals received."),
            ("dist_completions_total", "Cell completions accepted."),
            ("dist_requeues_total", "Cells requeued from expired leases."),
            ("dist_telemetry_rejects_total",
             "Worker telemetry payloads dropped as malformed."),
            ("dist_auth_rejects_total",
             "Requests rejected for a missing or wrong bearer token."),
        ):
            self.registry.inc(name, 0, help=help_)

    def authorized(self, header: str | None) -> bool:
        """Whether a request's ``Authorization`` header passes.  Always
        true when no token is configured (auth disabled)."""
        token = self.config.token
        if not token:
            return True
        if header == f"Bearer {token}":
            return True
        self.registry.inc("dist_auth_rejects_total")
        return False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> str:
        """Bind and start serving in a daemon thread; returns the URL."""
        handler = _make_handler(self)
        self._server = ThreadingHTTPServer(
            (self.config.host, self.config.port), handler
        )
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-dist-coordinator",
            daemon=True,
        )
        self._thread.start()
        return self.url

    @property
    def url(self) -> str:
        if self._server is None:
            raise RuntimeError("coordinator not started")
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    # -- endpoint logic (called from handler threads) ----------------------

    def handle_lease(self, body: dict) -> dict:
        worker = str(body.get("worker", "?"))
        self.workers_seen.add(worker)
        lease, indices = self.queue.lease(
            worker, int(body.get("max_cells", self.job.batch))
        )
        if indices:
            self.registry.inc("dist_leases_total")
            if self._tr is not None:
                self._tr.count("dist.leases")
        return {
            "lease": lease,
            "cells": [
                {
                    "index": i,
                    "p": self.job.todo[i][1],
                    "n": self.job.todo[i][2],
                    "budget": self.job.todo[i][3],
                }
                for i in indices
            ],
            "finished": self.queue.finished,
        }

    def handle_renew(self, body: dict) -> dict:
        worker = str(body.get("worker", "?"))
        ok = self.queue.renew(str(body.get("lease", "")))
        with self._lock:
            self._notes[worker] = _WorkerNote(
                done=int(body.get("done", 0)),
                total=int(body.get("total", 0)),
                label=str(body.get("label", "")),
                last_seen=self.config.clock(),
            )
        self.registry.inc("dist_heartbeats_total")
        if self._tr is not None:
            self._tr.count("dist.heartbeats")
        return {"ok": ok, "finished": self.queue.finished}

    def handle_complete(self, body: dict) -> dict:
        worker = str(body.get("worker", "?"))
        self.workers_seen.add(worker)
        accepted = 0
        for item in body.get("cells", []):
            index = int(item["index"])
            if not 0 <= index < len(self.job.todo):
                raise ValueError(f"cell index {index} out of range")
            cell = cell_from_dict(item["cell"])
            if cell.key() != self.job.todo[index]:
                raise ValueError(
                    f"cell key mismatch at index {index}: worker sent "
                    f"{cell.key()!r}, expected {self.job.todo[index]!r}"
                )
            if not self.queue.complete(index):
                continue  # idempotent: a requeued twin already landed
            self._accept(index, cell, item)
            accepted += 1
        wisdom = body.get("wisdom", "")
        if wisdom:
            with self._lock:
                # first-wins per key and every entry is a pure function
                # of its key (same argument as the pool's wisdom merge),
                # so arrival order cannot change the final store
                GLOBAL_WISDOM.import_json(wisdom)
        self._absorb_telemetry(body, worker)
        return {"accepted": accepted, "finished": self.queue.finished}

    def _absorb_telemetry(self, body: dict, worker: str) -> None:
        """Fold a ``/complete`` payload's optional telemetry in.

        Best-effort by design: a malformed delta is counted and dropped,
        never allowed to reject the completion it rode in on — results
        are load-bearing, telemetry is not.  Metric deltas merge
        additively (counters/histograms) or first-wins (gauges); span
        records append under the worker's host id, which keeps two
        workers on one machine in separate fleet-trace process groups.
        """
        host = str(body.get("host", "") or worker)
        delta = body.get("metrics")
        if isinstance(delta, dict) and delta:
            try:
                self.registry.merge(delta)
            except (ValueError, TypeError):
                self.registry.inc("dist_telemetry_rejects_total")
        spans = body.get("spans")
        if isinstance(spans, list) and spans:
            with self._lock:
                self._fleet_spans.setdefault(host, []).extend(
                    rec for rec in spans if isinstance(rec, dict)
                )

    def handle_fail(self, body: dict) -> dict:
        accepted = 0
        for item in body.get("failures", []):
            index = int(item["index"])
            if not 0 <= index < len(self.job.todo):
                raise ValueError(f"failure index {index} out of range")
            if not self.queue.fail(index):
                continue
            cls = ItemTimeoutError if item.get("timed_out") else ItemFailedError
            err = cls(
                str(item.get("label", self.job.labels[index])),
                str(item.get("cause", "worker reported failure")),
                attempts=int(item.get("attempts", 1)),
            )
            with self._lock:
                self.failures[index] = err
            self._bump_finished(index)
            accepted += 1
        return {"accepted": accepted, "finished": self.queue.finished}

    def handle_healthz(self) -> tuple[int, dict]:
        """Liveness/readiness for supervisors: 200 while the grid still
        has work to hand out, 503 once the queue is finished (the
        coordinator is about to shut down, stop routing to it).  Served
        without auth — probes don't carry bearer tokens."""
        ready = not self.queue.finished
        uptime = max(self.config.clock() - self._t0, 0.0)
        body = {
            "live": True,
            "ready": ready,
            "finished": self.queue.finished,
            "uptime_s": round(uptime, 3),
        }
        return (200 if ready else 503), body

    def handle_status(self) -> dict:
        counts = self.queue.counts()
        now = self.config.clock()
        with self._lock:
            counts["workers"] = {
                w: {
                    "done": n.done,
                    "total": n.total,
                    "label": n.label,
                    "lag_s": round(max(now - n.last_seen, 0.0), 3),
                }
                for w, n in self._notes.items()
            }
        counts["lease_ages_s"] = [
            round(a, 3) for a in self.queue.lease_ages()
        ]
        uptime = max(now - self._t0, 0.0)
        counts["uptime_s"] = round(uptime, 3)
        rate = counts["done"] / uptime if uptime > 0 else 0.0
        counts["completion_rate_per_s"] = round(rate, 4)
        remaining = counts["pending"] + counts["leased"]
        counts["eta_s"] = round(remaining / rate, 3) if rate > 0 else None
        counts["finished"] = self.queue.finished
        return counts

    def metrics_text(self) -> str:
        """The ``/metrics`` body: refresh the point-in-time gauges, then
        render the whole registry (coordinator counters + every merged
        worker delta) as Prometheus text exposition."""
        counts = self.queue.counts()
        now = self.config.clock()
        reg = self.registry
        for state in ("pending", "leased", "done", "failed"):
            reg.set(f"dist_queue_{state}", counts[state],
                    help="Grid cells per queue state.")
        reg.set("dist_cells_total", counts["total"],
                help="Grid cells in this run.")
        with self._lock:
            live = sum(
                1 for n in self._notes.values()
                if now - n.last_seen <= 2 * self.job.lease_ttl
            )
        reg.set("dist_workers_live", live,
                help="Workers with a recent heartbeat.")
        ages = self.queue.lease_ages()
        reg.set("dist_lease_age_max_seconds", ages[0] if ages else 0.0,
                help="Oldest outstanding lease, seconds since grant.")
        uptime = max(now - self._t0, 0.0)
        reg.set("dist_uptime_seconds", round(uptime, 6),
                help="Seconds since the coordinator started.")
        rate = counts["done"] / uptime if uptime > 0 else 0.0
        reg.set("dist_completion_rate_per_second", round(rate, 6),
                help="Accepted completions per second of uptime.")
        return reg.render_prometheus()

    def _accept(self, index: int, cell: CellResult, item: dict) -> None:
        """Record one first-wins completion: result slot, store, ticker."""
        if self.job.evals_snapshot is None:
            value: Any = cell
        else:
            value = (cell, str(item.get("evals", "")), int(item.get("hits", 0)))
        with self._lock:
            self.results[index] = value
            if self.store is not None:
                self.store.put(cell)
        self.registry.inc("dist_completions_total")
        if self._tr is not None:
            self._tr.count("dist.completions")
        self._bump_finished(index)

    def _bump_finished(self, index: int) -> None:
        with self._lock:
            self._finished_events += 1
            done = self._finished_events
        if self.progress is not None:
            self.progress(done, len(self.job.todo), self.job.labels[index])

    # -- wait-loop helpers -------------------------------------------------

    def tick(self) -> None:
        """One coordinator heartbeat: expire stale leases, refresh note."""
        requeued = self.queue.expire()
        if requeued:
            self.registry.inc("dist_requeues_total", len(requeued))
            if self._tr is not None:
                self._tr.count("dist.requeues", len(requeued))
        if self.note is not None:
            self.note(self._note_text())

    def _note_text(self) -> str:
        now = self.config.clock()
        with self._lock:
            live = [
                (w, n)
                for w, n in sorted(self._notes.items())
                if now - n.last_seen <= 2 * self.job.lease_ttl
            ]
        if not live:
            return f"{len(self.workers_seen)} worker(s) seen"
        parts = [
            f"{w}:{n.done}/{n.total}" + (f" {n.label}" if n.label else "")
            for w, n in live[:3]
        ]
        if len(live) > 3:
            parts.append(f"+{len(live) - 3} more")
        return f"{len(live)} worker(s) " + " | ".join(parts)

    def fail_pending(self, cause: str, timed_out: bool = False) -> int:
        """Convert every non-terminal cell into a recorded failure.

        Used when the grid can no longer make progress (fleet lost, grid
        deadline): the standard :class:`~repro.errors.ParallelMapError`
        /salvage path then applies, exactly as for local pool failures.
        """
        failed = 0
        cls = ItemTimeoutError if timed_out else ItemFailedError
        for index in range(len(self.job.todo)):
            if not self.queue.fail(index):
                continue
            with self._lock:
                self.failures[index] = cls(self.job.labels[index], cause)
            self._bump_finished(index)
            failed += 1
        return failed

    def outcome(self) -> list[Any]:
        """Results in input order; raises
        :class:`~repro.errors.ParallelMapError` carrying the partial
        results when any cell failed (same contract as
        :func:`~repro.exec.parallel_map`)."""
        if self.failures:
            raise ParallelMapError(self.results, dict(self.failures))
        return self.results

    def write_fleet_trace(self, out_dir: str | Path) -> dict:
        """Write the merged fleet telemetry under ``out_dir``:
        ``fleet_trace.json`` (one Chrome trace, a process group per
        worker host, loadable by ``repro trace``) and
        ``fleet_metrics.prom`` (the final ``/metrics`` exposition).
        Returns ``{"trace": path, "metrics": path, "spans": count}``.
        """
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        with self._lock:
            spans = {h: list(s) for h, s in self._fleet_spans.items()}
        trace_path = out / "fleet_trace.json"
        export_fleet_chrome(
            spans,
            trace_path,
            meta={
                "workers": sorted(self.workers_seen),
                "cells": len(self.job.todo),
                "platform": self.job.platform,
            },
        )
        metrics_path = out / "fleet_metrics.prom"
        metrics_path.write_text(self.metrics_text())
        return {
            "trace": str(trace_path),
            "metrics": str(metrics_path),
            "spans": sum(len(s) for s in spans.values()),
        }


def _make_handler(coord: Coordinator) -> type[BaseHTTPRequestHandler]:
    """A handler class closed over one coordinator instance."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, format: str, *args: Any) -> None:
            pass  # the progress ticker is the UI; no per-request spam

        def _reply(self, payload: dict, code: int = 200) -> None:
            raw = encode(payload)
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(raw)))
            self.end_headers()
            self.wfile.write(raw)

        def _reply_text(self, text: str, code: int = 200) -> None:
            raw = text.encode("utf-8")
            self.send_response(code)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(raw)))
            self.end_headers()
            self.wfile.write(raw)

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            try:
                if self.path == "/healthz":
                    # before the auth gate: supervisor probes are
                    # anonymous and the body leaks nothing sensitive
                    code, payload = coord.handle_healthz()
                    self._reply(payload, code)
                elif not coord.authorized(self.headers.get("Authorization")):
                    self._reply({"error": "unauthorized"}, 401)
                elif self.path == "/config":
                    self._reply(coord.job.descriptor())
                elif self.path == "/status":
                    self._reply(coord.handle_status())
                elif self.path == "/metrics":
                    self._reply_text(coord.metrics_text())
                else:
                    self._reply({"error": f"unknown path {self.path}"}, 404)
            except Exception as exc:
                self._reply({"error": str(exc)}, 500)

        def do_POST(self) -> None:  # noqa: N802 (http.server API)
            try:
                if not coord.authorized(self.headers.get("Authorization")):
                    self._reply({"error": "unauthorized"}, 401)
                    return
                length = int(self.headers.get("Content-Length", 0))
                body = decode(self.rfile.read(length)) if length else {}
                routes = {
                    "/lease": coord.handle_lease,
                    "/renew": coord.handle_renew,
                    "/complete": coord.handle_complete,
                    "/fail": coord.handle_fail,
                }
                handler = routes.get(self.path)
                if handler is None:
                    self._reply({"error": f"unknown path {self.path}"}, 404)
                    return
                self._reply(handler(body))
            except ValueError as exc:
                self._reply({"error": str(exc)}, 400)
            except Exception as exc:
                self._reply({"error": str(exc)}, 500)

    return Handler


def dist_map(
    platform: str,
    todo: Sequence[tuple[str, int, int, int, str]],
    labels: Sequence[str],
    evals_snapshot: str | None,
    config: DistConfig,
    store: ResultStore | None = None,
    progress: Callable[[int, int, str], None] | None = None,
    note: NoteFn | None = None,
    faults: str = "",
) -> list[Any]:
    """Distributed twin of :func:`~repro.exec.parallel_map` for grids.

    Serves ``todo`` from a coordinator, optionally launches a worker
    fleet per ``config.workers``, and blocks until every cell reaches a
    terminal state.  Returns values in the exact shape the local pool
    produces (:class:`CellResult`, or ``(cell, evals_delta, hits)``
    tuples when ``evals_snapshot`` is given) so ``evaluate_cells``
    harvests both dispatch modes identically; failures raise
    :class:`~repro.errors.ParallelMapError` with partial results.

    Raises :class:`~repro.errors.DistWorkersLost` only when a spawned
    fleet dies before *any* worker manages to connect — a configuration
    error with nothing to salvage.  A fleet that connects and then dies
    converts the remaining cells to recorded failures instead, so the
    standard salvage/resume path applies.
    """
    job = GridJob(
        platform=platform,
        todo=list(todo),
        labels=list(labels),
        evals_snapshot=evals_snapshot,
        faults=faults,
        lease_ttl=config.lease_ttl,
        batch=config.batch,
    )
    coord = Coordinator(job, config, store=store, progress=progress, note=note)
    url = coord.start()
    if config.announce is not None:
        config.announce(url)
    fleet = (
        launch_workers(url, config.workers, config.worker_jobs,
                       token=config.token)
        if config.workers
        else None
    )
    deadline = (
        None if config.timeout_s is None
        else config.clock() + config.timeout_s
    )
    try:
        while not coord.queue.finished:
            config.sleep(config.poll_s)
            coord.tick()
            if fleet is not None:
                fleet.reap()
                if fleet.spawned and fleet.alive() == 0:
                    if not coord.workers_seen:
                        raise DistWorkersLost(
                            f"all {fleet.spawned} spawned worker(s) exited "
                            f"before connecting to {url}"
                            + fleet.stderr_tail()
                        )
                    coord.fail_pending(
                        f"all {fleet.spawned} spawned worker(s) exited with "
                        f"cells still pending" + fleet.stderr_tail()
                    )
                    break
            if deadline is not None and config.clock() >= deadline:
                coord.fail_pending(
                    f"grid deadline of {config.timeout_s}s exceeded",
                    timed_out=True,
                )
                break
    finally:
        if fleet is not None:
            fleet.terminate()
        coord.stop()
        if config.trace_dir:
            coord.write_fleet_trace(config.trace_dir)
    return coord.outcome()
