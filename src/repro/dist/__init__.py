"""Distributed work-queue layer: one grid, many hosts, shared stores.

The paper's evaluation sweeps (platform x shape x p x variant) grids
whose cells are independent, deterministic experiments; :mod:`repro.exec`
shards them over *local* processes.  This package is the scale-out move
P3DFFT-style frameworks make when one node stops being enough: a
**coordinator** serves the grid's cell descriptors over a tiny
JSON-over-HTTP protocol (stdlib :mod:`http.server` — zero dependencies),
and any number of **workers** (``repro worker --coordinator URL``) lease
batches of cells, evaluate them through the same
:func:`~repro.exec.parallel_map` pool local runs use, and ship
:class:`~repro.bench.runner.CellResult` payloads plus eval-store deltas
back for input-order merge into the shared result/eval stores.

Determinism argument (DESIGN.md §5.9): a cell is a pure function of its
5-tuple key and every worker starts each cell from the *same* eval-store
snapshot the local pool hands its workers, so *where* a cell runs cannot
change its value; the coordinator merges results by input order and the
stores serialize sorted, making ``grid --serve`` + N workers
byte-identical to ``--jobs N``.

Fault story: leases expire when a worker stops renewing them (crash,
kill, partition) and the cells requeue for the next lease; completions
are idempotent and keyed by the cell key, so a slow twin finishing after
a requeue is a harmless no-op.  Completed cells are flushed to the
shared :class:`~repro.exec.ResultStore` as they arrive, so a restarted
coordinator resumes via store read-through and serves only the missing
cells.

Telemetry plane (DESIGN.md §5.12): the coordinator doubles as the
fleet's aggregation point — workers attach metric deltas and trace
spans to ``/complete``, the coordinator merges them into the registry
it serves at ``GET /metrics`` (Prometheus text) and into one
fleet-wide Chrome trace (a process group per worker host) written
under :attr:`DistConfig.trace_dir`; ``repro top`` polls ``/status`` +
``/metrics`` for the live view.
"""

from .config import DistConfig
from .coordinator import Coordinator, GridJob, dist_map
from .fleet import WorkerFleet, launch_workers
from .protocol import fetch_text
from .queue import WorkQueue
from .worker import WorkerStats, run_worker

__all__ = [
    "Coordinator",
    "DistConfig",
    "GridJob",
    "WorkQueue",
    "WorkerFleet",
    "WorkerStats",
    "dist_map",
    "fetch_text",
    "launch_workers",
    "run_worker",
]
