"""Configuration for distributed grid dispatch."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class DistConfig:
    """Knobs for one distributed grid run (see :func:`repro.dist.dist_map`).

    ``clock`` and ``sleep`` are injectable the way
    :class:`~repro.exec.ExecPolicy`'s are, so lease expiry and the
    coordinator wait loop are testable against a fake clock.
    """

    #: address the coordinator binds; port 0 picks an ephemeral port
    #: (the chosen URL is printed / available as ``Coordinator.url``).
    #: Bind a non-loopback host (e.g. ``0.0.0.0``) for remote workers.
    host: str = "127.0.0.1"
    port: int = 0
    #: comma-separated worker launch spec: ``local`` spawns a
    #: ``repro worker`` subprocess on this machine, anything else is
    #: treated as an ssh host (best effort).  Empty = serve only and
    #: wait for externally started workers.
    workers: str = ""
    #: ``--jobs`` forwarded to each spawned worker's local pool
    worker_jobs: int = 1
    #: seconds a lease may go unrenewed before its cells requeue
    lease_ttl: float = 15.0
    #: cells granted per lease (workers may ask for less)
    batch: int = 1
    #: coordinator wait-loop tick (lease expiry / fleet liveness cadence)
    poll_s: float = 0.2
    #: overall grid deadline; pending cells time out past it (None = wait
    #: forever for workers)
    timeout_s: float | None = None
    #: bearer token every request must present (``Authorization:
    #: Bearer <token>``); None disables auth entirely — no header sent,
    #: none checked, existing fleets unaffected.  Spawned local workers
    #: inherit it via ``$REPRO_DIST_TOKEN``.
    token: str | None = None
    #: directory for the merged fleet telemetry the coordinator writes
    #: when the grid ends: ``fleet_trace.json`` (one Chrome trace with a
    #: process group per worker host) and ``fleet_metrics.prom`` (the
    #: final ``/metrics`` exposition).  ``None`` = don't write either.
    trace_dir: str | None = None
    #: called with the coordinator URL once it is serving (the CLI
    #: prints it so externally started workers know where to connect)
    announce: Callable[[str], None] | None = None
    clock: Callable[[], float] = time.monotonic
    sleep: Callable[[float], None] = time.sleep
