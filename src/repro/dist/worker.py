"""Worker loop: lease cells, evaluate through the local pool, ship back.

``repro worker --coordinator URL --jobs N`` runs :func:`run_worker`:
fetch the grid descriptor once, then lease -> evaluate -> report until
the coordinator says the grid is finished.  Evaluation goes through the
*same* :func:`~repro.exec.parallel_map` the local dispatch path uses —
with the same module-level cell functions, the same per-cell eval-store
snapshot, and the ambient fault spec re-installed from the
coordinator's canonical key — which is the whole determinism story:
a worker computes exactly the bytes the local pool would have.

A background thread renews the active lease every TTL/3 so long cells
never expire under a *live* worker; expiry (and requeue) only fires for
workers that actually died.  Completion reports carry the worker's
accumulated FFT wisdom, so planner work done on any host is reused
everywhere (first-wins merge, order-independent).

Telemetry (DESIGN.md §5.12): each worker publishes into a *private*
registry (installed with :func:`~repro.obs.registry.scoped_registry` on
the serving thread) and a private :class:`~repro.obs.tracer.Tracer`
passed explicitly to :func:`~repro.exec.parallel_map` — neither touches
the process-global stacks, so in-process worker threads (the test
harness) and a sharing coordinator never cross-contaminate.  Every
``/complete`` ships the registry delta and the trace spans recorded
since the previous ship (watermarks, so nothing is double-counted).
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from ..bench.runner import cell_to_dict, evaluate_cell
from ..errors import DistProtocolError, ParallelMapError
from ..exec.pool import ExecPolicy, ProgressFn, _cell_with_evals, parallel_map
from ..faults import install_faults, parse_faults, uninstall_faults
from ..fft.wisdom import GLOBAL_WISDOM
from ..obs.export import span_records
from ..obs.registry import MetricsRegistry, scoped_registry
from ..obs.tracer import Tracer
from .protocol import PROTOCOL_VERSION, call


@dataclass
class WorkerStats:
    """What one :func:`run_worker` invocation did."""

    worker: str = ""
    leases: int = 0
    cells_done: int = 0
    cells_failed: int = 0
    polls: int = 0


@dataclass
class _Heartbeat:
    """Shared state the renew thread reports upstream."""

    done: int = 0
    total: int = 0
    label: str = ""
    lock: threading.Lock = field(default_factory=threading.Lock)

    def snapshot(self) -> dict:
        with self.lock:
            return {"done": self.done, "total": self.total, "label": self.label}

    def update(self, done: int, total: int, label: str) -> None:
        with self.lock:
            self.done, self.total, self.label = done, total, label


@dataclass
class _Telemetry:
    """The worker's private metric registry + tracer, with ship
    watermarks so back-to-back ``/complete`` payloads never overlap."""

    registry: MetricsRegistry
    tracer: Tracer
    metrics_mark: dict = field(default_factory=dict)
    spans_mark: int = 0

    def payload(self, host: str) -> dict:
        """The telemetry fields for one ``/complete`` body; advances
        both watermarks past everything it returns."""
        delta = self.registry.delta(self.metrics_mark)
        self.metrics_mark = self.registry.snapshot()
        spans = span_records(self.tracer, start=self.spans_mark)
        self.spans_mark = len(self.tracer.spans)
        out: dict = {"host": host}
        if delta:
            out["metrics"] = delta
        if spans:
            out["spans"] = spans
        return out


def worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def run_worker(
    coordinator: str,
    jobs: int | None = None,
    max_cells: int | None = None,
    poll_s: float = 0.5,
    progress: ProgressFn | None = None,
    policy: ExecPolicy | None = None,
    rpc_timeout: float = 10.0,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
    token: str | None = None,
) -> WorkerStats:
    """Serve one grid as a worker until the coordinator reports finished.

    ``jobs`` shards each lease over a local process pool (inheriting
    ``policy``'s retries/timeouts); ``max_cells`` caps the cells per
    lease (default: the coordinator's batch size, but at least ``jobs``
    so the local pool has work for every slot).  ``token`` is the
    coordinator's bearer token (None when auth is disabled).
    """
    stats = WorkerStats(worker=worker_id())
    cfg = call(coordinator, "/config", timeout=rpc_timeout, sleep=sleep,
               token=token)
    if cfg.get("version") != PROTOCOL_VERSION:
        raise DistProtocolError(
            f"coordinator speaks protocol {cfg.get('version')!r}, "
            f"this worker speaks {PROTOCOL_VERSION}"
        )
    platform = cfg["platform"]
    snapshot = cfg.get("evals")
    ttl = float(cfg.get("lease_ttl", 15.0))
    if max_cells is None:
        max_cells = max(int(cfg.get("batch", 1)), jobs or 1)

    faults_text = cfg.get("faults", "")
    installed = None
    if faults_text:
        # Mirror the coordinator's ambient fault spec so the cells this
        # worker computes carry the same 5-tuple key (and the same
        # injected machine) the coordinator expects.
        installed = parse_faults(faults_text)
        install_faults(installed)
    try:
        # The private registry is installed on *this thread's* stack, so
        # pool callbacks publishing via current_registry() land here —
        # and nowhere else, even when several workers share a process.
        with scoped_registry() as reg:
            telem = _Telemetry(registry=reg, tracer=Tracer(rank_spans=False))
            telem.metrics_mark = reg.snapshot()
            _serve(
                stats, coordinator, platform, snapshot, ttl, jobs,
                max_cells, poll_s, progress, policy, rpc_timeout, clock,
                sleep, telem, token,
            )
    finally:
        if installed is not None:
            uninstall_faults(installed)
    return stats


def _serve(
    stats: WorkerStats,
    coordinator: str,
    platform: str,
    snapshot: str | None,
    ttl: float,
    jobs: int | None,
    max_cells: int,
    poll_s: float,
    progress: ProgressFn | None,
    policy: ExecPolicy | None,
    rpc_timeout: float,
    clock: Callable[[], float],
    sleep: Callable[[float], None],
    telem: _Telemetry,
    token: str | None = None,
) -> None:
    while True:
        try:
            grant = call(
                coordinator, "/lease",
                {"worker": stats.worker, "max_cells": max_cells},
                timeout=rpc_timeout, sleep=sleep, token=token,
            )
        except DistProtocolError:
            # The coordinator vanished mid-poll (grid finished and shut
            # down, or it crashed).  Either way the grid is over for us:
            # exit cleanly — any lease we held expires and requeues.
            return
        cells = grant.get("cells", [])
        if not cells:
            if grant.get("finished"):
                return
            stats.polls += 1
            sleep(poll_s)
            continue
        stats.leases += 1
        _evaluate_lease(
            stats, coordinator, platform, snapshot, ttl,
            str(grant.get("lease", "")), cells, jobs, progress, policy,
            rpc_timeout, sleep, telem, token,
        )


def _evaluate_lease(
    stats: WorkerStats,
    coordinator: str,
    platform: str,
    snapshot: str | None,
    ttl: float,
    lease: str,
    cells: list[dict],
    jobs: int | None,
    progress: ProgressFn | None,
    policy: ExecPolicy | None,
    rpc_timeout: float,
    sleep: Callable[[float], None],
    telem: _Telemetry,
    token: str | None = None,
) -> None:
    """Evaluate one lease's cells and report every outcome upstream."""
    labels = [f"{platform} p{c['p']} N{c['n']}" for c in cells]
    beat = _Heartbeat(total=len(cells))
    stop = threading.Event()

    def renew_loop() -> None:
        # TTL/3 keeps two missed beats short of expiry; a dead worker
        # stops renewing and its lease requeues — exactly the failure
        # mode the queue is built around.
        while not stop.wait(ttl / 3.0):
            try:
                call(
                    coordinator, "/renew",
                    {"worker": stats.worker, "lease": lease,
                     **beat.snapshot()},
                    timeout=rpc_timeout, retries=0, sleep=sleep,
                    token=token,
                )
            except DistProtocolError:
                pass  # transient; the next beat (or expiry) sorts it out

    renewer = threading.Thread(
        target=renew_loop, name="repro-dist-renew", daemon=True
    )
    renewer.start()

    def local_progress(done: int, total: int, label: str) -> None:
        beat.update(done, total, label)
        if progress is not None:
            progress(done, total, label)

    extra: dict = {}
    if policy is not None:
        extra["policy"] = policy
    # Exactly the local pool's per-cell call shape: each cell starts
    # from the same pre-dispatch eval-store snapshot, so tuning_times
    # (store hits are free) cannot depend on which worker ran it.
    if snapshot is None:
        fn: Callable = evaluate_cell
        argtuples = [(platform, c["p"], c["n"], c["budget"]) for c in cells]
    else:
        fn = _cell_with_evals
        argtuples = [
            (platform, c["p"], c["n"], c["budget"], snapshot) for c in cells
        ]
    failures: dict[int, Exception] = {}
    try:
        try:
            values = parallel_map(
                fn, argtuples, jobs, labels=labels, progress=local_progress,
                tracer=telem.tracer, **extra,
            )
        except ParallelMapError as err:
            values = err.results
            failures = err.failures
    finally:
        stop.set()
        renewer.join(timeout=ttl)

    done_payload = []
    for local_i, value in enumerate(values):
        if value is None:
            continue
        if snapshot is None:
            cell, delta, hits = value, "", 0
        else:
            cell, delta, hits = value
        done_payload.append({
            "index": cells[local_i]["index"],
            "cell": cell_to_dict(cell),
            "evals": delta,
            "hits": hits,
        })
    if done_payload:
        call(
            coordinator, "/complete",
            {"worker": stats.worker, "lease": lease, "cells": done_payload,
             "wisdom": GLOBAL_WISDOM.export_json(),
             **telem.payload(stats.worker)},
            timeout=rpc_timeout, sleep=sleep, token=token,
        )
        stats.cells_done += len(done_payload)
    if failures:
        fail_payload = [
            {
                "index": cells[local_i]["index"],
                "label": getattr(err, "label", labels[local_i]),
                "cause": getattr(err, "cause", str(err)),
                "attempts": getattr(err, "attempts", 1),
                "timed_out": "Timeout" in type(err).__name__,
            }
            for local_i, err in sorted(failures.items())
        ]
        call(
            coordinator, "/fail",
            {"worker": stats.worker, "lease": lease,
             "failures": fail_payload},
            timeout=rpc_timeout, sleep=sleep, token=token,
        )
        stats.cells_failed += len(fail_payload)
