"""Spawning and watching a fleet of worker processes.

``launch_workers(url, "local,local")`` starts two ``repro worker``
subprocesses on this machine, each pointed at the coordinator; any
other entry is treated as an ssh host and launched best-effort with the
same command line.  The fleet object only *watches* — liveness feeds
the coordinator's wait loop (all-dead detection) and the chaos tests
kill members directly — while the work-queue lease TTL, not process
management, is what recovers a dead worker's cells.
"""

from __future__ import annotations

import os
import shlex
import subprocess
import sys
from pathlib import Path


def _worker_argv(
    url: str, worker_jobs: int, token: str | None = None
) -> list[str]:
    argv = [
        "-m", "repro", "worker",
        "--coordinator", url,
        "--jobs", str(worker_jobs),
        "--no-progress",
    ]
    if token:
        # ssh workers get the token on the command line (best effort,
        # like the rest of the ssh path); local workers inherit it via
        # $REPRO_DIST_TOKEN instead so it never shows up in `ps`.
        argv += ["--token", token]
    return argv


def _src_dir() -> str:
    """The directory holding the ``repro`` package (for PYTHONPATH)."""
    return str(Path(__file__).resolve().parent.parent.parent)


class WorkerFleet:
    """Handles to the spawned worker processes."""

    def __init__(self) -> None:
        self.procs: list[subprocess.Popen] = []
        self.spawned = 0
        self._stderr: dict[int, str] = {}

    def add(self, proc: subprocess.Popen) -> None:
        self.procs.append(proc)
        self.spawned += 1

    def reap(self) -> None:
        """Collect exit status (and stderr tails) of finished workers."""
        for i, proc in enumerate(self.procs):
            if proc.poll() is None or i in self._stderr:
                continue
            tail = ""
            if proc.stderr is not None:
                try:
                    tail = proc.stderr.read().decode(errors="replace")[-2000:]
                except Exception:
                    pass
            self._stderr[i] = tail

    def alive(self) -> int:
        return sum(1 for proc in self.procs if proc.poll() is None)

    def stderr_tail(self) -> str:
        """Formatted stderr of dead workers, for error messages."""
        parts = [
            f"\n-- worker[{i}] (exit {self.procs[i].returncode}) stderr --\n{t}"
            for i, t in sorted(self._stderr.items()) if t.strip()
        ]
        return "".join(parts)

    def terminate(self) -> None:
        for proc in self.procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self.procs:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
            if proc.stderr is not None:
                try:
                    proc.stderr.close()
                except Exception:
                    pass


def launch_workers(
    url: str, spec: str, worker_jobs: int = 1, token: str | None = None
) -> WorkerFleet:
    """Spawn one worker per comma-separated entry in ``spec``.

    ``local`` entries run ``sys.executable -m repro worker ...`` with
    this package's source directory prepended to ``PYTHONPATH`` (so an
    uninstalled checkout works); anything else becomes
    ``ssh <host> python3 -m repro worker ...``, which assumes the remote
    host has the package importable and can reach the coordinator URL —
    bind a routable host (``--serve 0.0.0.0:PORT``) for that.
    ``token`` is the coordinator's bearer token, forwarded to every
    spawned worker (env var locally, ``--token`` over ssh).
    """
    fleet = WorkerFleet()
    env = dict(os.environ)
    env["PYTHONPATH"] = _src_dir() + os.pathsep + env.get("PYTHONPATH", "")
    if token:
        env["REPRO_DIST_TOKEN"] = token
    for entry in [e.strip() for e in spec.split(",") if e.strip()]:
        if entry == "local":
            argv = [sys.executable] + _worker_argv(url, worker_jobs)
            proc = subprocess.Popen(
                argv, env=env,
                stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
            )
        else:
            remote = "python3 " + " ".join(
                shlex.quote(a) for a in _worker_argv(url, worker_jobs, token)
            )
            proc = subprocess.Popen(
                ["ssh", "-o", "BatchMode=yes", entry, remote],
                stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
            )
        fleet.add(proc)
    return fleet
