"""JSON-over-HTTP wire helpers shared by coordinator and worker.

The protocol is deliberately tiny — five endpoints, JSON bodies, no
dependencies beyond :mod:`urllib` — because the hard guarantees
(determinism, idempotent completion, lease expiry) live in
:mod:`repro.dist.queue` and the stores, not in the transport.

Endpoints (all responses are JSON objects):

========  ======  ==============================================------
path      method  body -> response
========  ======  ==============================================------
/config   GET     -> grid descriptor: platform, faults key, eval-store
                  snapshot, per-cell (index, p, n, budget), lease_ttl,
                  batch
/lease    POST    {worker, max_cells} -> {lease, cells, finished}
/renew    POST    {worker, lease, done, total, label} -> {ok, finished}
/complete POST    {worker, lease, cells: [{index, cell, evals, hits}],
                  wisdom, host, metrics, spans} -> {accepted, finished}
/fail     POST    {worker, lease, failures: [{index, label, cause,
                  attempts, timed_out}]} -> {accepted, finished}
/status   GET     -> queue counters, lease ages, per-worker heartbeat
                  lag, completion rate + ETA
/healthz  GET     -> liveness/readiness probe (no auth; 200 ready /
                  503 finished-or-draining); also on the plan server
/metrics  GET     -> Prometheus text exposition (fleet-wide registry:
                  coordinator counters + merged worker deltas); fetch
                  with :func:`fetch_text`, not :func:`call`
========  ======  ==============================================------

``/complete``'s ``host``/``metrics``/``spans`` fields are additive
telemetry (metric deltas and trace spans, see DESIGN.md §5.12): the
coordinator merges them when present and old workers that omit them
still speak the same protocol version.

Auth: when a server is started with a token (``DistConfig.token`` /
``ServeConfig.token``), every request must carry
``Authorization: Bearer <token>`` or be rejected with 401; both
:func:`call` and :func:`fetch_text` attach it via their ``token``
argument.  With no token configured the header is neither sent nor
checked — existing fleets keep working unchanged.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Callable

from ..errors import DistProtocolError, DistUnreachableError
from ..obs.registry import count as _count_metric

#: bumped on incompatible wire changes; both sides check it
PROTOCOL_VERSION = 1

#: retry backoff shape: exponential with full-range cap, then jitter
BACKOFF_FACTOR = 2.0
MAX_BACKOFF_S = 5.0

#: jitter source for retry backoff.  Module-level and *not* seeded from
#: anything deterministic on purpose: the whole point of jitter is that
#: a fleet of clients knocked over by one coordinator restart does not
#: come back in lockstep.  Tests monkeypatch this for determinism.
_jitter = random.Random()


def _backoff_delay(attempt: int, base: float) -> float:
    """Delay before retry ``attempt`` (0-based): exponential growth
    capped at :data:`MAX_BACKOFF_S`, scaled by a uniform jitter in
    ``[0.5, 1.0)`` so synchronized clients desynchronize."""
    raw = min(base * (BACKOFF_FACTOR ** attempt), MAX_BACKOFF_S)
    return raw * (0.5 + _jitter.random() * 0.5)


def encode(payload: dict) -> bytes:
    return json.dumps(payload).encode("utf-8")


def decode(raw: bytes) -> dict:
    try:
        obj = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise DistProtocolError(f"malformed JSON body: {exc}") from exc
    if not isinstance(obj, dict):
        raise DistProtocolError(
            f"expected a JSON object, got {type(obj).__name__}"
        )
    return obj


def _headers(token: str | None) -> dict[str, str]:
    """Request headers, with the bearer token when one is in play."""
    headers = {"Content-Type": "application/json"}
    if token:
        headers["Authorization"] = f"Bearer {token}"
    return headers


def fetch_text(
    base_url: str,
    path: str,
    timeout: float = 10.0,
    token: str | None = None,
    retries: int = 0,
    backoff_s: float = 0.2,
    sleep: Callable[[float], None] = time.sleep,
) -> str:
    """One GET for a plain-text endpoint (``/metrics``).

    ``retries`` defaults to 0: the usual callers are pollers
    (``repro top``, benchmark probes) that have their own cadence and
    treat a miss as "coordinator gone".  Callers that *do* want to ride
    out a restart blip pass ``retries > 0`` and get the same jittered
    exponential backoff as :func:`call` (transient ``URLError``/5xx
    only; 4xx rejections raise immediately).
    """
    url = base_url.rstrip("/") + path
    last: Exception | None = None
    for attempt in range(retries + 1):
        req = urllib.request.Request(url, headers=_headers(token))
        try:
            with urllib.request.urlopen(req, timeout=timeout) as resp:
                return resp.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            if exc.code < 500:
                raise DistProtocolError(
                    f"{path} rejected ({exc.code}): {exc.reason}"
                ) from exc
            last = exc
        except (urllib.error.URLError, ConnectionError, TimeoutError,
                OSError) as exc:
            last = exc
        if attempt < retries:
            _count_metric("proto_retries_total",
                          help="Transport-level protocol retries.")
            sleep(_backoff_delay(attempt, backoff_s))
    raise DistUnreachableError(
        f"coordinator unreachable at {url}: {last}"
    ) from last


def call(
    base_url: str,
    path: str,
    payload: dict | None = None,
    timeout: float = 10.0,
    retries: int = 3,
    backoff_s: float = 0.2,
    sleep: Callable[[float], None] = time.sleep,
    token: str | None = None,
    with_status: bool = False,
) -> dict:
    """One request against the coordinator; GET when ``payload`` is None.

    Transport-level failures (connection refused mid-restart, dropped
    sockets, 5xx) are retried with **jittered exponential backoff**
    (see :func:`_backoff_delay`) — the coordinator's endpoints are
    idempotent, so a retried request is always safe, and the jitter
    keeps a fleet of clients knocked over by one restart from
    stampeding back in lockstep.  Each retry is counted on the current
    metrics registry as ``proto_retries_total``.  Exhausting the budget
    raises :class:`~repro.errors.DistUnreachableError` (a
    :class:`~repro.errors.DistProtocolError` subclass); protocol-level
    rejections (4xx with a JSON ``error``) raise
    :class:`~repro.errors.DistProtocolError` immediately, no retry.

    With ``with_status=True`` returns ``(status_code, body)`` instead of
    just the body — the plan server distinguishes 200 (warm hit) from
    202 (job enqueued) and its clients need to see which they got.
    """
    url = base_url.rstrip("/") + path
    body = None if payload is None else encode(payload)
    last: Exception | None = None
    for attempt in range(retries + 1):
        req = urllib.request.Request(
            url,
            data=body,
            method="GET" if body is None else "POST",
            headers=_headers(token),
        )
        try:
            with urllib.request.urlopen(req, timeout=timeout) as resp:
                out = decode(resp.read())
                return (resp.status, out) if with_status else out
        except urllib.error.HTTPError as exc:
            detail = ""
            try:
                detail = decode(exc.read()).get("error", "")
            except Exception:
                pass
            if exc.code < 500:
                raise DistProtocolError(
                    f"{path} rejected ({exc.code}): {detail or exc.reason}"
                ) from exc
            last = exc
        except (urllib.error.URLError, ConnectionError, TimeoutError, OSError) as exc:
            last = exc
        if attempt < retries:
            _count_metric("proto_retries_total",
                          help="Transport-level protocol retries.")
            sleep(_backoff_delay(attempt, backoff_s))
    raise DistUnreachableError(
        f"coordinator unreachable at {url} after {retries + 1} attempt(s): {last}"
    ) from last
