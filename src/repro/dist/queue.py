"""In-memory lease queue over a fixed set of work indices.

The coordinator owns one :class:`WorkQueue` per grid.  Cells are
identified by their **input index** into the grid's ``todo`` list — the
same index :func:`~repro.exec.parallel_map` merges results by — and move
through ``pending -> leased -> done | failed``.  Leases expire when a
worker stops renewing them (:meth:`WorkQueue.expire` requeues their
cells), and completion is **idempotent first-wins**: a slow twin of a
requeued cell finishing later is recorded as a duplicate, not a second
result.  All methods are thread-safe (HTTP handler threads call in
concurrently); the clock is injectable so expiry is testable without
wall-clock waits.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Callable

PENDING = "pending"
LEASED = "leased"
DONE = "done"
FAILED = "failed"


class WorkQueue:
    """Lease bookkeeping for ``total`` work items."""

    def __init__(
        self,
        total: int,
        lease_ttl: float = 15.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.total = total
        self.lease_ttl = lease_ttl
        self.clock = clock
        self._lock = threading.Lock()
        self._state = [PENDING] * total
        #: lease id -> {"worker": str, "indices": set[int], "expires": float}
        self._leases: dict[str, dict] = {}
        self._seq = itertools.count(1)
        # counters (exported via /status and the obs tracer)
        self.leases_granted = 0
        self.requeues = 0
        self.completions = 0
        self.duplicates = 0

    # -- granting ----------------------------------------------------------

    def lease(self, worker: str, max_cells: int = 1) -> tuple[str, list[int]]:
        """Grant up to ``max_cells`` pending indices (lowest first).

        Returns ``(lease_id, indices)``; ``("", [])`` when nothing is
        pending right now (the worker should poll again unless
        :attr:`finished`).
        """
        with self._lock:
            grant = [
                i for i in range(self.total) if self._state[i] == PENDING
            ][: max(1, max_cells)]
            if not grant:
                return "", []
            lease_id = f"L{next(self._seq)}"
            now = self.clock()
            for i in grant:
                self._state[i] = LEASED
            self._leases[lease_id] = {
                "worker": worker,
                "indices": set(grant),
                "granted": now,
                "expires": now + self.lease_ttl,
            }
            self.leases_granted += 1
            return lease_id, grant

    def renew(self, lease_id: str) -> bool:
        """Push a lease's expiry out by one TTL; False if the lease is
        gone (expired and requeued, or fully completed)."""
        with self._lock:
            lease = self._leases.get(lease_id)
            if lease is None:
                return False
            lease["expires"] = self.clock() + self.lease_ttl
            return True

    # -- outcomes ----------------------------------------------------------

    def _release(self, index: int) -> None:
        """Drop ``index`` from whatever lease holds it (lock held)."""
        for lease_id, lease in list(self._leases.items()):
            lease["indices"].discard(index)
            if not lease["indices"]:
                del self._leases[lease_id]

    def complete(self, index: int) -> bool:
        """Mark ``index`` done; first-wins.  Returns False (and counts a
        duplicate) when the index already reached a terminal state —
        completions are accepted from expired or foreign leases, because
        the result of a deterministic cell is the same wherever it ran.
        """
        with self._lock:
            if self._state[index] in (DONE, FAILED):
                self.duplicates += 1
                return False
            self._state[index] = DONE
            self.completions += 1
            self._release(index)
            return True

    def fail(self, index: int) -> bool:
        """Mark ``index`` failed for good (the worker already exhausted
        its :class:`~repro.exec.ExecPolicy` retries); first-wins."""
        with self._lock:
            if self._state[index] in (DONE, FAILED):
                self.duplicates += 1
                return False
            self._state[index] = FAILED
            self._release(index)
            return True

    def expire(self) -> list[int]:
        """Requeue every cell held by a lease past its TTL.

        Returns the requeued indices (a dead worker's abandoned cells —
        the next :meth:`lease` hands them out again).
        """
        now = self.clock()
        requeued: list[int] = []
        with self._lock:
            for lease_id, lease in list(self._leases.items()):
                if lease["expires"] > now:
                    continue
                for i in sorted(lease["indices"]):
                    if self._state[i] == LEASED:
                        self._state[i] = PENDING
                        requeued.append(i)
                del self._leases[lease_id]
            self.requeues += len(requeued)
        return sorted(requeued)

    # -- introspection -----------------------------------------------------

    def lease_ages(self) -> list[float]:
        """Seconds each active lease has been outstanding (grant to
        now), sorted descending — the ``/status`` staleness view: an
        age creeping toward the TTL means a worker stopped renewing."""
        now = self.clock()
        with self._lock:
            ages = [now - lease["granted"] for lease in self._leases.values()]
        return sorted(ages, reverse=True)

    def counts(self) -> dict[str, int]:
        with self._lock:
            done = self._state.count(DONE)
            failed = self._state.count(FAILED)
            return {
                "total": self.total,
                "done": done,
                "failed": failed,
                "pending": self._state.count(PENDING),
                "leased": self._state.count(LEASED),
                "leases": self.leases_granted,
                "requeues": self.requeues,
                "duplicates": self.duplicates,
            }

    @property
    def finished(self) -> bool:
        """Every index reached a terminal state (done or failed)."""
        with self._lock:
            return all(s in (DONE, FAILED) for s in self._state)
