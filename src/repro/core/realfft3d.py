"""Distributed real-to-complex 3-D FFT.

Section 2.3 of the paper: "There are special techniques that can
transform real numbers to complex numbers faster than the complex-to-
complex transform.  Our methods for computation-communication overlap
[are] also applicable to the techniques for the real-to-complex
transform."  This module is that application: the z-axis FFT becomes an
r2c transform (via the packed half-length trick in
:mod:`repro.fft.realfft`), producing ``Nz//2 + 1`` half-spectrum planes;
everything downstream — Transpose, the tiled overlapped exchange, FFTy,
FFTx — runs the unchanged complex pipeline on the reduced z extent, so
both the computation on z and the *entire communication volume* are
nearly halved.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..fft.realfft import RealPlan1D
from ..machine.platforms import Platform
from ..simmpi.comm import SimContext
from ..simmpi.spmd import run_spmd
from .decompose import gather_spectrum, scatter_slabs
from .params import ProblemShape, TuningParams, default_params
from .plan import ParallelFFT3D
from .variants import NEW, VariantSpec


def rfft_z_cost(cpu, nz: int, batch: int) -> float:
    """Seconds for ``batch`` r2c transforms of length ``nz``: one
    half-length complex FFT plus O(n) unpacking."""
    half = max(nz // 2, 1)
    return cpu.fft_time(half, batch) + 8.0 * half * batch / cpu.flops


class ParallelRFFT3D:
    """Per-rank plan: real ``(nxl, ny, nz)`` block in, half spectrum out.

    The output block is the complex pipeline's output for the reduced
    shape ``(nx, ny, nz//2 + 1)`` — layout ``zyx``/``yzx`` as usual.
    """

    def __init__(
        self,
        ctx: SimContext,
        shape: ProblemShape,
        params: TuningParams | None = None,
        spec: VariantSpec = NEW,
    ) -> None:
        if shape.nz % 2 != 0:
            raise ParameterError(
                f"real transform needs even Nz, got {shape.nz}"
            )
        self.ctx = ctx
        self.shape = shape
        self.nzh = shape.nz // 2 + 1
        self.half_shape = ProblemShape(shape.nx, shape.ny, self.nzh, shape.p)
        if params is None:
            params = default_params(self.half_shape)
        else:
            # Clamp tile extents to the reduced z extent.
            params = params.replace(
                T=min(params.T, self.nzh),
                Pz=min(params.Pz, min(params.T, self.nzh)),
                Uz=min(params.Uz, min(params.T, self.nzh)),
            )
        self.inner = ParallelFFT3D(
            ctx, self.half_shape, params, spec, fftz_mode="none"
        )
        self._rplan: RealPlan1D | None = None

    @property
    def output_layout(self) -> str:
        """Output block layout: ``"zyx"`` or ``"yzx"``."""
        return self.inner.output_layout

    def execute(self, local: np.ndarray | None = None) -> np.ndarray | None:
        """r2c transform of the local block (or virtual timing run)."""
        return self.ctx.drive(self.steps(local))

    def steps(self, local: np.ndarray | None = None):
        """The r2c transform as a coroutine (``yield from`` in SPMD
        generators)."""
        ctx = self.ctx
        dec = self.inner.dec
        ny, nz = self.shape.ny, self.shape.nz
        half = None
        if local is not None:
            expected = (dec.nxl, ny, nz)
            if tuple(local.shape) != expected:
                raise ParameterError(
                    f"expected real local block {expected}, got {tuple(local.shape)}"
                )
            if self._rplan is None:
                self._rplan = RealPlan1D(nz)
            half = self._rplan.rfft(np.asarray(local, dtype=np.float64))
        ctx.compute(rfft_z_cost(ctx.cpu, nz, dec.nxl * ny), "FFTz")
        return (yield from self.inner.steps(half))


def parallel_rfft3d(
    array: np.ndarray,
    p: int,
    platform: Platform,
    params: TuningParams | None = None,
    variant: VariantSpec = NEW,
):
    """Forward r2c transform of a real 3-D array on ``p`` simulated
    ranks; returns ``(half_spectrum, SimResult)`` with the half spectrum
    matching ``numpy.fft.rfftn(array)``."""
    arr = np.asarray(array, dtype=np.float64)
    if arr.ndim != 3:
        raise ParameterError(f"expected a 3-D array, got shape {arr.shape}")
    nx, ny, nz = arr.shape
    shape = ProblemShape(nx, ny, nz, p)
    blocks = scatter_slabs(arr, p)

    def prog(ctx):
        plan = ParallelRFFT3D(ctx, shape, params, variant)
        out = yield from plan.steps(blocks[ctx.rank])
        return out, plan.output_layout

    sim = run_spmd(p, prog, platform)
    outs = [o for (o, _l) in sim.results]
    layout = sim.results[0][1]
    spectrum = gather_spectrum(outs, (nx, ny, nz // 2 + 1), layout)
    return spectrum, sim


def r2c_comm_savings(nz: int) -> float:
    """Fraction of c2c communication volume the r2c pipeline ships."""
    return (nz // 2 + 1) / nz
