"""2-D (pencil) domain decomposition — the paper's future-work extension.

Section 7: "we intend to apply our overlap method to the 2-D domain
decomposition technique.  If successful, we could achieve high
scalability with many computing cores..."  This module provides that
substrate: a pencil-decomposed parallel 3-D FFT over a ``pr x pc``
process grid, built on the same simulated MPI (sub-communicators via
``split``) and machine models.  Unlike the 1-D method it needs *two*
all-to-all stages (Section 2.2's trade-off), but scales to ``N^2`` ranks
instead of ``N``.

The exchange stages run either blocking or with the window/progression
overlap machinery applied to the second (x-gathering) exchange, tiled
along z — a direct transplant of the 1-D method's Algorithm 1.

Like :class:`~repro.core.plan.ParallelFFT3D`, the pipeline is written in
the ``co_*`` coroutine spelling (:meth:`PencilFFT3D.steps`), so a
generator SPMD program runs it on the fast tasks backend with
``yield from``; :meth:`PencilFFT3D.execute` drives the same generator on
the thread backend via ``ctx.drive`` — bit-identical either way.  The
row/column sub-communicators are created lazily by the first step (a
``split`` is collective, and the tasks backend needs its coroutine
form), not in ``__init__``.
"""

from __future__ import annotations

import numpy as np

from ..errors import DecompositionError, ParameterError
from ..fft.plan import Plan1D
from ..simmpi.comm import SimContext
from .decompose import slab_counts, slab_range
from .packing import ITEMSIZE


def choose_grid(p: int) -> tuple[int, int]:
    """Most-square ``pr x pc`` factorization of ``p``."""
    best = (1, p)
    for pr in range(1, int(p**0.5) + 1):
        if p % pr == 0:
            best = (pr, p // pr)
    return best


class PencilFFT3D:
    """Per-rank plan for a pencil-decomposed forward 3-D FFT.

    Ranks form a ``pr x pc`` grid in row-major order; rank ``(r, c)``
    initially owns x-slab ``r`` crossed with y-slab ``c`` (z complete).
    The output block is full-x with y re-split over ``pr`` and z split
    over ``pc`` — retrievable globally via :meth:`gather_spectrum`.
    """

    def __init__(
        self,
        ctx: SimContext,
        shape: tuple[int, int, int],
        grid: tuple[int, int] | None = None,
    ) -> None:
        self.ctx = ctx
        self.world = ctx.comm
        self.nx, self.ny, self.nz = shape
        p = self.world.size
        self.pr, self.pc = grid if grid is not None else choose_grid(p)
        if self.pr * self.pc != p:
            raise DecompositionError(
                f"grid {self.pr}x{self.pc} does not match {p} ranks"
            )
        if self.pr > min(self.nx, self.ny) or self.pc > min(self.ny, self.nz):
            raise DecompositionError(
                f"grid {self.pr}x{self.pc} too large for shape {shape}"
            )
        self.r, self.c = divmod(self.world.rank, self.pc)
        # Sub-communicators are created collectively by the first
        # pipeline step (see _co_connect); eager splits here would make
        # plain construction impossible inside generator SPMD programs.
        self.row_comm = None
        self.col_comm = None
        # Slab tables for the three distribution stages.
        self.x_counts = slab_counts(self.nx, self.pr)
        self.y_counts = slab_counts(self.ny, self.pc)
        self.z_counts = slab_counts(self.nz, self.pc)
        self.y2_counts = slab_counts(self.ny, self.pr)
        self.nxl = self.x_counts[self.r]
        self.nyl = self.y_counts[self.c]
        self.nzl = self.z_counts[self.c]
        self.ny2l = self.y2_counts[self.r]
        self._plans: dict[int, Plan1D] = {}

    def _plan(self, n: int) -> Plan1D:
        if n not in self._plans:
            self._plans[n] = Plan1D(n)
        return self._plans[n]

    # -- cost helpers ---------------------------------------------------------

    def _fft_cost(self, n: int, batch: int) -> float:
        return self.ctx.cpu.fft_time(n, batch)

    def _copy_cost(self, elems: int) -> float:
        return self.ctx.cpu.copy_time(elems * ITEMSIZE, resident=False)

    # -- execution ----------------------------------------------------------

    def _co_connect(self):
        """Create the row/column sub-communicators (collective, once).

        Row communicator: same ``r``, ranks across ``c`` (first
        exchange).  Column communicator: same ``c``, ranks across ``r``
        (second exchange).
        """
        if self.row_comm is None:
            self.row_comm = yield from self.world.co_split(
                color=self.r, key=self.c
            )
            self.col_comm = yield from self.world.co_split(
                color=self.pr + self.c, key=self.r
            )

    def execute(self, local: np.ndarray | None = None) -> np.ndarray | None:
        """Blocking spelling of :meth:`steps` (thread backend)."""
        return self.ctx.drive(self.steps(local))

    def steps(self, local: np.ndarray | None = None):
        """Run the transform as a ``co_*`` coroutine (``yield from`` it
        in a generator SPMD program).  ``local`` is the rank's
        ``(nxl, nyl, nz)`` block (real mode) or ``None`` (virtual)."""
        real = local is not None
        if real and tuple(local.shape) != (self.nxl, self.nyl, self.nz):
            raise ParameterError(
                f"expected local block {(self.nxl, self.nyl, self.nz)}, "
                f"got {tuple(local.shape)}"
            )
        ctx = self.ctx
        yield from self._co_connect()

        # ---- FFTz ------------------------------------------------------
        data = None
        if real:
            data = self._plan(self.nz).execute(local, axis=2)
        ctx.compute(self._fft_cost(self.nz, self.nxl * self.nyl), "FFTz")

        # ---- exchange A (row comm): make y complete, split z -------------
        send_a = [
            self.nxl * self.nyl * nz_d * ITEMSIZE for nz_d in self.z_counts
        ]
        recv_a = [
            self.nxl * nyl_s * self.nzl * ITEMSIZE for nyl_s in self.y_counts
        ]
        payload_a = None
        if real:
            if self.nz % self.pc == 0:
                # Uniform slabs: one whole-block copy instead of pc
                # strided ascontiguousarray calls; each payload entry is
                # a contiguous view into the packed buffer (identical
                # elements, same per-destination shapes).
                nzb = self.nz // self.pc
                packed = np.ascontiguousarray(
                    data.reshape(self.nxl, self.nyl, self.pc, nzb)
                    .transpose(2, 0, 1, 3)
                )
                payload_a = list(packed)
            else:
                payload_a = []
                for d in range(self.pc):
                    z0, z1 = slab_range(self.nz, self.pc, d)
                    payload_a.append(np.ascontiguousarray(data[:, :, z0:z1]))
        ctx.compute(self._copy_cost(self.nxl * self.nyl * self.nz), "Pack")
        chunks_a = yield from self.row_comm.co_alltoall(
            send_a, recv_a, payload=payload_a
        )
        local1 = None
        if real:
            # Sources arrive in y order, so assembly is one concatenate.
            local1 = np.concatenate(chunks_a, axis=1)
        ctx.compute(self._copy_cost(self.nxl * self.ny * self.nzl), "Unpack")

        # ---- FFTy -----------------------------------------------------------
        if real:
            local1 = self._plan(self.ny).execute(local1, axis=1)
        ctx.compute(self._fft_cost(self.ny, self.nxl * self.nzl), "FFTy")

        # ---- exchange B (col comm): make x complete, re-split y -----------
        send_b = [
            self.nxl * ny2_d * self.nzl * ITEMSIZE for ny2_d in self.y2_counts
        ]
        recv_b = [
            nxl_s * self.ny2l * self.nzl * ITEMSIZE for nxl_s in self.x_counts
        ]
        payload_b = None
        if real:
            if self.ny % self.pr == 0:
                nyb = self.ny // self.pr
                packed = np.ascontiguousarray(
                    local1.reshape(self.nxl, self.pr, nyb, self.nzl)
                    .transpose(1, 0, 2, 3)
                )
                payload_b = list(packed)
            else:
                payload_b = []
                for d in range(self.pr):
                    y0, y1 = slab_range(self.ny, self.pr, d)
                    payload_b.append(
                        np.ascontiguousarray(local1[:, y0:y1, :])
                    )
        ctx.compute(self._copy_cost(self.nxl * self.ny * self.nzl), "Pack")
        chunks_b = yield from self.col_comm.co_alltoall(
            send_b, recv_b, payload=payload_b
        )
        local2 = None
        if real:
            # Sources arrive in x order: assembly is one concatenate.
            local2 = np.concatenate(chunks_b, axis=0)
        ctx.compute(self._copy_cost(self.nx * self.ny2l * self.nzl), "Unpack")

        # ---- FFTx --------------------------------------------------------
        if real:
            local2 = self._plan(self.nx).execute(local2, axis=0)
        ctx.compute(self._fft_cost(self.nx, self.ny2l * self.nzl), "FFTx")
        return local2


def scatter_pencils(
    global_array: np.ndarray, pr: int, pc: int
) -> list[np.ndarray]:
    """Split a global array into per-rank pencil blocks (row-major grid)."""
    arr = np.asarray(global_array)
    out = []
    for r in range(pr):
        x0, x1 = slab_range(arr.shape[0], pr, r)
        for c in range(pc):
            y0, y1 = slab_range(arr.shape[1], pc, c)
            out.append(np.ascontiguousarray(arr[x0:x1, y0:y1, :]))
    return out


def gather_spectrum(
    outputs: list[np.ndarray], shape: tuple[int, int, int], pr: int, pc: int
) -> np.ndarray:
    """Reassemble pencil outputs into ``F[kx, ky, kz]``."""
    nx, ny, nz = shape
    full = np.empty(shape, dtype=np.complex128)
    for r in range(pr):
        y0, y1 = slab_range(ny, pr, r)
        for c in range(pc):
            z0, z1 = slab_range(nz, pc, c)
            full[:, y0:y1, z0:z1] = outputs[r * pc + c]
    return full


def parallel_fft3d_pencil(
    array: np.ndarray,
    p: int,
    platform,
    grid: tuple[int, int] | None = None,
):
    """Convenience wrapper: pencil-decomposed forward FFT of ``array``.

    Returns ``(spectrum, SimResult)``.
    """
    from ..simmpi.spmd import run_spmd

    arr = np.asarray(array, dtype=np.complex128)
    if arr.ndim != 3:
        raise ParameterError(f"expected a 3-D array, got shape {arr.shape}")
    pr, pc = grid if grid is not None else choose_grid(p)
    blocks = scatter_pencils(arr, pr, pc)

    def prog(ctx):
        # Generator SPMD program: auto-selects the fast tasks backend.
        plan = PencilFFT3D(ctx, arr.shape, (pr, pc))
        return (yield from plan.steps(blocks[ctx.rank]))

    sim = run_spmd(p, prog, platform)
    spectrum = gather_spectrum(sim.results, arr.shape, pr, pc)
    return spectrum, sim
