"""Multi-array 3-D FFT: inter-array vs intra-array overlap.

The paper contrasts its *intra-array* overlap with Kandalla et al.'s
*inter-array* approach — overlapping the computation on one input array
with the communication for other, independent arrays — and names
combining both as future work (Sections 6-7).  This module implements
the whole spectrum so the comparison is runnable:

``sequential``
    the FFTW-style blocking pipeline per array, one array at a time;
``inter``
    Kandalla-style: each array is one exchange; array ``i``'s computation
    progresses array ``i-1``'s non-blocking all-to-all.  Useless when
    there is only one array — the paper's core criticism;
``intra``
    the paper's NEW applied to each array in turn;
``both``
    NEW's tile pipeline with the window carried *across* array
    boundaries, plus progression during the next array's FFTz/Transpose
    — the paper's "both intra-array and inter-array overlap" goal.

All modes share the machine-model costs of :class:`ParallelFFT3D`; real
payloads are supported (each array verified against numpy in the tests).

Like the single-array pipelines, the executor is written in the ``co_*``
coroutine spelling (:meth:`MultiArrayFFT3D.steps`), so a generator SPMD
program runs every mode on the fast tasks backend; :meth:`execute`
drives the same generator on the thread backend — bit-identical either
way (``tests/core/test_multiarray.py::TestBackendBitIdentity``).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..errors import ParameterError
from ..simmpi.comm import SimContext
from ..simmpi.request import AlltoallRequest
from .params import ProblemShape, TuningParams, default_params
from .plan import ParallelFFT3D
from .variants import FFTW_BASELINE, NEW

MODES = ("sequential", "inter", "intra", "both")


class MultiArrayFFT3D:
    """Per-rank executor for ``n_arrays`` successive/independent FFTs."""

    def __init__(
        self,
        ctx: SimContext,
        shape: ProblemShape,
        n_arrays: int,
        mode: str = "both",
        params: TuningParams | None = None,
    ) -> None:
        if mode not in MODES:
            raise ParameterError(f"mode must be one of {MODES}, got {mode!r}")
        if n_arrays < 1:
            raise ParameterError(f"need at least one array, got {n_arrays}")
        self.ctx = ctx
        self.shape = shape
        self.n_arrays = n_arrays
        self.mode = mode
        if params is None:
            params = default_params(shape)
        self.params = params
        spec = FFTW_BASELINE if mode in ("sequential", "inter") else NEW
        if mode == "inter":
            # One exchange per array, posted non-blocking.
            params = params.replace(T=shape.nz)
        self.plans = [
            ParallelFFT3D(ctx, shape, params, spec) for _ in range(n_arrays)
        ]

    # -- execution -------------------------------------------------------

    def execute(
        self, locals_: list[np.ndarray] | None = None
    ) -> list[np.ndarray] | None:
        """Blocking spelling of :meth:`steps` (thread backend)."""
        return self.ctx.drive(self.steps(locals_))

    def steps(self, locals_: list[np.ndarray] | None = None):
        """Transform all arrays as a ``co_*`` coroutine; returns per-array
        local outputs (real mode) or ``None``.  ``yield from`` it in a
        generator SPMD program — bit-identical to :meth:`execute`."""
        if locals_ is not None and len(locals_) != self.n_arrays:
            raise ParameterError(
                f"expected {self.n_arrays} local blocks, got {len(locals_)}"
            )
        if self.mode in ("sequential", "intra"):
            # NEW plans overlap inside each array.
            return (yield from self._co_sequential(locals_))
        if self.mode == "inter":
            return (yield from self._co_inter(locals_))
        return (yield from self._co_both(locals_))

    def _co_sequential(self, locals_):
        outs = []
        for a, plan in enumerate(self.plans):
            out = yield from plan.steps(
                None if locals_ is None else locals_[a]
            )
            outs.append(out)
        return None if locals_ is None else outs

    # -- inter-array (Kandalla-style) --------------------------------------

    def _co_inter(self, locals_):
        """Whole-slab exchanges pipelined across arrays with depth 1."""
        ctx, shape = self.ctx, self.shape
        plans = self.plans
        p = self.params
        outs: list[Any] = [None] * self.n_arrays
        pending: list[tuple[int, AlltoallRequest, Any]] = []
        data: list[Any] = [None] * self.n_arrays
        chunks: list[Any] = [None] * self.n_arrays

        def active_reqs():
            return [req for (_a, req, _rc) in pending]

        def tests(budget):
            live = active_reqs()
            if not live or budget <= 0:
                return []
            share, extra = divmod(budget, len(live))
            return [
                (r, share + (1 if i < extra else 0))
                for i, r in enumerate(live)
            ]

        for a, plan in enumerate(plans):
            local = None if locals_ is None else locals_[a]
            nz = shape.nz
            # FFTz + Transpose with progression on the in-flight array.
            if local is not None:
                from ..fft.transpose import xyz_to_xzy, xyz_to_zxy

                d = plan._plan("z", nz).execute(local, axis=2)
                d = xyz_to_xzy(d) if plan.use_fast_transpose else xyz_to_zxy(d)
                data[a] = d
            ctx.compute_with_progress(
                ctx.cpu.fft_time(nz, plan.dec.nxl * shape.ny),
                tests(p.Fy), "FFTz",
            )
            kind = "xzy" if plan.use_fast_transpose else plan.spec.transpose_kind
            ctx.compute_with_progress(
                ctx.cpu.transpose_time(plan._tile_bytes(nz), kind),
                tests(p.Fy), "Transpose",
            )
            # FFTy + Pack on the whole slab.
            self._whole_slab_ffty_pack(plan, a, data, chunks, tests(p.Fy))
            # Drain the previous array's exchange, then post this one.
            if pending:
                pa, preq, _ = pending.pop(0)
                recv = yield from ctx.comm.co_wait(preq, label="Wait")
                outs[pa] = self._whole_slab_unpack_fftx(
                    plans[pa], recv, tests(p.Fu)
                )
            req = ctx.comm.ialltoall(
                plan.dec.sendcounts_bytes(nz),
                plan.dec.recvcounts_bytes(nz),
                payload=chunks[a],
            )
            chunks[a] = None
            pending.append((a, req, None))
        # Tail: drain the last exchange.
        while pending:
            pa, preq, _ = pending.pop(0)
            recv = yield from ctx.comm.co_wait(preq, label="Wait")
            outs[pa] = self._whole_slab_unpack_fftx(plans[pa], recv, [])
        return None if locals_ is None else outs

    def _whole_slab_ffty_pack(self, plan, a, data, chunks, test_list):
        shape, ctx = self.shape, self.ctx
        nz = shape.nz
        ctx.compute_with_progress(plan._ffty_time(nz), test_list, "FFTy")
        if data[a] is not None:
            from .packing import ffty_pack_real

            yplan = plan._plan("y", shape.ny)
            chunks[a] = ffty_pack_real(
                data[a] if plan.tile_layout == "zxy" else data[a],
                lambda arr: yplan.execute(arr, axis=-1),
                plan.dec.y_counts,
                plan.params.Px, min(plan.params.Pz, nz),
                plan.tile_layout,
            )
            data[a] = None
        ctx.compute_with_progress(plan._pack_time(nz), test_list, "Pack")

    def _whole_slab_unpack_fftx(self, plan, recv, test_list):
        shape, ctx = self.shape, self.ctx
        nz = shape.nz
        ctx.compute_with_progress(plan._unpack_time(nz), test_list, "Unpack")
        out = None
        if recv is not None and recv[0] is not None:
            from .packing import unpack_fftx_real

            xplan = plan._plan("x", shape.nx)
            out = unpack_fftx_real(
                recv,
                lambda arr: xplan.execute(arr, axis=-1),
                plan.dec.x_counts,
                plan.dec.nyl,
                plan.params.Uy, min(plan.params.Uz, nz),
                plan.output_layout,
            )
        ctx.compute_with_progress(plan._fftx_time(nz), test_list, "FFTx")
        return out

    # -- combined intra + inter -------------------------------------------

    def _co_both(self, locals_):
        """NEW's tile pipeline with the window carried across arrays.

        Arrays are processed back to back; the last ``W`` exchanges of
        array ``a`` keep progressing through array ``a+1``'s FFTz,
        Transpose, and early tiles, so no window drain happens at array
        boundaries (the paper's §7 combination).
        """
        ctx = self.ctx
        p = self.params
        outs: list[Any] = [None] * self.n_arrays
        # Global pending window across arrays: (array, tile_idx, req).
        window: list[tuple[int, int, AlltoallRequest]] = []
        per_array_data: list[Any] = [None] * self.n_arrays
        per_array_out: list[Any] = [None] * self.n_arrays

        def reqs():
            return [r for (_a, _j, r) in window]

        def drain_one():
            a, j, req = window.pop(0)
            recv = yield from ctx.comm.co_wait(req, label="Wait")
            plan = self.plans[a]
            self._tile_unpack_fftx(plan, a, j, recv, per_array_out, reqs())

        for a, plan in enumerate(self.plans):
            local = None if locals_ is None else locals_[a]
            per_array_data[a] = self._fixed_steps(plan, local, reqs())
            if local is not None:
                per_array_out[a] = plan._alloc_output()
            for j in range(len(plan.tiles)):
                chunks = self._tile_ffty_pack(
                    plan, a, j, per_array_data, reqs()
                )
                if len(window) >= max(p.W, 1):
                    yield from drain_one()
                z0, z1 = plan.tiles[j]
                req = ctx.comm.ialltoall(
                    plan.dec.sendcounts_bytes(z1 - z0),
                    plan.dec.recvcounts_bytes(z1 - z0),
                    payload=chunks,
                )
                window.append((a, j, req))
            per_array_data[a] = None
        while window:
            yield from drain_one()
        if locals_ is None:
            return None
        return per_array_out

    def _fixed_steps(self, plan, local, active):
        ctx, shape = self.ctx, self.shape
        p = self.params
        data = None
        if local is not None:
            from ..fft.transpose import xyz_to_xzy, xyz_to_zxy

            data = plan._plan("z", shape.nz).execute(local, axis=2)
            data = xyz_to_xzy(data) if plan.use_fast_transpose else xyz_to_zxy(data)
        share = [(r, max(1, p.Fy // max(len(active), 1))) for r in active]
        ctx.compute_with_progress(
            ctx.cpu.fft_time(shape.nz, plan.dec.nxl * shape.ny), share, "FFTz"
        )
        kind = "xzy" if plan.use_fast_transpose else plan.spec.transpose_kind
        ctx.compute_with_progress(
            ctx.cpu.transpose_time(plan._tile_bytes(shape.nz), kind),
            share, "Transpose",
        )
        return data

    def _tile_ffty_pack(self, plan, a, j, data, active):
        ctx = self.ctx
        p = self.params
        z0, z1 = plan.tiles[j]
        tz = z1 - z0
        tests = ParallelFFT3D._share_tests(list(active), p.Fy)
        ctx.compute_with_progress(plan._ffty_time(tz), tests, "FFTy")
        chunks = None
        if data[a] is not None:
            from .packing import ffty_pack_real

            yplan = plan._plan("y", self.shape.ny)
            chunks = ffty_pack_real(
                plan._tile_view(j, data[a]),
                lambda arr: yplan.execute(arr, axis=-1),
                plan.dec.y_counts,
                p.Px, p.Pz,
                plan.tile_layout,
            )
        tests = ParallelFFT3D._share_tests(active, p.Fp)
        ctx.compute_with_progress(plan._pack_time(tz), tests, "Pack")
        return chunks

    def _tile_unpack_fftx(self, plan, a, j, recv, outs, active):
        ctx = self.ctx
        p = self.params
        z0, z1 = plan.tiles[j]
        tz = z1 - z0
        tests = ParallelFFT3D._share_tests(active, p.Fu)
        ctx.compute_with_progress(plan._unpack_time(tz), tests, "Unpack")
        if outs[a] is not None and recv is not None and recv[0] is not None:
            from .packing import unpack_fftx_real

            xplan = plan._plan("x", self.shape.nx)
            tile_out = unpack_fftx_real(
                recv,
                lambda arr: xplan.execute(arr, axis=-1),
                plan.dec.x_counts,
                plan.dec.nyl,
                p.Uy, p.Uz,
                plan.output_layout,
            )
            if plan.output_layout == "zyx":
                outs[a][z0:z1] = tile_out
            else:
                outs[a][:, z0:z1, :] = tile_out
        tests = ParallelFFT3D._share_tests(active, p.Fx)
        ctx.compute_with_progress(plan._fftx_time(tz), tests, "FFTx")


def run_multi_array(
    platform,
    shape: ProblemShape,
    n_arrays: int,
    mode: str,
    params: TuningParams | None = None,
    global_arrays: list[np.ndarray] | None = None,
):
    """SPMD driver: returns ``(SimResult, spectra | None)``."""
    from ..simmpi.spmd import run_spmd
    from .decompose import gather_spectrum, scatter_slabs

    blocks = None
    if global_arrays is not None:
        blocks = [scatter_slabs(a, shape.p) for a in global_arrays]

    def prog(ctx):
        # Generator SPMD program: auto-selects the fast tasks backend.
        exe = MultiArrayFFT3D(ctx, shape, n_arrays, mode, params)
        locals_ = (
            None if blocks is None else [blocks[a][ctx.rank] for a in range(n_arrays)]
        )
        outs = yield from exe.steps(locals_)
        layout = exe.plans[0].output_layout
        return outs, layout

    sim = run_spmd(shape.p, prog, platform)
    spectra = None
    if global_arrays is not None:
        layout = sim.results[0][1]
        spectra = []
        for a in range(n_arrays):
            outs = [res[0][a] for res in sim.results]
            spectra.append(
                gather_spectrum(outs, (shape.nx, shape.ny, shape.nz), layout)
            )
    return sim, spectra
