"""The parallel 3-D FFT pipeline (Section 3, Algorithms 1-3).

:class:`ParallelFFT3D` is the per-rank plan an SPMD function builds and
executes.  One code path serves every compared method — the
:class:`~repro.core.variants.VariantSpec` decides whether the exchange is
non-blocking, which steps progress it, and whether Pack/Unpack are loop-
tiled — and serves both payload modes:

* **real**: the local slab is an actual complex array; every step does
  the numpy work and the final result is the true distributed FFT
  (verified against ``numpy.fft.fftn`` in the tests);
* **virtual**: only byte counts flow; the control flow, communication
  and virtual-time accounting are identical, which is what makes the
  paper's 2048-cubed / 256-rank cases simulatable.

Step labels traced to the engine ("FFTz", "Transpose", "FFTy", "Pack",
"Unpack", "FFTx", "Ialltoall", "Wait", "Test") are exactly the Figure 8
legend.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..errors import ParameterError
from ..fft.plan import Plan1D
from ..fft.transpose import xyz_to_xzy, xyz_to_zxy
from ..machine.cpu import CpuModel
from ..simmpi.comm import SimContext
from ..simmpi.request import AlltoallRequest
from .decompose import Decomposition
from .packing import (
    ITEMSIZE,
    ffty_pack_real,
    pack_cost,
    unpack_cost,
    unpack_fftx_real,
    untiled_copy_cost,
)
from .params import ProblemShape, TuningParams
from .variants import NEW, VariantSpec


class ParallelFFT3D:
    """Per-rank plan for one distributed forward 3-D FFT."""

    def __init__(
        self,
        ctx: SimContext,
        shape: ProblemShape,
        params: TuningParams,
        spec: VariantSpec = NEW,
        include_fixed_steps: bool = True,
        fftz_mode: str = "complex",
    ) -> None:
        """``fftz_mode``: ``"complex"`` runs the standard FFTz step;
        ``"none"`` assumes the caller already transformed z (used by the
        real-to-complex front end, which replaces FFTz with an r2c
        transform and hands this plan the half-spectrum planes)."""
        if fftz_mode not in ("complex", "none"):
            raise ParameterError(f"bad fftz_mode {fftz_mode!r}")
        if shape.p != ctx.comm.size:
            raise ParameterError(
                f"shape expects p={shape.p}, communicator has {ctx.comm.size}"
            )
        self.ctx = ctx
        self.comm = ctx.comm
        self.cpu: CpuModel = ctx.cpu
        self.shape = shape
        self.spec = spec
        self.fftz_mode = fftz_mode
        self.params = spec.effective_params(params, shape)
        if spec.overlap:
            self.params.check_feasible(shape)
        self.include_fixed_steps = include_fixed_steps
        self.dec = Decomposition(shape.nx, shape.ny, shape.nz, shape.p, ctx.comm.rank)
        #: fast x-z-y Transpose is legal only when Nx == Ny (Section 3.5)
        self.use_fast_transpose = spec.fast_transpose and shape.nx == shape.ny
        self.tile_layout = "xzy" if self.use_fast_transpose else "zxy"
        #: output layout: y-z-x under the fast path, z-y-x otherwise
        self.output_layout = "yzx" if self.use_fast_transpose else "zyx"
        self.tiles = self.dec.tile_ranges(self.params.T)
        self._plans: dict[str, Plan1D] = {}
        #: tracing active for this run? (checked once; per-tile attr
        #: dicts are only built when a repro.obs tracer is installed)
        self._obs = ctx.engine.tracer is not None
        #: tz -> (ffty, pack, unpack, fftx) step seconds; every tile but
        #: the last shares one tz, so the cost model runs twice per plan
        #: instead of four times per tile
        self._phase_cache: dict[int, tuple[float, float, float, float]] = {}
        #: requests posted but not yet waited on (FIFO), replacing the
        #: per-call O(tiles) scan the test-budget split used to do
        self._live: list[AlltoallRequest] = []

    # -- lazily planned 1-D kernels (real mode only) -----------------------

    def _plan(self, axis: str, n: int) -> Plan1D:
        if axis not in self._plans:
            self._plans[axis] = Plan1D(n)
        return self._plans[axis]

    # -- cost helpers ---------------------------------------------------------

    def _tile_bytes(self, tz: int) -> int:
        return tz * self.dec.nxl * self.shape.ny * ITEMSIZE

    def _ffty_time(self, tz: int) -> float:
        return self.cpu.fft_time(self.shape.ny, self.dec.nxl * tz)

    def _pack_time(self, tz: int) -> float:
        if self.spec.tiled_pack:
            return pack_cost(
                self.cpu, self.dec.nxl, self.shape.ny, tz,
                self.params.Px, self.params.Pz,
            )
        return untiled_copy_cost(self.cpu, self._tile_bytes(tz))

    def _unpack_time(self, tz: int) -> float:
        if self.spec.tiled_pack:
            return unpack_cost(
                self.cpu, self.shape.nx, self.dec.nyl, tz,
                self.params.Uy, self.params.Uz,
            )
        return untiled_copy_cost(
            self.cpu, tz * self.dec.nyl * self.shape.nx * ITEMSIZE
        )

    def _fftx_time(self, tz: int) -> float:
        t = self.cpu.fft_time(self.shape.nx, tz * self.dec.nyl)
        if not self.spec.tiled_pack:
            # Untiled Unpack leaves nothing cache-resident, so FFTx
            # re-streams the tile from memory (TH's larger FFTx bar in
            # Figure 8).
            t += self.cpu.copy_time(
                tz * self.dec.nyl * self.shape.nx * ITEMSIZE, resident=False
            )
        return t

    def _phase_times(self, tz: int) -> tuple[float, float, float, float]:
        """Cached (FFTy, Pack, Unpack, FFTx) step times for one tile size."""
        cached = self._phase_cache.get(tz)
        if cached is None:
            cached = (
                self._ffty_time(tz),
                self._pack_time(tz),
                self._unpack_time(tz),
                self._fftx_time(tz),
            )
            self._phase_cache[tz] = cached
        return cached

    # -- test-call budgeting -----------------------------------------------

    @staticmethod
    def _share_tests(
        reqs: list[AlltoallRequest], total: int
    ) -> list[tuple[AlltoallRequest, int]]:
        """Spread a phase's test budget over the active window, the way
        Algorithms 2-3 call MPI_Test "on W previous/next tiles F times in
        total"."""
        live = [r for r in reqs if r is not None and not r.consumed]
        if not live or total <= 0:
            return []
        n = len(live)
        base, extra = divmod(total, n)
        return [(r, base + (1 if i < extra else 0)) for i, r in enumerate(live)]

    # -- execution ---------------------------------------------------------------

    def execute(self, local: np.ndarray | None = None) -> np.ndarray | None:
        """Run the transform; returns the local output block (real mode)
        in :attr:`output_layout` order, or ``None`` (virtual mode).

        Thread-backend facade over :meth:`steps`; generator SPMD
        programs should ``yield from plan.steps(local)`` instead so the
        engine can run them on the no-threads ``tasks`` backend."""
        return self.ctx.drive(self.steps(local))

    def steps(self, local: np.ndarray | None = None):
        """The transform as a coroutine (``yield from`` in SPMD generators)."""
        real = local is not None
        dec, ctx, P = self.dec, self.ctx, self.params
        nx, ny, nz = self.shape.nx, self.shape.ny, self.shape.nz

        data: np.ndarray | None = None
        if real:
            expected = (dec.nxl, ny, nz)
            if tuple(local.shape) != expected:
                raise ParameterError(
                    f"rank {self.comm.rank} expected local block {expected}, "
                    f"got {tuple(local.shape)}"
                )
            if self.include_fixed_steps is False:
                raise ParameterError(
                    "real payload requires the fixed steps (FFTz/Transpose)"
                )

        # ---- FFTz + Transpose (parameter-independent; skippable while
        # tuning — Section 4.4, technique 3) --------------------------------
        if self.include_fixed_steps:
            if self.fftz_mode == "complex":
                if real:
                    data = self._plan("z", nz).execute(local, axis=2)
                ctx.compute(self.cpu.fft_time(nz, dec.nxl * ny), "FFTz")
            elif real:
                data = np.asarray(local, dtype=np.complex128)
            kind = "xzy" if self.use_fast_transpose else self.spec.transpose_kind
            if real:
                data = (
                    xyz_to_xzy(data) if self.use_fast_transpose else xyz_to_zxy(data)
                )
            ctx.compute(
                self.cpu.transpose_time(self._tile_bytes(nz), kind), "Transpose"
            )

        # ---- tiled exchange pipeline (Algorithm 1) ---------------------------
        k = len(self.tiles)
        out = self._alloc_output() if real else None
        reqs: list[AlltoallRequest | None] = [None] * k
        recv: list[Any] = [None] * k
        chunks: list[Any] = [None] * k

        live = self._live = []  # posted-but-unwaited window, FIFO
        fast = not real and not self._obs
        if fast:
            # Virtual-mode hot loop: the per-tile helper methods below
            # reduce to phase advances + post/wait once there is no
            # payload and no tracer, so they are inlined here with the
            # loop-invariant lookups hoisted.  Identical label sequence,
            # budgets and request traffic as the helper path (the
            # backend-equivalence and pipeline tests pin this).
            pps = ctx.progress_phases
            ialltoall = self.comm.ialltoall
            co_wait = self.comm.co_wait
            # At most two distinct tile heights (full tiles + remainder),
            # so resolve times, count vectors, and the two fused phase
            # batches (FFTy+Pack before the post, Unpack+FFTx after the
            # wait) once per height up front.
            by_tz: dict[int, tuple] = {}
            info = []
            for z0, z1 in self.tiles:
                tz = z1 - z0
                entry = by_tz.get(tz)
                if entry is None:
                    t_ffty, t_pack, t_unpack, t_fftx = self._phase_times(tz)
                    entry = (
                        ((t_ffty, P.Fy, "FFTy"), (t_pack, P.Fp, "Pack")),
                        ((t_unpack, P.Fu, "Unpack"), (t_fftx, P.Fx, "FFTx")),
                        self.dec.sendcounts_bytes(tz),
                        self.dec.recvcounts_bytes(tz),
                    )
                    by_tz[tz] = entry
                info.append(entry)
            if self.spec.overlap and P.W > 0:
                w = min(P.W, k)
                for i in range(k + w):
                    if i < k:
                        pre, _, send, recvc = info[i]
                        pps(pre, live)
                    if i >= w:
                        recv[i - w] = yield from co_wait(reqs[i - w], label="Wait")
                        live.pop(0)  # waits retire the window head in order
                    if i < k:
                        reqs[i] = req = ialltoall(send, recvc)
                        live.append(req)
                    if i >= w:
                        pps(info[i - w][1], live)
            else:
                for i in range(k):
                    pre, post_, send, recvc = info[i]
                    pps(pre, live)
                    reqs[i] = req = ialltoall(send, recvc)
                    live.append(req)
                    recv[i] = yield from co_wait(req, label="Wait")
                    live.pop(0)
                    pps(post_, live)
            return None

        if self.spec.overlap and P.W > 0:
            w = min(P.W, k)
            for i in range(k + w):
                if i < k:
                    self._ffty_pack(i, data, chunks, reqs)
                if i >= w:
                    recv[i - w] = yield from self.comm.co_wait(
                        reqs[i - w], label="Wait"
                    )
                    live.pop(0)  # waits retire the window head in order
                if i < k:
                    self._post(i, chunks, reqs)
                if i >= w:
                    self._unpack_fftx(i - w, recv, reqs, out if real else None)
        else:
            for i in range(k):
                self._ffty_pack(i, data, chunks, reqs)
                self._post(i, chunks, reqs)
                recv[i] = yield from self.comm.co_wait(reqs[i], label="Wait")
                live.pop(0)
                self._unpack_fftx(i, recv, reqs, out if real else None)

        return out if real else None

    # -- pipeline stages -----------------------------------------------------

    def _tile_view(self, i: int, data: np.ndarray) -> np.ndarray:
        z0, z1 = self.tiles[i]
        if self.tile_layout == "zxy":
            return data[z0:z1]
        return data[:, z0:z1, :]

    def _ffty_pack(self, i, data, chunks, reqs) -> None:
        z0, z1 = self.tiles[i]
        tz = z1 - z0
        P = self.params
        t_ffty, t_pack, _, _ = self._phase_times(tz)
        a = {"tile": i, "tz": tz, "bytes": self._tile_bytes(tz)} if self._obs else None
        self.ctx.progress_phase(t_ffty, self._live, P.Fy, "FFTy", attrs=a)
        if data is not None:
            plan = self._plan("y", self.shape.ny)
            chunks[i] = ffty_pack_real(
                self._tile_view(i, data),
                lambda a: plan.execute(a, axis=-1),
                self.dec.y_counts,
                P.Px if self.spec.tiled_pack else self.dec.nxl,
                P.Pz if self.spec.tiled_pack else tz,
                self.tile_layout,
            )
        self.ctx.progress_phase(t_pack, self._live, P.Fp, "Pack", attrs=a)

    def _post(self, i, chunks, reqs) -> None:
        z0, z1 = self.tiles[i]
        tz = z1 - z0
        reqs[i] = req = self.comm.ialltoall(
            self.dec.sendcounts_bytes(tz),
            self.dec.recvcounts_bytes(tz),
            payload=chunks[i],
        )
        self._live.append(req)
        chunks[i] = None  # buffer handed to the library

    def _unpack_fftx(self, j, recv, reqs, out) -> None:
        z0, z1 = self.tiles[j]
        tz = z1 - z0
        P = self.params
        _, _, t_unpack, t_fftx = self._phase_times(tz)
        a = None
        if self._obs:
            a = {"tile": j, "tz": tz,
                 "bytes": tz * self.dec.nyl * self.shape.nx * ITEMSIZE}
        self.ctx.progress_phase(t_unpack, self._live, P.Fu, "Unpack", attrs=a)
        if out is not None:
            plan = self._plan("x", self.shape.nx)
            tile_out = unpack_fftx_real(
                recv[j],
                lambda a: plan.execute(a, axis=-1),
                self.dec.x_counts,
                self.dec.nyl,
                P.Uy if self.spec.tiled_pack else self.dec.nyl,
                P.Uz if self.spec.tiled_pack else tz,
                self.output_layout,
            )
            if self.output_layout == "zyx":
                out[z0:z1] = tile_out
            else:
                out[:, z0:z1, :] = tile_out
        recv[j] = None
        self.ctx.progress_phase(t_fftx, self._live, P.Fx, "FFTx", attrs=a)

    def _alloc_output(self) -> np.ndarray:
        if self.output_layout == "zyx":
            return np.empty(
                (self.shape.nz, self.dec.nyl, self.shape.nx), dtype=np.complex128
            )
        return np.empty(
            (self.dec.nyl, self.shape.nz, self.shape.nx), dtype=np.complex128
        )
