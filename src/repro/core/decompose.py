"""1-D (slab) domain decomposition (Section 2.2 of the paper).

The input array is divided along x before the exchange and along y after
it.  Division handles the general, non-divisible case (the paper's code
does too, §2.3): the first ``N mod p`` ranks get one extra plane.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DecompositionError


def slab_counts(n: int, p: int) -> list[int]:
    """Extent of each rank's slab when ``n`` planes split over ``p`` ranks."""
    if p < 1 or n < p:
        raise DecompositionError(f"cannot split {n} planes over {p} ranks")
    base, extra = divmod(n, p)
    return [base + (1 if r < extra else 0) for r in range(p)]


def slab_starts(n: int, p: int) -> list[int]:
    """Global index of the first plane of each rank's slab."""
    counts = slab_counts(n, p)
    starts = [0] * p
    for r in range(1, p):
        starts[r] = starts[r - 1] + counts[r - 1]
    return starts


def slab_range(n: int, p: int, rank: int) -> tuple[int, int]:
    """``(start, stop)`` global plane range owned by ``rank``."""
    counts = slab_counts(n, p)
    start = sum(counts[:rank])
    return start, start + counts[rank]


@dataclass
class Decomposition:
    """Per-rank view of the 1-D decomposition of an ``(nx, ny, nz)`` array.

    Slab tables are computed once at construction: pipeline cost helpers
    consult them on every tile, so they must be O(1) reads.
    """

    nx: int
    ny: int
    nz: int
    p: int
    rank: int

    def __post_init__(self) -> None:
        self.x_counts: list[int] = slab_counts(self.nx, self.p)
        self.y_counts: list[int] = slab_counts(self.ny, self.p)
        #: local x extent before the exchange
        self.nxl: int = self.x_counts[self.rank]
        #: local y extent after the exchange
        self.nyl: int = self.y_counts[self.rank]
        self.x_range: tuple[int, int] = slab_range(self.nx, self.p, self.rank)
        self.y_range: tuple[int, int] = slab_range(self.ny, self.p, self.rank)
        self._send_cache: dict[tuple[int, int], np.ndarray] = {}
        self._recv_cache: dict[tuple[int, int], np.ndarray] = {}

    def tile_ranges(self, tile_size: int) -> list[tuple[int, int]]:
        """Communication-tile z ranges (Algorithm 1, line 3)."""
        if tile_size < 1:
            raise DecompositionError(f"tile size must be >= 1, got {tile_size}")
        return [
            (z0, min(z0 + tile_size, self.nz))
            for z0 in range(0, self.nz, tile_size)
        ]

    def sendcounts_bytes(self, tz: int, itemsize: int = 16) -> np.ndarray:
        """Bytes this rank sends to each peer for a tile of thickness ``tz``:
        its own x-slab crossed with each destination's y-slab.  Memoized —
        a pipeline asks for the same one or two thicknesses per tile."""
        key = (tz, itemsize)
        cached = self._send_cache.get(key)
        if cached is None:
            cached = np.array(
                [tz * self.nxl * nyl_d * itemsize for nyl_d in self.y_counts],
                dtype=np.int64,
            )
            self._send_cache[key] = cached
        return cached

    def recvcounts_bytes(self, tz: int, itemsize: int = 16) -> np.ndarray:
        """Bytes this rank receives from each peer for one tile (memoized)."""
        key = (tz, itemsize)
        cached = self._recv_cache.get(key)
        if cached is None:
            cached = np.array(
                [tz * nxl_s * self.nyl * itemsize for nxl_s in self.x_counts],
                dtype=np.int64,
            )
            self._recv_cache[key] = cached
        return cached


def scatter_slabs(global_array: np.ndarray, p: int) -> list[np.ndarray]:
    """Split a global ``(Nx, Ny, Nz)`` array into per-rank x-slabs."""
    arr = np.asarray(global_array)
    if arr.ndim != 3:
        raise DecompositionError(f"expected a 3-D array, got shape {arr.shape}")
    out = []
    for r in range(p):
        x0, x1 = slab_range(arr.shape[0], p, r)
        out.append(np.ascontiguousarray(arr[x0:x1]))
    return out


def gather_spectrum(
    outputs: list[np.ndarray], shape: tuple[int, int, int], layout: str
) -> np.ndarray:
    """Reassemble per-rank pipeline outputs into the full spectrum
    ``F[kx, ky, kz]`` (comparable with ``numpy.fft.fftn``).

    ``layout`` is the pipeline's output layout: ``"zyx"`` for the general
    path, ``"yzx"`` for the Nx==Ny fast-transpose path (Section 3.5).
    """
    nx, ny, nz = shape
    p = len(outputs)
    full = np.empty(shape, dtype=np.complex128)
    for r, out in enumerate(outputs):
        y0, y1 = slab_range(ny, p, r)
        if layout == "zyx":
            # out[z, y_local, x] -> full[x, y, z]
            full[:, y0:y1, :] = out.transpose(2, 1, 0)
        elif layout == "yzx":
            # out[y_local, z, x] -> full[x, y, z]
            full[:, y0:y1, :] = out.transpose(2, 0, 1)
        else:
            raise DecompositionError(f"unknown output layout {layout!r}")
    return full
