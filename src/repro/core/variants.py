"""The compared 3-D FFT methods (Section 5.1's FFTW / NEW / TH and the
non-overlapped NEW-0 / TH-0 used in the Figure 8 breakdowns).

A :class:`VariantSpec` captures *how* a method runs the seven-step
procedure; the shared pipeline in :mod:`repro.core.plan` interprets it:

``NEW``
    the paper's method — MPI_Ialltoall per tile, window of W concurrent
    exchanges, manual progression during *all four* overlappable steps,
    tiled Pack/Unpack, FFTW-guru-quality Transpose with the Nx==Ny fast
    path.
``NEW-0``
    NEW with overlap disabled (blocking per-tile exchange, F*=0); the
    paper uses it as the no-overlap reference in Figure 8 and notes FFTW
    "should be similar to NEW-0".
``TH``
    Hoefler et al.'s kernel as the paper evaluates it: overlap *only*
    during FFTy and Pack, one shared Test frequency, untiled Pack/Unpack,
    plain transpose, no Nx==Ny fast path.  Three tunable parameters
    (T, W, F).
``TH-0``
    TH without overlap.
``FFTW``
    the classic 1-D-decomposition procedure of Section 2.2: one blocking
    all-to-all for the whole slab, no tiles, no overlap, well-optimized
    local computation.
"""

from __future__ import annotations

from dataclasses import dataclass

from .params import PARAM_NAMES, ProblemShape, TuningParams, default_params


@dataclass(frozen=True)
class VariantSpec:
    """Behavioral switches interpreted by the pipeline."""

    name: str
    overlap: bool            # non-blocking exchange + window
    overlap_unpack: bool     # progress communication during Unpack/FFTx
    tiled_pack: bool         # loop tiling of Pack/Unpack (Section 3.4)
    fast_transpose: bool     # x-z-y Transpose when Nx == Ny (Section 3.5)
    transpose_kind: str      # cost class of the general Transpose
    single_tile: bool = False  # whole slab as one tile (FFTW baseline)
    tunable: tuple[str, ...] = PARAM_NAMES

    def effective_params(
        self, params: TuningParams, shape: ProblemShape
    ) -> TuningParams:
        """Normalize a configuration for this variant.

        Non-overlapping variants zero the window and test frequencies;
        the FFTW baseline additionally collapses to a single slab-sized
        tile.  TH shares one test frequency across its two overlapped
        steps and never tests during Unpack/FFTx.
        """
        if self.single_tile:
            params = params.replace(T=shape.nz, Pz=min(params.Pz, shape.nz),
                                    Uz=min(params.Uz, shape.nz))
        if not self.overlap:
            params = params.replace(W=0, Fy=0, Fp=0, Fu=0, Fx=0)
        elif not self.overlap_unpack:
            params = params.replace(Fu=0, Fx=0)
        return params


NEW = VariantSpec(
    name="NEW",
    overlap=True,
    overlap_unpack=True,
    tiled_pack=True,
    fast_transpose=True,
    transpose_kind="zxy",
)

NEW0 = VariantSpec(
    name="NEW-0",
    overlap=False,
    overlap_unpack=False,
    tiled_pack=True,
    fast_transpose=True,
    transpose_kind="zxy",
)

TH = VariantSpec(
    name="TH",
    overlap=True,
    overlap_unpack=False,
    tiled_pack=False,
    fast_transpose=False,
    transpose_kind="naive",
    tunable=("T", "W", "Fy"),
)

TH0 = VariantSpec(
    name="TH-0",
    overlap=False,
    overlap_unpack=False,
    tiled_pack=False,
    fast_transpose=False,
    transpose_kind="naive",
)

FFTW_BASELINE = VariantSpec(
    name="FFTW",
    overlap=False,
    overlap_unpack=False,
    tiled_pack=True,
    fast_transpose=True,
    transpose_kind="zxy",
    single_tile=True,
    tunable=(),
)

VARIANTS: dict[str, VariantSpec] = {
    v.name: v for v in (NEW, NEW0, TH, TH0, FFTW_BASELINE)
}


def get_variant(name: str) -> VariantSpec:
    """Look up a variant by its paper name (case-insensitive)."""
    for key, spec in VARIANTS.items():
        if key.lower() == name.lower():
            return spec
    raise KeyError(f"unknown variant {name!r}; known: {sorted(VARIANTS)}")


def baseline_params(spec: VariantSpec, shape: ProblemShape,
                    cache_bytes: int = 256 * 1024) -> TuningParams:
    """Sensible untuned configuration for a variant (the FFTW baseline
    always runs with this; tunable variants use it as a starting point)."""
    params = default_params(shape, cache_bytes)
    if spec.name == "TH":
        # TH couples its single F to both overlapped phases.
        params = params.replace(Fu=0, Fx=0, Fp=params.Fy)
    return spec.effective_params(params, shape)
