"""The paper's contribution: overlapped, auto-tunable parallel 3-D FFT.

Public surface: problem/parameter types, the per-rank pipeline plan, the
compared variants, and the array-level convenience API.
"""

from .api import BREAKDOWN_LABELS, RunResult, parallel_fft3d, parallel_ifft3d, run_case
from .decompose import Decomposition, gather_spectrum, scatter_slabs
from .multiarray import MultiArrayFFT3D, run_multi_array
from .pencil import PencilFFT3D, parallel_fft3d_pencil
from .realfft3d import ParallelRFFT3D, parallel_rfft3d
from .params import PARAM_NAMES, ProblemShape, TuningParams, default_params
from .plan import ParallelFFT3D
from .variants import (
    FFTW_BASELINE,
    NEW,
    NEW0,
    TH,
    TH0,
    VARIANTS,
    VariantSpec,
    baseline_params,
    get_variant,
)

__all__ = [
    "BREAKDOWN_LABELS",
    "Decomposition",
    "FFTW_BASELINE",
    "MultiArrayFFT3D",
    "NEW",
    "NEW0",
    "PARAM_NAMES",
    "ParallelFFT3D",
    "ParallelRFFT3D",
    "PencilFFT3D",
    "ProblemShape",
    "RunResult",
    "TH",
    "TH0",
    "TuningParams",
    "VARIANTS",
    "VariantSpec",
    "baseline_params",
    "default_params",
    "gather_spectrum",
    "get_variant",
    "parallel_fft3d",
    "parallel_fft3d_pencil",
    "parallel_ifft3d",
    "parallel_rfft3d",
    "run_multi_array",
    "run_case",
    "scatter_slabs",
]
