"""Pack/Unpack with loop tiling (Section 3.4, Algorithms 2-3).

Each communication tile is processed in *sub-tiles*: FFTy runs on a
``Px x Ny x Pz`` block and Pack immediately scatters that block into the
per-destination send chunks while it is still cache-resident; Unpack
writes a ``Nx x Uy x Uz`` block into the output layout and FFTx consumes
it likewise.  Two things live here:

* the *real* data movement (numpy) used in real-payload mode, and
* closed-form cost functions charging the machine model — grouped by
  sub-tile size class so simulator cost is O(1) per tile, not O(#sub-
  tiles), which keeps huge parameter sweeps cheap.

Chunk wire format: the message from rank s to rank d for one tile is a
``(tz, nxl_s, nyl_d)`` complex array in z-x-y order, independent of the
transpose variant in use — both ends agree by construction.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..machine.cpu import CpuModel
from ..util.intmath import iter_blocks

ITEMSIZE = 16  # complex128


def subtile_classes(
    total_a: int, block_a: int, total_b: int, block_b: int
) -> list[tuple[int, int, int]]:
    """Group the 2-D sub-tile grid by size: ``(count, a_extent, b_extent)``.

    A ``total_a x total_b`` region cut into ``block_a x block_b`` blocks
    yields at most four distinct block shapes (interior, two edges, one
    corner); costs are per-class so the model never loops over blocks.
    """
    if block_a < 1 or block_b < 1:
        raise ParameterError(f"sub-tile extents must be >= 1, got {block_a}x{block_b}")
    fa, ra = divmod(total_a, block_a)
    fb, rb = divmod(total_b, block_b)
    classes = []
    if fa and fb:
        classes.append((fa * fb, block_a, block_b))
    if fa and rb:
        classes.append((fa, block_a, rb))
    if ra and fb:
        classes.append((fb, ra, block_b))
    if ra and rb:
        classes.append((1, ra, rb))
    return classes


# --------------------------------------------------------------------------
# cost model
# --------------------------------------------------------------------------


def pack_cost(
    cpu: CpuModel, nxl: int, ny: int, tz: int, px: int, pz: int
) -> float:
    """Seconds for the Pack half of Algorithm 2 on one tile.

    Working set per sub-tile is ``px * ny * pz`` elements (the block FFTy
    just produced); residency against the private cache decides the copy
    bandwidth, and every sub-tile pays the fixed loop overhead.
    """
    total = 0.0
    for count, bx, bz in subtile_classes(nxl, px, tz, pz):
        ws = bx * ny * bz * ITEMSIZE
        total += count * cpu.pack_subtile_time(ws)
    return total


def unpack_cost(
    cpu: CpuModel, nx: int, nyl: int, tz: int, uy: int, uz: int
) -> float:
    """Seconds for the Unpack half of Algorithm 3 on one tile
    (sub-tiles span the full x extent: ``nx * uy * uz`` elements)."""
    total = 0.0
    for count, by, bz in subtile_classes(nyl, uy, tz, uz):
        ws = nx * by * bz * ITEMSIZE
        total += count * cpu.pack_subtile_time(ws)
    return total


def untiled_copy_cost(cpu: CpuModel, nbytes: int) -> float:
    """Whole-tile copy with no tiling (the TH baseline): always
    memory-bound, single loop iteration."""
    return cpu.copy_time(nbytes, resident=False) + cpu.loop_overhead


# ----------------------------------------------------------------------------
# real data movement
# ----------------------------------------------------------------------------


def ffty_pack_real(
    tile: np.ndarray,
    ffty,
    y_counts: list[int],
    px: int,
    pz: int,
    layout: str,
) -> list[np.ndarray]:
    """FFTy + Pack one tile (Algorithm 2), returning per-dest chunks.

    ``tile`` is the communication tile in the post-Transpose layout:
    ``(tz, nxl, ny)`` for ``"zxy"`` or ``(nxl, tz, ny)`` for ``"xzy"``.
    ``ffty`` is a callable transforming the last axis.

    The ``ffty`` call pattern (one call per ``px`` x ``pz`` sub-tile) is
    kept exactly as in the blocked reference — the FFT kernels are not
    bitwise batch-independent, so changing the call shapes would move
    results by ULPs.  What is vectorized is the scatter: blocks land in
    a whole-tile staging buffer (one write per block instead of one per
    block per destination), and each destination's chunk is then carved
    out with a single whole-tile strided copy.  Element-identity with
    the blocked reference is pinned by tests/core/test_packing_vector.py.
    """
    if layout == "zxy":
        tz, nxl, ny = tile.shape
    elif layout == "xzy":
        nxl, tz, ny = tile.shape
    else:
        raise ParameterError(f"unknown tile layout {layout!r}")
    if sum(y_counts) != ny:
        raise ParameterError("y_counts must sum to the tile's y extent")
    staging = np.empty((tz, nxl, ny), dtype=np.complex128)
    for x0, x1 in iter_blocks(nxl, px):
        for z0, z1 in iter_blocks(tz, pz):
            if layout == "zxy":
                staging[z0:z1, x0:x1, :] = ffty(tile[z0:z1, x0:x1, :])
            else:
                # x-z-y tile: bring the block to (z, x, y) chunk order.
                staging[z0:z1, x0:x1, :] = ffty(
                    tile[x0:x1, z0:z1, :]
                ).transpose(1, 0, 2)
    chunks = []
    ys = 0
    for nyl_d in y_counts:
        chunk = np.empty((tz, nxl, nyl_d), dtype=np.complex128)
        chunk[...] = staging[:, :, ys : ys + nyl_d]
        chunks.append(chunk)
        ys += nyl_d
    return chunks


def ffty_pack_real_subtiled(
    tile: np.ndarray,
    ffty,
    y_counts: list[int],
    px: int,
    pz: int,
    layout: str,
) -> list[np.ndarray]:
    """Blocked reference implementation of :func:`ffty_pack_real`.

    Walks ``px`` x ``pz`` sub-tiles the way Algorithm 2 does on real
    hardware; kept as the oracle the vectorized mover is compared
    against (and as executable documentation of the loop structure the
    cost model charges).
    """
    if layout == "zxy":
        tz, nxl, ny = tile.shape
    elif layout == "xzy":
        nxl, tz, ny = tile.shape
    else:
        raise ParameterError(f"unknown tile layout {layout!r}")
    if sum(y_counts) != ny:
        raise ParameterError("y_counts must sum to the tile's y extent")
    chunks = [
        np.empty((tz, nxl, nyl_d), dtype=np.complex128) for nyl_d in y_counts
    ]
    y_starts = np.concatenate([[0], np.cumsum(y_counts)])
    for x0, x1 in iter_blocks(nxl, px):
        for z0, z1 in iter_blocks(tz, pz):
            if layout == "zxy":
                block = ffty(tile[z0:z1, x0:x1, :])
            else:
                # x-z-y tile: bring the block to (z, x, y) chunk order.
                block = ffty(tile[x0:x1, z0:z1, :]).transpose(1, 0, 2)
            for d, nyl_d in enumerate(y_counts):
                ys = y_starts[d]
                chunks[d][z0:z1, x0:x1, :] = block[:, :, ys : ys + nyl_d]
    return chunks


def unpack_fftx_real(
    chunks: list[np.ndarray],
    fftx,
    x_counts: list[int],
    nyl: int,
    uy: int,
    uz: int,
    layout: str,
) -> np.ndarray:
    """Unpack + FFTx one tile (Algorithm 3), returning the output tile.

    ``chunks[s]`` is the ``(tz, nxl_s, nyl)`` message from source ``s``.
    The output tile is ``(tz, nyl, nx)`` in z-y-x order for ``"zyx"`` or
    ``(nyl, tz, nx)`` in y-z-x order for ``"yzx"`` (the Nx==Ny variant);
    either way x is contiguous for FFTx.

    As with :func:`ffty_pack_real`, the ``uy`` x ``uz`` sub-tile walk is
    a cost-model concern (:func:`unpack_cost`); the mover assembles each
    source's x-slice with one whole-tile strided copy instead (same
    elements, pinned by tests/core/test_packing_vector.py).
    """
    del uy, uz  # blocking factors shape the cost model, not the data
    nx = sum(x_counts)
    tz = chunks[0].shape[0]
    if layout == "zyx":
        out = np.empty((tz, nyl, nx), dtype=np.complex128)
    elif layout == "yzx":
        out = np.empty((nyl, tz, nx), dtype=np.complex128)
    else:
        raise ParameterError(f"unknown output layout {layout!r}")
    xs = 0
    for s, nxl_s in enumerate(x_counts):
        # chunk (z, x, y) -> output order, one strided copy per source.
        blk = chunks[s]
        if layout == "zyx":
            out[:, :, xs : xs + nxl_s] = blk.transpose(0, 2, 1)
        else:
            out[:, :, xs : xs + nxl_s] = blk.transpose(2, 0, 1)
        xs += nxl_s
    return fftx(out)


def unpack_fftx_real_subtiled(
    chunks: list[np.ndarray],
    fftx,
    x_counts: list[int],
    nyl: int,
    uy: int,
    uz: int,
    layout: str,
) -> np.ndarray:
    """Blocked reference implementation of :func:`unpack_fftx_real`
    (the Algorithm 3 sub-tile walk; oracle for the vectorized mover)."""
    nx = sum(x_counts)
    tz = chunks[0].shape[0]
    if layout == "zyx":
        out = np.empty((tz, nyl, nx), dtype=np.complex128)
    elif layout == "yzx":
        out = np.empty((nyl, tz, nx), dtype=np.complex128)
    else:
        raise ParameterError(f"unknown output layout {layout!r}")
    x_starts = np.concatenate([[0], np.cumsum(x_counts)])
    for y0, y1 in iter_blocks(nyl, uy):
        for z0, z1 in iter_blocks(tz, uz):
            for s, nxl_s in enumerate(x_counts):
                xs = x_starts[s]
                # chunk block (z, x, y) -> output order.
                blk = chunks[s][z0:z1, :, y0:y1]
                if layout == "zyx":
                    out[z0:z1, y0:y1, xs : xs + nxl_s] = blk.transpose(0, 2, 1)
                else:
                    out[y0:y1, z0:z1, xs : xs + nxl_s] = blk.transpose(2, 0, 1)
    return fftx(out)
