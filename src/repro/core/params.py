"""The paper's ten tunable parameters (Table 1) and their constraints.

``T``  — elements on z per communication tile (tile size)
``W``  — max tiles with concurrent all-to-all (window size)
``Px/Pz`` — Pack sub-tile extents on x/z (Algorithm 2, Figure 4 left)
``Uy/Uz`` — Unpack sub-tile extents on y/z (Algorithm 3, Figure 4 right)
``Fy/Fp/Fu/Fx`` — MPI_Test calls per tile during FFTy/Pack/Unpack/FFTx

Feasibility is *dependent*: e.g. ``Pz <= T``.  The Nelder-Mead search
works in an independent hyperrectangle and relies on
:meth:`TuningParams.check_feasible` raising
:class:`~repro.errors.InfeasibleConfigError` so the tuner can report an
infinite objective without running (Section 4.4, technique 1).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from ..errors import InfeasibleConfigError, ParameterError
from ..util.intmath import ceil_div, clamp

#: Upper bound used for the window-size search range: the paper notes
#: "there are few possible values for W", so W is searched linearly.
W_MAX = 8

PARAM_NAMES = ("T", "W", "Px", "Pz", "Uy", "Uz", "Fy", "Fp", "Fu", "Fx")


@dataclass(frozen=True)
class ProblemShape:
    """The tuning context: global array extents and process count."""

    nx: int
    ny: int
    nz: int
    p: int

    def __post_init__(self) -> None:
        if min(self.nx, self.ny, self.nz) < 1:
            raise ParameterError(f"array extents must be >= 1: {self}")
        if self.p < 1:
            raise ParameterError(f"need >= 1 process, got {self.p}")
        if self.p > self.nx or self.p > self.ny:
            raise ParameterError(
                f"1-D decomposition needs p <= Nx and p <= Ny "
                f"(p={self.p}, Nx={self.nx}, Ny={self.ny})"
            )

    @property
    def nxl_max(self) -> int:
        """Largest per-rank x-slab extent (uneven division rounds up)."""
        return ceil_div(self.nx, self.p)

    @property
    def nyl_max(self) -> int:
        """Largest per-rank y-slab extent after the exchange."""
        return ceil_div(self.ny, self.p)

    @property
    def f_max(self) -> int:
        """Search-range cap for the MPI_Test frequency parameters.

        The all-to-all needs more progression rounds as p grows (the
        paper's default is ``p/2`` and its Table 3 shows tuned values up
        to 2048 at p=256), so the cap scales with p.
        """
        return max(64, 8 * self.p)


@dataclass(frozen=True)
class TuningParams:
    """One point in the ten-dimensional parameter space."""

    T: int
    W: int
    Px: int
    Pz: int
    Uy: int
    Uz: int
    Fy: int
    Fp: int
    Fu: int
    Fx: int

    def as_dict(self) -> dict[str, int]:
        """Parameter values keyed by their Table 1 names."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def replace(self, **kw: int) -> "TuningParams":
        """Copy with selected parameters replaced."""
        return replace(self, **kw)

    # -- validation -----------------------------------------------------------

    def check_feasible(self, shape: ProblemShape) -> None:
        """Raise :class:`InfeasibleConfigError` on any violated constraint."""
        errs: list[str] = []
        if not 1 <= self.T <= shape.nz:
            errs.append(f"T={self.T} not in [1, Nz={shape.nz}]")
        if not 1 <= self.W <= W_MAX:
            errs.append(f"W={self.W} not in [1, {W_MAX}]")
        if not 1 <= self.Px <= shape.nxl_max:
            errs.append(f"Px={self.Px} not in [1, Nx/p={shape.nxl_max}]")
        if not 1 <= self.Pz <= self.T:
            errs.append(f"Pz={self.Pz} not in [1, T={self.T}]")
        if not 1 <= self.Uy <= shape.nyl_max:
            errs.append(f"Uy={self.Uy} not in [1, Ny/p={shape.nyl_max}]")
        if not 1 <= self.Uz <= self.T:
            errs.append(f"Uz={self.Uz} not in [1, T={self.T}]")
        for name in ("Fy", "Fp", "Fu", "Fx"):
            v = getattr(self, name)
            if not 0 <= v <= shape.f_max:
                errs.append(f"{name}={v} not in [0, {shape.f_max}]")
        if errs:
            raise InfeasibleConfigError("; ".join(errs))

    def is_feasible(self, shape: ProblemShape) -> bool:
        """True when :meth:`check_feasible` passes."""
        try:
            self.check_feasible(shape)
        except InfeasibleConfigError:
            return False
        return True

    def num_tiles(self, nz: int) -> int:
        """k = ceil(Nz / T) communication tiles (Algorithm 1, line 3)."""
        return ceil_div(nz, self.T)


def default_params(shape: ProblemShape, cache_bytes: int = 256 * 1024) -> TuningParams:
    """The paper's default point (Section 4.4, initial-simplex seed).

    ``T = Nz/16`` for some overlap; ``W = 2`` for some communication
    parallelism; sub-tiles sized so one sub-tile (~8K complex elements
    for a 256 KB cache) fits in cache; ``F* = p/2``.
    """
    elems = max(1, cache_bytes // 16 // 2)  # complex128 elements, half cache
    t = clamp(shape.nz // 16, 1, shape.nz)
    px = clamp(elems // shape.ny, 1, shape.nxl_max)
    pz = clamp(elems // shape.ny // max(px, 1), 1, t)
    uy = clamp(elems // shape.nx, 1, shape.nyl_max)
    uz = clamp(elems // shape.nx // max(uy, 1), 1, t)
    f = clamp(shape.p // 2, 1, shape.f_max)
    return TuningParams(T=t, W=2, Px=px, Pz=pz, Uy=uy, Uz=uz,
                        Fy=f, Fp=f, Fu=f, Fx=f)
