"""Top-level user API for the distributed 3-D FFT.

* :func:`run_case` — simulate one (variant, platform, p, N, params) cell
  and return a :class:`RunResult` with the virtual time and per-step
  breakdown.  This is what the benchmarks call.
* :func:`parallel_fft3d` / :func:`parallel_ifft3d` — transform an actual
  array on the simulated cluster and return the assembled spectrum
  (real-payload mode; intended for correctness work and the examples).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..errors import ParameterError
from ..machine.platforms import Platform
from ..simmpi.spmd import SimResult, run_spmd
from .decompose import gather_spectrum, scatter_slabs
from .params import ProblemShape, TuningParams
from .plan import ParallelFFT3D
from .variants import VariantSpec, baseline_params, get_variant

#: Step labels in the paper's Figure 8 stacking order.
BREAKDOWN_LABELS = [
    "FFTz", "Transpose", "FFTy", "Pack", "Unpack", "FFTx",
    "Ialltoall", "Wait", "Test",
]


@dataclass
class RunResult:
    """Outcome of one simulated 3-D FFT execution."""

    variant: str
    platform: str
    shape: ProblemShape
    params: TuningParams
    elapsed: float
    breakdown: dict[str, float] = field(default_factory=dict)
    sim: SimResult | None = None

    @property
    def total_breakdown(self) -> float:
        """Sum of all per-step times (close to ``elapsed``)."""
        return sum(self.breakdown.values())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        n = self.shape
        return (
            f"{self.variant} on {self.platform} p={n.p} "
            f"{n.nx}x{n.ny}x{n.nz}: {self.elapsed:.4f}s"
        )


def _spmd_fft(ctx, shape, params, spec, include_fixed, local_blocks):
    # Generator SPMD program: run_spmd auto-selects the no-threads
    # ``tasks`` engine backend, which cuts the simulation's wall-clock
    # cost several-fold on the tuning/benchmark hot path.
    plan = ParallelFFT3D(ctx, shape, params, spec, include_fixed)
    local = None if local_blocks is None else local_blocks[ctx.rank]
    out = yield from plan.steps(local)
    return out, plan.output_layout


def run_case(
    variant: str | VariantSpec,
    platform: Platform,
    shape: ProblemShape,
    params: TuningParams | None = None,
    global_array: np.ndarray | None = None,
    include_fixed_steps: bool = True,
    record_events: bool = False,
) -> tuple[RunResult, np.ndarray | None]:
    """Simulate one 3-D FFT run.

    Returns ``(result, spectrum)``; ``spectrum`` is the assembled
    ``F[kx, ky, kz]`` when ``global_array`` is given (real mode), else
    ``None`` (virtual mode).  ``params=None`` uses the variant's untuned
    baseline configuration.
    """
    spec = get_variant(variant) if isinstance(variant, str) else variant
    if params is None:
        params = baseline_params(spec, shape)
    local_blocks = None
    if global_array is not None:
        arr = np.asarray(global_array, dtype=np.complex128)
        if arr.shape != (shape.nx, shape.ny, shape.nz):
            raise ParameterError(
                f"array shape {arr.shape} != problem shape "
                f"({shape.nx}, {shape.ny}, {shape.nz})"
            )
        local_blocks = scatter_slabs(arr, shape.p)

    sim = run_spmd(
        shape.p, _spmd_fft, platform,
        shape, params, spec, include_fixed_steps, local_blocks,
        record_events=record_events,
    )
    result = RunResult(
        variant=spec.name,
        platform=platform.name,
        shape=shape,
        params=spec.effective_params(params, shape),
        elapsed=sim.elapsed,
        breakdown=sim.breakdown(BREAKDOWN_LABELS),
        sim=sim,
    )
    spectrum = None
    if local_blocks is not None:
        outputs = [out for (out, _layout) in sim.results]
        layout = sim.results[0][1]
        spectrum = gather_spectrum(outputs, (shape.nx, shape.ny, shape.nz), layout)
    return result, spectrum


def parallel_fft3d(
    array: np.ndarray,
    p: int,
    platform: Platform,
    params: TuningParams | None = None,
    variant: str | VariantSpec = "NEW",
) -> tuple[np.ndarray, RunResult]:
    """Forward 3-D FFT of ``array`` on ``p`` simulated ranks.

    Returns ``(spectrum, result)`` where ``spectrum`` matches
    ``numpy.fft.fftn(array)`` up to round-off.
    """
    arr = np.asarray(array)
    if arr.ndim != 3:
        raise ParameterError(f"expected a 3-D array, got shape {arr.shape}")
    shape = ProblemShape(nx=arr.shape[0], ny=arr.shape[1], nz=arr.shape[2], p=p)
    result, spectrum = run_case(
        variant, platform, shape, params, global_array=arr
    )
    return spectrum, result


def parallel_ifft3d(
    spectrum: np.ndarray,
    p: int,
    platform: Platform,
    params: TuningParams | None = None,
    variant: str | VariantSpec = "NEW",
) -> tuple[np.ndarray, RunResult]:
    """Normalized inverse 3-D FFT via the conjugation identity
    ``ifft(x) = conj(fft(conj(x))) / N`` — the paper's forward pipeline
    applied backward (Section 2.3)."""
    arr = np.asarray(spectrum, dtype=np.complex128)
    fwd, result = parallel_fft3d(np.conj(arr), p, platform, params, variant)
    return np.conj(fwd) / arr.size, result
