"""Small integer-math helpers shared across the library."""

from __future__ import annotations

from typing import Iterator


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division ``ceil(a / b)`` for non-negative ``a``, positive ``b``."""
    if b <= 0:
        raise ValueError(f"ceil_div requires positive divisor, got {b}")
    return -(-a // b)


def is_pow2(n: int) -> bool:
    """True iff ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def next_pow2(n: int) -> int:
    """Smallest power of two >= ``n`` (``n`` >= 1)."""
    if n < 1:
        raise ValueError(f"next_pow2 requires n >= 1, got {n}")
    return 1 << (n - 1).bit_length()


def prime_factors(n: int) -> list[int]:
    """Prime factorization of ``n`` >= 1 in non-decreasing order."""
    if n < 1:
        raise ValueError(f"prime_factors requires n >= 1, got {n}")
    out: list[int] = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            out.append(d)
            n //= d
        d += 1 if d == 2 else 2
    if n > 1:
        out.append(n)
    return out


def divisors(n: int) -> list[int]:
    """All positive divisors of ``n`` in increasing order."""
    if n < 1:
        raise ValueError(f"divisors requires n >= 1, got {n}")
    small, large = [], []
    d = 1
    while d * d <= n:
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
        d += 1
    return small + large[::-1]


def pow2_candidates(lo: int, hi: int, *, include_bounds: bool = True) -> list[int]:
    """Power-of-two values in ``[lo, hi]``, optionally with the range
    endpoints included even when they are not powers of two.

    This implements the paper's search-space reduction (Section 4.4):
    "we reduce a search space to a log scale and consider power-of-two
    values ... The minimum and maximum values are additionally
    considered."  E.g. ``pow2_candidates(1, 24) == [1, 2, 4, 8, 16, 24]``.
    """
    if lo > hi:
        raise ValueError(f"empty range [{lo}, {hi}]")
    if lo < 1:
        raise ValueError(f"pow2_candidates requires lo >= 1, got {lo}")
    vals: set[int] = set()
    v = 1
    while v <= hi:
        if v >= lo:
            vals.add(v)
        v <<= 1
    if include_bounds:
        vals.add(lo)
        vals.add(hi)
    return sorted(vals)


def iter_blocks(total: int, block: int) -> Iterator[tuple[int, int]]:
    """Yield ``(start, stop)`` covering ``range(total)`` in chunks of
    ``block`` (the final chunk may be shorter)."""
    if block < 1:
        raise ValueError(f"block must be >= 1, got {block}")
    for start in range(0, total, block):
        yield start, min(start + block, total)


def clamp(x: int, lo: int, hi: int) -> int:
    """Clamp ``x`` into ``[lo, hi]``."""
    if lo > hi:
        raise ValueError(f"clamp with empty range [{lo}, {hi}]")
    return max(lo, min(hi, x))
