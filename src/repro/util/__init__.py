"""Shared helpers (integer math, formatting)."""

from .intmath import (
    ceil_div,
    clamp,
    divisors,
    is_pow2,
    iter_blocks,
    next_pow2,
    pow2_candidates,
    prime_factors,
)

__all__ = [
    "ceil_div",
    "clamp",
    "divisors",
    "is_pow2",
    "iter_blocks",
    "next_pow2",
    "pow2_candidates",
    "prime_factors",
]
