"""Hypothesis property tests for the FFT substrate's mathematical
invariants (beyond point comparisons against numpy)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fft import BACKWARD, FORWARD, Plan1D, fft, ifft

sizes = st.integers(1, 256)


def signal(rng_seed: int, batch: int, n: int) -> np.ndarray:
    rng = np.random.default_rng(rng_seed)
    return rng.standard_normal((batch, n)) + 1j * rng.standard_normal((batch, n))


@given(sizes, st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_roundtrip_identity(n, seed):
    x = signal(seed, 2, n)
    assert np.allclose(ifft(fft(x)), x, atol=1e-8 * max(n, 8))


@given(sizes, st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_linearity(n, seed):
    x = signal(seed, 1, n)
    y = signal(seed + 1, 1, n)
    a, b = 2.5, -1.5 + 0.5j
    lhs = fft(a * x + b * y)
    rhs = a * fft(x) + b * fft(y)
    assert np.allclose(lhs, rhs, atol=1e-8 * max(n, 8))


@given(sizes, st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_parseval_energy(n, seed):
    x = signal(seed, 1, n)
    X = fft(x)
    assert np.isclose(
        np.sum(np.abs(X) ** 2), n * np.sum(np.abs(x) ** 2), rtol=1e-7
    )


@given(sizes, st.integers(0, 2**31 - 1), st.integers(0, 300))
@settings(max_examples=40, deadline=None)
def test_shift_theorem(n, seed, shift):
    """fft(roll(x, s))[k] = fft(x)[k] * exp(-2*pi*i*k*s/n)."""
    x = signal(seed, 1, n)
    s = shift % n
    lhs = fft(np.roll(x, s, axis=-1))
    k = np.arange(n)
    rhs = fft(x) * np.exp(-2j * np.pi * k * s / n)
    assert np.allclose(lhs, rhs, atol=1e-7 * max(n, 8))


@given(sizes, st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_conjugate_symmetry_for_real_input(n, seed):
    """Real input -> Hermitian spectrum: X[k] = conj(X[n-k])."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((1, n))
    X = fft(x)[0]
    rev = np.conj(X[(-np.arange(n)) % n])
    assert np.allclose(X, rev, atol=1e-8 * max(n, 8))


@given(sizes)
@settings(max_examples=30, deadline=None)
def test_forward_backward_matrices_inverse(n):
    """Plan(FORWARD) followed by Plan(BACKWARD)/n is the identity on a
    basis impulse at every position (stronger than random vectors)."""
    fwd = Plan1D(n, FORWARD)
    bwd = Plan1D(n, BACKWARD)
    eye = np.eye(n, dtype=np.complex128)
    back = bwd.execute(fwd.execute(eye)) / n
    assert np.allclose(back, eye, atol=1e-8 * max(n, 8))


@given(st.integers(1, 64), st.integers(1, 6), st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_batch_rows_independent(n, batch, seed):
    """Transforming a batch equals transforming each row separately."""
    x = signal(seed, batch, n)
    whole = fft(x)
    rows = np.stack([fft(x[i : i + 1])[0] for i in range(batch)])
    assert np.allclose(whole, rows, atol=1e-9 * max(n, 8))
