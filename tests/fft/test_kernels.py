"""Correctness of the from-scratch FFT kernels against numpy.fft."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlanError
from repro.fft.bluestein import BluesteinPlan
from repro.fft.dftmat import BACKWARD, FORWARD, dft_matrix, direct_dft, twiddles
from repro.fft.stockham import POLICIES, StagePlan, radix_path

RNG = np.random.default_rng(42)


def random_signal(batch, n):
    return RNG.standard_normal((batch, n)) + 1j * RNG.standard_normal((batch, n))


def tol(n):
    return 1e-10 * max(n, 8)


class TestDftMatrix:
    def test_unitary_up_to_scale(self):
        for n in (1, 2, 3, 8, 16):
            w = dft_matrix(n, FORWARD)
            winv = dft_matrix(n, BACKWARD)
            assert np.allclose(w @ winv / n, np.eye(n), atol=1e-12)

    def test_matches_numpy(self):
        x = random_signal(3, 9)
        assert np.allclose(direct_dft(x), np.fft.fft(x), atol=tol(9))

    def test_cached_is_readonly(self):
        w = dft_matrix(8, FORWARD)
        with pytest.raises(ValueError):
            w[0, 0] = 0

    def test_rejects_bad_sign(self):
        with pytest.raises(ValueError):
            dft_matrix(4, 2)

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            dft_matrix(0, FORWARD)

    def test_twiddles_shape_and_values(self):
        tw = twiddles(8, 2, FORWARD)
        assert tw.shape == (2, 4)
        assert np.allclose(tw[0], 1.0)
        assert np.isclose(tw[1, 1], np.exp(-2j * np.pi / 8))

    def test_twiddles_rejects_nondivisor(self):
        with pytest.raises(ValueError):
            twiddles(8, 3, FORWARD)


class TestRadixPath:
    def test_small_first(self):
        assert radix_path(12, "small-first") == [2, 2, 3]

    def test_large_first(self):
        assert radix_path(12, "large-first") == [3, 2, 2]

    def test_radix4_fuses(self):
        assert radix_path(32, "radix4") == [4, 4, 2]

    def test_radix8_fuses(self):
        assert radix_path(128, "radix8") == [8, 8, 2]

    def test_product_invariant(self):
        for policy in POLICIES:
            for n in (2, 12, 60, 384, 640, 720):
                prod = 1
                for r in radix_path(n, policy):
                    prod *= r
                assert prod == n, (n, policy)

    def test_unknown_policy(self):
        with pytest.raises(PlanError):
            radix_path(8, "bogus")


class TestStagePlan:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6, 8, 9, 12, 16, 24, 30,
                                   32, 48, 64, 100, 128, 210, 256, 384, 640])
    @pytest.mark.parametrize("policy", list(POLICIES))
    def test_forward_matches_numpy(self, n, policy):
        x = random_signal(2, n)
        got = StagePlan(n, FORWARD, policy).execute(x)
        assert np.allclose(got, np.fft.fft(x), atol=tol(n))

    @pytest.mark.parametrize("n", [4, 12, 64, 384])
    def test_backward_is_unnormalized_inverse(self, n):
        x = random_signal(2, n)
        fwd = StagePlan(n, FORWARD).execute(x)
        back = StagePlan(n, BACKWARD).execute(fwd) / n
        assert np.allclose(back, x, atol=tol(n))

    def test_multidim_batch(self):
        x = RNG.standard_normal((3, 4, 16)) + 0j
        got = StagePlan(16).execute(x)
        assert got.shape == x.shape
        assert np.allclose(got, np.fft.fft(x, axis=-1), atol=tol(16))

    def test_wrong_size_rejected(self):
        with pytest.raises(PlanError):
            StagePlan(8).execute(np.zeros((2, 9), dtype=complex))

    def test_input_not_modified(self):
        x = random_signal(1, 32)
        x0 = x.copy()
        StagePlan(32).execute(x)
        assert np.array_equal(x, x0)

    def test_flop_estimate_positive_and_monotone(self):
        f64 = StagePlan(64).flop_estimate
        f256 = StagePlan(256).flop_estimate
        assert 0 < f64 < f256

    def test_linearity(self):
        # FFT is linear: F(a x + b y) = a F(x) + b F(y).
        plan = StagePlan(48)
        x, y = random_signal(1, 48), random_signal(1, 48)
        lhs = plan.execute(2.0 * x + 3j * y)
        rhs = 2.0 * plan.execute(x) + 3j * plan.execute(y)
        assert np.allclose(lhs, rhs, atol=1e-9)

    def test_impulse_is_flat(self):
        # FFT of a delta at 0 is all-ones.
        x = np.zeros((1, 60), dtype=complex)
        x[0, 0] = 1.0
        assert np.allclose(StagePlan(60).execute(x), 1.0, atol=1e-12)

    @given(st.integers(2, 200))
    @settings(max_examples=40, deadline=None)
    def test_parseval(self, n):
        # Energy conservation: sum|X|^2 = n * sum|x|^2.
        x = random_signal(1, n)
        X = StagePlan(n).execute(x)
        assert np.isclose(
            np.sum(np.abs(X) ** 2), n * np.sum(np.abs(x) ** 2), rtol=1e-8
        )


class TestBluestein:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 11, 13, 17, 97, 101, 251])
    def test_prime_sizes(self, n):
        x = random_signal(2, n)
        got = BluesteinPlan(n).execute(x)
        assert np.allclose(got, np.fft.fft(x), atol=tol(n))

    @pytest.mark.parametrize("n", [12, 100, 384])
    def test_composite_sizes_also_work(self, n):
        x = random_signal(1, n)
        assert np.allclose(BluesteinPlan(n).execute(x), np.fft.fft(x), atol=tol(n))

    def test_backward(self):
        x = random_signal(1, 23)
        fwd = BluesteinPlan(23, FORWARD).execute(x)
        back = BluesteinPlan(23, BACKWARD).execute(fwd) / 23
        assert np.allclose(back, x, atol=tol(23))

    def test_large_prime_precision(self):
        # j^2 mod 2n chirp indexing keeps precision for large n.
        n = 10007
        x = random_signal(1, n)
        got = BluesteinPlan(n).execute(x)
        assert np.allclose(got, np.fft.fft(x), atol=1e-6)

    def test_wrong_size_rejected(self):
        with pytest.raises(PlanError):
            BluesteinPlan(8).execute(np.zeros((1, 9), dtype=complex))

    def test_rejects_bad_params(self):
        with pytest.raises(PlanError):
            BluesteinPlan(0)
        with pytest.raises(PlanError):
            BluesteinPlan(8, 5)
