"""Planner, wisdom, transposes, real transforms, and the serial 3-D FFT."""

import numpy as np
import pytest

from repro.errors import PlanError
from repro.fft import (
    BACKWARD,
    FORWARD,
    Flag,
    Plan1D,
    Plan3D,
    RealPlan1D,
    WisdomStore,
    fft,
    fftn,
    ifft,
    ifftn,
    irfft,
    rfft,
)
from repro.fft.plan import _candidates
from repro.fft.transpose import (
    bytes_moved,
    plane_transpose,
    xyz_to_xzy,
    xyz_to_zxy,
    zxy_to_xyz,
)

RNG = np.random.default_rng(7)


def csig(*shape):
    return RNG.standard_normal(shape) + 1j * RNG.standard_normal(shape)


class TestPlan1D:
    @pytest.mark.parametrize("n", [1, 2, 5, 8, 13, 36, 100, 384, 1000])
    def test_matches_numpy(self, n):
        x = csig(3, n)
        assert np.allclose(Plan1D(n).execute(x), np.fft.fft(x), atol=1e-8)

    def test_backward_normalized(self):
        x = csig(2, 24)
        spec = np.fft.fft(x)
        got = Plan1D(24, BACKWARD).execute(spec, normalize=True)
        assert np.allclose(got, x, atol=1e-10)

    def test_axis_argument(self):
        x = csig(8, 5, 6)
        got = Plan1D(5).execute(x, axis=1)
        assert np.allclose(got, np.fft.fft(x, axis=1), atol=1e-10)

    def test_wrong_axis_length(self):
        with pytest.raises(PlanError):
            Plan1D(8).execute(csig(2, 9))

    def test_invalid_construction(self):
        with pytest.raises(PlanError):
            Plan1D(0)
        with pytest.raises(PlanError):
            Plan1D(8, sign=3)

    def test_real_input_promoted(self):
        x = RNG.standard_normal((2, 16))
        assert np.allclose(Plan1D(16).execute(x), np.fft.fft(x), atol=1e-10)

    @pytest.mark.parametrize("flag", list(Flag))
    def test_all_flags_produce_correct_plans(self, flag):
        wisdom = WisdomStore()
        x = csig(2, 48)
        plan = Plan1D(48, flag=flag, wisdom=wisdom)
        assert np.allclose(plan.execute(x), np.fft.fft(x), atol=1e-9)

    def test_large_prime_uses_bluestein(self):
        plan = Plan1D(997)
        assert plan.kernel_name == "bluestein"

    def test_tiny_size_uses_direct(self):
        assert Plan1D(4).kernel_name in ("direct", "mixed:small-first")

    def test_flop_estimate_positive(self):
        assert Plan1D(64).flop_estimate > 0

    def test_candidates_always_nonempty(self):
        for n in (1, 2, 17, 64, 65, 384, 997):
            assert _candidates(n)


class TestWisdom:
    def test_planning_records_wisdom(self):
        w = WisdomStore()
        Plan1D(36, flag=Flag.MEASURE, wisdom=w)
        assert w.lookup(36, FORWARD, "measure") is not None

    def test_replan_uses_cache(self):
        w = WisdomStore()
        w.record(32, FORWARD, "patient", "mixed:large-first")
        plan = Plan1D(32, flag=Flag.PATIENT, wisdom=w)
        assert plan.kernel_name == "mixed:large-first"

    def test_roundtrip_json(self):
        w = WisdomStore()
        w.record(8, FORWARD, "estimate", "direct")
        w.record(640, FORWARD, "patient", "mixed:radix4")
        w2 = WisdomStore()
        added = w2.import_json(w.export_json())
        assert added == 2
        assert w2.lookup(640, FORWARD, "patient") == "mixed:radix4"

    def test_save_load(self, tmp_path):
        w = WisdomStore()
        w.record(16, BACKWARD, "measure", "mixed:small-first")
        path = tmp_path / "wisdom.json"
        w.save(path)
        w2 = WisdomStore()
        assert w2.load(path) == 1
        assert len(w2) == 1

    def test_forget(self):
        w = WisdomStore()
        w.record(8, FORWARD, "estimate", "direct")
        w.forget()
        assert len(w) == 0 and w.lookup(8, FORWARD, "estimate") is None


class TestTranspose:
    def test_xyz_to_zxy_values(self):
        x = csig(4, 5, 6)
        out = xyz_to_zxy(x, block=2)
        assert out.shape == (6, 4, 5)
        assert np.array_equal(out, x.transpose(2, 0, 1))

    def test_xyz_to_xzy_values(self):
        x = csig(4, 5, 6)
        out = xyz_to_xzy(x, block=3)
        assert out.shape == (4, 6, 5)
        assert np.array_equal(out, x.transpose(0, 2, 1))

    def test_zxy_roundtrip(self):
        x = csig(7, 3, 5)
        assert np.array_equal(zxy_to_xyz(xyz_to_zxy(x)), x)

    def test_blocking_independent_of_block_size(self):
        x = csig(10, 11, 12)
        a = xyz_to_zxy(x, block=1)
        b = xyz_to_zxy(x, block=64)
        assert np.array_equal(a, b)

    def test_outputs_contiguous(self):
        x = csig(4, 4, 4)
        assert xyz_to_zxy(x).flags.c_contiguous
        assert xyz_to_xzy(x).flags.c_contiguous

    def test_plane_transpose(self):
        x = csig(3, 4, 5)
        out = plane_transpose(x)
        assert out.shape == (3, 5, 4)
        assert np.array_equal(out, x.transpose(0, 2, 1))
        assert out.flags.c_contiguous

    def test_bytes_moved(self):
        assert bytes_moved((2, 3, 4)) == 2 * 24 * 16


class TestRealFFT:
    @pytest.mark.parametrize("n", [2, 4, 6, 16, 48, 100, 256])
    def test_rfft_matches_numpy(self, n):
        x = RNG.standard_normal((3, n))
        assert np.allclose(rfft(x), np.fft.rfft(x), atol=1e-9)

    @pytest.mark.parametrize("n", [4, 16, 48, 128])
    def test_roundtrip(self, n):
        x = RNG.standard_normal((2, n))
        assert np.allclose(irfft(rfft(x)), x, atol=1e-10)

    def test_irfft_matches_numpy(self):
        spec = np.fft.rfft(RNG.standard_normal((2, 32)))
        assert np.allclose(irfft(spec), np.fft.irfft(spec), atol=1e-10)

    def test_odd_length_rejected(self):
        with pytest.raises(PlanError):
            RealPlan1D(9)

    def test_wrong_spectrum_length_rejected(self):
        with pytest.raises(PlanError):
            RealPlan1D(8).irfft(np.zeros(3, dtype=complex))

    def test_hermitian_output(self):
        # The half spectrum's endpoints must be (numerically) real.
        spec = rfft(RNG.standard_normal(64))
        assert abs(spec[0].imag) < 1e-12
        assert abs(spec[-1].imag) < 1e-12


class TestPlan3DAndOneShots:
    def test_fftn_matches_numpy(self):
        x = csig(4, 6, 8)
        assert np.allclose(fftn(x), np.fft.fftn(x), atol=1e-8)

    def test_ifftn_roundtrip(self):
        x = csig(4, 6, 8)
        assert np.allclose(ifftn(fftn(x)), x, atol=1e-9)

    def test_plan3d_normalize(self):
        x = csig(2, 3, 4)
        plan = Plan3D((2, 3, 4), BACKWARD)
        got = plan.execute(np.fft.fftn(x), normalize=True)
        assert np.allclose(got, x, atol=1e-10)

    def test_plan3d_shape_validation(self):
        with pytest.raises(PlanError):
            Plan3D((2, 3))
        with pytest.raises(PlanError):
            Plan3D((2, 3, 4)).execute(csig(2, 3, 5))

    def test_one_shot_helpers(self):
        x = csig(2, 20)
        assert np.allclose(ifft(fft(x)), x, atol=1e-10)
