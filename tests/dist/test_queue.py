"""WorkQueue lease lifecycle against a fake clock (no wall waits)."""

import pytest

from repro.dist import WorkQueue


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


@pytest.fixture
def clk():
    return FakeClock()


class TestLeasing:
    def test_grants_lowest_pending_first(self, clk):
        q = WorkQueue(5, lease_ttl=10.0, clock=clk)
        lease, cells = q.lease("w1", 2)
        assert lease and cells == [0, 1]
        _, more = q.lease("w2", 2)
        assert more == [2, 3]

    def test_empty_grant_when_nothing_pending(self, clk):
        q = WorkQueue(1, lease_ttl=10.0, clock=clk)
        q.lease("w1", 1)
        lease, cells = q.lease("w2", 1)
        assert lease == "" and cells == []

    def test_max_cells_is_at_least_one(self, clk):
        q = WorkQueue(3, lease_ttl=10.0, clock=clk)
        _, cells = q.lease("w1", 0)
        assert cells == [0]

    def test_counts(self, clk):
        q = WorkQueue(3, lease_ttl=10.0, clock=clk)
        q.lease("w1", 2)
        c = q.counts()
        assert c["total"] == 3 and c["leased"] == 2 and c["pending"] == 1
        assert c["leases"] == 1


class TestExpiry:
    def test_expired_lease_requeues_its_cells(self, clk):
        q = WorkQueue(3, lease_ttl=5.0, clock=clk)
        q.lease("w1", 2)
        clk.t = 5.5
        assert q.expire() == [0, 1]
        assert q.counts()["pending"] == 3
        assert q.counts()["requeues"] == 2
        # the cells are leasable again
        _, cells = q.lease("w2", 3)
        assert cells == [0, 1, 2]

    def test_renew_keeps_a_lease_alive(self, clk):
        q = WorkQueue(2, lease_ttl=5.0, clock=clk)
        lease, _ = q.lease("w1", 2)
        clk.t = 4.0
        assert q.renew(lease)
        clk.t = 8.0  # past the original expiry, within the renewed one
        assert q.expire() == []
        clk.t = 9.5
        assert q.expire() == [0, 1]

    def test_renew_unknown_lease_is_false(self, clk):
        q = WorkQueue(1, lease_ttl=5.0, clock=clk)
        assert not q.renew("L999")

    def test_unexpired_leases_untouched(self, clk):
        q = WorkQueue(4, lease_ttl=5.0, clock=clk)
        q.lease("w1", 2)
        clk.t = 3.0
        q.lease("w2", 2)  # fresh lease
        clk.t = 5.5  # w1 expired, w2 not
        assert q.expire() == [0, 1]
        assert q.counts()["leased"] == 2


class TestCompletion:
    def test_complete_is_first_wins(self, clk):
        q = WorkQueue(2, lease_ttl=10.0, clock=clk)
        q.lease("w1", 2)
        assert q.complete(0)
        assert not q.complete(0)
        c = q.counts()
        assert c["done"] == 1 and c["duplicates"] == 1

    def test_complete_accepted_from_expired_lease(self, clk):
        # a slow worker finishing after its lease was requeued is a
        # harmless duplicate-or-first-win, never an error
        q = WorkQueue(1, lease_ttl=5.0, clock=clk)
        q.lease("w1", 1)
        clk.t = 6.0
        assert q.expire() == [0]
        q.lease("w2", 1)
        assert q.complete(0)  # w1's late completion still lands first
        assert not q.complete(0)  # w2's twin is the duplicate

    def test_completed_cell_never_requeues(self, clk):
        q = WorkQueue(1, lease_ttl=5.0, clock=clk)
        lease, _ = q.lease("w1", 1)
        q.complete(0)
        clk.t = 10.0
        assert q.expire() == []
        assert not q.renew(lease)  # fully-completed lease is dropped

    def test_fail_is_terminal_and_first_wins(self, clk):
        q = WorkQueue(2, lease_ttl=10.0, clock=clk)
        q.lease("w1", 2)
        assert q.fail(0)
        assert not q.complete(0)
        assert q.counts()["failed"] == 1

    def test_finished_when_all_terminal(self, clk):
        q = WorkQueue(2, lease_ttl=10.0, clock=clk)
        q.lease("w1", 2)
        assert not q.finished
        q.complete(0)
        q.fail(1)
        assert q.finished
