"""CLI coverage for distributed dispatch: grid --serve / repro worker."""

from pathlib import Path

import pytest

from repro.bench import clear_cache
from repro.cli import main
from repro.dist import Coordinator, DistConfig, GridJob
from repro.bench.runner import cell_key

BUDGET = 4


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


def grid_args(store, extra):
    return [
        "grid", "--cells", "4:32;8:32", "--budget", str(BUDGET),
        "--no-progress", "--store", str(store),
    ] + extra


def store_bytes(path) -> dict[str, bytes]:
    return {f.name: f.read_bytes() for f in Path(path).iterdir()}


class TestGridServe:
    def test_serve_with_local_fleet_matches_local_run(
        self, capsys, tmp_path
    ):
        assert main(grid_args(tmp_path / "local", [])) == 0
        capsys.readouterr()
        clear_cache()
        rc = main(grid_args(
            tmp_path / "dist", ["--serve", "--workers", "local,local"],
        ))
        captured = capsys.readouterr()
        assert rc == 0
        assert "coordinator serving at http://127.0.0.1:" in captured.err
        assert "overlap summary" in captured.out
        assert store_bytes(tmp_path / "dist") == store_bytes(
            tmp_path / "local"
        )

    def test_workers_flag_implies_serve(self, capsys, tmp_path):
        rc = main(grid_args(tmp_path / "s", ["--workers", "local"]))
        assert rc == 0
        assert "coordinator serving at" in capsys.readouterr().err

    def test_bad_serve_address_exits_2(self, capsys, tmp_path):
        rc = main(grid_args(
            tmp_path / "s", ["--serve", "localhost:not-a-port",
                             "--workers", "local"],
        ))
        assert rc == 2
        assert "bad --serve address" in capsys.readouterr().err

    def test_rerun_resumes_from_store_without_serving(self, capsys, tmp_path):
        # warm the store locally, then ask for dist dispatch: everything
        # is resumed from disk, so no coordinator is ever started
        assert main(grid_args(tmp_path / "s", [])) == 0
        capsys.readouterr()
        clear_cache()
        rc = main(grid_args(
            tmp_path / "s", ["--serve", "--workers", "local,local"],
        ))
        captured = capsys.readouterr()
        assert rc == 0
        assert "coordinator serving at" not in captured.err
        assert "overlap summary" in captured.out


class TestWorkerCommand:
    def test_worker_serves_a_coordinator_and_reports_stats(self, capsys):
        cells = [(4, 32), (8, 32)]
        job = GridJob(
            platform="UMD-Cluster",
            todo=[cell_key("UMD-Cluster", p, n, BUDGET) for p, n in cells],
            labels=[f"p{p} N{n}" for p, n in cells],
        )
        coord = Coordinator(job, DistConfig())
        url = coord.start()
        try:
            rc = main([
                "worker", "--coordinator", url,
                "--no-progress", "--poll", "0.05",
            ])
            out = capsys.readouterr().out
            assert rc == 0
            assert "2 cell(s) evaluated, 0 failed" in out
            assert coord.queue.finished
        finally:
            coord.stop()

    def test_worker_unreachable_coordinator_exits_4(self, capsys):
        rc = main([
            "worker", "--coordinator", "http://127.0.0.1:9",
            "--no-progress",
        ])
        assert rc == 4
        assert "error: coordinator unreachable" in capsys.readouterr().err

    def test_worker_requires_coordinator_flag(self):
        with pytest.raises(SystemExit):
            main(["worker"])
