"""The fleet telemetry plane end to end (DESIGN.md §5.12).

Four layers, each pinned separately so failures localize:

* **cross-host trace merge** — per-host span records become one Chrome
  trace with a process group per worker host (pid per host, tid per
  rank, no (pid, tid) collisions) that round-trips through the export
  loader, so ``repro trace`` renders fleet traces like local ones;
* **coordinator endpoints** — ``GET /metrics`` serves parseable
  Prometheus text whose ``dist_*`` counters track the lease lifecycle,
  ``/status`` is enriched with lease ages / heartbeat lag / rate / ETA,
  and ``/complete`` absorbs worker metric deltas and spans (malformed
  telemetry is dropped, never allowed to reject the completion);
* **spawned fleet** — a real 2-worker subprocess run writes
  ``fleet_trace.json`` + ``fleet_metrics.prom`` under
  ``DistConfig.trace_dir`` with ``dist_completions_total`` equal to the
  grid's cell count;
* **``repro top``** — the dashboard polls, renders, and exits 0 when a
  previously reachable coordinator vanishes (fake fetchers: no sockets).
"""

import io
import json

import pytest

from repro.bench import clear_cache
from repro.bench.runner import cell_key, cell_to_dict, evaluate_cell
from repro.dist import Coordinator, DistConfig, GridJob, fetch_text
from repro.dist.protocol import call
from repro.errors import DistProtocolError
from repro.exec import ResultStore, evaluate_cells
from repro.obs import (
    TopDashboard,
    export_fleet_chrome,
    fleet_chrome_events,
    load_trace,
    metric_total,
    parse_prometheus,
    render_top,
)
from repro.obs.registry import scoped_registry

SPANS_A = [
    {"track": "rank 0", "name": "fftx", "t0": 0.0, "t1": 1.0,
     "clock": "virtual"},
    {"track": "rank 1", "name": "ffty", "t0": 0.5, "t1": 2.0,
     "clock": "virtual", "attrs": {"tile": 3}},
    {"track": "pool", "name": "cell", "t0": 0.0, "t1": 2.5, "clock": "wall"},
]
SPANS_B = [
    {"track": "rank 0", "name": "fftx", "t0": 0.0, "t1": 0.8,
     "clock": "virtual"},
]


class TestFleetTraceMerge:
    def test_pid_per_host_tid_per_rank(self):
        events = fleet_chrome_events({"hostB": SPANS_B, "hostA": SPANS_A})
        procs = {e["pid"]: e["args"]["name"] for e in events
                 if e.get("name") == "process_name"}
        # sorted host order, starting at 10 (clear of local pids 1/2)
        assert procs == {10: "worker hostA", 11: "worker hostB"}
        threads = {(e["pid"], e["tid"]): e["args"]["name"] for e in events
                   if e.get("name") == "thread_name"}
        assert threads[(10, 0)] == "rank 0"
        assert threads[(10, 1)] == "rank 1"
        assert threads[(11, 0)] == "rank 0"
        assert threads[(10, 100_000 + 2)] == "pool"

    def test_no_pid_tid_collisions(self):
        events = fleet_chrome_events({"hostA": SPANS_A, "hostB": SPANS_B})
        named = [(e["pid"], e["tid"]) for e in events
                 if e.get("name") == "thread_name"]
        assert len(named) == len(set(named))
        # every span event lands on a declared (pid, tid) thread
        spans = [(e["pid"], e["tid"]) for e in events if e.get("ph") == "X"]
        assert set(spans) <= set(named)

    def test_round_trips_through_export_loader(self, tmp_path):
        path = tmp_path / "fleet.json"
        n = export_fleet_chrome(
            {"hostA": SPANS_A, "hostB": SPANS_B}, path,
            meta={"cells": 3},
        )
        assert n == len(fleet_chrome_events(
            {"hostA": SPANS_A, "hostB": SPANS_B}
        ))
        tracer = load_trace(path)
        assert tracer.meta["cells"] == 3
        assert len(tracer.spans) == len(SPANS_A) + len(SPANS_B)
        # track names survive, timestamps round-trip through µs
        ranks = [sp for sp in tracer.spans if sp.track == "rank 0"]
        assert {sp.t1 for sp in ranks} == {1.0, 0.8}
        attrs = [sp.attrs for sp in tracer.spans if sp.name == "ffty"]
        assert attrs == [{"tile": 3}]

    def test_missing_parent_dirs_created(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "fleet.json"
        export_fleet_chrome({"h": SPANS_B}, path)
        assert path.exists()


@pytest.fixture
def coordinator():
    """A started coordinator over one real (4, 32) cell, plus that
    cell's evaluated payload; metrics scoped so tests never pollute the
    process-global registry."""
    clear_cache()
    with scoped_registry() as reg:
        budget = 2
        key = cell_key("UMD-Cluster", 4, 32, budget)
        job = GridJob(platform="UMD-Cluster", todo=[key],
                      labels=["UMD-Cluster p4 N32"])
        coord = Coordinator(job, DistConfig())
        url = coord.start()
        cell = evaluate_cell("UMD-Cluster", 4, 32, budget)
        try:
            yield coord, url, cell, reg
        finally:
            coord.stop()
            clear_cache()


def complete_payload(cell, worker="w1", lease="", **extra) -> dict:
    return {
        "worker": worker, "lease": lease,
        "cells": [{"index": 0, "cell": cell_to_dict(cell),
                   "evals": "", "hits": 0}],
        **extra,
    }


class TestCoordinatorEndpoints:
    def test_metrics_exposition_tracks_lease_lifecycle(self, coordinator):
        coord, url, cell, _reg = coordinator
        text = fetch_text(url, "/metrics")
        assert "# TYPE dist_completions_total counter" in text
        start = parse_prometheus(text)
        assert start["dist_completions_total"] == 0
        assert start["dist_queue_pending"] == 1

        grant = call(url, "/lease", {"worker": "w1", "max_cells": 1})
        assert grant["cells"]
        mid = parse_prometheus(fetch_text(url, "/metrics"))
        assert mid["dist_leases_total"] == 1
        assert mid["dist_queue_leased"] == 1

        done = call(url, "/complete",
                    complete_payload(cell, lease=grant["lease"]))
        assert done["accepted"] == 1
        end = parse_prometheus(fetch_text(url, "/metrics"))
        assert end["dist_completions_total"] == 1
        assert end["dist_queue_done"] == 1
        assert end["dist_queue_pending"] == 0
        assert end["dist_uptime_seconds"] > 0

    def test_complete_merges_worker_metric_deltas(self, coordinator):
        coord, url, cell, reg = coordinator
        delta = {
            "pool_items_total": {
                "kind": "counter", "help": "",
                "samples": [[[["mode", "serial"]], 3]],
            },
            "pool_item_seconds": {
                "kind": "histogram", "help": "",
                "samples": [[[], [0.25, 0.5]]],
            },
        }
        call(url, "/complete",
             complete_payload(cell, host="hostA-1", metrics=delta))
        metrics = parse_prometheus(fetch_text(url, "/metrics"))
        assert metrics['pool_items_total{mode="serial"}'] == 3
        assert metrics["pool_item_seconds_count"] == 2
        assert reg.value("pool_items_total", mode="serial") == 3

    def test_malformed_telemetry_never_rejects_completion(self, coordinator):
        coord, url, cell, _reg = coordinator
        bad = {"x": {"kind": "exotic", "samples": [[[], 1]]}}
        done = call(url, "/complete",
                    complete_payload(cell, metrics=bad, spans="not-a-list"))
        assert done["accepted"] == 1
        metrics = parse_prometheus(fetch_text(url, "/metrics"))
        assert metrics["dist_telemetry_rejects_total"] == 1
        assert metrics["dist_completions_total"] == 1

    def test_status_is_enriched(self, coordinator):
        coord, url, cell, _reg = coordinator
        grant = call(url, "/lease", {"worker": "w1", "max_cells": 1})
        call(url, "/renew", {"worker": "w1", "lease": grant["lease"],
                             "done": 0, "total": 1, "label": "p4 N32"})
        status = call(url, "/status")
        assert status["lease_ages_s"] and status["lease_ages_s"][0] >= 0
        assert status["uptime_s"] > 0
        assert status["completion_rate_per_s"] == 0.0
        assert status["eta_s"] is None  # no completions yet: no rate
        assert status["workers"]["w1"]["lag_s"] >= 0
        assert status["workers"]["w1"]["label"] == "p4 N32"

        call(url, "/complete", complete_payload(cell, lease=grant["lease"]))
        status = call(url, "/status")
        assert status["completion_rate_per_s"] > 0
        assert status["eta_s"] == 0.0
        assert status["finished"]

    def test_spans_accumulate_into_fleet_trace(self, coordinator, tmp_path):
        coord, url, cell, _reg = coordinator
        call(url, "/complete",
             complete_payload(cell, host="hostA-1", spans=SPANS_A))
        out = coord.write_fleet_trace(tmp_path / "fleet")
        assert out["spans"] == len(SPANS_A)
        tracer = load_trace(out["trace"])
        assert len(tracer.spans) == len(SPANS_A)
        prom = parse_prometheus(
            (tmp_path / "fleet" / "fleet_metrics.prom").read_text()
        )
        assert prom["dist_completions_total"] == 1


class TestSpawnedFleetArtifacts:
    """One true end-to-end run: two worker subprocesses + trace_dir."""

    @pytest.fixture(autouse=True)
    def _fresh_cache(self):
        clear_cache()
        yield
        clear_cache()

    def test_two_subprocess_workers_write_merged_artifacts(self, tmp_path):
        cells = [(4, 32), (8, 32), (4, 48)]
        with scoped_registry():
            cfg = DistConfig(workers="local,local", poll_s=0.05,
                             lease_ttl=15.0,
                             trace_dir=str(tmp_path / "fleet"))
            results = evaluate_cells(
                "UMD-Cluster", cells, max_evaluations=4,
                store=ResultStore(tmp_path / "store"),
                dispatch="dist", dist=cfg,
            )
        assert {(c.p, c.n) for c in results} == set(cells)

        prom_text = (tmp_path / "fleet" / "fleet_metrics.prom").read_text()
        metrics = parse_prometheus(prom_text)
        assert metrics["dist_completions_total"] == len(cells)
        assert metrics["dist_queue_done"] == len(cells)
        # worker deltas made it back: the fleet did real pool work
        assert metric_total(metrics, "pool_items_total") == len(cells)
        assert metric_total(metrics, "sim_runs_total") > 0

        payload = json.loads(
            (tmp_path / "fleet" / "fleet_trace.json").read_text()
        )
        procs = {e["pid"]: e["args"]["name"]
                 for e in payload["traceEvents"]
                 if e.get("name") == "process_name"}
        # one process group per worker host id, pids from 10 up; both
        # spawned workers are distinct hosts (hostname-pid) even on one
        # machine, though a fast fleet may finish before both lease
        assert procs
        assert sorted(procs) == list(range(10, 10 + len(procs)))
        assert all(name.startswith("worker ") for name in procs.values())
        spans = [e for e in payload["traceEvents"] if e.get("ph") == "X"]
        assert len(spans) == len(cells)

        # the merged trace is a normal trace to the export loader
        tracer = load_trace(tmp_path / "fleet" / "fleet_trace.json")
        assert len(tracer.spans) == len(cells)


def make_dash(feed, **kw):
    """A TopDashboard over scripted (status, metrics_text) pairs; an
    Exception entry is raised from the status fetcher."""
    it = iter(feed)
    state = {}

    def fetch_status():
        state["current"] = next(it)
        if isinstance(state["current"], Exception):
            raise state["current"]
        return state["current"][0]

    def fetch_metrics():
        return state["current"][1]

    out = io.StringIO()
    dash = TopDashboard(
        "http://x:1", interval=0.0, stream=out, sleep=lambda s: None,
        fetch_status=fetch_status, fetch_metrics=fetch_metrics, **kw,
    )
    return dash, out


STATUS = {
    "total": 3, "done": 1, "failed": 0, "pending": 1, "leased": 1,
    "requeues": 2, "duplicates": 0, "lease_ages_s": [4.5],
    "uptime_s": 10.0, "completion_rate_per_s": 0.1, "eta_s": 20.0,
    "workers": {"w1": {"done": 1, "total": 2, "label": "p4 N32",
                       "lag_s": 0.3}},
    "finished": False,
}
METRICS_TEXT = (
    "dist_completions_total 1\n"
    "dist_workers_live 1\n"
    'sim_runs_total{backend="heap"} 5\n'
    'sim_runs_total{backend="list"} 7\n'
)


class TestTopDashboard:
    def test_renders_queue_workers_and_totals(self):
        lines = render_top("http://x:1", STATUS,
                           parse_prometheus(METRICS_TEXT))
        text = "\n".join(lines)
        assert "cells  : 1/3 done ( 33%) | 1 pending | 1 leased" in text
        assert "rate   : 0.10 cells/s | eta 20.0s" in text
        assert "leases : 1 active, oldest 4.5s | 2 requeued" in text
        assert "workers: 1 reporting, 1 live" in text
        assert "w1  1/2  lag 0.3s  p4 N32" in text
        assert "totals : 1 completions | 12 sim runs" in text

    def test_metric_total_sums_label_sets(self):
        metrics = parse_prometheus(METRICS_TEXT)
        assert metric_total(metrics, "sim_runs_total") == 12
        assert metric_total(metrics, "sim") is None

    def test_connected_then_gone_exits_clean(self):
        dash, out = make_dash([
            (STATUS, METRICS_TEXT),
            (STATUS, METRICS_TEXT),
            DistProtocolError("coordinator unreachable"),
        ])
        assert dash.run() == 0
        assert dash.polls == 2
        assert "grid finished" in out.getvalue()

    def test_never_connected_is_an_error(self, capsys):
        dash, _out = make_dash([DistProtocolError("unreachable")])
        assert dash.run() == 4
        assert "error" in capsys.readouterr().err

    def test_unparseable_metrics_is_an_error(self, capsys):
        dash, _out = make_dash([(STATUS, "bogus line without value\n")])
        assert dash.run() == 4
        assert "bad /metrics" in capsys.readouterr().err

    def test_poll_limit_stops_cleanly(self):
        dash, out = make_dash([(STATUS, METRICS_TEXT)] * 5, max_polls=2)
        assert dash.run() == 0
        assert dash.polls == 2
        assert out.getvalue().count("repro top —") == 2
