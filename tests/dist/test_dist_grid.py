"""Distributed dispatch produces byte-identical stores to local runs.

The acceptance contract: ``dispatch="dist"`` (a coordinator serving
cells to ``repro worker`` processes) must yield a ``ResultStore`` and
``EvalStore`` byte-identical to the same grid evaluated with the local
pool, including under a ``--faults`` spec — plus the same
salvage-on-failure behavior.  Most tests here run the worker loop
in-process (a thread calling :func:`repro.dist.run_worker`) so they stay
fast and deterministic; one end-to-end test goes through real spawned
worker subprocesses.
"""

import queue as queue_mod
import threading
from pathlib import Path

import pytest

from repro.bench import clear_cache
from repro.bench.runner import cell_to_dict
from repro.dist import DistConfig, run_worker
from repro.errors import GridInterrupted, ItemFailedError
from repro.exec import ExecPolicy, ResultStore, evaluate_cells
from repro.faults import injected_faults, parse_faults
from repro.tuning.evalstore import EvalStore

BUDGET = 4
GRID = [(4, 32), (8, 32)]
BAD_CELL = (64, 8)  # p > N: evaluate_cell raises ParameterError
FAULTS = "straggler:rank=1,slow=1.5;seed:7"

#: no-backoff policy so failing cells don't sleep out retries
FAST_FAIL = ExecPolicy(retries=0, backoff_s=0.0)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


def dist_run(cells, store=None, eval_store=None, worker_jobs=1,
             n_workers=1, policy=FAST_FAIL, faults=None):
    """Evaluate ``cells`` via dispatch="dist" with in-process workers.

    The coordinator's ``announce`` hands the URL to ``n_workers``
    threads running the real worker loop (lease -> evaluate -> report
    over HTTP); returns (results_or_exc, raised_flag).
    """
    urls: queue_mod.Queue = queue_mod.Queue()
    seen_urls = []

    def fan_url(url):
        seen_urls.append(url)
        for _ in range(n_workers):
            urls.put(url)

    def worker_main():
        run_worker(urls.get(timeout=30), jobs=worker_jobs, poll_s=0.02,
                   policy=policy)

    threads = [
        threading.Thread(target=worker_main, daemon=True)
        for _ in range(n_workers)
    ]
    for t in threads:
        t.start()
    cfg = DistConfig(poll_s=0.02, lease_ttl=10.0, announce=fan_url)
    ctx = injected_faults(faults) if faults else None
    try:
        if ctx:
            ctx.__enter__()
        try:
            results = evaluate_cells(
                "UMD-Cluster", cells, max_evaluations=BUDGET, store=store,
                eval_store=eval_store, dispatch="dist", dist=cfg,
            )
            raised = None
        except GridInterrupted as exc:
            results, raised = None, exc
        for t in threads:
            t.join(timeout=30)
    finally:
        if ctx:
            ctx.__exit__(None, None, None)
    assert seen_urls, "coordinator never announced its URL"
    assert not any(t.is_alive() for t in threads)
    return results, raised


def local_run(cells, store=None, eval_store=None, jobs=1, faults=None):
    if faults:
        with injected_faults(faults):
            return evaluate_cells(
                "UMD-Cluster", cells, jobs=jobs, max_evaluations=BUDGET,
                store=store, eval_store=eval_store,
            )
    return evaluate_cells(
        "UMD-Cluster", cells, jobs=jobs, max_evaluations=BUDGET,
        store=store, eval_store=eval_store,
    )


def store_bytes(path) -> dict[str, bytes]:
    return {f.name: f.read_bytes() for f in Path(path).iterdir()}


class TestByteIdentity:
    def test_dist_matches_local_stores_and_results(self, tmp_path):
        local_store = ResultStore(tmp_path / "local")
        local_evals = EvalStore()
        expected = local_run(GRID, local_store, local_evals)

        clear_cache()
        dist_store = ResultStore(tmp_path / "dist")
        dist_evals = EvalStore()
        got, raised = dist_run(GRID, dist_store, dist_evals)

        assert raised is None
        assert [cell_to_dict(c) for c in got] == [
            cell_to_dict(c) for c in expected
        ]
        assert store_bytes(tmp_path / "dist") == store_bytes(tmp_path / "local")
        assert dist_evals.to_jsonl() == local_evals.to_jsonl()

    def test_dist_under_faults_matches_local(self, tmp_path):
        spec = parse_faults(FAULTS)
        local_store = ResultStore(tmp_path / "local")
        local_evals = EvalStore()
        expected = local_run(GRID, local_store, local_evals, faults=spec)

        clear_cache()
        dist_store = ResultStore(tmp_path / "dist")
        dist_evals = EvalStore()
        got, raised = dist_run(GRID, dist_store, dist_evals, faults=spec)

        assert raised is None
        assert all(c.faults == spec.key() for c in got)
        assert [cell_to_dict(c) for c in got] == [
            cell_to_dict(c) for c in expected
        ]
        assert store_bytes(tmp_path / "dist") == store_bytes(tmp_path / "local")
        assert dist_evals.to_jsonl() == local_evals.to_jsonl()
        # every eval-store record is scoped to the fault spec
        assert dist_evals.to_jsonl().count(f"|faults={spec.key()}") == len(
            dist_evals
        )

    def test_two_workers_match_one(self, tmp_path):
        one_store = ResultStore(tmp_path / "one")
        _, raised = dist_run(GRID + [(4, 48)], one_store, n_workers=1)
        assert raised is None
        clear_cache()
        two_store = ResultStore(tmp_path / "two")
        _, raised = dist_run(GRID + [(4, 48)], two_store, n_workers=2)
        assert raised is None
        assert store_bytes(tmp_path / "two") == store_bytes(tmp_path / "one")


class TestFailuresAndSalvage:
    def test_failing_cell_salvages_completed_ones(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        _, raised = dist_run(GRID + [BAD_CELL], store)
        assert isinstance(raised, GridInterrupted)
        assert set(raised.failures) == {BAD_CELL}
        assert isinstance(raised.failures[BAD_CELL], ItemFailedError)
        assert "ParameterError" in raised.failures[BAD_CELL].cause
        assert {(c.p, c.n) for c in raised.completed} == set(GRID)
        assert {(c.p, c.n) for c in raised.salvaged} == set(GRID)
        assert len(store) == len(GRID)

    def test_resume_after_interrupt_runs_only_missing_cells(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        _, raised = dist_run(GRID + [BAD_CELL], store)
        assert raised is not None
        clear_cache()
        # resume without the bad cell: everything comes from the store,
        # no coordinator is even started (dist_map must not run)
        import repro.dist as dist_pkg

        def explode(*a, **k):  # pragma: no cover - would fail the test
            raise AssertionError("dist_map called despite warm store")

        orig = dist_pkg.dist_map
        dist_pkg.dist_map = explode
        try:
            results = evaluate_cells(
                "UMD-Cluster", GRID, max_evaluations=BUDGET, store=store,
                dispatch="dist", dist=DistConfig(),
            )
        finally:
            dist_pkg.dist_map = orig
        assert {(c.p, c.n) for c in results} == set(GRID)


class TestDispatchSeam:
    def test_unknown_dispatch_rejected(self):
        with pytest.raises(ValueError, match="dispatch"):
            evaluate_cells("UMD-Cluster", GRID, dispatch="carrier-pigeon")

    def test_local_dispatch_is_default_and_unchanged(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        a = local_run(GRID, store)
        clear_cache()
        b = evaluate_cells(
            "UMD-Cluster", GRID, max_evaluations=BUDGET,
            store=store, dispatch="local",
        )
        assert [cell_to_dict(c) for c in a] == [cell_to_dict(c) for c in b]


class TestSubprocessWorkers:
    """One true end-to-end run: coordinator + spawned worker processes."""

    def test_spawned_local_fleet_matches_local_run(self, tmp_path):
        local_store = ResultStore(tmp_path / "local")
        local_evals = EvalStore()
        local_run(GRID, local_store, local_evals, jobs=2)

        clear_cache()
        dist_store = ResultStore(tmp_path / "dist")
        dist_evals = EvalStore()
        cfg = DistConfig(workers="local,local", poll_s=0.05, lease_ttl=15.0)
        results = evaluate_cells(
            "UMD-Cluster", GRID, max_evaluations=BUDGET, store=dist_store,
            eval_store=dist_evals, dispatch="dist", dist=cfg,
        )
        assert {(c.p, c.n) for c in results} == set(GRID)
        assert store_bytes(tmp_path / "dist") == store_bytes(tmp_path / "local")
        assert dist_evals.to_jsonl() == local_evals.to_jsonl()
