"""Chaos tests: dead workers, duplicate/forged completions, restarts.

These drive the :class:`~repro.dist.Coordinator` and the wire protocol
directly (plus one real SIGKILL'd worker process) to prove the failure
story: leases held by dead workers expire and requeue, duplicate and
forged completions cannot corrupt the result set, a lost fleet fails
loud, and a coordinator restart re-simulates zero completed cells.
"""

import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.bench import clear_cache
from repro.bench.runner import cell_key, cell_to_dict, evaluate_cell
from repro.dist import Coordinator, DistConfig, GridJob, dist_map, run_worker
from repro.dist.protocol import call
from repro.errors import (
    DistProtocolError,
    DistWorkersLost,
    ItemTimeoutError,
    ParallelMapError,
)
from repro.exec import ResultStore, evaluate_cells

BUDGET = 4
GRID = [(4, 32), (8, 32)]
SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


def make_coord(cells=GRID, lease_ttl=0.5, store=None):
    todo = [cell_key("UMD-Cluster", p, n, BUDGET) for p, n in cells]
    job = GridJob(
        platform="UMD-Cluster",
        todo=todo,
        labels=[f"UMD-Cluster p{p} N{n}" for p, n in cells],
        lease_ttl=lease_ttl,
    )
    coord = Coordinator(job, DistConfig(), store=store)
    url = coord.start()
    return coord, url


def tick_until(coord, predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.05)
        coord.tick()


class TestLeaseExpiry:
    def test_abandoned_lease_requeues_and_grid_completes(self):
        coord, url = make_coord(lease_ttl=0.4)
        try:
            # a "worker" that leases one cell and is never heard from again
            grant = call(url, "/lease", {"worker": "zombie", "max_cells": 1})
            assert len(grant["cells"]) == 1
            tick_until(coord, lambda: coord.queue.counts()["requeues"] >= 1)
            # a live worker now finishes the whole grid, requeued cell too
            stats = run_worker(url, poll_s=0.05)
            assert stats.cells_done == len(GRID)
            assert coord.queue.finished
            assert all(c is not None for c in coord.outcome())
        finally:
            coord.stop()

    def test_sigkilled_worker_process_lease_requeues(self):
        """A real worker process is SIGKILL'd while renewing its lease."""
        coord, url = make_coord(lease_ttl=0.6)
        zombie = None
        try:
            script = (
                "import sys, time\n"
                "sys.path.insert(0, sys.argv[2])\n"
                "from repro.dist.protocol import call\n"
                "url = sys.argv[1]\n"
                "g = call(url, '/lease',"
                " {'worker': 'doomed', 'max_cells': 1})\n"
                "print('LEASED', flush=True)\n"
                "while True:\n"
                "    time.sleep(0.15)\n"
                "    call(url, '/renew',"
                " {'worker': 'doomed', 'lease': g['lease']}, retries=0)\n"
            )
            zombie = subprocess.Popen(
                [sys.executable, "-c", script, url, SRC],
                stdout=subprocess.PIPE, text=True,
            )
            assert zombie.stdout.readline().strip() == "LEASED"
            # renewals keep the lease alive well past the original TTL
            time.sleep(1.0)
            coord.tick()
            assert coord.queue.counts()["requeues"] == 0
            zombie.send_signal(signal.SIGKILL)
            zombie.wait(timeout=10)
            # ...until the worker dies: renewals stop, the lease expires
            tick_until(coord, lambda: coord.queue.counts()["requeues"] >= 1)
            stats = run_worker(url, poll_s=0.05)
            assert stats.cells_done == len(GRID)
            assert coord.queue.finished
        finally:
            if zombie is not None and zombie.poll() is None:
                zombie.kill()
            coord.stop()


class TestCompletionIntegrity:
    def test_duplicate_completion_is_idempotent(self):
        coord, url = make_coord(cells=[(4, 32)])
        try:
            grant = call(url, "/lease", {"worker": "w", "max_cells": 1})
            cell = evaluate_cell("UMD-Cluster", 4, 32, BUDGET)
            payload = {
                "worker": "w", "lease": grant["lease"],
                "cells": [{"index": 0, "cell": cell_to_dict(cell),
                           "evals": "", "hits": 0}],
            }
            assert call(url, "/complete", payload)["accepted"] == 1
            assert call(url, "/complete", payload)["accepted"] == 0
            counts = coord.queue.counts()
            assert counts["done"] == 1 and counts["duplicates"] == 1
            assert len(coord.outcome()) == 1
        finally:
            coord.stop()

    def test_completion_with_wrong_key_is_rejected(self):
        # a worker under a different ambient fault spec (or a stale
        # grid) computes a cell whose key disagrees: 400, not accepted
        coord, url = make_coord(cells=[(4, 48)])
        try:
            grant = call(url, "/lease", {"worker": "w", "max_cells": 1})
            wrong = evaluate_cell("UMD-Cluster", 4, 32, BUDGET)  # n=32 != 48
            with pytest.raises(DistProtocolError, match="mismatch"):
                call(url, "/complete", {
                    "worker": "w", "lease": grant["lease"],
                    "cells": [{"index": 0, "cell": cell_to_dict(wrong),
                               "evals": "", "hits": 0}],
                })
            assert coord.queue.counts()["done"] == 0
        finally:
            coord.stop()

    def test_unknown_path_and_status_endpoint(self):
        coord, url = make_coord()
        try:
            with pytest.raises(DistProtocolError):
                call(url, "/definitely-not-a-route")
            status = call(url, "/status")
            assert status["total"] == len(GRID)
            assert status["finished"] is False
        finally:
            coord.stop()


class TestFleetLoss:
    def test_fleet_dead_before_connecting_raises(self, monkeypatch):
        class DeadFleet:
            spawned = 2

            def reap(self):
                pass

            def alive(self):
                return 0

            def stderr_tail(self):
                return "\n  worker[0] stderr: boom"

            def terminate(self):
                pass

        monkeypatch.setattr(
            "repro.dist.coordinator.launch_workers",
            lambda url, spec, jobs, token=None: DeadFleet(),
        )
        todo = [cell_key("UMD-Cluster", p, n, BUDGET) for p, n in GRID]
        labels = [f"p{p} N{n}" for p, n in GRID]
        with pytest.raises(DistWorkersLost, match="before connecting"):
            dist_map(
                "UMD-Cluster", todo, labels, None,
                DistConfig(workers="local,local", poll_s=0.05),
            )

    def test_grid_deadline_fails_pending_as_timeouts(self):
        # no workers ever show up; the deadline converts every cell into
        # a recorded timeout failure (salvage path, not a hang)
        todo = [cell_key("UMD-Cluster", p, n, BUDGET) for p, n in GRID]
        labels = [f"p{p} N{n}" for p, n in GRID]
        with pytest.raises(ParallelMapError) as ei:
            dist_map(
                "UMD-Cluster", todo, labels, None,
                DistConfig(poll_s=0.05, timeout_s=0.3),
            )
        assert set(ei.value.failures) == {0, 1}
        assert all(
            isinstance(err, ItemTimeoutError)
            for err in ei.value.failures.values()
        )


class TestCoordinatorRestart:
    def test_restart_serves_only_missing_cells(self, tmp_path):
        """Kill the coordinator mid-grid; the restart re-simulates zero
        completed cells and serves only what the store is missing."""
        cells = GRID + [(4, 48)]
        store = ResultStore(tmp_path / "store")
        coord, url = make_coord(cells=cells, store=store)
        try:
            # one cell completes, then the coordinator "crashes"
            grant = call(url, "/lease", {"worker": "w", "max_cells": 1})
            index = grant["cells"][0]["index"]
            done = evaluate_cell(
                "UMD-Cluster", grant["cells"][0]["p"],
                grant["cells"][0]["n"], grant["cells"][0]["budget"],
            )
            call(url, "/complete", {
                "worker": "w", "lease": grant["lease"],
                "cells": [{"index": index, "cell": cell_to_dict(done),
                           "evals": "", "hits": 0}],
            })
        finally:
            coord.stop()
        assert len(store) == 1
        stored = {f.name: f.read_bytes()
                  for f in (tmp_path / "store").iterdir()}

        # restart: a fresh process would have an empty memo
        clear_cache()
        import repro.dist as dist_pkg

        served = []
        real = dist_pkg.dist_map

        def spy(platform, todo, *args, **kwargs):
            served.append(list(todo))
            return real(platform, todo, *args, **kwargs)

        from .test_dist_grid import dist_run

        dist_pkg.dist_map = spy
        try:
            results, raised = dist_run(cells, store=store)
        finally:
            dist_pkg.dist_map = real
        assert raised is None
        assert {(c.p, c.n) for c in results} == set(cells)
        # only the two missing cells went over the wire...
        assert len(served) == 1 and len(served[0]) == len(cells) - 1
        assert done.key() not in served[0]
        # ...and the pre-crash cell's file was not rewritten differently
        name = next(iter(stored))
        assert (tmp_path / "store" / name).read_bytes() == stored[name]
