"""Bearer-token auth on the dist coordinator (and by extension the
plan server, which reuses the same header/check/401 discipline).

The contract: with ``DistConfig.token`` set, every request must carry
``Authorization: Bearer <token>`` or be rejected with 401 before any
queue state is touched; with no token configured the header is neither
sent nor checked, so existing fleets keep working unchanged.
"""

import pytest

from repro.bench import clear_cache
from repro.bench.runner import cell_key
from repro.dist import Coordinator, DistConfig, GridJob, run_worker
from repro.dist.protocol import call, fetch_text
from repro.errors import DistProtocolError

BUDGET = 4
CELLS = [(4, 32)]


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


def make_coord(token=None):
    todo = [cell_key("UMD-Cluster", p, n, BUDGET) for p, n in CELLS]
    job = GridJob(
        platform="UMD-Cluster",
        todo=todo,
        labels=[f"p{p} N{n}" for p, n in CELLS],
        lease_ttl=5.0,
    )
    coord = Coordinator(job, DistConfig(token=token))
    url = coord.start()
    return coord, url


class TestTokenRequired:
    def test_missing_token_is_401(self):
        coord, url = make_coord(token="s3cret")
        try:
            with pytest.raises(DistProtocolError, match="401"):
                call(url, "/status")
            with pytest.raises(DistProtocolError, match="401"):
                call(url, "/lease", {"worker": "w", "max_cells": 1})
            with pytest.raises(DistProtocolError, match="401"):
                fetch_text(url, "/metrics")
        finally:
            coord.stop()

    def test_wrong_token_is_401_and_counted(self):
        coord, url = make_coord(token="s3cret")
        try:
            with pytest.raises(DistProtocolError, match="401"):
                call(url, "/status", token="wrong")
            metrics = fetch_text(url, "/metrics", token="s3cret")
            lines = dict(
                line.rsplit(" ", 1)
                for line in metrics.splitlines()
                if line and not line.startswith("#")
            )
            assert float(lines["dist_auth_rejects_total"]) >= 1
        finally:
            coord.stop()

    def test_right_token_serves_the_grid(self):
        """An authed worker completes the whole grid end to end."""
        coord, url = make_coord(token="s3cret")
        try:
            assert call(url, "/status", token="s3cret")["finished"] is False
            stats = run_worker(url, poll_s=0.05, token="s3cret")
            assert stats.cells_done == len(CELLS)
            assert coord.queue.finished
        finally:
            coord.stop()

    def test_rejected_request_touches_no_queue_state(self):
        coord, url = make_coord(token="s3cret")
        try:
            with pytest.raises(DistProtocolError, match="401"):
                call(url, "/lease", {"worker": "w", "max_cells": 1})
            assert coord.queue.counts()["leased"] == 0
        finally:
            coord.stop()


class TestTokenDisabled:
    def test_no_token_accepts_everything(self):
        """Auth off: bare requests and requests that volunteer a token
        both pass (the server does not even look at the header)."""
        coord, url = make_coord(token=None)
        try:
            assert call(url, "/status")["finished"] is False
            assert call(url, "/status", token="whatever")["finished"] is False
            stats = run_worker(url, poll_s=0.05)
            assert stats.cells_done == len(CELLS)
        finally:
            coord.stop()
