"""Transport retry with jittered exponential backoff, and the
coordinator's unauthenticated ``/healthz`` probe (DESIGN.md §5.14)."""

import json
import random
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.bench.runner import cell_key
from repro.dist import Coordinator, DistConfig, GridJob
from repro.dist import protocol
from repro.dist.protocol import MAX_BACKOFF_S, _backoff_delay, call, fetch_text
from repro.errors import DistProtocolError, DistUnreachableError
from repro.obs.registry import MetricsRegistry, scoped_registry


class FlakyServer:
    """Answers ``fail_first`` requests with 500, then 200 forever."""

    def __init__(self, fail_first: int, code: int = 500):
        self.requests = 0
        outer = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, *args):
                pass

            def _serve(self):
                outer.requests += 1
                if outer.requests <= fail_first:
                    body = json.dumps({"error": "mid-restart"}).encode()
                    self.send_response(code)
                else:
                    body = json.dumps({"ok": True}).encode()
                    self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            do_GET = do_POST = _serve

        self._srv = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self._thread = threading.Thread(
            target=self._srv.serve_forever, daemon=True
        )
        self._thread.start()
        host, port = self._srv.server_address[:2]
        self.url = f"http://{host}:{port}"

    def stop(self):
        self._srv.shutdown()
        self._srv.server_close()


class TestBackoffShape:
    def test_delay_is_exponential_capped_and_jittered(self, monkeypatch):
        monkeypatch.setattr(protocol, "_jitter", random.Random(42))
        base = 0.2
        for attempt in range(10):
            raw = min(base * 2 ** attempt, MAX_BACKOFF_S)
            delay = _backoff_delay(attempt, base)
            assert raw * 0.5 <= delay < raw
        # deep attempts saturate at the cap (times jitter), not beyond
        assert _backoff_delay(50, base) < MAX_BACKOFF_S


class TestCallRetry:
    def test_transient_5xx_is_retried_and_counted(self):
        srv = FlakyServer(fail_first=2)
        reg = MetricsRegistry()
        delays = []
        try:
            with scoped_registry(reg):
                body = call(srv.url, "/status", retries=3,
                            backoff_s=0.01, sleep=delays.append)
            assert body == {"ok": True}
            assert srv.requests == 3
            assert reg.value("proto_retries_total") == 2
            assert len(delays) == 2
            # jittered exponential: each delay within its attempt's band
            for attempt, delay in enumerate(delays):
                raw = min(0.01 * 2 ** attempt, MAX_BACKOFF_S)
                assert raw * 0.5 <= delay < raw
        finally:
            srv.stop()

    def test_exhausted_retries_raise_unreachable(self):
        srv = FlakyServer(fail_first=99)
        delays = []
        try:
            with pytest.raises(DistUnreachableError, match="unreachable"):
                call(srv.url, "/status", retries=2,
                     backoff_s=0.01, sleep=delays.append)
            assert srv.requests == 3  # 1 try + 2 retries
            assert len(delays) == 2
        finally:
            srv.stop()

    def test_connection_refused_raises_unreachable(self):
        with pytest.raises(DistUnreachableError) as exc_info:
            call("http://127.0.0.1:1", "/status", retries=1,
                 backoff_s=0.01, sleep=lambda s: None)
        # subclasses DistProtocolError: existing handlers keep working
        assert isinstance(exc_info.value, DistProtocolError)

    def test_4xx_rejection_is_not_retried(self):
        srv = FlakyServer(fail_first=99, code=404)
        delays = []
        try:
            with pytest.raises(DistProtocolError, match="404"):
                call(srv.url, "/status", retries=5,
                     backoff_s=0.01, sleep=delays.append)
            assert srv.requests == 1
            assert delays == []
        finally:
            srv.stop()


class TestFetchTextRetry:
    def test_default_is_no_retry(self):
        srv = FlakyServer(fail_first=1)
        try:
            with pytest.raises(DistUnreachableError):
                fetch_text(srv.url, "/metrics")
            assert srv.requests == 1
        finally:
            srv.stop()

    def test_opt_in_retries_ride_out_the_blip(self):
        srv = FlakyServer(fail_first=2)
        reg = MetricsRegistry()
        try:
            with scoped_registry(reg):
                text = fetch_text(srv.url, "/metrics", retries=3,
                                  backoff_s=0.01, sleep=lambda s: None)
            assert json.loads(text) == {"ok": True}
            assert reg.value("proto_retries_total") == 2
        finally:
            srv.stop()


def healthz(url: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(f"{url}/healthz", timeout=10) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestCoordinatorHealthz:
    def make_coord(self, token=None):
        todo = [cell_key("UMD-Cluster", 4, 32, 4)]
        job = GridJob(platform="UMD-Cluster", todo=todo,
                      labels=["UMD-Cluster p4 N32"])
        coord = Coordinator(job, DistConfig(token=token))
        url = coord.start()
        return coord, url

    def test_ready_while_working_unready_when_finished(self):
        coord, url = self.make_coord()
        try:
            code, body = healthz(url)
            assert code == 200
            assert body["live"] is True and body["ready"] is True
            # finish the grid: readiness flips, liveness stays
            coord.queue.lease("w", 1)
            coord.queue.complete(0)
            code, body = healthz(url)
            assert code == 503
            assert body["live"] is True and body["ready"] is False
            assert body["finished"] is True
        finally:
            coord.stop()

    def test_healthz_skips_the_auth_gate(self):
        coord, url = self.make_coord(token="s3cret")
        try:
            code, body = healthz(url)  # no bearer token sent
            assert code == 200 and body["live"] is True
            # every other route still enforces auth
            with pytest.raises(DistProtocolError, match="401"):
                call(url, "/status")
        finally:
            coord.stop()
