"""repro.report edge cases: overpaint ordering, degenerate events,
rank elision, custom glyphs, and occupancy boundaries.

The overpaint regression is the headline: ``render_strip`` used to paint
events in log order, so whichever event came *later in the log* won a
shared cell — sub-character ``Pack``/``Test`` marks vanished under long
neighbours.  Painting is now longest-first (stable sort by descending
duration): the shortest event sharing a cell is drawn last and stays
visible.
"""

import pytest

from repro.report import occupancy, render_strip, render_traces
from repro.simmpi.engine import RankTrace


class TestOverpaintRegression:
    def test_short_event_survives_inside_long_one(self):
        # Pack is fully contained in a long FFTy *logged after it*; with
        # log-order painting FFTy would erase Pack's only cell.
        events = [(0.48, 0.52, "Pack"), (0.0, 1.0, "FFTy")]
        strip = render_strip(events, total=1.0, width=20)
        assert "p" in strip
        assert strip.count("y") == 20 - strip.count("p")

    def test_sub_character_poll_survives_later_long_event(self):
        events = [(0.5, 0.5 + 1e-9, "Test"), (0.0, 1.0, "Wait")]
        strip = render_strip(events, total=1.0, width=20)
        assert strip.count(".") == 1

    def test_equal_durations_keep_log_order(self):
        # Stable sort: same duration -> later-logged event wins the
        # shared boundary cell (the documented pre-existing behavior).
        events = [(0.0, 0.5, "FFTy"), (0.5, 1.0, "Wait")]
        assert render_strip(events, total=1.0, width=10) == "yyyyWWWWWW"

    def test_input_list_not_mutated(self):
        events = [(0.9, 1.0, "Test"), (0.0, 1.0, "FFTy")]
        render_strip(events, total=1.0, width=10)
        assert events[0][2] == "Test"  # sorted() copies; order untouched


class TestDegenerateEvents:
    def test_zero_width_event_gets_one_cell(self):
        strip = render_strip([(0.5, 0.5, "Pack")], total=1.0, width=10)
        assert strip.count("p") == 1

    def test_zero_width_at_timeline_end_stays_in_bounds(self):
        strip = render_strip([(1.0, 1.0, "Pack")], total=1.0, width=10)
        assert len(strip) == 10 and strip.count("p") == 1

    def test_event_past_total_is_clipped(self):
        strip = render_strip([(0.0, 2.0, "FFTy")], total=1.0, width=10)
        assert strip == "y" * 10

    def test_empty_events_blank_strip(self):
        assert render_strip([], total=1.0, width=8) == " " * 8

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError, match="total must be positive"):
            render_strip([(0.0, 1.0, "FFTy")], total=-1.0)


class TestRenderTracesEdges:
    def _traces(self, n):
        return [
            RankTrace(events=[(0.0, 1.0, "FFTy")], by_label={"FFTy": 1.0})
            for _ in range(n)
        ]

    def test_exactly_max_ranks_no_elision_line(self):
        text = render_traces(self._traces(3), 1.0, width=10, max_ranks=3)
        assert "more ranks" not in text
        assert text.count("rank ") == 3

    def test_elision_counts_hidden_ranks(self):
        text = render_traces(self._traces(10), 1.0, width=10, max_ranks=4)
        assert "... (6 more ranks)" in text
        assert text.count("|") == 2 * 4

    def test_events_none_raises_with_hint(self):
        traces = self._traces(2)
        traces[1] = RankTrace(events=None)
        with pytest.raises(ValueError, match="record_events=True"):
            render_traces(traces, 1.0)

    def test_custom_glyphs_flow_into_legend_and_strips(self):
        text = render_traces(
            self._traces(1), 1.0, width=10, glyphs={"FFTy": "@"}
        )
        assert "legend: @=FFTy" in text
        assert "@" * 10 in text

    def test_unknown_label_renders_question_marks(self):
        traces = [RankTrace(events=[(0.0, 1.0, "Nope")])]
        assert "?" * 10 in render_traces(traces, 1.0, width=10)


class TestOccupancyEdges:
    def test_zero_span_events(self):
        assert occupancy([(0.5, 0.5, "Pack")]) == 0.0

    def test_no_matching_labels(self):
        assert occupancy([(0.0, 1.0, "FFTy")], {"Wait"}) == 0.0

    def test_overlapping_events_can_exceed_one(self):
        events = [(0.0, 1.0, "FFTy"), (0.0, 1.0, "Pack")]
        assert occupancy(events) == pytest.approx(2.0)
