"""overlap_table and the per-tile heatmap: traces/metrics -> markdown."""

from repro.bench.runner import CellResult
from repro.obs.tracer import Span
from repro.report import overlap_table
from repro.report.markdown import tile_heatmap, tile_step_durations


def make_cell(metrics):
    return CellResult(
        platform="UMD-Cluster", p=4, n=32,
        times={}, tuning_times={}, params={}, evaluations={},
        metrics=metrics,
    )


def test_renders_one_row_per_variant():
    cell = make_cell({
        "NEW": {"overlap_efficiency_pct": 93.0, "exposed_comm_s": 0.0001,
                "test_calls_per_rank": 120},
        "FFTW": {"overlap_efficiency_pct": 42.0, "exposed_comm_s": 0.002},
    })
    text = overlap_table([cell])
    lines = text.splitlines()
    assert lines[0].startswith("| p | N | variant | overlap eff %")
    # variants sorted; FFTW has no test calls -> 0
    assert "| 4 | 32 | FFTW | 42.000 | 0.002 | 0 |" in text
    assert "| 4 | 32 | NEW | 93.000 | 0.000 | 120 |" in text


def test_pre_observability_cells_skipped():
    assert "no overlap metrics" in overlap_table([make_cell({})])


# -- per-tile heatmap ---------------------------------------------------------

def tile_span(rank, name, tile, duration, t0=0.0):
    return Span(track=f"rank{rank}", name=name, t0=t0, t1=t0 + duration,
                attrs={"tile": tile, "tz": 8, "bytes": 4096})


class TestTileStepDurations:
    def test_means_across_ranks(self):
        spans = [
            tile_span(0, "FFTy", 0, 1.0),
            tile_span(1, "FFTy", 0, 3.0),
            tile_span(0, "Pack", 1, 0.5),
        ]
        per_tile = tile_step_durations(spans)
        assert per_tile[0]["FFTy"] == 2.0  # mean of ranks 0 and 1
        assert per_tile[1] == {"Pack": 0.5}

    def test_spans_without_tile_attr_ignored(self):
        spans = [
            Span(track="rank0", name="FFTy", t0=0.0, t1=1.0),
            Span(track="rank0", name="Wait", t0=0.0, t1=1.0,
                 attrs={"tile": 0}),  # not a tile step
        ]
        assert tile_step_durations(spans) == {}

    def test_accepts_a_tracer(self):
        from repro.obs.tracer import Tracer

        tr = Tracer(rank_spans=True)
        tr.spans.append(tile_span(0, "FFTx", 2, 1.5))
        assert tile_step_durations(tr) == {2: {"FFTx": 1.5}}


class TestTileHeatmap:
    def test_renders_rows_per_tile_with_shades(self):
        spans = [
            tile_span(0, "FFTy", 0, 0.1),
            tile_span(0, "FFTy", 1, 0.4),  # 4x slower: the straggler
            tile_span(0, "Pack", 0, 0.2),
            tile_span(0, "Pack", 1, 0.2),
        ]
        text = tile_heatmap(spans)
        lines = text.splitlines()
        assert lines[0] == "| tile | FFTy (s) | Pack (s) | total (s) |"
        assert len(lines) == 4  # header + rule + 2 tiles
        # the straggling tile shades full within the FFTy column
        assert "0.4000 █" in lines[3]
        # equal Pack times both shade full (peak-normalized)
        assert lines[2].count("0.2000 █") == 1
        assert lines[3].count("0.2000 █") == 1

    def test_missing_step_renders_dash(self):
        spans = [
            tile_span(0, "FFTy", 0, 0.1),
            tile_span(0, "FFTy", 1, 0.2),
            tile_span(0, "Unpack", 1, 0.3),
        ]
        text = tile_heatmap(spans)
        row0 = next(l for l in text.splitlines() if l.startswith("| 0 |"))
        assert "—" in row0

    def test_empty_trace_explains_itself(self):
        assert "no per-tile spans" in tile_heatmap([])

    def test_real_run_produces_tile_spans(self):
        # end-to-end: a traced NEW-variant run emits per-tile spans the
        # heatmap can render
        from repro.core.api import run_case
        from repro.core.params import ProblemShape
        from repro.machine import UMD_CLUSTER
        from repro.obs.tracer import Tracer, tracing

        with tracing(Tracer(rank_spans=True)) as tr:
            run_case("NEW", UMD_CLUSTER, ProblemShape(32, 32, 32, 4))
        per_tile = tile_step_durations(tr)
        assert len(per_tile) >= 2  # tiled pipeline: multiple tiles
        text = tile_heatmap(tr)
        assert text.startswith("| tile |")
        for step in ("FFTy", "Pack", "Unpack", "FFTx"):
            assert step in text
