"""overlap_table: CellResult.metrics -> markdown."""

from repro.bench.runner import CellResult
from repro.report import overlap_table


def make_cell(metrics):
    return CellResult(
        platform="UMD-Cluster", p=4, n=32,
        times={}, tuning_times={}, params={}, evaluations={},
        metrics=metrics,
    )


def test_renders_one_row_per_variant():
    cell = make_cell({
        "NEW": {"overlap_efficiency_pct": 93.0, "exposed_comm_s": 0.0001,
                "test_calls_per_rank": 120},
        "FFTW": {"overlap_efficiency_pct": 42.0, "exposed_comm_s": 0.002},
    })
    text = overlap_table([cell])
    lines = text.splitlines()
    assert lines[0].startswith("| p | N | variant | overlap eff %")
    # variants sorted; FFTW has no test calls -> 0
    assert "| 4 | 32 | FFTW | 42.000 | 0.002 | 0 |" in text
    assert "| 4 | 32 | NEW | 93.000 | 0.000 | 120 |" in text


def test_pre_observability_cells_skipped():
    assert "no overlap metrics" in overlap_table([make_cell({})])
