"""On-disk result store: atomicity, key discipline, corruption handling."""

import json

import pytest

from repro.bench import clear_cache, evaluate_cell
from repro.exec import ResultStore

BUDGET = 4


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


@pytest.fixture
def cell():
    return evaluate_cell("UMD-Cluster", 4, 32, max_evaluations=BUDGET)


class TestResultStore:
    def test_roundtrip(self, tmp_path, cell):
        store = ResultStore(tmp_path / "cells")
        path = store.put(cell)
        assert path.exists()
        assert len(store) == 1
        back = store.get("UMD-Cluster", 4, 32, BUDGET)
        assert back == cell

    def test_missing_key_is_none(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("UMD-Cluster", 4, 32, BUDGET) is None

    def test_corrupt_file_is_a_miss(self, tmp_path, cell):
        store = ResultStore(tmp_path)
        store.put(cell)
        store.path_for(cell.platform, cell.p, cell.n, cell.budget).write_text(
            "{ truncated"
        )
        assert store.get("UMD-Cluster", 4, 32, BUDGET) is None

    def test_mismatched_contents_are_a_miss(self, tmp_path, cell):
        store = ResultStore(tmp_path)
        path = store.put(cell)
        # A file whose *name* claims a different key must not be served.
        impostor = store.path_for(cell.platform, cell.p, 64, cell.budget)
        impostor.write_text(path.read_text())
        assert store.get("UMD-Cluster", 4, 64, BUDGET) is None

    def test_put_is_atomic(self, tmp_path, cell):
        store = ResultStore(tmp_path)
        store.put(cell)
        store.put(cell)  # overwrite goes through the same tmp+rename path
        leftovers = [f for f in store.root.iterdir() if ".tmp." in f.name]
        assert leftovers == []
        assert len(store) == 1

    def test_payload_is_plain_json(self, tmp_path, cell):
        store = ResultStore(tmp_path)
        path = store.put(cell)
        item = json.loads(path.read_text())
        assert item["platform"] == "UMD-Cluster"
        assert item["budget"] == BUDGET
        assert set(item["times"]) == {"FFTW", "NEW", "TH"}
