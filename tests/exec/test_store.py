"""On-disk result store: atomicity, key discipline, corruption handling."""

import json
import threading

import pytest

from repro.bench import clear_cache, evaluate_cell
from repro.exec import ResultStore

BUDGET = 4


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


@pytest.fixture
def cell():
    return evaluate_cell("UMD-Cluster", 4, 32, max_evaluations=BUDGET)


class TestResultStore:
    def test_roundtrip(self, tmp_path, cell):
        store = ResultStore(tmp_path / "cells")
        path = store.put(cell)
        assert path.exists()
        assert len(store) == 1
        back = store.get("UMD-Cluster", 4, 32, BUDGET)
        assert back == cell

    def test_missing_key_is_none(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("UMD-Cluster", 4, 32, BUDGET) is None

    def test_corrupt_file_is_a_miss(self, tmp_path, cell):
        store = ResultStore(tmp_path)
        store.put(cell)
        store.path_for(cell.platform, cell.p, cell.n, cell.budget).write_text(
            "{ truncated"
        )
        assert store.get("UMD-Cluster", 4, 32, BUDGET) is None

    def test_mismatched_contents_are_a_miss(self, tmp_path, cell):
        store = ResultStore(tmp_path)
        path = store.put(cell)
        # A file whose *name* claims a different key must not be served.
        impostor = store.path_for(cell.platform, cell.p, 64, cell.budget)
        impostor.write_text(path.read_text())
        assert store.get("UMD-Cluster", 4, 64, BUDGET) is None

    def test_put_is_atomic(self, tmp_path, cell):
        store = ResultStore(tmp_path)
        store.put(cell)
        store.put(cell)  # overwrite goes through the same tmp+rename path
        leftovers = [f for f in store.root.iterdir() if ".tmp." in f.name]
        assert leftovers == []
        assert len(store) == 1

    def test_payload_is_plain_json(self, tmp_path, cell):
        store = ResultStore(tmp_path)
        path = store.put(cell)
        item = json.loads(path.read_text())
        assert item["platform"] == "UMD-Cluster"
        assert item["budget"] == BUDGET
        assert set(item["times"]) == {"FFTW", "NEW", "TH"}

    def test_counters_and_stats(self, tmp_path, cell):
        store = ResultStore(tmp_path)
        assert store.get("UMD-Cluster", 4, 32, BUDGET) is None
        store.put(cell)
        assert store.get("UMD-Cluster", 4, 32, BUDGET) == cell
        assert store.stats() == {"hits": 1, "misses": 1, "puts": 1}


class TestResultStoreThreads:
    """The serve layer shares one store across handler + job threads
    (DESIGN.md §5.13); these pin the concurrency contract."""

    def test_same_cell_put_storm_stays_readable(self, tmp_path, cell):
        """8 threads putting + getting the same cell: the thread-id'd
        temp names mean no thread ever promotes another's half-written
        file, so every interleaved read sees a complete payload."""
        store = ResultStore(tmp_path)
        threads_n, rounds = 8, 25
        barrier = threading.Barrier(threads_n)
        failures: list[str] = []

        def worker() -> None:
            barrier.wait()
            for _ in range(rounds):
                store.put(cell)
                got = store.get("UMD-Cluster", 4, 32, BUDGET)
                if got != cell:
                    failures.append(f"read back {got!r}")

        threads = [threading.Thread(target=worker) for _ in range(threads_n)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert failures == []
        leftovers = [f for f in store.root.iterdir() if ".tmp." in f.name]
        assert leftovers == []
        stats = store.stats()
        assert stats["puts"] == threads_n * rounds
        assert stats["hits"] == threads_n * rounds
        assert stats["hits"] + stats["misses"] == threads_n * rounds
