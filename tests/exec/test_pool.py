"""Execution layer: worker-count resolution, deterministic sharding.

The contract under test is the one the benchmark drivers rely on:
``evaluate_cells(..., jobs=4)`` returns exactly what ``jobs=1`` returns
— same cells, same order, same numbers — and primes the in-process memo
so the drivers' serial reporting loops never re-tune.
"""

import pytest

from repro.bench import clear_cache, evaluate_cell
from repro.exec import ResultStore, default_jobs, evaluate_cells, parallel_map

GRID = [(4, 32), (4, 48), (8, 32)]
BUDGET = 4


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


def _square(x):
    return x * x  # module-level: must survive pickling into workers


class TestDefaultJobs:
    def test_serial_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert default_jobs(3) == 3

    def test_env_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert default_jobs() == 5

    @pytest.mark.parametrize("spelling", ["0", "auto"])
    def test_zero_and_auto_mean_all_cores(self, monkeypatch, spelling):
        monkeypatch.setenv("REPRO_JOBS", spelling)
        assert default_jobs() >= 1

    def test_floor_is_one(self):
        assert default_jobs(-3) == 1


class TestParallelMap:
    def test_input_order_serial(self):
        assert parallel_map(_square, [(3,), (1,), (2,)], jobs=1) == [9, 1, 4]

    def test_input_order_pooled(self):
        args = [(i,) for i in range(8)]
        assert parallel_map(_square, args, jobs=4) == [i * i for i in range(8)]

    def test_single_item_bypasses_pool(self):
        # A lambda is unpicklable; only the in-process path can run it.
        assert parallel_map(lambda x: x + 1, [(41,)], jobs=4) == [42]


class TestEvaluateCells:
    def _grid(self, jobs):
        clear_cache()
        return evaluate_cells(
            "UMD-Cluster", GRID, jobs=jobs, max_evaluations=BUDGET
        )

    def test_jobs4_identical_to_jobs1(self):
        serial = self._grid(1)
        pooled = self._grid(4)
        assert pooled == serial  # same cells, same order, same numbers

    @pytest.mark.parametrize("platform", ["UMD-Cluster", "Hopper"])
    def test_jobs4_identical_to_jobs1_both_platforms(self, platform):
        # The issue's canonical grid: two platforms x p in {4, 8} x one N.
        grid = [(4, 32), (8, 32)]
        clear_cache()
        serial = evaluate_cells(platform, grid, jobs=1, max_evaluations=BUDGET)
        clear_cache()
        pooled = evaluate_cells(platform, grid, jobs=4, max_evaluations=BUDGET)
        assert pooled == serial

    def test_results_in_input_order(self):
        cells = self._grid(2)
        assert [(c.p, c.n) for c in cells] == GRID
        assert all(c.budget == BUDGET for c in cells)

    def test_primes_the_memo(self):
        cells = self._grid(2)
        # The drivers' serial loops must hit the memo, not re-tune.
        again = evaluate_cell("UMD-Cluster", 4, 32, max_evaluations=BUDGET)
        assert again is cells[0]

    def test_duplicate_cells_evaluated_once(self):
        cells = evaluate_cells(
            "UMD-Cluster", [(4, 32), (4, 32)], jobs=1, max_evaluations=BUDGET
        )
        assert cells[0] is cells[1]

    def test_duplicate_uncached_cells_scheduled_once(self):
        # Regression: duplicate (p, n) inputs used to enqueue two pool
        # items; progress sees one event per item actually evaluated.
        events = []
        cells = evaluate_cells(
            "UMD-Cluster", [(4, 32), (4, 32), (4, 32)], jobs=1,
            max_evaluations=BUDGET,
            progress=lambda done, total, label: events.append((done, total)),
        )
        assert len(cells) == 3
        assert events == [(1, 1)]  # one item scheduled, not three

    def test_store_read_through(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        first = evaluate_cells(
            "UMD-Cluster", GRID, jobs=1, max_evaluations=BUDGET, store=store
        )
        assert len(store) == len(GRID)

        # A fresh process (memo cleared) must be served from the store
        # without a single pool evaluation.
        clear_cache()

        def no_work(fn, argtuples, jobs=None, labels=None, progress=None):
            assert list(argtuples) == []
            return []

        monkeypatch.setattr("repro.exec.pool.parallel_map", no_work)
        second = evaluate_cells(
            "UMD-Cluster", GRID, jobs=1, max_evaluations=BUDGET, store=store
        )
        assert second == first


class TestEvalStorePlumbing:
    """Workers ship their per-evaluation deltas back with the cells."""

    def _grid(self, jobs, evals):
        clear_cache()
        return evaluate_cells(
            "UMD-Cluster", [(4, 32), (8, 32)], jobs=jobs,
            max_evaluations=BUDGET, eval_store=evals,
        )

    def test_cold_run_fills_the_store(self):
        from repro.tuning import EvalStore

        evals = EvalStore()
        self._grid(1, evals)
        assert len(evals) > 0
        assert evals.new_records == len(evals)

    def test_warm_store_serves_worker_evaluations(self):
        from repro.tuning import EvalStore

        evals = EvalStore()
        first = self._grid(1, evals)
        produced = evals.new_records
        second = self._grid(1, evals)  # memo cleared: cells re-tune
        # Same experiment outcome (times, winners, suggestion counts)...
        assert [c.times for c in second] == [c.times for c in first]
        assert [c.params for c in second] == [c.params for c in first]
        assert [c.evaluations for c in second] == [c.evaluations for c in first]
        # ...but the warm session's tuned variants simulated nothing, so
        # their Table-4 tuning cost drops to zero (store hits are free).
        for cell in second:
            assert cell.tuning_times["NEW"] == 0.0
            assert cell.tuning_times["TH"] == 0.0
        assert evals.hits > 0            # workers answered from the pool
        assert evals.new_records == produced  # and produced nothing new

    def test_pooled_identical_to_serial_with_store(self):
        from repro.tuning import EvalStore

        serial_store = EvalStore()
        serial = self._grid(1, serial_store)
        pooled_store = EvalStore()
        pooled = self._grid(4, pooled_store)
        assert pooled == serial
        # Same work shipped back regardless of scheduling.
        assert pooled_store.to_jsonl() == serial_store.to_jsonl()

    def test_run_grid_persists_the_store(self, tmp_path):
        from repro.exec import run_grid
        from repro.tuning import EvalStore

        path = tmp_path / "evals.jsonl"
        clear_cache()
        cells, evals = run_grid(
            "UMD-Cluster", [(4, 32)], jobs=1, max_evaluations=BUDGET,
            eval_store_path=path,
        )
        assert len(cells) == 1
        assert evals is not None and len(evals) > 0
        assert len(EvalStore.load(path)) == len(evals)

    def test_run_grid_without_path_returns_none_store(self):
        from repro.exec import run_grid

        clear_cache()
        cells, evals = run_grid(
            "UMD-Cluster", [(4, 32)], jobs=1, max_evaluations=BUDGET
        )
        assert len(cells) == 1 and evals is None
