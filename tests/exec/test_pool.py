"""Execution layer: worker-count resolution, deterministic sharding.

The contract under test is the one the benchmark drivers rely on:
``evaluate_cells(..., jobs=4)`` returns exactly what ``jobs=1`` returns
— same cells, same order, same numbers — and primes the in-process memo
so the drivers' serial reporting loops never re-tune.
"""

import pytest

from repro.bench import clear_cache, evaluate_cell
from repro.exec import ResultStore, default_jobs, evaluate_cells, parallel_map

GRID = [(4, 32), (4, 48), (8, 32)]
BUDGET = 4


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


def _square(x):
    return x * x  # module-level: must survive pickling into workers


class TestDefaultJobs:
    def test_serial_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert default_jobs(3) == 3

    def test_env_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert default_jobs() == 5

    @pytest.mark.parametrize("spelling", ["0", "auto"])
    def test_zero_and_auto_mean_all_cores(self, monkeypatch, spelling):
        monkeypatch.setenv("REPRO_JOBS", spelling)
        assert default_jobs() >= 1

    def test_floor_is_one(self):
        assert default_jobs(-3) == 1


class TestParallelMap:
    def test_input_order_serial(self):
        assert parallel_map(_square, [(3,), (1,), (2,)], jobs=1) == [9, 1, 4]

    def test_input_order_pooled(self):
        args = [(i,) for i in range(8)]
        assert parallel_map(_square, args, jobs=4) == [i * i for i in range(8)]

    def test_single_item_bypasses_pool(self):
        # A lambda is unpicklable; only the in-process path can run it.
        assert parallel_map(lambda x: x + 1, [(41,)], jobs=4) == [42]


class TestEvaluateCells:
    def _grid(self, jobs):
        clear_cache()
        return evaluate_cells(
            "UMD-Cluster", GRID, jobs=jobs, max_evaluations=BUDGET
        )

    def test_jobs4_identical_to_jobs1(self):
        serial = self._grid(1)
        pooled = self._grid(4)
        assert pooled == serial  # same cells, same order, same numbers

    @pytest.mark.parametrize("platform", ["UMD-Cluster", "Hopper"])
    def test_jobs4_identical_to_jobs1_both_platforms(self, platform):
        # The issue's canonical grid: two platforms x p in {4, 8} x one N.
        grid = [(4, 32), (8, 32)]
        clear_cache()
        serial = evaluate_cells(platform, grid, jobs=1, max_evaluations=BUDGET)
        clear_cache()
        pooled = evaluate_cells(platform, grid, jobs=4, max_evaluations=BUDGET)
        assert pooled == serial

    def test_results_in_input_order(self):
        cells = self._grid(2)
        assert [(c.p, c.n) for c in cells] == GRID
        assert all(c.budget == BUDGET for c in cells)

    def test_primes_the_memo(self):
        cells = self._grid(2)
        # The drivers' serial loops must hit the memo, not re-tune.
        again = evaluate_cell("UMD-Cluster", 4, 32, max_evaluations=BUDGET)
        assert again is cells[0]

    def test_duplicate_cells_evaluated_once(self):
        cells = evaluate_cells(
            "UMD-Cluster", [(4, 32), (4, 32)], jobs=1, max_evaluations=BUDGET
        )
        assert cells[0] is cells[1]

    def test_store_read_through(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        first = evaluate_cells(
            "UMD-Cluster", GRID, jobs=1, max_evaluations=BUDGET, store=store
        )
        assert len(store) == len(GRID)

        # A fresh process (memo cleared) must be served from the store
        # without a single pool evaluation.
        clear_cache()

        def no_work(fn, argtuples, jobs=None, labels=None, progress=None):
            assert list(argtuples) == []
            return []

        monkeypatch.setattr("repro.exec.pool.parallel_map", no_work)
        second = evaluate_cells(
            "UMD-Cluster", GRID, jobs=1, max_evaluations=BUDGET, store=store
        )
        assert second == first
