"""Fault tolerance of the execution layer.

The contracts under test are ISSUE's acceptance checks: a raising item
is retried with exponential backoff and ends in an
:class:`~repro.errors.ItemFailedError` carrying its label and the
worker-side traceback; a timed-out item ends in
:class:`~repro.errors.ItemTimeoutError`; a dead worker triggers a pool
respawn that resubmits only unfinished items (then degrades to serial
when the pool keeps dying); and an interrupted grid salvages every
completed cell so a re-run resumes via store read-through, executing
only the missing ones.  Backoff timing is tested against a fake clock —
no wall-clock waits in the suite.
"""

import os
import time
import warnings

import pytest

from repro.bench import clear_cache
from repro.errors import (
    GridInterrupted,
    ItemFailedError,
    ItemTimeoutError,
    ParallelMapError,
)
from repro.exec import (
    CorruptStoreWarning,
    ExecPolicy,
    ResultStore,
    evaluate_cells,
    parallel_map,
)
from repro.obs.tracer import Tracer, tracing

BUDGET = 4
GRID = [(4, 32), (8, 32)]
BAD_CELL = (64, 8)  # p > N: evaluate_cell raises ParameterError


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


# -- module-level workers (pool items must pickle) --------------------------

def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom {x}")


def _square_or_boom(x):
    if x < 0:
        raise ValueError(f"boom {x}")
    return x * x


def _flaky(counter_dir, x, fail_times):
    """Fail the first ``fail_times`` attempts, then succeed.

    The attempt counter is a file so it survives crossing process
    boundaries — retried pool items may land on a different worker.
    """
    path = os.path.join(counter_dir, f"attempts-{x}")
    with open(path, "a") as f:
        f.write("x\n")
    with open(path) as f:
        attempt = sum(1 for _ in f)
    if attempt <= fail_times:
        raise RuntimeError(f"flaky failure #{attempt}")
    return x * x


class FakeClock:
    """Deterministic clock + sleep recorder for backoff tests."""

    def __init__(self):
        self.t = 0.0
        self.sleeps = []

    def clock(self):
        return self.t

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.t += seconds


def _policy(clk, **kw):
    kw.setdefault("retries", 2)
    kw.setdefault("backoff_s", 0.25)
    kw.setdefault("backoff_factor", 2.0)
    return ExecPolicy(clock=clk.clock, sleep=clk.sleep, **kw)


class TestBackoff:
    def test_exponential_schedule(self):
        policy = ExecPolicy(backoff_s=0.25, backoff_factor=2.0,
                            max_backoff_s=10.0)
        assert policy.backoff(1) == 0.25
        assert policy.backoff(2) == 0.5
        assert policy.backoff(3) == 1.0

    def test_capped_at_max(self):
        policy = ExecPolicy(backoff_s=0.25, backoff_factor=2.0,
                            max_backoff_s=10.0)
        assert policy.backoff(20) == 10.0

    def test_serial_retry_sleeps_the_backoff_sequence(self):
        clk = FakeClock()
        attempts = []

        def fails_twice(x):
            attempts.append(x)
            if len(attempts) <= 2:
                raise RuntimeError("transient")
            return x * x

        out = parallel_map(fails_twice, [(3,)], jobs=1,
                           policy=_policy(clk, retries=3))
        assert out == [9]
        assert len(attempts) == 3
        assert clk.sleeps == [0.25, 0.5]  # backoff(1), backoff(2)


class TestRetriesExhausted:
    def test_failure_carries_label_and_traceback(self):
        clk = FakeClock()
        with tracing(Tracer(rank_spans=False)) as tr:
            with pytest.raises(ParallelMapError) as ei:
                parallel_map(_boom, [(7,)], jobs=1, labels=["the-bad-one"],
                             policy=_policy(clk, retries=2))
        err = ei.value
        assert err.results == [None]
        failure = err.failures[0]
        assert isinstance(failure, ItemFailedError)
        assert not isinstance(failure, ItemTimeoutError)
        assert failure.label == "the-bad-one"
        assert failure.attempts == 3  # first try + 2 retries
        assert "ValueError: boom 7" in failure.cause
        assert "Traceback" in failure.cause
        assert tr.counters["pool.item_errors"] == 3
        assert tr.counters["pool.retries"] == 2

    def test_good_items_survive_a_bad_sibling(self):
        clk = FakeClock()
        with pytest.raises(ParallelMapError) as ei:
            parallel_map(_square_or_boom, [(2,), (-1,), (3,)], jobs=1,
                         policy=_policy(clk, retries=1))
        err = ei.value
        assert err.results == [4, None, 9]  # partial results salvageable
        assert list(err.failures) == [1]

    def test_pool_path_reports_worker_traceback(self):
        with pytest.raises(ParallelMapError) as ei:
            parallel_map(_square_or_boom, [(2,), (-1,)], jobs=2,
                         policy=ExecPolicy(retries=1, backoff_s=0.0))
        failure = ei.value.failures[1]
        assert failure.attempts == 2
        assert "ValueError: boom -1" in failure.cause

    def test_flaky_worker_recovers_on_the_pool_path(self, tmp_path):
        args = [(str(tmp_path), i, 2) for i in range(3)]
        with tracing(Tracer(rank_spans=False)) as tr:
            out = parallel_map(_flaky, args, jobs=2,
                               policy=ExecPolicy(retries=3, backoff_s=0.0))
        assert out == [0, 1, 4]
        assert tr.counters["pool.item_errors"] == 6  # 2 failures x 3 items
        assert tr.counters["pool.retries"] == 6


class TestTimeouts:
    def test_hung_worker_times_out(self):
        # two items: a single item bypasses the pool, and timeouts are
        # only enforceable on the pool path
        with tracing(Tracer(rank_spans=False)) as tr:
            with pytest.raises(ParallelMapError) as ei:
                parallel_map(
                    _square_or_hang, [(-1,), (3,)], jobs=2,
                    labels=["hung", "quick"],
                    policy=ExecPolicy(timeout_s=0.2, retries=1,
                                      backoff_s=0.0),
                )
        err = ei.value
        assert err.results == [None, 9]
        failure = err.failures[0]
        assert isinstance(failure, ItemTimeoutError)
        assert failure.label == "hung"
        assert failure.attempts == 2
        assert "timeout" in failure.cause
        assert tr.counters["pool.timeouts"] == 2

    def test_quick_siblings_finish_despite_a_hung_item(self):
        with pytest.raises(ParallelMapError) as ei:
            parallel_map(
                _square_or_hang, [(3,), (-1,)], jobs=2,
                policy=ExecPolicy(timeout_s=0.3, retries=0),
            )
        err = ei.value
        assert err.results == [9, None]
        assert isinstance(err.failures[1], ItemTimeoutError)


def _square_or_hang(x):
    if x < 0:
        time.sleep(60)
    return x * x


class TestPoolRecovery:
    def test_killed_worker_respawns_and_completes(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_CHAOS", f"kill-once:[1]@{tmp_path}")
        args = [(i,) for i in range(4)]
        with tracing(Tracer(rank_spans=False)) as tr:
            out = parallel_map(_square, args, jobs=2)
        assert out == [0, 1, 4, 9]  # the killed item was resubmitted
        assert tr.counters["pool.respawns"] >= 1
        assert (tmp_path / "chaos-killed").exists()  # chaos fired exactly once

    def test_crashed_grid_matches_fault_free_serial(self, tmp_path,
                                                    monkeypatch):
        # ISSUE acceptance: a grid with an injected worker crash
        # completes after retry with results byte-identical to a
        # fault-free serial run.
        serial = evaluate_cells("UMD-Cluster", GRID, jobs=1,
                                max_evaluations=BUDGET)
        clear_cache()
        monkeypatch.setenv("REPRO_EXEC_CHAOS", f"kill-once:@{tmp_path}")
        crashed = evaluate_cells("UMD-Cluster", GRID, jobs=2,
                                 max_evaluations=BUDGET)
        assert (tmp_path / "chaos-killed").exists()
        assert crashed == serial  # same cells, same order, same numbers

    def test_exhausted_respawns_degrade_to_serial(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_CHAOS", f"kill-once:[0]@{tmp_path}")
        with tracing(Tracer(rank_spans=False)) as tr:
            out = parallel_map(_square, [(i,) for i in range(3)], jobs=2,
                               policy=ExecPolicy(pool_respawns=0))
        assert out == [0, 1, 4]
        assert tr.counters["pool.serial_fallbacks"] == 1


class TestSerialPoolParity:
    """Satellite 6: the serial fallback emits the same telemetry as the
    pool path — same progress events, same counters, same span attrs."""

    def _telemetry(self, jobs):
        events = []
        with tracing(Tracer(rank_spans=False)) as tr:
            parallel_map(_square, [(1,), (2,), (3,)], jobs=jobs,
                         progress=lambda d, t, lbl: events.append((d, t)))
        spans = [s for s in tr.spans if s.track == "pool"]
        return tr, spans, events

    def test_same_progress_and_counters(self):
        tr_s, spans_s, events_s = self._telemetry(jobs=1)
        tr_p, spans_p, events_p = self._telemetry(jobs=2)
        assert events_s == events_p == [(1, 3), (2, 3), (3, 3)]
        assert tr_s.counters["pool.items"] == tr_p.counters["pool.items"] == 3
        assert len(tr_s.histograms["pool.item_s"]) == 3
        assert len(tr_p.histograms["pool.item_s"]) == 3

    def test_same_span_attrs_except_mode(self):
        _, spans_s, _ = self._telemetry(jobs=1)
        _, spans_p, _ = self._telemetry(jobs=2)
        assert len(spans_s) == len(spans_p) == 3
        for span in spans_s + spans_p:
            assert set(span.attrs) == {"mode", "worker_s"}
            assert span.clock == "wall"
        assert {s.attrs["mode"] for s in spans_s} == {"serial"}
        assert {s.attrs["mode"] for s in spans_p} == {"pool"}


class TestGridSalvage:
    def test_interrupt_carries_completed_cells(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(GridInterrupted) as ei:
            evaluate_cells(
                "UMD-Cluster", GRID + [BAD_CELL], jobs=1,
                max_evaluations=BUDGET, store=store,
                policy=ExecPolicy(retries=0, backoff_s=0.0),
            )
        err = ei.value
        assert {(c.p, c.n) for c in err.completed} == set(GRID)
        assert set(err.failures) == {BAD_CELL}
        assert isinstance(err.failures[BAD_CELL], ItemFailedError)
        assert "ParameterError" in err.failures[BAD_CELL].cause
        # the salvaged cells were flushed to the store before raising
        assert len(store) == len(GRID)

    def test_rerun_resumes_via_read_through(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        with pytest.raises(GridInterrupted) as ei:
            evaluate_cells(
                "UMD-Cluster", GRID + [BAD_CELL], jobs=1,
                max_evaluations=BUDGET, store=store,
                policy=ExecPolicy(retries=0, backoff_s=0.0),
            )
        salvaged = {(c.p, c.n): c for c in ei.value.completed}
        clear_cache()  # a fresh process: only the store survives

        submitted = []
        import repro.exec.pool as pool_mod
        real = pool_mod.parallel_map

        def spy(fn, argtuples, jobs=None, labels=None, progress=None, **kw):
            submitted.extend(argtuples)
            return real(fn, argtuples, jobs, labels=labels,
                        progress=progress, **kw)

        monkeypatch.setattr("repro.exec.pool.parallel_map", spy)
        again = evaluate_cells(
            "UMD-Cluster", GRID, jobs=1, max_evaluations=BUDGET, store=store
        )
        assert submitted == []  # zero re-simulated cells: pure read-through
        assert [(c.p, c.n) for c in again] == GRID
        for cell in again:
            assert cell == salvaged[(cell.p, cell.n)]


class TestSalvageDedupe:
    """An interrupted resume separates *newly* salvaged cells from ones
    that were already on disk — the salvage message must not re-claim
    old work as saved."""

    def _interrupt(self, cells, store):
        with pytest.raises(GridInterrupted) as ei:
            evaluate_cells(
                "UMD-Cluster", cells, jobs=1, max_evaluations=BUDGET,
                store=store, policy=ExecPolicy(retries=0, backoff_s=0.0),
            )
        return ei.value

    def test_already_stored_cells_are_not_salvaged_again(self, tmp_path):
        store = ResultStore(tmp_path)
        evaluate_cells("UMD-Cluster", GRID, jobs=1,
                       max_evaluations=BUDGET, store=store)
        clear_cache()
        extra = (4, 48)
        err = self._interrupt(GRID + [extra, BAD_CELL], store)
        # completed reports everything available; salvaged only the news
        assert {(c.p, c.n) for c in err.completed} == set(GRID) | {extra}
        assert {(c.p, c.n) for c in err.salvaged} == {extra}
        assert "1 newly completed cell(s) salvaged" in str(err)
        assert "(2 already stored)" in str(err)
        assert len(store) == len(GRID) + 1

    def test_memo_hits_are_flushed_and_count_as_salvaged(self, tmp_path):
        # warm the in-process memo only; the store starts empty, so the
        # interrupt flush must persist memo hits too
        evaluate_cells("UMD-Cluster", GRID, jobs=1, max_evaluations=BUDGET)
        store = ResultStore(tmp_path)
        err = self._interrupt(GRID + [BAD_CELL], store)
        assert {(c.p, c.n) for c in err.salvaged} == set(GRID)
        assert len(store) == len(GRID)
        assert "already stored" not in str(err)

    def test_salvaged_defaults_to_completed(self):
        sentinel = [object()]
        err = GridInterrupted(sentinel, {})
        assert err.salvaged == sentinel


class TestStoreCorruption:
    """Satellite 2: a truncated or foreign store file is a warned miss."""

    def _filled_store(self, tmp_path):
        store = ResultStore(tmp_path)
        cells = evaluate_cells(
            "UMD-Cluster", GRID, jobs=1, max_evaluations=BUDGET, store=store
        )
        return store, cells

    def test_truncated_file_is_a_warned_miss(self, tmp_path):
        store, cells = self._filled_store(tmp_path)
        path = store.path_for(*cells[0].key())
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # killed mid-record
        with pytest.warns(CorruptStoreWarning, match="corrupt"):
            assert store.get(*cells[0].key()) is None
        # the intact sibling is unaffected
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert store.get(*cells[1].key()) == cells[1]

    def test_grid_recomputes_through_the_corruption(self, tmp_path):
        store, cells = self._filled_store(tmp_path)
        path = store.path_for(*cells[0].key())
        path.write_text(path.read_text()[:40])
        clear_cache()
        with pytest.warns(CorruptStoreWarning):
            again = evaluate_cells(
                "UMD-Cluster", GRID, jobs=1, max_evaluations=BUDGET,
                store=store,
            )
        assert again == cells  # deterministic recompute, same numbers
        # and the recompute repaired the file on disk
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert store.get(*cells[0].key()) == cells[0]

    def test_mismatched_name_is_a_warned_miss(self, tmp_path):
        store, cells = self._filled_store(tmp_path)
        a = store.path_for(*cells[0].key())
        b = store.path_for(*cells[1].key())
        b.write_text(a.read_text())  # file claims a different cell
        with pytest.warns(CorruptStoreWarning, match="does not match"):
            assert store.get(*cells[1].key()) is None

    def test_cells_listing_skips_corrupt_files(self, tmp_path):
        store, cells = self._filled_store(tmp_path)
        path = store.path_for(*cells[0].key())
        path.write_text("{not json")
        with pytest.warns(CorruptStoreWarning):
            readable = store.cells()
        assert [c.key() for c in readable] == [cells[1].key()]


class TestTuningStoreCorruption:
    """Satellite 2, tuning-wisdom side: bad files never take down a run."""

    def _store(self):
        from repro.core.params import ProblemShape, default_params
        from repro.tuning import TuningStore

        shape = ProblemShape(64, 64, 64, 8)
        store = TuningStore()
        store.record("Hopper", "NEW", shape, default_params(shape),
                     fft_time=1.0)
        return store

    def test_truncated_json_yields_empty_store(self, tmp_path):
        from repro.tuning import TuningStore

        path = tmp_path / "wisdom.json"
        path.write_text(self._store().to_json()[:25])
        with pytest.warns(UserWarning, match="unreadable tuning store"):
            assert len(TuningStore.load(path)) == 0

    def test_bad_entry_is_skipped_good_ones_kept(self):
        import json

        from repro.tuning import TuningStore

        raw = json.loads(self._store().to_json())
        raw["Hopper|NEW|32x32x32|p4"] = {"params": {"no_such_field": 1}}
        with pytest.warns(UserWarning, match="skipping corrupt"):
            loaded = TuningStore.from_json(json.dumps(raw))
        assert len(loaded) == 1
        assert loaded.settings() == ["Hopper|NEW|64x64x64|p8"]

    def test_missing_file_is_silently_empty(self, tmp_path):
        from repro.tuning import TuningStore

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert len(TuningStore.load(tmp_path / "nope.json")) == 0
