"""Test-suite configuration.

A fixed Hypothesis profile keeps the property tests deterministic-ish
and avoids deadline flakiness on loaded CI machines (the simulator runs
hundreds of virtual ranks per example, so wall time per example varies).
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")
