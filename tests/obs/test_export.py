"""Exporters and loaders: Chrome trace-event JSON, JSONL, and replay.

The acceptance bar for the Chrome format: ``--trace out.json`` on a run
yields a valid ``traceEvents`` payload whose simulated ranks appear as
separate tracks (pid/tid pairs) with ``"X"`` complete events for the
pipeline steps — loadable by Perfetto / ``chrome://tracing``.
"""

import json

import pytest

from repro.core.api import run_case
from repro.core.params import ProblemShape
from repro.machine import UMD_CLUSTER
from repro.obs import (
    Tracer,
    VIRTUAL,
    WALL,
    chrome_events,
    export_chrome,
    export_jsonl,
    load_trace,
    rank_timelines,
    tracing,
    write_trace,
)


@pytest.fixture(scope="module")
def traced_run():
    """One full traced pipeline run (module-scoped: the sim is slow-ish)."""
    tracer = Tracer(rank_spans=True, meta={"command": "test"})
    with tracing(tracer):
        result, _ = run_case("NEW", UMD_CLUSTER, ProblemShape(64, 64, 64, 4))
    return tracer, result


class TestChromeExport:
    def test_traceevents_structure(self, traced_run, tmp_path):
        tracer, _ = traced_run
        path = tmp_path / "trace.json"
        n = export_chrome(tracer, path)
        payload = json.loads(path.read_text())
        assert set(payload) >= {"traceEvents", "displayTimeUnit", "otherData"}
        assert payload["otherData"]["command"] == "test"
        assert len(payload["traceEvents"]) == n

    def test_ranks_are_tracks_with_pid_tid(self, traced_run):
        tracer, _ = traced_run
        events = chrome_events(tracer)
        meta = [e for e in events if e["ph"] == "M" and e["name"] == "thread_name"]
        rank_tids = {e["args"]["name"]: (e["pid"], e["tid"]) for e in meta
                     if e["args"]["name"].startswith("rank ")}
        # 4 simulated ranks -> 4 virtual-time tracks, tid == rank id
        assert rank_tids == {f"rank {i}": (1, i) for i in range(4)}

    def test_pipeline_steps_are_complete_events(self, traced_run):
        tracer, _ = traced_run
        events = chrome_events(tracer)
        xs = [e for e in events if e["ph"] == "X"]
        names = {e["name"] for e in xs}
        assert {"FFTy", "Pack", "Ialltoall", "Unpack", "FFTx"} <= names
        for e in xs:
            assert e["dur"] >= 0.0 and {"ts", "pid", "tid"} <= set(e)

    def test_step_attrs_survive(self, traced_run):
        tracer, _ = traced_run
        ffty = [e for e in chrome_events(tracer)
                if e["ph"] == "X" and e["name"] == "FFTy"]
        assert ffty and all(
            {"tile", "tz", "bytes"} <= set(e["args"]) for e in ffty
        )

    def test_clock_domains_split_by_pid(self, traced_run):
        tracer, _ = traced_run
        for e in chrome_events(tracer):
            if e["ph"] != "X":
                continue
            assert e["pid"] == (1 if e["cat"] == VIRTUAL else 2)

    def test_summary_instant_event(self, traced_run):
        tracer, _ = traced_run
        instants = [e for e in chrome_events(tracer) if e["ph"] == "I"]
        (summary,) = instants
        assert summary["args"]["sched.handoffs"] > 0


class TestJsonlRoundTrip:
    def test_round_trip_preserves_everything(self, traced_run, tmp_path):
        tracer, _ = traced_run
        path = tmp_path / "trace.jsonl"
        n = export_jsonl(tracer, path)
        assert n == len(path.read_text().splitlines())
        back = load_trace(path)
        assert back.meta["command"] == "test"
        assert len(back.spans) == len(tracer.spans)
        assert back.counters == tracer.counters
        assert back.histograms == tracer.histograms
        a, b = tracer.spans[0], back.spans[0]
        assert (a.track, a.name, a.t0, a.t1, a.clock, a.attrs) == \
               (b.track, b.name, b.t0, b.t1, b.clock, b.attrs)

    def test_chrome_load_recovers_spans(self, traced_run, tmp_path):
        tracer, _ = traced_run
        path = tmp_path / "trace.json"
        export_chrome(tracer, path)
        back = load_trace(path)
        assert len(back.spans) == len(tracer.spans)
        tracks = {sp.track for sp in back.spans}
        assert {f"rank {i}" for i in range(4)} <= tracks
        clocks = {sp.name: sp.clock for sp in back.spans}
        assert clocks["FFTy"] == VIRTUAL

    def test_write_trace_dispatches_on_suffix(self, traced_run, tmp_path):
        tracer, _ = traced_run
        write_trace(tracer, tmp_path / "t.jsonl")
        write_trace(tracer, tmp_path / "t.json")
        first = (tmp_path / "t.jsonl").read_text().splitlines()[0]
        assert json.loads(first)["kind"] == "meta"
        assert "traceEvents" in json.loads((tmp_path / "t.json").read_text())


class TestRankTimelines:
    def test_round_trip_matches_engine_events(self, traced_run, tmp_path):
        tracer, result = traced_run
        path = tmp_path / "t.jsonl"
        write_trace(tracer, path)
        events, total = rank_timelines(load_trace(path))
        assert len(events) == 4
        assert events == [t.events for t in result.sim.traces]
        assert total == pytest.approx(
            max(t1 for evs in events for _t0, t1, _l in evs)
        )

    def test_no_rank_spans(self):
        tr = Tracer()
        tr.add_span("tuning", "tune.eval", 0.0, 1.0, WALL)
        assert rank_timelines(tr) == ([], 0.0)

    def test_missing_rank_gets_empty_timeline(self):
        tr = Tracer()
        tr.add_span("rank 0", "FFTy", 0.0, 1.0, VIRTUAL)
        tr.add_span("rank 2", "FFTy", 0.0, 2.0, VIRTUAL)
        events, total = rank_timelines(tr)
        assert [len(e) for e in events] == [1, 0, 1]
        assert total == 2.0


def test_jsonl_loader_skips_blank_lines(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text(
        '{"kind": "meta", "command": "x"}\n\n'
        '{"kind": "span", "track": "rank 0", "name": "FFTy",'
        ' "t0": 0.0, "t1": 1.0}\n'
    )
    back = load_trace(path)
    assert len(back.spans) == 1 and back.meta["command"] == "x"
