"""Tracing must be free when disabled and inert when enabled.

The acceptance bar (tier 1): with tracing disabled nothing changed at
all, and — stronger — *enabling* a tracer cannot perturb the simulation
either, because instrumentation only reads virtual clocks.  Virtual
times, per-rank event timelines, and per-run ``SchedStats`` must be
bit-identical with and without an installed tracer, on both rank
backends.
"""

import pytest

from repro.core.api import run_case
from repro.core.params import ProblemShape
from repro.machine import UMD_CLUSTER
from repro.obs import (
    Tracer,
    current_tracer,
    reset_sched_totals,
    sched_totals,
    tracing,
)
from repro.simmpi import run_spmd
from repro.simmpi.engine import SchedStats


def prog_overlap(ctx):
    """The paper's manual-progression pattern — exercises every
    scheduler path (handoffs, probe polls, wakeups)."""
    comm = ctx.comm
    req = comm.ialltoall(1 << 22)
    ctx.compute_with_progress(0.004, [(req, 8)], "FFTy")
    yield from comm.co_wait(req, label="Wait")
    total = yield from comm.co_allreduce(ctx.rank, nbytes=8)
    return ctx.now, total


def fingerprint(sim):
    return (
        sim.elapsed,
        sim.results,
        [t.by_label for t in sim.traces],
        [t.events for t in sim.traces],
        (sim.stats.handoffs, sim.stats.probe_polls, sim.stats.wakeups),
    )


@pytest.mark.parametrize("backend", ["threads", "tasks"])
def test_spmd_run_identical_with_and_without_tracer(backend):
    baseline = run_spmd(6, prog_overlap, UMD_CLUSTER,
                        record_events=True, backend=backend)
    with tracing(Tracer(rank_spans=True)) as tr:
        traced = run_spmd(6, prog_overlap, UMD_CLUSTER,
                          record_events=True, backend=backend)
    assert fingerprint(traced) == fingerprint(baseline)
    # ... and the trace actually captured the run it didn't perturb.
    assert tr.counters["sched.handoffs"] == baseline.stats.handoffs
    assert tr.counters["sched.probe_polls"] == baseline.stats.probe_polls
    assert tr.counters["sched.wakeups"] == baseline.stats.wakeups
    assert sum(len(t.events) for t in baseline.traces) == len(tr.spans)


@pytest.mark.parametrize("backend", ["threads", "tasks"])
def test_rank_span_recording_does_not_change_times(backend):
    """rank_spans forces event recording on; that must not move clocks."""
    baseline = run_spmd(6, prog_overlap, UMD_CLUSTER, backend=backend)
    with tracing(Tracer(rank_spans=True)):
        traced = run_spmd(6, prog_overlap, UMD_CLUSTER, backend=backend)
    assert traced.elapsed == baseline.elapsed
    assert [t.by_label for t in traced.traces] == \
           [t.by_label for t in baseline.traces]
    assert (traced.stats.handoffs, traced.stats.probe_polls) == \
           (baseline.stats.handoffs, baseline.stats.probe_polls)


def test_pipeline_run_identical_under_tracing():
    """Full instrumented pipeline: attrs on FFTy/Pack/Unpack/FFTx and
    Ialltoall must not change the simulated result."""
    shape = ProblemShape(64, 64, 64, 4)
    base, _ = run_case("NEW", UMD_CLUSTER, shape)
    with tracing(Tracer(rank_spans=True)):
        traced, _ = run_case("NEW", UMD_CLUSTER, shape)
    assert traced.sim.elapsed == base.sim.elapsed
    assert traced.sim.breakdown() == base.sim.breakdown()


def test_no_tracer_leaks_after_tracing_block():
    with tracing(Tracer()):
        pass
    assert current_tracer() is None


class TestSchedTotals:
    def test_totals_accumulate_and_reset(self):
        reset_sched_totals()
        run_spmd(4, prog_overlap, UMD_CLUSTER)
        totals = sched_totals()
        before = (totals.handoffs, totals.probe_polls, totals.wakeups)
        assert totals.handoffs > 0 and totals.probe_polls > 0
        snap = reset_sched_totals()
        # the snapshot keeps the pre-reset values; the live accumulator
        # (sched_totals() returns the object itself) is zeroed in place
        assert (snap.handoffs, snap.probe_polls, snap.wakeups) == before
        assert (totals.handoffs, totals.probe_polls, totals.wakeups) == (0, 0, 0)

    def test_reset_method_on_stats(self):
        stats = SchedStats(backend="tasks", handoffs=3, probe_polls=2,
                           wakeups=1)
        stats.reset()
        assert (stats.handoffs, stats.probe_polls, stats.wakeups) == (0, 0, 0)
        assert stats.backend == "tasks"

    def test_per_run_stats_isolated_from_totals(self):
        reset_sched_totals()
        a = run_spmd(4, prog_overlap, UMD_CLUSTER)
        b = run_spmd(4, prog_overlap, UMD_CLUSTER)
        # identical runs -> identical per-run counters (no global bleed)
        assert a.stats.handoffs == b.stats.handoffs
        assert sched_totals().handoffs == a.stats.handoffs + b.stats.handoffs
