"""Tracer core: spans, counters, histograms, and the install stack."""

import pytest

from repro.obs import (
    Span,
    Tracer,
    VIRTUAL,
    WALL,
    current_tracer,
    install,
    tracing,
    uninstall,
)


class TestSpans:
    def test_add_span_records_interval(self):
        tr = Tracer()
        tr.add_span("rank 0", "FFTy", 1.0, 2.5, VIRTUAL, {"tile": 3})
        (sp,) = tr.spans
        assert (sp.track, sp.name, sp.t0, sp.t1) == ("rank 0", "FFTy", 1.0, 2.5)
        assert sp.clock == VIRTUAL
        assert sp.attrs == {"tile": 3}
        assert sp.duration == 1.5

    def test_add_span_copies_attrs(self):
        tr = Tracer()
        attrs = {"tile": 0}
        tr.add_span("rank 0", "Pack", 0.0, 1.0, attrs=attrs)
        attrs["tile"] = 99
        assert tr.spans[0].attrs == {"tile": 0}

    def test_span_context_is_wall_clock(self):
        tr = Tracer()
        with tr.span("tune.eval", track="tuning", index=7) as attrs:
            attrs["feasible"] = True
        (sp,) = tr.spans
        assert sp.clock == WALL
        assert sp.track == "tuning"
        assert sp.attrs == {"index": 7, "feasible": True}
        assert sp.t1 >= sp.t0 >= 0.0

    def test_span_context_closes_on_exception(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("boom"):
                raise RuntimeError("body failed")
        assert len(tr.spans) == 1 and tr.spans[0].name == "boom"

    def test_max_spans_drops_and_counts(self):
        tr = Tracer(max_spans=2)
        for i in range(5):
            tr.add_span("t", f"s{i}", i, i + 1)
        assert len(tr.spans) == 2
        assert tr.dropped == 3
        assert tr.summary()["spans_dropped"] == 3


class TestMetrics:
    def test_counters_accumulate(self):
        tr = Tracer()
        tr.count("sched.handoffs", 5)
        tr.count("sched.handoffs")
        assert tr.counters["sched.handoffs"] == 6

    def test_histogram_summary_digest(self):
        tr = Tracer()
        for v in (3.0, 1.0, 2.0):
            tr.observe("pool.item_s", v)
        digest = tr.summary()["pool.item_s"]
        assert digest == {"count": 3, "sum": 6.0, "min": 1.0, "max": 3.0,
                          "p50": 2.0}

    def test_summary_empty_without_drops(self):
        assert Tracer().summary() == {}


class TestRegistry:
    def test_disabled_by_default(self):
        assert current_tracer() is None

    def test_install_uninstall_stack(self):
        a, b = Tracer(), Tracer()
        install(a)
        install(b)
        assert current_tracer() is b
        uninstall(b)
        assert current_tracer() is a
        uninstall(a)
        assert current_tracer() is None

    def test_uninstall_out_of_order_rejected(self):
        a, b = Tracer(), Tracer()
        install(a)
        install(b)
        with pytest.raises(RuntimeError, match="out of order"):
            uninstall(a)
        uninstall(b)
        uninstall(a)

    def test_uninstall_empty_rejected(self):
        with pytest.raises(RuntimeError, match="no tracer"):
            uninstall()

    def test_tracing_context_scopes_and_restores(self):
        with tracing() as tr:
            assert current_tracer() is tr
            with tracing(Tracer(rank_spans=False)) as inner:
                assert current_tracer() is inner
                assert inner.rank_spans is False
            assert current_tracer() is tr
        assert current_tracer() is None

    def test_tracing_restores_on_exception(self):
        with pytest.raises(ValueError):
            with tracing():
                raise ValueError("body failed")
        assert current_tracer() is None


def test_span_dataclass_defaults():
    sp = Span("driver", "x", 0.0, 1.0)
    assert sp.clock == VIRTUAL and sp.attrs == {}
