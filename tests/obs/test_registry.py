"""The telemetry plane's registry substrate (DESIGN.md §5.12).

Pins four contracts:

* **family semantics** — labeled counters/gauges/histograms with kind
  checking and label-order insensitivity;
* **snapshot/delta/merge** — deltas carry only what changed, counters
  and histograms merge additively (order-independent), gauges are
  first-wins, like the eval store's merge discipline;
* **exposition** — the Prometheus text rendering is deterministic
  (golden test) and round-trips through :func:`parse_prometheus`;
* **reset safety** — back-to-back ``evaluate_cells`` runs never leak
  counts into each other or the process-global registry, while a
  caller-installed registry observes exactly one run.
"""

import threading

import pytest

from repro.bench import clear_cache
from repro.exec import evaluate_cells
from repro.obs.registry import (
    MetricsRegistry,
    absorb_tracer,
    count,
    current_registry,
    global_registry,
    metrics_enabled,
    parse_prometheus,
    publish_sched_stats,
    run_registry,
    scoped_registry,
    set_enabled,
)
from repro.obs.tracer import Tracer
from repro.simmpi.engine import SchedStats


class TestFamilies:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("jobs_total", 2)
        reg.inc("jobs_total", 3)
        assert reg.value("jobs_total") == 5

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        reg.inc("x_total", 1, a="1", b="2")
        reg.inc("x_total", 1, b="2", a="1")
        assert reg.value("x_total", b="2", a="1") == 2

    def test_gauge_last_write_wins_locally(self):
        reg = MetricsRegistry()
        reg.set("depth", 3)
        reg.set("depth", 7)
        assert reg.value("depth") == 7

    def test_histogram_collects_samples(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.5)
        reg.observe("lat", 0.1)
        assert reg.value("lat") == [0.5, 0.1]

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.inc("n")
        with pytest.raises(ValueError, match="counter"):
            reg.set("n", 1.0)

    def test_absent_sample_is_none(self):
        reg = MetricsRegistry()
        assert reg.value("nope") is None


class TestSnapshotDeltaMerge:
    def test_delta_carries_only_changes(self):
        reg = MetricsRegistry()
        reg.inc("a_total", 2)
        reg.observe("h", 1.0)
        reg.set("g", 5)
        snap = reg.snapshot()
        reg.inc("a_total", 3)
        reg.observe("h", 2.0)
        reg.inc("b_total", 1)
        delta = reg.delta(snap)
        assert delta["a_total"]["samples"] == [[[], 3.0]]
        assert delta["h"]["samples"] == [[[], [2.0]]]
        assert delta["b_total"]["samples"] == [[[], 1.0]]
        # the gauge ships its current level; unchanged counters drop out
        assert delta["g"]["samples"] == [[[], 5.0]]

    def test_unchanged_registry_has_empty_counter_delta(self):
        reg = MetricsRegistry()
        reg.inc("a_total", 2)
        delta = reg.delta(reg.snapshot())
        assert "a_total" not in delta

    def test_merge_is_additive_for_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n_total", 2)
        b.inc("n_total", 5)
        a.observe("h", 1.0)
        b.observe("h", 2.0)
        target = MetricsRegistry()
        applied = target.merge(a.snapshot()) + target.merge(b.snapshot())
        assert applied == 4
        assert target.value("n_total") == 7
        assert sorted(target.value("h")) == [1.0, 2.0]

    def test_merge_order_cannot_change_counter_totals(self):
        payloads = []
        for n in (2, 5, 11):
            reg = MetricsRegistry()
            reg.inc("n_total", n)
            payloads.append(reg.snapshot())
        fwd, rev = MetricsRegistry(), MetricsRegistry()
        for p in payloads:
            fwd.merge(p)
        for p in reversed(payloads):
            rev.merge(p)
        assert fwd.value("n_total") == rev.value("n_total") == 18

    def test_merged_gauge_is_first_wins(self):
        target = MetricsRegistry()
        target.set("depth", 3)
        other = MetricsRegistry()
        other.set("depth", 99)
        target.merge(other.snapshot())
        assert target.value("depth") == 3

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown metric kind"):
            MetricsRegistry().merge(
                {"x": {"kind": "exotic", "samples": [[[], 1]]}}
            )


class TestExposition:
    def test_render_prometheus_golden(self):
        reg = MetricsRegistry()
        reg.set("depth", 2.5, help="Queue depth.")
        reg.inc("jobs_total", 3, help="Jobs done.", kind="a")
        reg.inc("jobs_total", 1, kind="b")
        reg.observe("latency_seconds", 0.25, help="Item latency.")
        reg.observe("latency_seconds", 0.75)
        assert reg.render_prometheus() == (
            "# HELP depth Queue depth.\n"
            "# TYPE depth gauge\n"
            "depth 2.5\n"
            "# HELP jobs_total Jobs done.\n"
            "# TYPE jobs_total counter\n"
            'jobs_total{kind="a"} 3\n'
            'jobs_total{kind="b"} 1\n'
            "# HELP latency_seconds Item latency.\n"
            "# TYPE latency_seconds summary\n"
            'latency_seconds{quantile="0.5"} 0.75\n'
            'latency_seconds{quantile="1"} 0.75\n'
            "latency_seconds_sum 1\n"
            "latency_seconds_count 2\n"
        )

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.inc("x_total", 1, path='a"b\\c')
        text = reg.render_prometheus()
        assert 'path="a\\"b\\\\c"' in text
        assert parse_prometheus(text)  # still parseable

    def test_parse_round_trip(self):
        reg = MetricsRegistry()
        reg.inc("n_total", 4, host="w1")
        reg.set("depth", 1.5)
        parsed = parse_prometheus(reg.render_prometheus())
        assert parsed == {'n_total{host="w1"}': 4.0, "depth": 1.5}

    def test_parse_rejects_malformed_line_with_lineno(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_prometheus("ok 1\nbogus-line-without-value\n")

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""


class TestScoping:
    def test_current_falls_back_to_global(self):
        assert current_registry() is global_registry()

    def test_scoped_registry_is_thread_local(self):
        seen = {}
        with scoped_registry() as reg:
            assert current_registry() is reg

            def other_thread():
                seen["reg"] = current_registry()

            t = threading.Thread(target=other_thread)
            t.start()
            t.join()
        # the other thread's stack was empty: it saw the global registry
        assert seen["reg"] is global_registry()
        assert current_registry() is global_registry()

    def test_run_registry_reuses_installed_scope(self):
        with scoped_registry() as outer:
            with run_registry() as inner:
                assert inner is outer

    def test_run_registry_pushes_fresh_when_unscoped(self):
        with run_registry() as reg:
            assert reg is not global_registry()
            count("x_total")
            assert reg.value("x_total") == 1
        assert global_registry().value("x_total") is None

    def test_disabled_gate_makes_helpers_noops(self):
        prev = set_enabled(False)
        try:
            assert not metrics_enabled()
            with scoped_registry() as reg:
                count("gated_total")
                assert reg.value("gated_total") is None
        finally:
            set_enabled(prev)


class TestAdapters:
    def test_publish_sched_stats(self):
        stats = SchedStats(backend="heap", handoffs=7, probe_polls=3,
                           wakeups=2)
        with scoped_registry() as reg:
            publish_sched_stats(stats)
        assert reg.value("sim_runs_total", backend="heap") == 1
        assert reg.value("sim_handoffs_total", backend="heap") == 7
        assert reg.value("sim_probe_polls_total", backend="heap") == 3
        assert reg.value("sim_wakeups_total", backend="heap") == 2

    def test_absorb_tracer_sanitizes_names(self):
        tr = Tracer()
        tr.count("pool.items", 4)
        tr.observe("pool.item_s", 0.5)
        reg = MetricsRegistry()
        absorb_tracer(tr, reg)
        assert reg.value("pool_items_total") == 4
        assert reg.value("pool_item_s") == [0.5]


class TestResetSafety:
    """Back-to-back grid runs must never leak counts (the regression
    the per-run registry scope exists for)."""

    @pytest.fixture(autouse=True)
    def _fresh_cache(self):
        clear_cache()
        yield
        clear_cache()

    def test_back_to_back_runs_observe_identical_counts(self):
        with scoped_registry() as first:
            evaluate_cells("UMD-Cluster", [(4, 32)], max_evaluations=2)
        clear_cache()
        with scoped_registry() as second:
            evaluate_cells("UMD-Cluster", [(4, 32)], max_evaluations=2)
        assert first.value("pool_items_total", mode="serial") == 1
        assert (
            second.value("pool_items_total", mode="serial")
            == first.value("pool_items_total", mode="serial")
        )

        # identical runs observed the same number of simulations too
        # (summed across backend labels so the assertion doesn't care
        # which scheduler backend the engine picked)
        def sim_runs(reg):
            rec = reg.snapshot().get("sim_runs_total")
            assert rec is not None
            return sum(v for _key, v in rec["samples"])

        assert sim_runs(first) == sim_runs(second) > 0

    def test_unscoped_run_leaves_global_registry_untouched(self):
        before = global_registry().value("pool_items_total", mode="serial")
        evaluate_cells("UMD-Cluster", [(4, 32)], max_evaluations=2)
        after = global_registry().value("pool_items_total", mode="serial")
        assert after == before
