"""Overlap accounting: run_metrics on simulated runs."""

import pytest

from repro.core.api import run_case
from repro.core.params import ProblemShape
from repro.machine import UMD_CLUSTER
from repro.obs import EXPOSED_LABELS, OVERLAP_LABELS, run_metrics
from repro.simmpi import run_spmd


def test_label_vocabulary():
    assert set(OVERLAP_LABELS) == {"FFTy", "Pack", "Unpack", "FFTx"}
    assert set(EXPOSED_LABELS) == {"Wait", "A2A"}


class TestOnPipelineRuns:
    def test_overlapped_variant_reports_window(self):
        result, _ = run_case("NEW", UMD_CLUSTER, ProblemShape(64, 64, 64, 4))
        m = run_metrics(result.sim)
        bd = result.sim.breakdown()
        assert m["elapsed_s"] == result.sim.elapsed
        assert m["overlap_compute_s"] == pytest.approx(
            sum(bd.get(k, 0.0) for k in OVERLAP_LABELS)
        )
        assert m["exposed_comm_s"] == pytest.approx(
            sum(bd.get(k, 0.0) for k in EXPOSED_LABELS)
        )
        assert 0.0 < m["overlap_efficiency_pct"] <= 100.0
        assert m["sched_handoffs"] > 0
        assert m["sched_backend"] in ("threads", "tasks")

    def test_test_calls_per_rank_from_test_time(self):
        result, _ = run_case("NEW", UMD_CLUSTER, ProblemShape(64, 64, 64, 4))
        m = run_metrics(result.sim)
        overhead = UMD_CLUSTER.cpu.test_overhead
        assert m["test_calls_per_rank"] == round(m["test_time_s"] / overhead)
        assert m["test_calls_per_rank"] > 0

    def test_blocking_baseline_has_exposed_comm(self):
        result, _ = run_case("FFTW", UMD_CLUSTER, ProblemShape(64, 64, 64, 4))
        m = run_metrics(result.sim)
        assert m["exposed_comm_s"] > 0.0
        assert m["test_time_s"] == 0.0


class TestEdgeCases:
    def test_no_window_reports_zero_efficiency(self):
        def compute_only(ctx):
            ctx.compute(0.001, "work")

        sim = run_spmd(2, compute_only, UMD_CLUSTER)
        m = run_metrics(sim)
        assert m["overlap_compute_s"] == 0.0
        assert m["exposed_comm_s"] == 0.0
        assert m["overlap_efficiency_pct"] == 0.0

    def test_fully_exposed_reports_zero_efficiency(self):
        def wait_only(ctx):
            req = ctx.comm.ialltoall(1 << 20)
            ctx.comm.wait(req, label="Wait")

        sim = run_spmd(2, wait_only, UMD_CLUSTER)
        m = run_metrics(sim)
        assert m["exposed_comm_s"] > 0.0
        assert m["overlap_efficiency_pct"] == 0.0
