"""ProgressLine rendering and its wiring through the exec pool."""

import io

from repro.exec.pool import parallel_map
from repro.obs import ProgressLine


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def make(tty=False):
    stream = io.StringIO()
    stream.isatty = lambda: tty
    clock = FakeClock()
    return ProgressLine(stream=stream, clock=clock), stream, clock


class TestProgressLine:
    def test_plain_lines_on_non_tty(self):
        progress, stream, clock = make(tty=False)
        clock.t = 2.0
        progress(1, 4, "cell a")
        clock.t = 4.0
        progress(2, 4, "cell b")
        lines = stream.getvalue().splitlines()
        assert lines[0] == "[1/4]  25% elapsed 2.0s eta 6.0s — cell a"
        assert lines[1] == "[2/4]  50% elapsed 4.0s eta 4.0s — cell b"
        assert progress.updates == 2

    def test_final_update_has_no_eta(self):
        progress, stream, clock = make()
        clock.t = 8.0
        progress(4, 4, "done")
        assert "eta" not in stream.getvalue()
        assert "[4/4] 100%" in stream.getvalue()

    def test_tty_rewrites_in_place(self):
        progress, stream, clock = make(tty=True)
        clock.t = 1.0
        progress(1, 2, "a")
        clock.t = 2.0
        progress(2, 2, "b")
        out = stream.getvalue()
        assert out.count("\r\x1b[K") == 2
        assert out.endswith("\n")  # completion terminates the line

    def test_close_terminates_partial_tty_line(self):
        progress, stream, clock = make(tty=True)
        progress(1, 3, "a")
        assert not stream.getvalue().endswith("\n")
        progress.close()
        assert stream.getvalue().endswith("\n")
        progress.close()  # idempotent

    def test_disabled_is_noop(self):
        stream = io.StringIO()
        progress = ProgressLine(stream=stream, enabled=False)
        progress(1, 2, "a")
        assert stream.getvalue() == "" and progress.updates == 0

    def test_zero_total_is_noop(self):
        progress, stream, _ = make()
        progress(0, 0)
        assert stream.getvalue() == ""

    def test_long_durations_format_as_minutes_hours(self):
        progress, stream, clock = make()
        clock.t = 90.0
        progress(1, 3, "a")
        assert "elapsed 1.5m eta 3.0m" in stream.getvalue()
        clock.t = 5400.0
        progress(2, 3, "b")
        assert "elapsed 1.5h" in stream.getvalue()


class TestNotes:
    def test_note_rides_along_with_updates(self):
        progress, stream, clock = make(tty=False)
        progress.set_note("2 worker(s) a:1/2")
        clock.t = 2.0
        progress(1, 4, "cell a")
        assert "cell a [2 worker(s) a:1/2]" in stream.getvalue()

    def test_no_note_no_brackets(self):
        progress, stream, _ = make(tty=False)
        progress(1, 4, "cell a")
        assert "[1/4]" in stream.getvalue()
        assert "] [" not in stream.getvalue()

    def test_tty_note_change_redraws_immediately(self):
        progress, stream, _ = make(tty=True)
        progress(1, 4, "cell a")
        before = progress.updates
        progress.set_note("fleet alive")
        assert progress.updates == before + 1
        assert stream.getvalue().endswith("cell a [fleet alive]")

    def test_unchanged_note_does_not_redraw(self):
        progress, stream, _ = make(tty=True)
        progress(1, 4, "cell a")
        progress.set_note("same")
        before = progress.updates
        progress.set_note("same")
        assert progress.updates == before

    def test_note_before_first_update_is_safe_on_pipe(self):
        # on a pipe (no redraw) a note set before any completion event
        # must not write anything by itself
        progress, stream, _ = make(tty=False)
        progress.set_note("early")
        assert stream.getvalue() == ""

    def test_note_before_first_update_is_safe_on_tty(self):
        progress, stream, _ = make(tty=True)
        progress.set_note("early")
        assert stream.getvalue() == ""  # nothing to redraw yet


def _double(x):
    return 2 * x


class TestPoolProgress:
    def test_serial_path_reports_each_item(self):
        seen = []
        out = parallel_map(
            _double, [(1,), (2,), (3,)], jobs=1,
            labels=["a", "b", "c"],
            progress=lambda done, total, label: seen.append(
                (done, total, label)
            ),
        )
        assert out == [2, 4, 6]
        assert seen == [(1, 3, "a"), (2, 3, "b"), (3, 3, "c")]

    def test_pool_path_reports_each_completion(self):
        seen = []
        out = parallel_map(
            _double, [(i,) for i in range(4)], jobs=2,
            progress=lambda done, total, label: seen.append((done, total)),
        )
        assert out == [0, 2, 4, 6]  # input order regardless of completion
        assert [d for d, _t in seen] == [1, 2, 3, 4]
        assert all(t == 4 for _d, t in seen)

    def test_default_labels(self):
        labels = []
        parallel_map(
            _double, [(1,), (2,)], jobs=1,
            progress=lambda _d, _t, label: labels.append(label),
        )
        assert labels == ["_double[0]", "_double[1]"]
