"""run_spmd / SimResult surface."""

import pytest

from repro.machine import HOPPER, UMD_CLUSTER
from repro.simmpi import SimResult, run_spmd


class TestRunSpmd:
    def test_args_and_kwargs_forwarded(self):
        def prog(ctx, a, b, scale=1):
            return (a + b) * scale + ctx.rank

        res = run_spmd(3, prog, UMD_CLUSTER, 1, 2, scale=10)
        assert res.results == [30, 31, 32]

    def test_platform_recorded(self):
        res = run_spmd(2, lambda ctx: None, HOPPER)
        assert res.platform.name == "Hopper"
        assert res.nprocs == 2

    def test_traces_one_per_rank(self):
        res = run_spmd(5, lambda ctx: ctx.compute(0.1, "w"), UMD_CLUSTER)
        assert len(res.traces) == 5
        assert all(tr.by_label["w"] == pytest.approx(0.1) for tr in res.traces)

    def test_breakdown_average_semantics(self):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.compute(1.0, "hot")
            ctx.comm.barrier()

        res = run_spmd(4, prog, UMD_CLUSTER)
        # Average over ranks: only one rank did the work.
        assert res.breakdown()["hot"] == pytest.approx(0.25)
        assert res.max_by_label("hot") == pytest.approx(1.0)

    def test_elapsed_vs_breakdown_consistency(self):
        def prog(ctx):
            ctx.compute(0.2, "a")
            ctx.comm.barrier()

        res = run_spmd(3, prog, UMD_CLUSTER)
        assert res.elapsed >= 0.2

    def test_zero_work_program(self):
        res = run_spmd(4, lambda ctx: ctx.rank, UMD_CLUSTER)
        assert res.elapsed == 0.0
        assert res.results == [0, 1, 2, 3]

    def test_simresult_is_plain_dataclass(self):
        res = run_spmd(1, lambda ctx: None, UMD_CLUSTER)
        assert isinstance(res, SimResult)
        assert res.breakdown([]) == {}
