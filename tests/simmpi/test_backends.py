"""Thread-vs-tasks backend equivalence.

The engine promises bit-identical virtual-time results between its two
rank substrates (DESIGN.md "Execution layer").  Every scenario here is
written once as a generator SPMD function using the ``co_*`` comm
spellings, run on both backends, and compared exactly: elapsed time,
per-rank results, traces, event timelines, and scheduler counters.
The thread backend executes the very same generator through the
``Engine.drive`` trampoline, so any scheduling divergence shows up as a
counter or clock mismatch.
"""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.machine import UMD_CLUSTER
from repro.simmpi import Engine, run_spmd


def run_both(nprocs, fn, *args, record_events=False, **kwargs):
    a = run_spmd(nprocs, fn, UMD_CLUSTER, *args,
                 record_events=record_events, backend="threads", **kwargs)
    b = run_spmd(nprocs, fn, UMD_CLUSTER, *args,
                 record_events=record_events, backend="tasks", **kwargs)
    return a, b


def assert_identical(a, b):
    assert a.stats.backend == "threads" and b.stats.backend == "tasks"
    assert a.elapsed == b.elapsed
    assert a.results == b.results
    assert [t.by_label for t in a.traces] == [t.by_label for t in b.traces]
    assert [t.events for t in a.traces] == [t.events for t in b.traces]
    assert a.stats.handoffs == b.stats.handoffs
    assert a.stats.probe_polls == b.stats.probe_polls


# -- SPMD generator programs -------------------------------------------------


def prog_compute(ctx):
    ctx.compute(0.001 * (ctx.rank + 1), "work")
    return ctx.now
    yield  # pragma: no cover - marks this as a generator function


def prog_ring(ctx):
    comm = ctx.comm
    right = (ctx.rank + 1) % ctx.size
    yield from comm.co_send(right, 1 << 20, payload=ctx.rank)
    payload, src, _tag, _nb = yield from comm.co_recv()
    return payload, src


def prog_sendrecv(ctx):
    comm = ctx.comm
    right = (ctx.rank + 1) % ctx.size
    left = (ctx.rank - 1) % ctx.size
    payload, src, _t, _nb = yield from comm.co_sendrecv(
        right, 4096, payload=ctx.rank, source=left
    )
    return payload, src


def prog_collectives(ctx):
    comm = ctx.comm
    ctx.compute(0.0005 * ctx.rank, "skew")
    yield from comm.co_barrier()
    root_val = yield from comm.co_bcast("hello" if ctx.rank == 0 else None,
                                        nbytes=64)
    total = yield from comm.co_allreduce(ctx.rank, nbytes=8)
    gathered = yield from comm.co_gather(ctx.rank * 10, nbytes=8)
    everything = yield from comm.co_allgather(ctx.now, nbytes=8)
    mine = yield from comm.co_scatter(
        list(range(ctx.size)) if ctx.rank == 0 else None, nbytes=8
    )
    return root_val, total, gathered, len(everything), mine


def prog_overlap(ctx):
    """Ialltoall progressed during compute, finished with co_wait — the
    paper's manual-progression pattern."""
    comm = ctx.comm
    req = comm.ialltoall(1 << 22)
    ctx.compute_with_progress(0.004, [(req, 8)], "FFTy")
    yield from comm.co_wait(req, label="Wait")
    req2 = comm.ialltoall(1 << 20)
    while True:
        flag, _ = yield from comm.co_test(req2)
        if flag:
            break
        ctx.compute(0.0002, "poll-work")
    return ctx.now


def prog_split(ctx):
    comm = ctx.comm
    half = yield from comm.co_split(ctx.rank % 2)
    local_sum = yield from half.co_allreduce(ctx.rank, nbytes=8)
    yield from comm.co_barrier()
    return half.size, local_sum


def prog_failing(ctx):
    ctx.compute(0.001, "work")
    if ctx.rank == 1:
        raise ValueError("rank 1 exploded")
    yield from ctx.comm.co_barrier()


def prog_deadlock(ctx):
    if ctx.rank == 0:
        yield from ctx.comm.co_recv(source=1)


# -- equivalence -------------------------------------------------------------


class TestBackendEquivalence:
    @pytest.mark.parametrize("prog,p", [
        (prog_compute, 4),
        (prog_ring, 4),
        (prog_sendrecv, 5),
        (prog_collectives, 4),
        (prog_collectives, 7),
        (prog_overlap, 8),
        (prog_split, 6),
    ])
    def test_bit_identical(self, prog, p):
        a, b = run_both(p, prog, record_events=True)
        assert_identical(a, b)

    def test_exception_wrapped_same_way(self):
        for backend in ("threads", "tasks"):
            with pytest.raises(SimulationError, match="rank 1 failed") as exc:
                run_spmd(4, prog_failing, UMD_CLUSTER, backend=backend)
            assert isinstance(exc.value.__cause__, ValueError)

    def test_deadlock_detected_on_both(self):
        for backend in ("threads", "tasks"):
            with pytest.raises(DeadlockError):
                run_spmd(2, prog_deadlock, UMD_CLUSTER, backend=backend)


class TestBackendSelection:
    def test_auto_picks_tasks_for_generators(self):
        sim = run_spmd(4, prog_ring, UMD_CLUSTER)
        assert sim.stats.backend == "tasks"

    def test_auto_picks_threads_for_plain_callables(self):
        def plain(ctx):
            ctx.comm.barrier()
            return ctx.rank

        sim = run_spmd(4, plain, UMD_CLUSTER)
        assert sim.stats.backend == "threads"
        assert sim.results == [0, 1, 2, 3]

    def test_tasks_backend_rejects_plain_callables(self):
        with pytest.raises(SimulationError, match="generator"):
            run_spmd(4, lambda ctx: ctx.rank, UMD_CLUSTER, backend="tasks")

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError, match="backend"):
            Engine(2, UMD_CLUSTER, backend="fibers")

    def test_sync_facade_rejected_on_tasks_backend(self):
        def bad(ctx):
            ctx.comm.barrier()  # sync spelling inside a generator program
            yield from ctx.comm.co_barrier()

        with pytest.raises(SimulationError, match="rank .* failed") as exc:
            run_spmd(2, bad, UMD_CLUSTER, backend="tasks")
        assert isinstance(exc.value.__cause__, SimulationError)
        assert "co_" in str(exc.value.__cause__)

    def test_stats_counters_populated(self):
        sim = run_spmd(4, prog_overlap, UMD_CLUSTER)
        assert sim.stats.handoffs > 0
        assert sim.stats.probe_polls > 0


# -- pencil (2-D decomposition) pipeline --------------------------------------


def prog_pencil(ctx):
    from repro.core.pencil import PencilFFT3D

    plan = PencilFFT3D(ctx, (32, 32, 32))
    yield from plan.steps(None)
    return ctx.now


def prog_pencil_real(ctx, blocks, shape, grid):
    from repro.core.pencil import PencilFFT3D

    plan = PencilFFT3D(ctx, shape, grid)
    return (yield from plan.steps(blocks[ctx.rank]))


class TestPencilBackends:
    """The pencil pipeline's co_* spelling is bit-identical across
    backends — including its lazy collective sub-communicator splits."""

    def test_virtual_pencil_bit_identical(self):
        a, b = run_both(4, prog_pencil, record_events=True)
        assert_identical(a, b)

    def test_virtual_pencil_bit_identical_odd_grid(self):
        # 6 ranks -> 2x3 grid: uneven slabs in both exchanges
        a, b = run_both(6, prog_pencil, record_events=True)
        assert_identical(a, b)

    def test_real_pencil_bit_identical_and_correct(self):
        import numpy as np

        from repro.core.pencil import (
            choose_grid,
            gather_spectrum,
            scatter_pencils,
        )

        rng = np.random.default_rng(7)
        shape = (8, 8, 8)
        arr = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
        grid = choose_grid(4)
        blocks = scatter_pencils(arr, *grid)
        a, b = run_both(4, prog_pencil_real, blocks, shape, grid)
        assert a.elapsed == b.elapsed
        spec_a = gather_spectrum(a.results, shape, *grid)
        spec_b = gather_spectrum(b.results, shape, *grid)
        np.testing.assert_array_equal(spec_a, spec_b)
        np.testing.assert_allclose(spec_a, np.fft.fftn(arr), atol=1e-10)

    def test_auto_backend_is_tasks_for_pencil_generator(self):
        sim = run_spmd(4, prog_pencil, UMD_CLUSTER)
        assert sim.stats.backend == "tasks"

    def test_execute_still_works_in_plain_callables(self):
        from repro.core.pencil import PencilFFT3D

        def plain(ctx):
            PencilFFT3D(ctx, (32, 32, 32)).execute(None)
            return ctx.now

        sim = run_spmd(4, plain, UMD_CLUSTER)
        assert sim.stats.backend == "threads"
        gen = run_spmd(4, prog_pencil, UMD_CLUSTER, backend="tasks")
        assert sim.results == gen.results
        assert sim.elapsed == gen.elapsed
