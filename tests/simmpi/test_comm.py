"""Communicator semantics: p2p, collectives, payloads, split."""

import numpy as np
import pytest

from repro.errors import MPIUsageError
from repro.machine import HOPPER, UMD_CLUSTER
from repro.simmpi import run_spmd


class TestPointToPoint:
    def test_ring_payload(self):
        def prog(ctx):
            c = ctx.comm
            c.send((c.rank + 1) % c.size, 128, payload=("hi", c.rank))
            data, src, tag, nb = c.recv()
            assert data == ("hi", src)
            assert nb == 128
            return src

        res = run_spmd(4, prog, UMD_CLUSTER)
        assert res.results == [3, 0, 1, 2]

    def test_tag_matching_skips_other_tags(self):
        def prog(ctx):
            c = ctx.comm
            if c.rank == 0:
                c.send(1, 8, payload="a", tag=5)
                c.send(1, 8, payload="b", tag=9)
            else:
                data, _, tag, _ = c.recv(source=0, tag=9)
                assert (data, tag) == ("b", 9)
                data, _, tag, _ = c.recv(source=0, tag=5)
                assert (data, tag) == ("a", 5)

        run_spmd(2, prog, UMD_CLUSTER)

    def test_fifo_same_tag(self):
        def prog(ctx):
            c = ctx.comm
            if c.rank == 0:
                for i in range(5):
                    c.send(1, 8, payload=i)
            else:
                got = [c.recv(source=0)[0] for _ in range(5)]
                assert got == list(range(5))

        run_spmd(2, prog, UMD_CLUSTER)

    def test_any_source(self):
        def prog(ctx):
            c = ctx.comm
            if c.rank == 0:
                seen = {c.recv()[1] for _ in range(c.size - 1)}
                assert seen == {1, 2, 3}
            else:
                ctx.compute(1e-4 * c.rank)
                c.send(0, 64, payload=c.rank)

        run_spmd(4, prog, UMD_CLUSTER)

    def test_sendrecv_exchange(self):
        def prog(ctx):
            c = ctx.comm
            peer = c.size - 1 - c.rank
            data, src, _, _ = c.sendrecv(peer, 32, payload=c.rank, source=peer)
            assert data == peer and src == peer

        run_spmd(4, prog, UMD_CLUSTER)

    def test_message_takes_time(self):
        def prog(ctx):
            c = ctx.comm
            if c.rank == 0:
                c.send(1, 10 * 1024 * 1024)
                return ctx.now
            t0 = ctx.now
            c.recv(source=0)
            return ctx.now - t0

        res = run_spmd(2, prog, UMD_CLUSTER)
        # 10 MB at ~100 MB/s effective must cost on the order of 0.1 s.
        assert res.results[1] > 0.01

    def test_bad_destination(self):
        def prog(ctx):
            ctx.comm.send(7, 8)

        with pytest.raises(Exception):
            run_spmd(2, prog, UMD_CLUSTER)

    def test_isend_irecv(self):
        def prog(ctx):
            c = ctx.comm
            sreq = c.isend((c.rank + 1) % c.size, 64, payload=c.rank)
            rreq = c.irecv()
            c.wait(sreq)
            payload, src, _, _ = c.wait(rreq)
            assert payload == (c.rank - 1) % c.size

        run_spmd(3, prog, UMD_CLUSTER)

    def test_request_reuse_rejected(self):
        def prog(ctx):
            c = ctx.comm
            req = c.isend(c.rank, 8) if False else c.ialltoall(8)
            c.wait(req)
            c.wait(req)

        with pytest.raises(Exception) as ei:
            run_spmd(2, prog, UMD_CLUSTER)
        assert "already waited" in str(ei.value.__cause__)


class TestCollectives:
    def test_barrier_synchronizes_clocks(self):
        def prog(ctx):
            ctx.compute(0.01 * ctx.rank)
            ctx.comm.barrier()
            return ctx.now

        res = run_spmd(4, prog, UMD_CLUSTER)
        assert max(res.results) - min(res.results) < 1e-12
        assert min(res.results) >= 0.03  # slowest rank dominates

    def test_bcast(self):
        def prog(ctx):
            val = {"config": 42} if ctx.rank == 1 else None
            return ctx.comm.bcast(payload=val, nbytes=256, root=1)

        res = run_spmd(4, prog, UMD_CLUSTER)
        assert res.results == [{"config": 42}] * 4

    def test_reduce_custom_op(self):
        def prog(ctx):
            return ctx.comm.reduce(ctx.rank + 1, op=lambda a, b: a * b, root=0)

        res = run_spmd(4, prog, UMD_CLUSTER)
        assert res.results[0] == 24

    def test_allreduce_arrays(self):
        def prog(ctx):
            return ctx.comm.allreduce(np.full(3, ctx.rank), nbytes=24)

        res = run_spmd(3, prog, UMD_CLUSTER)
        for arr in res.results:
            assert np.array_equal(arr, np.full(3, 3))

    def test_gather_and_allgather(self):
        def prog(ctx):
            g = ctx.comm.gather(ctx.rank**2, root=2)
            ag = ctx.comm.allgather(ctx.rank)
            return g, ag

        res = run_spmd(3, prog, UMD_CLUSTER)
        assert res.results[2][0] == [0, 1, 4]
        assert res.results[0][0] is None
        assert all(r[1] == [0, 1, 2] for r in res.results)

    def test_scatter(self):
        def prog(ctx):
            vals = [f"item{i}" for i in range(ctx.size)] if ctx.rank == 0 else None
            return ctx.comm.scatter(vals, nbytes=16, root=0)

        res = run_spmd(3, prog, UMD_CLUSTER)
        assert res.results == ["item0", "item1", "item2"]

    def test_scatter_root_must_supply_values(self):
        def prog(ctx):
            ctx.comm.scatter(None, root=0)

        with pytest.raises(Exception):
            run_spmd(2, prog, UMD_CLUSTER)

    def test_collective_kind_mismatch_detected(self):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.comm.barrier()
            else:
                ctx.comm.allreduce(1)

        with pytest.raises(Exception) as ei:
            run_spmd(2, prog, UMD_CLUSTER)
        assert "mismatch" in str(ei.value.__cause__)


class TestAlltoall:
    def test_blocking_payload_routing(self):
        def prog(ctx):
            c = ctx.comm
            chunks = [np.array([c.rank, d]) for d in range(c.size)]
            out = c.alltoall(16, payload=chunks)
            for s, arr in enumerate(out):
                assert arr[0] == s and arr[1] == c.rank

        run_spmd(5, prog, UMD_CLUSTER)

    def test_alltoallv_counts(self):
        def prog(ctx):
            c = ctx.comm
            send = [16 * (d + 1) for d in range(c.size)]
            recv = [16 * (c.rank + 1)] * c.size
            req = c.ialltoallv(send, recv)
            c.wait(req)
            return ctx.now

        res = run_spmd(3, prog, UMD_CLUSTER)
        assert all(t > 0 for t in res.results)

    def test_counts_length_validated(self):
        def prog(ctx):
            ctx.comm.ialltoall([8, 8, 8])  # size is 2

        with pytest.raises(Exception):
            run_spmd(2, prog, UMD_CLUSTER)

    def test_negative_counts_rejected(self):
        def prog(ctx):
            ctx.comm.ialltoall([-1, 8])

        with pytest.raises(Exception):
            run_spmd(2, prog, UMD_CLUSTER)

    def test_progression_hides_communication(self):
        """With enough compute and tests, Wait shrinks to (near) zero;
        with no tests, the full exchange is exposed at Wait — the paper's
        core mechanism (Section 3.3)."""

        def make(ntests):
            def prog(ctx):
                c = ctx.comm
                req = c.ialltoall(256 * 1024)
                ctx.compute_with_progress(0.1, [(req, ntests)])
                t0 = ctx.now
                c.wait(req)
                return ctx.now - t0

            return prog

        lazy = run_spmd(8, make(0), UMD_CLUSTER).results[0]
        eager = run_spmd(8, make(16), UMD_CLUSTER).results[0]
        assert eager < lazy * 0.2

    def test_more_tests_cost_more_overhead(self):
        def make(ntests):
            def prog(ctx):
                req = ctx.comm.ialltoall(1024)
                ctx.compute_with_progress(0.01, [(req, ntests)])
                ctx.comm.wait(req)
                return ctx.now

            return prog

        few = run_spmd(4, make(2), UMD_CLUSTER).elapsed
        many = run_spmd(4, make(500), UMD_CLUSTER).elapsed
        assert many > few

    def test_blocking_alltoall_time_scales_with_bytes(self):
        def make(nbytes):
            def prog(ctx):
                ctx.comm.alltoall(nbytes)
                return ctx.now

            return prog

        small = run_spmd(4, make(1024), UMD_CLUSTER).elapsed
        big = run_spmd(4, make(1024 * 1024), UMD_CLUSTER).elapsed
        assert big > 10 * small

    def test_hopper_faster_than_umd(self):
        def prog(ctx):
            ctx.comm.alltoall(512 * 1024)
            return ctx.now

        umd = run_spmd(8, prog, UMD_CLUSTER).elapsed
        hop = run_spmd(8, prog, HOPPER).elapsed
        assert hop < umd

    def test_window_of_concurrent_alltoalls(self):
        def prog(ctx):
            c = ctx.comm
            reqs = [c.ialltoall(64 * 1024) for _ in range(3)]
            ctx.compute_with_progress(0.05, [(r, 8) for r in reqs])
            c.waitall(reqs)
            return ctx.now

        res = run_spmd(4, prog, UMD_CLUSTER)
        assert res.elapsed > 0


class TestSplit:
    def test_split_groups_and_collectives(self):
        def prog(ctx):
            c = ctx.comm
            sub = c.split(color=ctx.rank % 2)
            return sub.size, sub.allreduce(ctx.rank)

        res = run_spmd(6, prog, UMD_CLUSTER)
        for r, (size, total) in enumerate(res.results):
            assert size == 3
            assert total == sum(x for x in range(6) if x % 2 == r % 2)

    def test_split_key_reorders(self):
        def prog(ctx):
            sub = ctx.comm.split(color=0, key=-ctx.rank)
            return sub.rank

        res = run_spmd(4, prog, UMD_CLUSTER)
        assert res.results == [3, 2, 1, 0]

    def test_sub_communicator_p2p(self):
        def prog(ctx):
            sub = ctx.comm.split(color=ctx.rank // 2)
            peer = 1 - sub.rank
            data, src, _, _ = sub.sendrecv(peer, 16, payload=ctx.rank, source=peer)
            # Peer's world rank differs by 1 within each pair.
            assert abs(data - ctx.rank) == 1
            return data

        run_spmd(4, prog, UMD_CLUSTER)
