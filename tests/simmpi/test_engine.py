"""Engine-level tests: scheduling, determinism, tracing, failure modes."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.machine import UMD_CLUSTER
from repro.simmpi import run_spmd
from repro.simmpi.engine import Engine, RankTrace


class TestClockAndScheduling:
    def test_compute_advances_clock(self):
        def prog(ctx):
            assert ctx.now == 0.0
            ctx.compute(0.5)
            return ctx.now

        res = run_spmd(3, prog, UMD_CLUSTER)
        assert res.results == [0.5, 0.5, 0.5]
        assert res.elapsed == 0.5

    def test_negative_advance_rejected(self):
        def prog(ctx):
            ctx.compute(-1.0)

        with pytest.raises(SimulationError):
            run_spmd(1, prog, UMD_CLUSTER)

    def test_blocking_points_respect_virtual_time(self):
        order = []

        def prog(ctx):
            # Ranks run ahead freely through local compute, but a
            # blocking point (here: matched receives) is observed in
            # virtual-time order regardless of execution order.
            ctx.compute(0.1 * (ctx.size - ctx.rank))
            if ctx.rank == 0:
                for _ in range(ctx.size - 1):
                    _, src, _, _ = ctx.comm.recv()
                    order.append(src)
            else:
                ctx.comm.send(0, 64, payload=ctx.rank)

        run_spmd(4, prog, UMD_CLUSTER)
        # ANY_SOURCE matching order is implementation-defined in MPI; the
        # engine matches in deterministic post order (rank execution
        # order), and every message is received exactly once.
        assert order == [1, 2, 3]

    def test_deterministic_repeat(self):
        def prog(ctx):
            c = ctx.comm
            req = c.ialltoall(32 * 1024)
            ctx.compute_with_progress(0.003, [(req, 4)])
            c.wait(req)
            return ctx.now

        a = run_spmd(6, prog, UMD_CLUSTER)
        b = run_spmd(6, prog, UMD_CLUSTER)
        assert a.results == b.results
        assert a.elapsed == b.elapsed

    def test_rank_exception_propagates(self):
        def prog(ctx):
            if ctx.rank == 2:
                raise ValueError("boom")
            ctx.compute(0.001)

        with pytest.raises(SimulationError) as ei:
            run_spmd(4, prog, UMD_CLUSTER)
        assert "rank 2" in str(ei.value)
        assert isinstance(ei.value.__cause__, ValueError)

    def test_results_in_rank_order(self):
        res = run_spmd(5, lambda ctx: ctx.rank * 10, UMD_CLUSTER)
        assert res.results == [0, 10, 20, 30, 40]

    def test_many_ranks(self):
        res = run_spmd(64, lambda ctx: ctx.comm.allreduce(1), UMD_CLUSTER)
        assert all(v == 64 for v in res.results)


class TestDeadlockDetection:
    def test_recv_without_send_deadlocks(self):
        def prog(ctx):
            ctx.comm.recv(source=(ctx.rank + 1) % ctx.size)

        with pytest.raises(DeadlockError) as ei:
            run_spmd(2, prog, UMD_CLUSTER)
        assert "blocked" in str(ei.value)

    def test_mismatched_collective_participation_deadlocks(self):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.comm.barrier()
            # rank 1 never joins

        with pytest.raises(DeadlockError):
            run_spmd(2, prog, UMD_CLUSTER)


class TestTracing:
    def test_labels_accumulate(self):
        def prog(ctx):
            ctx.compute(0.2, "alpha")
            ctx.compute(0.3, "alpha")
            ctx.compute(0.1, "beta")

        res = run_spmd(2, prog, UMD_CLUSTER)
        bd = res.breakdown()
        assert bd["alpha"] == pytest.approx(0.5)
        assert bd["beta"] == pytest.approx(0.1)

    def test_breakdown_selected_labels(self):
        def prog(ctx):
            ctx.compute(0.2, "alpha")

        res = run_spmd(1, prog, UMD_CLUSTER)
        bd = res.breakdown(["alpha", "missing"])
        assert bd == {"alpha": pytest.approx(0.2), "missing": 0.0}

    def test_event_timeline_recorded_on_request(self):
        def prog(ctx):
            ctx.compute(0.1, "a")
            ctx.compute(0.2, "b")

        res = run_spmd(1, prog, UMD_CLUSTER, record_events=True)
        events = res.traces[0].events
        assert events[0] == (0.0, pytest.approx(0.1), "a")
        assert events[1] == (pytest.approx(0.1), pytest.approx(0.3), "b")

    def test_events_off_by_default(self):
        res = run_spmd(1, lambda ctx: None, UMD_CLUSTER)
        assert res.traces[0].events is None

    def test_max_by_label(self):
        def prog(ctx):
            ctx.compute(0.1 * (ctx.rank + 1), "w")

        res = run_spmd(3, prog, UMD_CLUSTER)
        assert res.max_by_label("w") == pytest.approx(0.3)

    def test_negative_event_rejected(self):
        tr = RankTrace()
        with pytest.raises(SimulationError):
            tr.add(1.0, 0.5, "x")


class TestEngineMisc:
    def test_zero_ranks_rejected(self):
        from repro.errors import MPIUsageError

        with pytest.raises(MPIUsageError):
            Engine(0, UMD_CLUSTER)

    def test_final_time_is_max_rank_clock(self):
        def prog(ctx):
            ctx.compute(0.1 * (ctx.rank + 1))

        res = run_spmd(3, prog, UMD_CLUSTER)
        assert res.elapsed == pytest.approx(0.3)

    def test_comm_ids_unique(self):
        eng = Engine(1, UMD_CLUSTER)
        ids = {eng.new_comm_id() for _ in range(10)}
        assert len(ids) == 10
