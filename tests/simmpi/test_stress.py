"""Stress and property tests for the simulated MPI under irregular,
asymmetric programs (the pipeline only exercises the symmetric case)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import UMD_CLUSTER
from repro.simmpi import run_spmd


class TestAsymmetricPrograms:
    def test_master_worker(self):
        """Rank 0 farms out work items and collects replies."""

        def prog(ctx):
            c = ctx.comm
            if c.rank == 0:
                for item in range(2 * (c.size - 1)):
                    dst = 1 + item % (c.size - 1)
                    c.send(dst, 64, payload=item, tag=1)
                results = sorted(
                    c.recv(tag=2)[0] for _ in range(2 * (c.size - 1))
                )
                assert results == [i * i for i in range(2 * (c.size - 1))]
            else:
                for _ in range(2):
                    item, _src, _tag, _ = c.recv(source=0, tag=1)
                    ctx.compute(1e-4 * (item + 1))
                    c.send(0, 64, payload=item * item, tag=2)

        run_spmd(5, prog, UMD_CLUSTER)

    def test_ring_pipeline_many_hops(self):
        """A token makes three full loops around a ring, incremented at
        every hop."""
        loops = 3

        def prog(ctx):
            c = ctx.comm
            nxt = (c.rank + 1) % c.size
            prv = (c.rank - 1) % c.size
            if c.rank == 0:
                c.send(nxt, 32, payload=0)
                for lap in range(loops):
                    val, _, _, _ = c.recv(source=prv)
                    assert val == (lap + 1) * c.size - 1
                    if lap < loops - 1:
                        c.send(nxt, 32, payload=val + 1)
            else:
                for _lap in range(loops):
                    val, _, _, _ = c.recv(source=prv)
                    c.send(nxt, 32, payload=val + 1)
            return ctx.now

        run_spmd(4, prog, UMD_CLUSTER)

    def test_unbalanced_alltoall_groups(self):
        """Two split groups run different numbers of exchanges."""

        def prog(ctx):
            c = ctx.comm
            sub = c.split(color=ctx.rank % 2)
            reps = 3 if ctx.rank % 2 == 0 else 5
            for _ in range(reps):
                sub.alltoall(512)
            return sub.allreduce(1)

        res = run_spmd(6, prog, UMD_CLUSTER)
        assert all(v == 3 for v in res.results)

    def test_staggered_collective_entry(self):
        """A barrier completes at (just after) the slowest entrant."""

        def prog(ctx):
            ctx.compute(0.001 * ctx.rank**2)
            ctx.comm.barrier()
            return ctx.now

        res = run_spmd(5, prog, UMD_CLUSTER)
        slowest = 0.001 * 16
        for t in res.results:
            assert t >= slowest
            assert t < slowest + 0.001  # barrier adds only latency terms


class TestRandomizedPrograms:
    @given(st.integers(2, 8), st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_random_collective_sequences_deterministic(self, p, seed):
        """Any sequence of collectives completes identically twice."""

        def make_prog(seed):
            def prog(ctx):
                rng = random.Random(seed)  # same seed -> same sequence
                for _ in range(6):
                    op = rng.choice(["barrier", "allreduce", "alltoall",
                                     "bcast", "allgather"])
                    ctx.compute(rng.random() * 1e-4)
                    if op == "barrier":
                        ctx.comm.barrier()
                    elif op == "allreduce":
                        ctx.comm.allreduce(ctx.rank, nbytes=8)
                    elif op == "alltoall":
                        ctx.comm.alltoall(rng.randrange(1, 4096))
                    elif op == "bcast":
                        ctx.comm.bcast(payload=1, nbytes=64, root=0)
                    else:
                        ctx.comm.allgather(ctx.rank, nbytes=8)
                return ctx.now

            return prog

        a = run_spmd(p, make_prog(seed), UMD_CLUSTER)
        b = run_spmd(p, make_prog(seed), UMD_CLUSTER)
        assert a.results == b.results

    @given(st.integers(2, 6), st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_random_p2p_talk_completes(self, p, seed):
        """Random (but globally agreed) send/recv pairings never deadlock
        when both sides are posted non-blocking first."""

        def prog(ctx):
            rng = random.Random(seed)
            c = ctx.comm
            pairs = []
            for _ in range(8):
                a, b = rng.randrange(p), rng.randrange(p)
                if a != b:
                    pairs.append((a, b))
            rreqs = [c.irecv(source=a) for (a, b) in pairs if b == c.rank]
            sreqs = [
                c.isend(b, rng.randrange(16, 2048), payload=c.rank)
                for (a, b) in pairs
                if a == c.rank
            ]
            c.waitall(sreqs)
            got = [c.wait(r) for r in rreqs]
            for payload, src, _tag, _n in got:
                assert payload == src
            return len(got)

        res = run_spmd(p, prog, UMD_CLUSTER)
        assert sum(res.results) >= 0


class TestScale:
    @pytest.mark.parametrize("p", [32, 128])
    def test_large_rank_counts(self, p):
        def prog(ctx):
            req = ctx.comm.ialltoall(1024)
            ctx.compute_with_progress(0.01, [(req, 16)])
            ctx.comm.wait(req)
            return ctx.comm.allreduce(1)

        res = run_spmd(p, prog, UMD_CLUSTER)
        assert all(v == p for v in res.results)

    def test_many_sequential_exchanges(self):
        def prog(ctx):
            for _ in range(100):
                ctx.comm.alltoall(256)
            return ctx.now

        res = run_spmd(4, prog, UMD_CLUSTER)
        assert res.elapsed > 0
