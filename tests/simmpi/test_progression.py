"""Manual-progression mechanics: injection pacing, rendezvous, NIC
serialization — the modeled physics behind the paper's F* parameters."""

import numpy as np
import pytest

from repro.machine import UMD_CLUSTER, CacheModel, CpuModel, NetworkModel, Platform
from repro.simmpi import run_spmd
from repro.simmpi.fabric import Fabric, P2PMessage


def tiny_platform(**net_kw):
    net = dict(
        latency=1e-6,
        node_bw=1e9,
        ranks_per_node=1,
        eager_threshold=4096,
        max_inflight=2,
        contention_coeff=0.0,
    )
    net.update(net_kw)
    return Platform(
        name="tiny",
        cpu=CpuModel(
            flops=1e9, mem_bw=2e9, cache_bw=8e9,
            cache=CacheModel(l1_bytes=32 * 1024, l2_bytes=256 * 1024),
        ),
        net=NetworkModel(**net),
    )


class TestFabricInject:
    def test_single_message_timing(self):
        plat = tiny_platform()
        fab = Fabric(plat, 2)
        arr = fab.inject(0, 0.0, np.array([1000]), np.array([0.0]), 0.0)
        # 1000 B at 1 GB/s = 1 us serialization + 1 us latency (eager).
        assert arr[0] == pytest.approx(2e-6)
        assert fab.nic_free[0] == pytest.approx(1e-6)

    def test_serialization_accumulates(self):
        fab = Fabric(tiny_platform(), 2)
        arr = fab.inject(0, 0.0, np.array([1000, 1000]), np.zeros(2), 0.0)
        assert arr[1] - arr[0] == pytest.approx(1e-6)

    def test_postable_gates_start(self):
        fab = Fabric(tiny_platform(), 2)
        arr = fab.inject(0, 0.0, np.array([1000]), np.array([5.0]), 0.0)
        assert arr[0] == pytest.approx(5.0 + 2e-6)

    def test_rendezvous_penalty_above_threshold(self):
        fab = Fabric(tiny_platform(), 2)
        small = fab.inject(0, 0.0, np.array([4096]), np.array([0.0]), 0.01)
        fab2 = Fabric(tiny_platform(), 2)
        big = fab2.inject(0, 0.0, np.array([4097]), np.array([0.0]), 0.01)
        # Big message pays 2*latency + gap/2 on top.
        extra = big[0] - small[0]
        assert extra == pytest.approx(2e-6 + 0.005, rel=1e-6, abs=1e-9)

    def test_empty_batch(self):
        fab = Fabric(tiny_platform(), 2)
        assert len(fab.inject(0, 0.0, np.array([]), np.array([]), 0.0)) == 0

    def test_bytes_injected_tracked(self):
        fab = Fabric(tiny_platform(), 2)
        fab.inject(0, 0.0, np.array([100, 200]), np.zeros(2), 0.0)
        assert fab.bytes_injected[0] == 300


class TestP2PMailbox:
    def test_match_order_across_sources(self):
        fab = Fabric(tiny_platform(), 3)
        fab.post_p2p(P2PMessage(src=1, dst=0, tag=0, nbytes=8, arrival=1.0))
        fab.post_p2p(P2PMessage(src=2, dst=0, tag=0, nbytes=8, arrival=0.5))
        # Post order wins for ANY_SOURCE (deterministic matching).
        m = fab.match_p2p(0, None, None)
        assert m.src == 1
        fab.take_p2p(m)
        assert fab.match_p2p(0, None, None).src == 2

    def test_pending_count(self):
        fab = Fabric(tiny_platform(), 2)
        assert fab.pending_p2p() == 0
        fab.post_p2p(P2PMessage(src=0, dst=1, tag=0, nbytes=8, arrival=0.0))
        assert fab.pending_p2p() == 1


class TestProgressionSemantics:
    def test_no_tests_no_background_progress(self):
        """Without library entries, only the initial post's eager batch
        moves; the rest serializes inside Wait."""

        def prog(ctx):
            c = ctx.comm
            req = c.ialltoall(1024 * 1024)
            ctx.compute(0.5)  # plain compute: no MPI_Test calls
            t0 = ctx.now
            c.wait(req)
            return ctx.now - t0

        plat = tiny_platform()
        res = run_spmd(8, prog, plat)
        wait = res.results[0]
        # 7 peers x 1 MB at 1 GB/s = 7 ms minus the 2-message eager batch.
        assert wait > 4e-3

    def test_enough_tests_fully_hide(self):
        def prog(ctx):
            c = ctx.comm
            req = c.ialltoall(1024 * 1024)
            ctx.compute_with_progress(0.5, [(req, 64)])
            t0 = ctx.now
            c.wait(req)
            return ctx.now - t0

        res = run_spmd(8, prog, tiny_platform())
        assert res.results[0] < 1e-3

    def test_inflight_budget_limits_per_test(self):
        """One test can post at most max_inflight sends: with 7 peers and
        inflight=2, one test mid-segment cannot finish the exchange."""

        def make(ntests):
            def prog(ctx):
                c = ctx.comm
                req = c.ialltoall(512 * 1024)
                ctx.compute_with_progress(0.5, [(req, ntests)])
                t0 = ctx.now
                c.wait(req)
                return ctx.now - t0

            return prog

        one = run_spmd(8, make(1), tiny_platform()).results[0]
        many = run_spmd(8, make(32), tiny_platform()).results[0]
        assert many < one

    def test_test_call_returns_flag(self):
        def prog(ctx):
            c = ctx.comm
            req = c.ialltoall(64)
            flags = []
            for _ in range(50):
                ctx.compute(1e-4)
                flag, _ = c.test(req)
                flags.append(flag)
                if flag:
                    break
            assert flags[-1] is True
            return sum(flags)

        res = run_spmd(4, prog, tiny_platform())
        assert all(v == 1 for v in res.results)

    def test_wait_flushes_at_full_rate(self):
        """Wait parks the rank in the library, so the remaining sends
        serialize back-to-back at NIC rate: elapsed ~ (p-1)*m/rate."""

        def prog(ctx):
            ctx.comm.alltoall(1024 * 1024)
            return ctx.now

        res = run_spmd(8, prog, tiny_platform())
        expected = 7 * 1024 * 1024 / 1e9  # ~7.3 ms serialization
        assert res.elapsed == pytest.approx(expected, rel=0.5)

    def test_progress_entries_counted(self):
        def prog(ctx):
            c = ctx.comm
            req = c.ialltoall(1024)
            ctx.compute_with_progress(0.01, [(req, 5)])
            c.wait(req)
            return req.progress_entries

        res = run_spmd(3, prog, tiny_platform())
        # post + one progressed segment + wait = 3 library entries.
        assert res.results[0] == 3

    def test_collective_op_records_released(self):
        def prog(ctx):
            for _ in range(10):
                ctx.comm.alltoall(256)
            return True

        plat = tiny_platform()
        from repro.simmpi.engine import Engine

        eng = Engine(4, plat)
        eng.run(prog)
        assert len(eng.fabric._colls) == 0  # all retired after completion
