"""Randomized fastpath/backend equivalence (property test).

The scheduler fast paths (``REPRO_SIM_FASTPATH``, batched test-poll
epochs, the inlined post/progress loops) are pure execution-order
optimizations: for any SPMD program they may change *how often the
scheduler hands off between ranks*, but never virtual times, results,
trace contents, or probe-poll counts.  This file pins that contract
with randomized programs — a seeded mix of compute, non-blocking
all-to-alls, manual test-poll progression, waits, point-to-points, and
collectives over 2-16 ranks — executed under all four combinations of
{threads, tasks} x {fastpath on, off} and compared exactly.

Within one fastpath setting the two backends must agree on *everything*
(including handoff counters, as tests/simmpi/test_backends.py pins for
hand-written scenarios); across fastpath settings the handoff counter
is the one quantity allowed to move.
"""

import random

import pytest

from repro.machine import UMD_CLUSTER
from repro.simmpi import run_spmd

OPS = (
    "compute",
    "alltoall",
    "progress",
    "poll",
    "wait",
    "barrier",
    "allreduce",
    "sendrecv",
)


def make_prog(seed: int, nops: int):
    """Build a deterministic generator SPMD program from ``seed``.

    Every rank draws from an identically-seeded RNG, so all ranks agree
    on the op sequence (SPMD-correct); rank-dependence enters only
    through deterministic functions of ``ctx.rank``.
    """

    def prog(ctx):
        rng = random.Random(seed * 7919 + 17)
        comm = ctx.comm
        pending = []
        log = []
        for i in range(nops):
            op = OPS[rng.randrange(len(OPS))]
            if op == "compute":
                base = rng.uniform(1e-5, 1e-3)
                ctx.compute(base * (1.0 + 0.1 * ctx.rank), "Comp")
            elif op == "alltoall":
                nb = rng.randrange(1 << 10, 1 << 16)
                pending.append(comm.ialltoall([nb] * ctx.size))
            elif op == "progress":
                dur = rng.uniform(1e-4, 1e-3)
                tests = [(r, rng.randrange(1, 5)) for r in pending]
                ctx.compute_with_progress(dur, tests, "Prog")
            elif op == "poll" and pending:
                done, res = yield from comm.co_test(pending[0])
                if done:
                    pending.pop(0)
                log.append(("poll", i, done))
            elif op == "wait" and pending:
                yield from comm.co_wait(pending.pop(0))
                log.append(("wait", i, ctx.now))
            elif op == "barrier":
                yield from comm.co_barrier()
            elif op == "allreduce":
                total = yield from comm.co_allreduce(ctx.rank + i, nbytes=8)
                log.append(("allreduce", i, total))
            elif op == "sendrecv":
                right = (ctx.rank + 1) % ctx.size
                left = (ctx.rank - 1) % ctx.size
                payload, src, _tag, _nb = yield from comm.co_sendrecv(
                    right, 2048, payload=(ctx.rank, i), source=left
                )
                log.append(("sendrecv", i, payload, src))
        while pending:
            yield from comm.co_wait(pending.pop(0))
        yield from comm.co_barrier()
        log.append(("final", ctx.now))
        return tuple(log)

    return prog


def run_config(nprocs, prog, backend, fastpath, monkeypatch):
    monkeypatch.setenv("REPRO_SIM_FASTPATH", fastpath)
    return run_spmd(nprocs, prog, UMD_CLUSTER, backend=backend)


@pytest.mark.parametrize("seed", range(8))
def test_fastpath_and_backend_equivalence(seed, monkeypatch):
    nprocs = 2 + (seed * 5) % 15  # 2..16
    prog = make_prog(seed, nops=14)
    sims = {
        (backend, fp): run_config(nprocs, prog, backend, fp, monkeypatch)
        for backend in ("threads", "tasks")
        for fp in ("1", "0")
    }
    ref = sims[("threads", "1")]
    for key, sim in sims.items():
        # Clocks, results, traces, and probe polls are invariant across
        # all four configurations.
        assert sim.elapsed == ref.elapsed, key
        assert sim.results == ref.results, key
        assert [t.by_label for t in sim.traces] == [
            t.by_label for t in ref.traces
        ], key
        assert sim.stats.probe_polls == ref.stats.probe_polls, key
    # Within one fastpath setting the backends also agree on handoffs.
    for fp in ("1", "0"):
        assert (
            sims[("threads", fp)].stats.handoffs
            == sims[("tasks", fp)].stats.handoffs
        ), fp


@pytest.mark.parametrize("seed", [3, 6])
def test_equivalence_under_faults(seed, monkeypatch):
    """The invariants hold with stragglers and jitter injected."""
    from repro.faults import injected_faults

    nprocs = 4
    prog = make_prog(seed, nops=12)
    sims = {}
    with injected_faults("straggler:rank=1,slow=1.7;jitter:amp=0.2;seed:5"):
        for backend in ("threads", "tasks"):
            for fp in ("1", "0"):
                monkeypatch.setenv("REPRO_SIM_FASTPATH", fp)
                sims[(backend, fp)] = run_spmd(
                    nprocs, prog, UMD_CLUSTER, backend=backend
                )
    ref = sims[("threads", "1")]
    for key, sim in sims.items():
        assert sim.elapsed == ref.elapsed, key
        assert sim.results == ref.results, key
        assert [t.by_label for t in sim.traces] == [
            t.by_label for t in ref.traces
        ], key
