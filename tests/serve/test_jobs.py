"""JobManager guards: O(1) counts, the shutdown race, the stuck-job
watchdog, and graceful drain (DESIGN.md §5.14)."""

import threading
import time

import pytest

from repro.serve.jobs import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobManager,
    JobsDraining,
)
from repro.serve.journal import JobJournal

KEY = ("UMD-Cluster", 4, 32, 4, "", "NEW", "fft_time")
REQ = {"platform": "UMD-Cluster", "p": 4, "n": 32}


def wait_until(predicate, timeout=5.0, poll=0.01):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(poll)


class TestCounts:
    def test_counts_track_transitions(self):
        release = threading.Event()
        mgr = JobManager(lambda job: release.wait(5.0), threads=1)
        try:
            job, created = mgr.submit(KEY, "default", REQ)
            assert created
            wait_until(lambda: mgr.counts()[RUNNING] == 1)
            assert mgr.counts() == {
                QUEUED: 0, RUNNING: 1, DONE: 0, FAILED: 0
            }
            release.set()
            wait_until(lambda: mgr.counts()[DONE] == 1)
            assert mgr.counts()[RUNNING] == 0
        finally:
            release.set()
            mgr.shutdown()

    def test_counts_stay_consistent_over_many_jobs(self):
        mgr = JobManager(lambda job: None, threads=2)
        try:
            for i in range(50):
                mgr.submit(KEY + (i,), "default", REQ)
            wait_until(lambda: mgr.counts()[DONE] == 50)
            counts = mgr.counts()
            assert sum(counts.values()) == 50
            assert counts == {QUEUED: 0, RUNNING: 0, DONE: 50, FAILED: 0}
            assert mgr.active() == []
        finally:
            mgr.shutdown()

    def test_failed_runner_counts_as_failed(self):
        def boom(job):
            raise ValueError("tuning exploded")

        mgr = JobManager(boom, threads=1)
        try:
            job, _ = mgr.submit(KEY, "default", REQ)
            wait_until(lambda: mgr.counts()[FAILED] == 1)
            assert job.state == FAILED
            assert "tuning exploded" in job.error
        finally:
            mgr.shutdown()


class TestShutdownRace:
    def test_submit_after_pool_shutdown_rolls_back_and_503s(self, tmp_path):
        """The race: a request thread passes the draining check, then the
        pool shuts down under it.  ``pool.submit`` raises RuntimeError;
        the manager must roll the job table back (key not leaked) and
        surface JobsDraining, and the journal must record the rejection
        as ``interrupted`` so nothing replays a ghost."""
        journal = JobJournal(tmp_path / "j.jsonl")
        mgr = JobManager(lambda job: None, threads=1, journal=journal)
        # shut the pool down *without* setting _draining — simulating the
        # narrow window where the flag is not yet visible to the submitter
        mgr._pool.shutdown(wait=True)
        with pytest.raises(JobsDraining, match="retry later"):
            mgr.submit(KEY, "default", REQ)
        assert mgr.counts() == {QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0}
        assert mgr.get("job-000001") is None
        assert mgr.active() == []
        entry = journal.load()["job-000001"]
        assert entry.state == "interrupted"
        assert "executor already shut down" in entry.error
        # the plan key was not leaked: a fresh manager over the same
        # table could accept the key again (no stale _active entry)
        assert KEY not in mgr._active

    def test_submit_while_draining_raises(self):
        mgr = JobManager(lambda job: None, threads=1)
        mgr.shutdown()
        with pytest.raises(JobsDraining):
            mgr.submit(KEY, "default", REQ)


class TestWatchdog:
    def test_stuck_job_is_failed_and_key_freed(self):
        release = threading.Event()
        timed_out = []
        mgr = JobManager(
            lambda job: release.wait(10.0),
            threads=1,
            job_timeout=0.2,
            on_timeout=timed_out.append,
        )
        try:
            job, _ = mgr.submit(KEY, "default", REQ)
            wait_until(lambda: job.state == FAILED, timeout=5.0)
            assert "watchdog" in job.error
            assert "--job-timeout 0.2" in job.error
            assert timed_out == [job]
            # the single-flight key is free: a resubmission creates a
            # *new* job instead of collapsing onto the zombie
            job2, created = mgr.submit(KEY, "default", REQ)
            assert created and job2.id != job.id
        finally:
            release.set()
            mgr.shutdown()

    def test_late_runner_success_cannot_resurrect_failed_job(self):
        release = threading.Event()
        mgr = JobManager(
            lambda job: release.wait(10.0), threads=1, job_timeout=0.2
        )
        try:
            job, _ = mgr.submit(KEY, "default", REQ)
            wait_until(lambda: job.state == FAILED, timeout=5.0)
            release.set()  # the abandoned runner now "succeeds"
            time.sleep(0.2)
            assert job.state == FAILED  # terminal states are sticky
            counts = mgr.counts()
            assert counts[FAILED] == 1 and counts[DONE] == 0
        finally:
            release.set()
            mgr.shutdown()

    def test_fast_jobs_never_trip_the_watchdog(self):
        mgr = JobManager(lambda job: None, threads=1, job_timeout=5.0)
        try:
            job, _ = mgr.submit(KEY, "default", REQ)
            wait_until(lambda: job.state == DONE)
            assert mgr.counts()[FAILED] == 0
        finally:
            mgr.shutdown()


class TestDrain:
    def test_drain_waits_for_active_jobs(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        release = threading.Event()
        mgr = JobManager(
            lambda job: release.wait(10.0), threads=1, journal=journal
        )
        job, _ = mgr.submit(KEY, "default", REQ)
        wait_until(lambda: job.state == RUNNING)
        releaser = threading.Timer(0.15, release.set)
        releaser.start()
        try:
            leftover = mgr.drain(timeout=5.0)
            assert leftover == []
            assert job.state == DONE
            assert journal.load()[job.id].state == DONE
            with pytest.raises(JobsDraining):
                mgr.submit(KEY + ("x",), "default", REQ)
        finally:
            releaser.cancel()
            release.set()

    def test_drain_timeout_journals_survivors_interrupted(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        release = threading.Event()
        mgr = JobManager(
            lambda job: release.wait(30.0), threads=1, journal=journal
        )
        try:
            stuck, _ = mgr.submit(KEY, "default", REQ)
            queued, _ = mgr.submit(KEY + ("b",), "default", REQ)
            wait_until(lambda: stuck.state == RUNNING)
            leftover = mgr.drain(timeout=0.2)
            assert {j.id for j in leftover} == {stuck.id, queued.id}
            entries = journal.load()
            for j in leftover:
                assert entries[j.id].state == "interrupted"
                assert "drain timeout" in entries[j.id].error
                assert entries[j.id].replayable
        finally:
            release.set()


class TestResubmit:
    def test_resubmit_recreates_under_original_id(self):
        mgr = JobManager(lambda job: None, threads=1)
        try:
            job = mgr.resubmit(KEY, "default", REQ,
                               job_id="job-000042", incarnation=2)
            assert job is not None and job.id == "job-000042"
            wait_until(lambda: job.state == DONE)
            snap = job.snapshot()
            assert snap["recovered"] is True
            assert snap["interrupted_incarnations"] == 2
            # fresh ids never collide with recovered history
            mgr.reserve_seq(42)
            fresh, _ = mgr.submit(KEY + ("c",), "default", REQ)
            assert fresh.id == "job-000043"
        finally:
            mgr.shutdown()

    def test_resubmit_refuses_live_id_or_owned_key(self):
        release = threading.Event()
        mgr = JobManager(lambda job: release.wait(5.0), threads=1)
        try:
            job, _ = mgr.submit(KEY, "default", REQ)
            assert mgr.resubmit(KEY + ("d",), "default", REQ,
                                job_id=job.id) is None
            assert mgr.resubmit(KEY, "default", REQ,
                                job_id="job-000099") is None
        finally:
            release.set()
            mgr.shutdown()
