"""Serve-plane chaos: a real ``repro serve`` process SIGKILLed mid-job
recovers on restart; SIGTERM drains gracefully (DESIGN.md §5.14).

These drive the CLI in subprocesses — the journal, the chaos hook, the
signal handlers, and the recovery path all under the exact process
lifecycle a supervisor would impose.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro.dist.protocol import fetch_text
from repro.serve import wait_for_plan

BUDGET = 4
PLATFORM = "UMD-Cluster"
SRC = str(Path(__file__).resolve().parents[2] / "src")


def spawn_serve(root, extra_env=None, *extra_args):
    env = dict(os.environ, PYTHONPATH=SRC)
    env.update(extra_env or {})
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--root", str(root), "--budget", str(BUDGET), *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, env=env,
    )
    line = proc.stdout.readline()
    assert "plan server listening on " in line, (
        f"no URL line from serve: {line!r} / {proc.stderr.read()!r}"
    )
    url = line.split("listening on ", 1)[1].split()[0]
    return proc, url


def post_plan(url: str, p: int, n: int) -> tuple[int, dict]:
    req = urllib.request.Request(
        f"{url}/plan",
        data=json.dumps({"platform": PLATFORM, "p": p, "n": n}).encode(),
        method="POST", headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=10) as resp:
        return resp.status, json.loads(resp.read())


def metric(text: str, name: str) -> float:
    total = 0.0
    for line in text.splitlines():
        if line.startswith(name) and not line.startswith("#"):
            total += float(line.rsplit(" ", 1)[1])
    return total


class TestKillAndRecover:
    def test_sigkilled_server_replays_job_with_zero_sims(self, tmp_path):
        """Acceptance: SIGKILL (self-inflicted, at the worst crash point
        — stores flushed, journal still says running), restart over the
        same root, and the client's original job id reaches DONE by
        replay with zero re-simulation."""
        root = tmp_path / "store"
        chaos = {"REPRO_SERVE_CHAOS": f"kill-once:job-@{tmp_path}"}
        proc, url = spawn_serve(root, chaos)
        job_id = None
        try:
            code, body = post_plan(url, 4, 32)
            assert code == 202
            job_id = body["job"]
            # the chaos hook SIGKILLs the whole process mid-job
            proc.wait(timeout=120)
            assert proc.returncode == -signal.SIGKILL
            assert (tmp_path / "serve-chaos-killed").exists()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

        # journal's last word for the job is non-terminal
        journal_text = (root / "jobs.journal.jsonl").read_text()
        last = json.loads(
            [ln for ln in journal_text.splitlines() if job_id in ln][-1]
        )
        assert last["state"] in ("queued", "running")

        # restart over the same root (sentinel latches the chaos off)
        proc2, url2 = spawn_serve(root, chaos)
        try:
            done = wait_for_plan(url2, job_id, timeout=120)
            assert done["state"] == "done"
            assert done["recovered"] is True
            assert done["plan"]["params"]
            text = fetch_text(url2, "/metrics")
            assert metric(text, "serve_jobs_recovered_total") >= 1
            assert metric(text, "sim_runs_total") == 0, (
                "recovery re-simulated evaluations the dead "
                "incarnation had already flushed"
            )
        finally:
            proc2.send_signal(signal.SIGTERM)
            proc2.wait(timeout=60)

    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        root = tmp_path / "store"
        proc, url = spawn_serve(root)
        try:
            code, body = post_plan(url, 4, 32)
            assert code == 202
            wait_for_plan(url, body["job"], timeout=120)
        finally:
            proc.send_signal(signal.SIGTERM)
            try:
                out, err = proc.communicate(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                raise
        assert proc.returncode == 0
        assert "drained cleanly" in err
        # the drained journal is all-terminal: nothing replays
        journal_text = (root / "jobs.journal.jsonl").read_text()
        states = {}
        for line in journal_text.splitlines():
            rec = json.loads(line)
            states[rec["job"]] = rec["state"]
        assert all(s in ("done", "failed") for s in states.values())

    def test_sigint_takes_the_same_graceful_path(self, tmp_path):
        proc, url = spawn_serve(tmp_path / "store")
        proc.send_signal(signal.SIGINT)
        try:
            out, err = proc.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            raise
        assert proc.returncode == 0
        assert "draining" in err
