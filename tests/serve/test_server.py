"""The tuned-plan server: warm hits, single-flight cold misses, auth,
restarts (DESIGN.md §5.13).

The three acceptance properties from the PR-8 issue live here:

* a warm ``POST /plan`` answers tuned params with **zero simulations**
  (asserted against the server registry's ``sim_runs_total``, not just
  the provenance field);
* N concurrent identical cold requests collapse onto exactly one
  tuning job and every client ends up with byte-identical params;
* a restarted server over a warm store directory serves the plan
  without re-tuning anything.
"""

import json
import threading

import pytest

from repro.bench import clear_cache
from repro.dist.protocol import call, fetch_text
from repro.errors import DistProtocolError
from repro.obs.registry import MetricsRegistry, scoped_registry
from repro.serve import (
    PlanServer,
    ServeConfig,
    poll_plan,
    request_plan,
    wait_for_plan,
)

BUDGET = 4
PLATFORM = "UMD-Cluster"


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


def sim_runs(reg: MetricsRegistry) -> float:
    """Total simulated runs recorded in a registry (all backends)."""
    fam = reg.snapshot().get("sim_runs_total")
    if not fam:
        return 0.0
    return sum(value for _, value in fam["samples"])


def start_server(tmp_path, **kwargs):
    """A plan server over ``tmp_path/store`` with its own registry."""
    reg = MetricsRegistry()
    with scoped_registry(reg):
        srv = PlanServer(ServeConfig(
            root=str(tmp_path / "store"), default_budget=BUDGET, **kwargs
        ))
    url = srv.start()
    return srv, url, reg


class TestPlanLifecycle:
    def test_cold_miss_then_warm_hit(self, tmp_path):
        srv, url, reg = start_server(tmp_path)
        try:
            code, body = request_plan(url, PLATFORM, 4, 32)
            assert code == 202
            assert body["created"] is True
            assert body["poll"] == f"/plan/{body['job']}"
            done = wait_for_plan(url, body["job"], timeout=120)
            assert done["plan"]["params"]  # tuned params came through
            assert done["provenance"]["source"] == "job"

            code, warm = request_plan(url, PLATFORM, 4, 32)
            assert code == 200
            assert warm["provenance"]["source"] == "result-store"
            assert warm["provenance"]["simulations"] == 0
            assert warm["plan"]["params"] == done["plan"]["params"]
        finally:
            srv.stop()

    def test_variant_best_and_objectives(self, tmp_path):
        srv, url, reg = start_server(tmp_path)
        try:
            code, body = request_plan(url, PLATFORM, 4, 32)
            wait_for_plan(url, body["job"], timeout=120)
            _, best = request_plan(url, PLATFORM, 4, 32, variant="best")
            times = best["plan"]["times"]
            assert best["plan"]["variant"] == min(times, key=times.get)
            _, sp = request_plan(url, PLATFORM, 4, 32, variant="NEW",
                                 objective="speedup")
            assert sp["plan"]["objective"] == pytest.approx(
                times["FFTW"] / times["NEW"]
            )
        finally:
            srv.stop()

    def test_poll_unknown_job_is_404(self, tmp_path):
        srv, url, reg = start_server(tmp_path)
        try:
            with pytest.raises(DistProtocolError, match="404"):
                poll_plan(url, "job-999999")
        finally:
            srv.stop()

    def test_bad_requests_are_400(self, tmp_path):
        srv, url, reg = start_server(tmp_path)
        try:
            for body in (
                {"platform": "NoSuchMachine", "p": 4, "n": 32},
                {"platform": PLATFORM, "p": 4},                    # no n
                {"platform": PLATFORM, "p": -4, "n": 32},
                {"platform": PLATFORM, "p": 4, "n": 32,
                 "variant": "OLD"},
                {"platform": PLATFORM, "p": 4, "n": 32,
                 "faults": "straggler:nope"},
                {"platform": PLATFORM, "p": 4, "n": 32,
                 "tenant": "../escape"},
            ):
                with pytest.raises(DistProtocolError, match="400"):
                    call(url, "/plan", body)
            assert reg.value("serve_bad_requests_total") == 6
            # nothing was enqueued by any of them
            assert reg.value("serve_jobs_enqueued_total") == 0
        finally:
            srv.stop()

    def test_tenants_are_isolated(self, tmp_path):
        srv, url, reg = start_server(tmp_path)
        try:
            code, body = request_plan(url, PLATFORM, 4, 32, tenant="teamA")
            wait_for_plan(url, body["job"], timeout=120)
            code, _ = request_plan(url, PLATFORM, 4, 32, tenant="teamA")
            assert code == 200          # warm for teamA...
            code, body = request_plan(url, PLATFORM, 4, 32, tenant="teamB")
            assert code == 202          # ...still cold for teamB
            wait_for_plan(url, body["job"], timeout=120)
            status = call(url, "/status")
            assert set(status["tenants"]) == {"teamA", "teamB"}
            root = tmp_path / "store"
            assert (root / "teamA" / "results").is_dir()
            assert (root / "teamB" / "evals.jsonl").exists()
        finally:
            srv.stop()


class TestSingleFlight:
    def test_concurrent_identical_cold_requests_share_one_job(self, tmp_path):
        """Acceptance: ≥8 concurrent identical clients on a cold cell
        cost exactly one tuning job and all receive byte-identical
        params."""
        srv, url, reg = start_server(tmp_path)
        clients = 8
        barrier = threading.Barrier(clients)
        first: list[tuple[int, dict]] = [None] * clients

        def client(i: int) -> None:
            barrier.wait()
            first[i] = request_plan(url, PLATFORM, 4, 32)

        try:
            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(clients)
            ]
            for th in threads:
                th.start()
            for th in threads:
                th.join()
            # Every miss shares one job handle and exactly one submission
            # created it.  A straggler client may legitimately land
            # *after* the job finished (the GIL-bound tuning run delays
            # handler threads) and see a 200 warm hit — that still costs
            # zero extra tuning, which is the property under test.
            misses = [body for code, body in first if code == 202]
            assert misses, "at least the first client must miss"
            job_ids = {body["job"] for body in misses}
            assert len(job_ids) == 1
            assert sum(1 for body in misses if body["created"]) == 1
            assert reg.value("serve_jobs_enqueued_total") == 1

            wait_for_plan(url, job_ids.pop(), timeout=120)
            # ...and the served plans are byte-identical
            payloads = set()
            for _ in range(clients):
                code, body = request_plan(url, PLATFORM, 4, 32)
                assert code == 200
                payloads.add(json.dumps(body["plan"], sort_keys=True))
            assert len(payloads) == 1
            assert reg.value("serve_jobs_completed_total") == 1
        finally:
            srv.stop()


class TestRestart:
    def test_restarted_server_serves_warm_store_with_zero_sims(
        self, tmp_path
    ):
        """Acceptance: kill the server, start a fresh one over the same
        store root (fresh registry, cleared memo = a new process), and
        the plan comes back with zero simulated runs."""
        srv, url, _ = start_server(tmp_path)
        try:
            code, body = request_plan(url, PLATFORM, 4, 32)
            tuned = wait_for_plan(url, body["job"], timeout=120)
        finally:
            srv.stop()

        clear_cache()  # a real restart has an empty in-process memo
        srv2, url2, reg2 = start_server(tmp_path)
        try:
            code, warm = request_plan(url2, PLATFORM, 4, 32)
            assert code == 200
            assert warm["plan"]["params"] == tuned["plan"]["params"]
            assert warm["provenance"]["simulations"] == 0
            assert sim_runs(reg2) == 0, (
                "restarted server re-simulated a warm cell"
            )
            assert reg2.value("serve_jobs_enqueued_total") == 0
        finally:
            srv2.stop()


class TestAuth:
    def test_missing_or_wrong_token_is_401(self, tmp_path):
        srv, url, reg = start_server(tmp_path, token="s3cret")
        try:
            with pytest.raises(DistProtocolError, match="401"):
                request_plan(url, PLATFORM, 4, 32)
            with pytest.raises(DistProtocolError, match="401"):
                request_plan(url, PLATFORM, 4, 32, token="wrong")
            with pytest.raises(DistProtocolError, match="401"):
                call(url, "/status")
            with pytest.raises(DistProtocolError, match="401"):
                fetch_text(url, "/metrics")
            assert reg.value("serve_auth_rejects_total") == 4
            # a rejected request never reaches stores or jobs
            assert reg.value("serve_jobs_enqueued_total") == 0
            assert call(url, "/status", token="s3cret")["jobs"]["done"] == 0
        finally:
            srv.stop()

    def test_auth_disabled_ignores_the_header(self, tmp_path):
        srv, url, reg = start_server(tmp_path, token=None)
        try:
            assert call(url, "/status")["tenants"] == []
            assert call(url, "/status", token="whatever")["tenants"] == []
            assert reg.value("serve_auth_rejects_total") == 0
        finally:
            srv.stop()


class TestObservability:
    def test_status_and_metrics_surfaces(self, tmp_path):
        srv, url, reg = start_server(tmp_path)
        try:
            code, body = request_plan(url, PLATFORM, 4, 32)
            wait_for_plan(url, body["job"], timeout=120)
            request_plan(url, PLATFORM, 4, 32)

            status = call(url, "/status")
            assert status["jobs"]["done"] == 1
            assert status["stores"]["default"]["cells"] == 1
            assert status["stores"]["default"]["eval_records"] > 0

            text = fetch_text(url, "/metrics")
            metrics = dict(
                line.rsplit(" ", 1)
                for line in text.splitlines()
                if line and not line.startswith("#")
            )
            assert float(metrics["serve_plan_hits_total"]) >= 1
            assert float(metrics["serve_plan_misses_total"]) == 1
            assert float(metrics["serve_jobs_completed_total"]) == 1
            assert float(metrics['serve_jobs{state="done"}']) == 1
            # the tuning job published its simulation counters into the
            # same registry, so ops see tuning cost at /metrics too
            assert any(k.startswith("sim_runs_total") for k in metrics)
        finally:
            srv.stop()

    def test_faulted_plan_is_keyed_separately(self, tmp_path):
        """A faults clause becomes part of the plan key: the faulty cell
        tunes independently and never shadows the fault-free cell."""
        srv, url, reg = start_server(tmp_path)
        try:
            code, body = request_plan(url, PLATFORM, 4, 32)
            wait_for_plan(url, body["job"], timeout=120)
            code, body = request_plan(
                url, PLATFORM, 4, 32, faults="straggler:rank=0,slow=2.0"
            )
            assert code == 202  # cold despite the fault-free cell
            done = wait_for_plan(url, body["job"], timeout=120)
            # the spec is stored in canonical form, not as typed
            assert done["plan"]["faults"] == "straggler:rank=0,slow=2"
            code, warm = request_plan(
                url, PLATFORM, 4, 32, faults="straggler:rank=0,slow=2.0"
            )
            assert code == 200
            # distinct store files for the two keys
            assert len(srv.stores.get().results) == 2
        finally:
            srv.stop()
