"""The job journal: append/fold round-trips, torn-tail tolerance,
replay idempotency (DESIGN.md §5.14)."""

import json

import pytest

from repro.serve.journal import (
    INTERRUPTED,
    JOURNAL_STATES,
    REPLAY_STATES,
    JobJournal,
)

REQ = {"platform": "UMD-Cluster", "p": 4, "n": 32, "budget": 4,
       "variant": "NEW", "objective": "fft_time", "faults": "",
       "tenant": "default"}


def make_journal(tmp_path, **kwargs):
    return JobJournal(tmp_path / "jobs.journal.jsonl", **kwargs)


class TestRoundTrip:
    def test_record_then_load_folds_last_record_wins(self, tmp_path):
        j = make_journal(tmp_path)
        j.record("job-000001", "queued", tenant="teamA", request=REQ)
        j.record("job-000001", "running", tenant="teamA")
        j.record("job-000002", "queued", tenant="teamB", request=REQ)
        j.record("job-000001", "done", tenant="teamA")

        entries = j.load()
        assert set(entries) == {"job-000001", "job-000002"}
        assert entries["job-000001"].state == "done"
        assert not entries["job-000001"].replayable
        assert entries["job-000002"].state == "queued"
        assert entries["job-000002"].replayable
        # the request sticks from the queued record even though later
        # records omit it — replay needs no other source of truth
        assert entries["job-000001"].request == REQ
        assert entries["job-000001"].tenant == "teamA"

    def test_error_and_incarnation_carry_through(self, tmp_path):
        j = make_journal(tmp_path)
        j.record("job-000001", "queued", request=REQ)
        j.record("job-000001", INTERRUPTED,
                 error="interrupted by server restart", incarnation=0)
        j.record("job-000001", "queued", request=REQ, incarnation=1)

        entry = j.load()["job-000001"]
        assert entry.state == "queued"
        assert entry.incarnation == 1
        assert "restart" in entry.error
        assert entry.replayable

    def test_unknown_state_is_rejected_at_write_time(self, tmp_path):
        j = make_journal(tmp_path)
        with pytest.raises(ValueError, match="unknown journal state"):
            j.record("job-000001", "zombified")

    def test_every_lifecycle_state_round_trips(self, tmp_path):
        j = make_journal(tmp_path)
        for i, state in enumerate(JOURNAL_STATES, start=1):
            j.record(f"job-{i:06d}", state)
        entries = j.load()
        assert {e.state for e in entries.values()} == set(JOURNAL_STATES)
        assert all(
            e.replayable == (e.state in REPLAY_STATES)
            for e in entries.values()
        )


class TestTolerantLoad:
    def test_missing_file_is_empty_not_fatal(self, tmp_path):
        j = make_journal(tmp_path)
        assert j.load() == {}
        assert j.replayable() == []

    def test_torn_trailing_line_warns_and_is_skipped(self, tmp_path):
        """The SIGKILL case: the tail is half a record.  Every complete
        record before it must survive, with one warning, no exception."""
        j = make_journal(tmp_path)
        j.record("job-000001", "queued", request=REQ)
        j.record("job-000001", "running")
        with open(j.path, "a", encoding="utf-8") as fh:
            fh.write('{"ts": 1.0, "job": "job-000001", "sta')  # no newline

        with pytest.warns(RuntimeWarning, match="skipped 1 unreadable"):
            entries = j.load()
        assert entries["job-000001"].state == "running"
        assert entries["job-000001"].replayable

    def test_garbage_and_foreign_records_are_counted_not_fatal(
        self, tmp_path
    ):
        j = make_journal(tmp_path)
        j.record("job-000001", "queued", request=REQ)
        with open(j.path, "a", encoding="utf-8") as fh:
            fh.write("not json at all\n")
            fh.write(json.dumps({"ts": 1.0}) + "\n")                # no job
            fh.write(json.dumps(
                {"job": "job-000002", "state": "zombified"}) + "\n")
            fh.write(json.dumps([1, 2, 3]) + "\n")                  # not dict
        j.record("job-000003", "queued", request=REQ)

        with pytest.warns(RuntimeWarning, match="skipped 4 unreadable"):
            entries = j.load()
        assert set(entries) == {"job-000001", "job-000003"}

    def test_unknown_extra_fields_are_ignored(self, tmp_path):
        j = make_journal(tmp_path)
        rec = {"ts": 1.0, "job": "job-000001", "state": "queued",
               "inc": 0, "request": REQ, "future_field": {"x": 1}}
        j.path.write_text(json.dumps(rec) + "\n")
        entries = j.load()  # no warning expected
        assert entries["job-000001"].state == "queued"


class TestReplaySemantics:
    def test_duplicate_transitions_collapse(self, tmp_path):
        """Replay idempotency: a crash during replay re-appends the
        same records; folding them is a no-op."""
        j = make_journal(tmp_path)
        for _ in range(3):  # three crashed replay attempts
            j.record("job-000001", INTERRUPTED,
                     error="interrupted by server restart")
            j.record("job-000001", "queued", request=REQ, incarnation=1)
        entries = j.load()
        assert len(entries) == 1
        assert entries["job-000001"].state == "queued"
        assert entries["job-000001"].replayable

    def test_replayable_sorted_by_job_id(self, tmp_path):
        j = make_journal(tmp_path)
        j.record("job-000003", "running", request=REQ)
        j.record("job-000001", "queued", request=REQ)
        j.record("job-000002", "done")
        ids = [e.job_id for e in j.replayable()]
        assert ids == ["job-000001", "job-000003"]

    def test_max_seq_over_ids(self, tmp_path):
        j = make_journal(tmp_path)
        j.record("job-000007", "done")
        j.record("job-000002", "queued", request=REQ)
        entries = j.load()
        assert JobJournal.max_seq(entries) == 7
        assert JobJournal.max_seq({}) == 0
        # non-numeric ids don't break the scan
        j.record("weird-id", "queued")
        assert JobJournal.max_seq(j.load()) == 7
