"""Serve-plane durability: journal replay across restarts, graceful
drain, readiness flips, and restart-riding clients (DESIGN.md §5.14).

The PR-9 acceptance property lives here: a server killed with one job
RUNNING and one QUEUED, restarted over the same root, replays both to
DONE under their original ids — with **zero** re-simulation, because
every evaluation the dead incarnation flushed answers from the warm
stores.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.bench import clear_cache
from repro.errors import DistUnreachableError, ItemTimeoutError
from repro.obs.registry import MetricsRegistry, scoped_registry
from repro.serve import (
    PlanServer,
    ServeConfig,
    request_plan,
    wait_for_plan,
)
from repro.serve import client as serve_client
from repro.serve.journal import JobJournal

BUDGET = 4
PLATFORM = "UMD-Cluster"


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


def sim_runs(reg: MetricsRegistry) -> float:
    fam = reg.snapshot().get("sim_runs_total")
    if not fam:
        return 0.0
    return sum(value for _, value in fam["samples"])


def start_server(tmp_path, **kwargs):
    reg = MetricsRegistry()
    with scoped_registry(reg):
        srv = PlanServer(ServeConfig(
            root=str(tmp_path / "store"), default_budget=BUDGET, **kwargs
        ))
    url = srv.start()
    return srv, url, reg


def http_get(url: str) -> tuple[int, dict, dict]:
    """Raw GET returning (code, json body, headers) — unlike the
    protocol client, does not retry 5xx (healthz/503 assertions)."""
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def http_post(url: str, body: dict) -> tuple[int, dict, dict]:
    req = urllib.request.Request(
        url, data=json.dumps(body).encode(), method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


class TestRecovery:
    def test_interrupted_jobs_replay_to_done_with_zero_sims(self, tmp_path):
        """Acceptance: one job RUNNING and one QUEUED at 'crash' time
        both reach DONE after restart, via replay, without a single
        simulated run — and clients keep their original job handles."""
        srv, url, _ = start_server(tmp_path)
        try:
            _, b1 = request_plan(url, PLATFORM, 4, 32)
            wait_for_plan(url, b1["job"], timeout=120)
            _, b2 = request_plan(url, PLATFORM, 4, 64)
            wait_for_plan(url, b2["job"], timeout=120)
        finally:
            srv.stop()

        # forge the crash: the journal's last words claim job 1 was
        # RUNNING and job 2 QUEUED when the process died (their queued
        # records above already carry the requests)
        journal = JobJournal(tmp_path / "store" / "jobs.journal.jsonl")
        journal.record(b1["job"], "running", tenant="default")
        journal.record(b2["job"], "queued", tenant="default")

        clear_cache()  # a real restart has an empty in-process memo
        srv2, url2, reg2 = start_server(tmp_path)
        try:
            assert srv2.recovered_jobs == 2
            assert reg2.value("serve_jobs_recovered_total") == 2
            for job_id in (b1["job"], b2["job"]):
                done = wait_for_plan(url2, job_id, timeout=120)
                assert done["state"] == "done"
                assert done["recovered"] is True
                assert done["interrupted_incarnations"] == 1
                assert done["plan"]["params"]
            assert sim_runs(reg2) == 0, (
                "replaying journaled jobs re-simulated warm cells"
            )
            # the journal's last words are now terminal: a third start
            # replays nothing
            assert journal.replayable() == []
        finally:
            srv2.stop()

        clear_cache()
        srv3, url3, reg3 = start_server(tmp_path)
        try:
            assert srv3.recovered_jobs == 0
            assert reg3.value("serve_jobs_recovered_total") == 0
        finally:
            srv3.stop()

    def test_fresh_ids_never_collide_with_recovered_history(self, tmp_path):
        srv, url, _ = start_server(tmp_path)
        try:
            _, b1 = request_plan(url, PLATFORM, 4, 32)
            wait_for_plan(url, b1["job"], timeout=120)
        finally:
            srv.stop()
        journal = JobJournal(tmp_path / "store" / "jobs.journal.jsonl")
        journal.record(b1["job"], "running", tenant="default")

        clear_cache()
        srv2, url2, _ = start_server(tmp_path)
        try:
            wait_for_plan(url2, b1["job"], timeout=120)
            # a brand-new cold cell gets an id *after* the journaled one
            _, b2 = request_plan(url2, PLATFORM, 8, 32)
            assert b2["job"] > b1["job"]
        finally:
            srv2.stop()

    def test_torn_journal_tail_warns_but_server_starts(self, tmp_path):
        srv, url, _ = start_server(tmp_path)
        try:
            _, b1 = request_plan(url, PLATFORM, 4, 32)
            wait_for_plan(url, b1["job"], timeout=120)
        finally:
            srv.stop()
        path = tmp_path / "store" / "jobs.journal.jsonl"
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"job": "job-0000')  # SIGKILL mid-write

        clear_cache()
        with pytest.warns(RuntimeWarning, match="unreadable record"):
            srv2, url2, _ = start_server(tmp_path)
        try:
            code, _ = request_plan(url2, PLATFORM, 4, 32)
            assert code == 200  # warm store intact behind the torn journal
        finally:
            srv2.stop()

    def test_unusable_journaled_request_is_dropped_with_warning(
        self, tmp_path
    ):
        (tmp_path / "store").mkdir(parents=True)
        journal = JobJournal(tmp_path / "store" / "jobs.journal.jsonl")
        journal.record(
            "job-000001", "queued", tenant="default",
            request={"platform": "NoSuchMachine", "p": 4, "n": 32},
        )
        with pytest.warns(RuntimeWarning, match="cannot replay"):
            srv, url, reg = start_server(tmp_path)
        try:
            assert srv.recovered_jobs == 0
            assert srv.jobs.get("job-000001") is None
        finally:
            srv.stop()

    def test_journal_disabled_means_no_replay(self, tmp_path):
        (tmp_path / "store").mkdir(parents=True)
        journal = JobJournal(tmp_path / "store" / "jobs.journal.jsonl")
        journal.record(
            "job-000001", "queued", tenant="default",
            request={"platform": PLATFORM, "p": 4, "n": 32,
                     "budget": BUDGET},
        )
        srv, url, reg = start_server(tmp_path, journal=False)
        try:
            assert srv.recovered_jobs == 0
            assert srv.journal is None
        finally:
            srv.stop()


class TestDrain:
    def test_drain_journals_final_states_and_stops_serving(self, tmp_path):
        """Acceptance: a drained shutdown leaves every job's final state
        in the journal (DONE here — the jobs finish inside the drain
        window), and the next incarnation replays nothing."""
        srv, url, reg = start_server(tmp_path)
        _, body = request_plan(url, PLATFORM, 4, 32)
        wait_for_plan(url, body["job"], timeout=120)

        outcome = srv.drain()
        assert outcome == {"drained": True, "interrupted": []}
        assert reg.value("serve_drains_total") == 1
        journal = JobJournal(tmp_path / "store" / "jobs.journal.jsonl")
        assert journal.load()[body["job"]].state == "done"
        assert journal.replayable() == []
        # HTTP is down after the drain completes
        with pytest.raises(DistUnreachableError):
            request_plan(url, PLATFORM, 4, 32)

    def test_draining_server_answers_503_with_retry_after(self, tmp_path):
        """During the drain window (readiness down, HTTP still up so
        clients can poll their jobs) POST /plan is 503 + Retry-After
        and /healthz reports not-ready."""
        srv, url, reg = start_server(tmp_path, retry_after_s=7)
        try:
            code, body, _ = http_get(f"{url}/healthz")
            assert code == 200
            assert body["ready"] is True and body["live"] is True

            srv._draining = True  # the drain window, frozen open
            code, body, headers = http_post(
                f"{url}/plan", {"platform": PLATFORM, "p": 4, "n": 32}
            )
            assert code == 503
            assert body["retry_after"] == 7
            assert headers.get("Retry-After") == "7"

            code, body, _ = http_get(f"{url}/healthz")
            assert code == 503
            assert body["live"] is True      # alive, just not ready
            assert body["ready"] is False
            assert body["draining"] is True

            text = srv.metrics_text()
            assert "serve_draining 1" in text
        finally:
            srv._draining = False
            srv.stop()

    def test_retry_after_defaults_to_drain_timeout(self, tmp_path):
        srv, url, _ = start_server(tmp_path, drain_timeout=12.0)
        try:
            assert srv.retry_after_s() == 12
        finally:
            srv.stop()

    def test_healthz_is_served_without_auth(self, tmp_path):
        srv, url, _ = start_server(tmp_path, token="s3cret")
        try:
            code, body, _ = http_get(f"{url}/healthz")  # no token sent
            assert code == 200 and body["ready"] is True
        finally:
            srv.stop()


class TestClientRetry:
    def test_wait_for_plan_rides_out_a_restart_window(self, monkeypatch):
        """Two refused polls (the server is restarting), then the
        replayed job answers — the client never sees the blip."""
        calls = {"n": 0}

        def flaky_poll(base_url, job_id, token=None):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise DistUnreachableError("connection refused")
            return 200, {"state": "done", "plan": {"params": {"ok": 1}}}

        monkeypatch.setattr(serve_client, "poll_plan", flaky_poll)
        body = serve_client.wait_for_plan(
            "http://127.0.0.1:1", "job-000001", timeout=30.0, poll_s=0.01
        )
        assert body["plan"]["params"] == {"ok": 1}
        assert calls["n"] == 3

    def test_wait_for_plan_surfaces_unreachable_after_deadline(
        self, monkeypatch
    ):
        def dead_poll(base_url, job_id, token=None):
            raise DistUnreachableError("connection refused")

        monkeypatch.setattr(serve_client, "poll_plan", dead_poll)
        with pytest.raises(DistUnreachableError):
            serve_client.wait_for_plan(
                "http://127.0.0.1:1", "job-000001",
                timeout=0.05, poll_s=0.01,
            )

    def test_wait_for_plan_still_times_out_on_slow_jobs(self, monkeypatch):
        monkeypatch.setattr(
            serve_client, "poll_plan",
            lambda base_url, job_id, token=None: (200, {"state": "running"}),
        )
        with pytest.raises(ItemTimeoutError, match="still 'running'"):
            serve_client.wait_for_plan(
                "http://127.0.0.1:1", "job-000001",
                timeout=0.05, poll_s=0.01,
            )
