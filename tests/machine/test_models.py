"""Unit tests for the CPU, cache, and network models."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine import (
    HOPPER,
    PLATFORMS,
    UMD_CLUSTER,
    CacheModel,
    CpuModel,
    NetworkModel,
    get_platform,
)


def small_cpu(**kw):
    defaults = dict(
        flops=1e9,
        mem_bw=2e9,
        cache_bw=8e9,
        cache=CacheModel(l1_bytes=32 * 1024, l2_bytes=256 * 1024),
    )
    defaults.update(kw)
    return CpuModel(**defaults)


class TestCacheModel:
    def test_fits_private(self):
        c = CacheModel(l1_bytes=32 * 1024, l2_bytes=256 * 1024)
        assert c.fits_private(100 * 1024)
        assert not c.fits_private(200 * 1024)  # above usable fraction

    def test_fits_l1(self):
        c = CacheModel(l1_bytes=32 * 1024, l2_bytes=256 * 1024)
        assert c.fits_l1(10 * 1024)
        assert not c.fits_l1(20 * 1024)

    def test_lines_touched(self):
        c = CacheModel(l1_bytes=1024, l2_bytes=2048, line_bytes=64)
        assert c.lines_touched(64) == 1
        assert c.lines_touched(65) == 2
        assert c.lines_touched(0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheModel(l1_bytes=0, l2_bytes=10)
        with pytest.raises(ValueError):
            CacheModel(l1_bytes=8, l2_bytes=8, usable_fraction=1.5)


class TestCpuModel:
    def test_fft_time_scales_nlogn(self):
        cpu = small_cpu()
        t1 = cpu.fft_time(256, batch=1)
        t2 = cpu.fft_time(256, batch=10)
        assert math.isclose(t2, 10 * t1, rel_tol=1e-12)

    def test_fft_time_zero_for_trivial(self):
        assert small_cpu().fft_time(1, 100) == 0.0

    def test_fft_cache_penalty_applies_to_huge_rows(self):
        cpu = small_cpu()
        small = cpu.fft_time(1024)          # row fits cache
        huge = cpu.fft_time(1024 * 1024)    # row exceeds cache
        flops_ratio = (
            (1024 * 1024 * math.log2(1024 * 1024)) / (1024 * math.log2(1024))
        )
        assert huge > small * flops_ratio  # strictly worse than pure scaling

    def test_copy_time_residency(self):
        cpu = small_cpu()
        assert cpu.copy_time(1 << 20, resident=True) < cpu.copy_time(
            1 << 20, resident=False
        )

    def test_pack_subtile_time_has_floor(self):
        cpu = small_cpu()
        assert cpu.pack_subtile_time(16) >= cpu.loop_overhead

    def test_pack_subtile_cache_cliff(self):
        cpu = small_cpu()
        fits = cpu.pack_subtile_time(64 * 1024)
        spills = cpu.pack_subtile_time(512 * 1024)
        # Per-byte cost jumps when the working set stops fitting.
        assert spills / (512 * 1024) > fits / (64 * 1024)

    def test_transpose_kinds_ordered(self):
        cpu = small_cpu()
        nb = 1 << 20
        fast = cpu.transpose_time(nb, "xzy")
        general = cpu.transpose_time(nb, "zxy")
        naive = cpu.transpose_time(nb, "naive")
        assert fast < general < naive  # Section 3.5 ordering

    def test_transpose_unknown_kind(self):
        with pytest.raises(ValueError):
            small_cpu().transpose_time(10, "xyx")

    @given(st.integers(2, 1 << 20))
    def test_fft_time_positive(self, n):
        assert small_cpu().fft_time(n) > 0


class TestNetworkModel:
    def net(self, **kw):
        defaults = dict(latency=5e-6, node_bw=1e9)
        defaults.update(kw)
        return NetworkModel(**defaults)

    def test_contention_log_monotone(self):
        n = self.net(contention_model="log", contention_coeff=0.5, contention_base=2)
        vals = [n.contention(p) for p in (2, 4, 16, 64, 256)]
        assert vals[0] == 1.0
        assert all(a < b for a, b in zip(vals, vals[1:]))

    def test_contention_pow_monotone(self):
        n = self.net(
            contention_model="pow", contention_coeff=1.0,
            contention_expo=0.5, contention_base=8,
        )
        assert n.contention(8) == 1.0
        assert n.contention(32) == pytest.approx(2.0)
        assert n.contention(128) == pytest.approx(4.0)

    def test_pow_never_below_one(self):
        n = self.net(
            contention_model="pow", contention_coeff=0.1, contention_base=2
        )
        assert n.contention(4) == 1.0

    def test_rank_rate_divides_by_node_sharing(self):
        shared = self.net(ranks_per_node=8)
        solo = self.net(ranks_per_node=1)
        assert shared.rank_rate(2) == pytest.approx(solo.rank_rate(2) / 8)

    def test_eager_threshold(self):
        n = self.net(eager_threshold=1024)
        assert n.is_eager(1024)
        assert not n.is_eager(1025)

    def test_post_cost_grows_with_p(self):
        n = self.net()
        assert n.post_cost(256) > n.post_cost(2)

    def test_message_time_includes_latency(self):
        n = self.net()
        assert n.message_time(0, 2) == pytest.approx(n.latency)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(latency=-1, node_bw=1)
        with pytest.raises(ValueError):
            NetworkModel(latency=0, node_bw=1, contention_model="weird")
        with pytest.raises(ValueError):
            NetworkModel(latency=0, node_bw=1, max_inflight=0)


class TestPlatforms:
    def test_presets_registered(self):
        assert "UMD-Cluster" in PLATFORMS and "Hopper" in PLATFORMS

    def test_lookup_case_insensitive(self):
        assert get_platform("hopper") is HOPPER
        assert get_platform("umd-cluster") is UMD_CLUSTER

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            get_platform("bluegene")

    def test_paper_hardware_facts(self):
        # Both machines have 512 KB private L2 (Section 5.1).
        assert UMD_CLUSTER.cpu.cache.l2_bytes == 512 * 1024
        assert HOPPER.cpu.cache.l2_bytes == 512 * 1024
        # Hopper runs 8 ranks per node sharing the Gemini NIC.
        assert HOPPER.net.ranks_per_node == 8
        assert UMD_CLUSTER.net.ranks_per_node == 1

    def test_platform_contrast(self):
        # Hopper's interconnect is much faster per rank at small scale --
        # the root of the paper's smaller overlap headroom there.
        assert HOPPER.net.rank_rate(16) > 2 * UMD_CLUSTER.net.rank_rate(16)
        assert HOPPER.cpu.flops > UMD_CLUSTER.cpu.flops

    def test_with_overrides(self):
        p2 = UMD_CLUSTER.with_(cpu_flops=9e9, net_latency=1e-6)
        assert p2.cpu.flops == 9e9
        assert p2.net.latency == 1e-6
        assert UMD_CLUSTER.cpu.flops != 9e9  # original untouched

    def test_with_rejects_unknown(self):
        with pytest.raises(ValueError):
            UMD_CLUSTER.with_(bogus=1)
