"""FaultSpec grammar: parsing, validation, canonical keys, models."""

import pytest

from repro.errors import FaultSpecError
from repro.faults import (
    ALL_RANKS,
    FaultSpec,
    current_faults,
    injected_faults,
    install_faults,
    parse_faults,
    uninstall_faults,
)


class TestParsing:
    def test_full_grammar(self):
        spec = parse_faults(
            "straggler:rank=3,slow=2.0;degrade:rank=1,bw=0.5;"
            "jitter:amp=2e-6;spike:prob=0.01,extra=5e-4;"
            "poll:rank=2,factor=4.0;seed:42"
        )
        assert spec.stragglers == ((3, 2.0),)
        assert spec.degrade == ((1, 0.5),)
        assert spec.jitter_amp == 2e-6
        assert spec.spike_prob == 0.01 and spec.spike_s == 5e-4
        assert spec.poll == ((2, 4.0),)
        assert spec.seed == 42

    def test_rank_all(self):
        spec = parse_faults("degrade:rank=all,bw=0.5")
        assert spec.degrade == ((ALL_RANKS, 0.5),)

    def test_multiple_clauses_of_same_kind_compose(self):
        spec = parse_faults("straggler:rank=0,slow=2;straggler:rank=3,slow=4")
        assert set(spec.stragglers) == {(0, 2.0), (3, 4.0)}

    def test_empty_text_is_empty_spec(self):
        assert not parse_faults("")
        assert not parse_faults("  ;  ; ")

    def test_key_round_trips(self):
        text = "straggler:rank=3,slow=2;jitter:amp=1e-06;seed:7"
        spec = parse_faults(text)
        assert parse_faults(spec.key()) == spec

    def test_key_is_order_independent(self):
        a = parse_faults("jitter:amp=1e-6;straggler:rank=2,slow=3;seed:5")
        b = parse_faults("seed:5;straggler:rank=2,slow=3;jitter:amp=1e-6")
        assert a == b
        assert a.key() == b.key()

    def test_empty_spec_is_falsy_and_has_no_model(self):
        spec = FaultSpec()
        assert not spec
        assert spec.key() == ""
        assert spec.model(4) is None

    def test_seed_alone_is_still_empty(self):
        # a seed without any fault kind injects nothing
        assert not parse_faults("seed:42")


class TestValidation:
    @pytest.mark.parametrize("bad", [
        "wobble:rank=1",                 # unknown kind
        "straggler:rank=1,slow=0.5",     # slowdown below 1 is a speedup
        "straggler:slow=2.0",            # straggler needs an explicit rank
        "degrade:rank=1,bw=0.0",         # zero bandwidth never delivers
        "degrade:rank=1,bw=1.5",         # >1 would be an upgrade
        "jitter:amp=-1e-6",              # negative amplitude
        "spike:prob=1.5,extra=1e-4",     # probability out of [0, 1]
        "poll:rank=1,factor=0.5",        # factor below 1 is a speedup
        "straggler:rank=1,slow=2,mass=9",  # unknown field
        "straggler:rank=nope,slow=2",    # unparseable rank
        "seed:notanumber",
    ])
    def test_rejects(self, bad):
        with pytest.raises(FaultSpecError):
            parse_faults(bad)


class TestModel:
    def test_per_rank_factors(self):
        model = parse_faults(
            "straggler:rank=1,slow=2;degrade:rank=0,bw=0.5;poll:rank=2,factor=4"
        ).model(4)
        assert list(model.cpu_scale) == [1.0, 2.0, 1.0, 1.0]
        assert list(model.rate_scale) == [0.5, 1.0, 1.0, 1.0]
        assert list(model.poll_factor) == [1.0, 1.0, 4.0, 1.0]

    def test_rank_all_applies_everywhere(self):
        model = parse_faults("degrade:rank=all,bw=0.25").model(3)
        assert list(model.rate_scale) == [0.25, 0.25, 0.25]

    def test_ranks_beyond_job_size_are_inert(self):
        # one spec can drive a whole grid of job sizes: a p=2 run simply
        # has no rank 7 to slow down
        model = parse_faults("straggler:rank=7,slow=2").model(2)
        assert model is None or not model.has_cpu_faults

    def test_effective_tests_floor_is_one(self):
        model = parse_faults("poll:rank=0,factor=100").model(1)
        assert model.effective_tests(0, 8) == 1
        assert model.tests_suppressed == 7

    def test_draws_are_deterministic_and_seed_keyed(self):
        m1 = parse_faults("jitter:amp=1e-6;seed:1").model(2)
        m2 = parse_faults("jitter:amp=1e-6;seed:1").model(2)
        m3 = parse_faults("jitter:amp=1e-6;seed:2").model(2)
        seq1 = [m1.draw_extra_latency(0) for _ in range(8)]
        seq2 = [m2.draw_extra_latency(0) for _ in range(8)]
        seq3 = [m3.draw_extra_latency(0) for _ in range(8)]
        assert seq1 == seq2
        assert seq1 != seq3
        assert all(0.0 <= v < 1e-6 for v in seq1)


class TestAmbientInstall:
    def test_injected_faults_scopes_the_spec(self):
        spec = parse_faults("straggler:rank=0,slow=2")
        assert current_faults() is None
        with injected_faults(spec):
            assert current_faults() == spec
        assert current_faults() is None

    def test_nesting_restores_the_outer_spec(self):
        outer = parse_faults("straggler:rank=0,slow=2")
        inner = parse_faults("jitter:amp=1e-6")
        with injected_faults(outer):
            with injected_faults(inner):
                assert current_faults() == inner
            assert current_faults() == outer

    def test_empty_spec_reads_as_no_faults(self):
        with injected_faults(FaultSpec()):
            assert current_faults() is None

    def test_install_uninstall_pair(self):
        spec = parse_faults("degrade:rank=all,bw=0.5")
        install_faults(spec)
        try:
            assert current_faults() == spec
        finally:
            uninstall_faults(spec)
        assert current_faults() is None
