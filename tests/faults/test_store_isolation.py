"""Faulted and clean grid results never cross-contaminate the store.

The cell key's fifth element is the canonical ambient fault key, so a
grid evaluated under ``--faults`` writes store entries that can never
satisfy a fault-free lookup (and vice versa) — in both dispatch modes.
"""

import pytest

from repro.bench import clear_cache
from repro.bench.runner import cell_key
from repro.exec import ResultStore, evaluate_cells
from repro.faults import injected_faults, parse_faults

from tests.dist.test_dist_grid import dist_run

BUDGET = 4
GRID = [(4, 32), (8, 32)]
SPEC = parse_faults("straggler:rank=0,slow=2.0;seed:3")


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


def run(dispatch, store, faults=None):
    if dispatch == "dist":
        results, raised = dist_run(GRID, store=store, faults=faults)
        assert raised is None
        return results
    if faults is not None:
        with injected_faults(faults):
            return evaluate_cells(
                "UMD-Cluster", GRID, max_evaluations=BUDGET, store=store,
            )
    return evaluate_cells(
        "UMD-Cluster", GRID, max_evaluations=BUDGET, store=store,
    )


@pytest.mark.parametrize("dispatch", ["local", "dist"])
class TestStoreIsolation:
    def test_faulted_entries_never_satisfy_clean_lookups(
        self, dispatch, tmp_path
    ):
        store = ResultStore(tmp_path / "store")
        faulted = run(dispatch, store, faults=SPEC)
        assert all(c.faults == SPEC.key() for c in faulted)
        assert len(store) == len(GRID)
        # the clean keys are absent from the store...
        for p, n in GRID:
            plat, p_, n_, b, _f = cell_key("UMD-Cluster", p, n, BUDGET)
            assert store.get(plat, p_, n_, b, "") is None
            assert store.get(plat, p_, n_, b, SPEC.key()) is not None
        # ...so a clean run computes fresh cells instead of resuming
        clear_cache()
        clean = run(dispatch, store)
        assert all(c.faults == "" for c in clean)
        assert len(store) == 2 * len(GRID)
        # the injected straggler must actually show in the numbers
        for f, c in zip(faulted, clean):
            assert f.times["NEW"] > c.times["NEW"]

    def test_clean_entries_never_satisfy_faulted_lookups(
        self, dispatch, tmp_path
    ):
        store = ResultStore(tmp_path / "store")
        run(dispatch, store)
        assert len(store) == len(GRID)
        clear_cache()
        faulted = run(dispatch, store, faults=SPEC)
        assert all(c.faults == SPEC.key() for c in faulted)
        assert len(store) == 2 * len(GRID)
