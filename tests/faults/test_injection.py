"""Fault injection through the simulated machine.

The contracts under test are the ones ISSUE acceptance names: fault
injection is bit-for-bit deterministic under a fixed seed (on both rank
backends), a straggler measurably increases exposed communication in
the overlap summary, and a fault-free run is byte-identical to one with
no spec installed.
"""

import pytest

from repro.core.api import run_case
from repro.core.params import ProblemShape
from repro.faults import FaultSpec, injected_faults, parse_faults
from repro.machine.platforms import get_platform
from repro.obs import run_metrics
from repro.obs.tracer import Tracer, tracing
from repro.simmpi.engine import Engine
from repro.simmpi.spmd import run_spmd

PLAT = get_platform("Hopper")
SHAPE = ProblemShape(64, 64, 64, 8)


def _elapsed(faults=None, variant="NEW", backend=None, monkeypatch=None):
    if backend is not None:
        monkeypatch.setenv("REPRO_SIM_BACKEND", backend)
    with injected_faults(faults):
        result, _ = run_case(variant, PLAT, SHAPE)
    return result


@pytest.fixture
def base():
    result, _ = run_case("NEW", PLAT, SHAPE)
    return result


class TestDeterminism:
    @pytest.mark.parametrize("spec", [
        "straggler:rank=3,slow=2.0;seed:42",
        "jitter:amp=2e-6;seed:7",
        "spike:prob=0.05,extra=5e-4;seed:11",
        "degrade:rank=all,bw=0.02",
        "poll:rank=all,factor=8",
    ])
    def test_same_seed_same_times(self, spec):
        a = _elapsed(spec).elapsed
        b = _elapsed(spec).elapsed
        assert a == b  # bit-for-bit, not approximately

    def test_different_seed_different_times(self):
        # amplitude large enough that the jitter is not fully hidden
        # behind compute (a hidden draw cannot move the makespan)
        a = _elapsed("jitter:amp=5e-4;seed:1").elapsed
        b = _elapsed("jitter:amp=5e-4;seed:2").elapsed
        assert a != b

    def test_backends_agree_under_faults(self, monkeypatch):
        spec = "straggler:rank=3,slow=2.0;jitter:amp=2e-6;seed:42"
        threads = _elapsed(spec, backend="threads", monkeypatch=monkeypatch)
        tasks = _elapsed(spec, backend="tasks", monkeypatch=monkeypatch)
        assert threads.elapsed == tasks.elapsed

    def test_empty_spec_is_byte_identical_to_no_spec(self, base):
        inside = _elapsed(FaultSpec())
        assert inside.elapsed == base.elapsed
        assert inside.breakdown == base.breakdown


class TestEffects:
    def test_straggler_slows_the_run(self, base):
        faulty = _elapsed("straggler:rank=3,slow=2.0")
        assert faulty.elapsed > base.elapsed

    def test_straggler_increases_exposed_comm(self, base):
        # the ISSUE acceptance check: the overlap summary must show the
        # degraded machine as *more exposed* communication, not just a
        # longer run
        faulty = _elapsed("straggler:rank=3,slow=2.0")
        mb = run_metrics(base.sim)
        mf = run_metrics(faulty.sim)
        assert mf["exposed_comm_s"] > mb["exposed_comm_s"]
        assert mf["faults"] == "straggler:rank=3,slow=2"
        assert "faults" not in mb

    def test_degraded_links_slow_the_run(self, base):
        faulty = _elapsed("degrade:rank=all,bw=0.02")
        assert faulty.elapsed > base.elapsed

    def test_jitter_slows_the_run(self, base):
        # small jitter hides behind compute; this amplitude does not
        faulty = _elapsed("jitter:amp=5e-4;seed:7")
        assert faulty.elapsed > base.elapsed

    def test_poll_delay_never_speeds_the_run(self, base):
        # fewer progression epochs, same charged Test overhead: a
        # descheduled process cannot finish earlier than a healthy one
        faulty = _elapsed("poll:rank=all,factor=8")
        assert faulty.elapsed >= base.elapsed

    def test_sim_result_carries_the_fault_key(self):
        spec = parse_faults("straggler:rank=1,slow=3;seed:9")
        with injected_faults(spec):
            result, _ = run_case("NEW", PLAT, SHAPE)
        assert result.sim.faults == spec.key()

    def test_fault_free_sim_result_has_empty_key(self, base):
        assert base.sim.faults == ""


class TestEngineWiring:
    def test_engine_accepts_spec_string(self):
        engine = Engine(4, PLAT, faults="straggler:rank=2,slow=2")
        assert engine.cpu_scale_of(2) == 2.0
        assert engine.cpu_scale_of(0) == 1.0

    def test_engine_without_faults_has_no_model(self):
        engine = Engine(4, PLAT)
        assert engine.faults is None
        assert engine.cpu_scale_of(3) == 1.0

    def test_fault_counters_flow_into_the_tracer(self):
        def prog(ctx):
            req = ctx.comm.ialltoall(32 * 1024)
            ctx.compute_with_progress(0.003, [(req, 4)])
            ctx.comm.wait(req)

        with tracing(Tracer(rank_spans=False)) as tr:
            with injected_faults("jitter:amp=1e-6;seed:3"):
                run_spmd(4, prog, PLAT)
        assert tr.counters.get("faults.runs") == 1
        assert tr.counters.get("faults.latency_draws", 0) > 0
        assert tr.counters.get("faults.extra_latency_s", 0) > 0

    def test_no_fault_counters_without_faults(self):
        def prog(ctx):
            req = ctx.comm.ialltoall(32 * 1024)
            ctx.compute_with_progress(0.003, [(req, 4)])
            ctx.comm.wait(req)

        with tracing(Tracer(rank_spans=False)) as tr:
            run_spmd(4, prog, PLAT)
        assert "faults.runs" not in tr.counters
