"""Unit tests for repro.util.intmath."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.intmath import (
    ceil_div,
    clamp,
    divisors,
    is_pow2,
    iter_blocks,
    next_pow2,
    pow2_candidates,
    prime_factors,
)


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(12, 4) == 3

    def test_rounds_up(self):
        assert ceil_div(13, 4) == 4

    def test_zero_numerator(self):
        assert ceil_div(0, 5) == 0

    def test_one(self):
        assert ceil_div(1, 5) == 1

    def test_rejects_nonpositive_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)

    @given(st.integers(0, 10**6), st.integers(1, 10**4))
    def test_matches_definition(self, a, b):
        q = ceil_div(a, b)
        assert q * b >= a
        assert (q - 1) * b < a or q == 0


class TestPow2:
    def test_is_pow2_true(self):
        for v in (1, 2, 4, 1024, 2**30):
            assert is_pow2(v)

    def test_is_pow2_false(self):
        for v in (0, 3, 6, 12, -4):
            assert not is_pow2(v)

    def test_next_pow2(self):
        assert next_pow2(1) == 1
        assert next_pow2(3) == 4
        assert next_pow2(16) == 16
        assert next_pow2(17) == 32

    def test_next_pow2_rejects_zero(self):
        with pytest.raises(ValueError):
            next_pow2(0)

    @given(st.integers(1, 2**40))
    def test_next_pow2_properties(self, n):
        m = next_pow2(n)
        assert is_pow2(m) and m >= n and m < 2 * n


class TestPrimeFactors:
    def test_small(self):
        assert prime_factors(1) == []
        assert prime_factors(2) == [2]
        assert prime_factors(12) == [2, 2, 3]
        assert prime_factors(97) == [97]

    def test_paper_sizes(self):
        # The evaluation's transform sizes factor into small primes.
        assert prime_factors(384) == [2] * 7 + [3]
        assert prime_factors(640) == [2] * 7 + [5]
        assert prime_factors(1792) == [2] * 8 + [7]

    @given(st.integers(1, 10**6))
    def test_product_reconstructs(self, n):
        fs = prime_factors(n)
        prod = 1
        for f in fs:
            prod *= f
        assert prod == n
        assert fs == sorted(fs)


class TestDivisors:
    def test_basic(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]
        assert divisors(1) == [1]
        assert divisors(13) == [1, 13]

    @given(st.integers(1, 5000))
    def test_all_divide(self, n):
        ds = divisors(n)
        assert all(n % d == 0 for d in ds)
        assert ds == sorted(set(ds))
        assert ds[0] == 1 and ds[-1] == n


class TestPow2Candidates:
    def test_paper_example(self):
        # Section 4.4: "when Nz = 24, T can be 1, 2, 4, 8, 16, or 24"
        assert pow2_candidates(1, 24) == [1, 2, 4, 8, 16, 24]

    def test_pow2_bounds(self):
        assert pow2_candidates(1, 16) == [1, 2, 4, 8, 16]

    def test_nontrivial_lower(self):
        assert pow2_candidates(3, 24) == [3, 4, 8, 16, 24]

    def test_without_bounds(self):
        assert pow2_candidates(3, 24, include_bounds=False) == [4, 8, 16]

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            pow2_candidates(5, 4)

    @given(st.integers(1, 1000), st.integers(0, 1000))
    def test_sorted_within_range(self, lo, extra):
        hi = lo + extra
        vals = pow2_candidates(lo, hi)
        assert vals == sorted(set(vals))
        assert all(lo <= v <= hi for v in vals)
        assert lo in vals and hi in vals


class TestIterBlocks:
    def test_exact_division(self):
        assert list(iter_blocks(8, 4)) == [(0, 4), (4, 8)]

    def test_remainder(self):
        assert list(iter_blocks(10, 4)) == [(0, 4), (4, 8), (8, 10)]

    def test_block_larger_than_total(self):
        assert list(iter_blocks(3, 10)) == [(0, 3)]

    def test_zero_total(self):
        assert list(iter_blocks(0, 4)) == []

    def test_rejects_bad_block(self):
        with pytest.raises(ValueError):
            list(iter_blocks(5, 0))

    @given(st.integers(0, 10000), st.integers(1, 500))
    def test_covers_exactly(self, total, block):
        blocks = list(iter_blocks(total, block))
        covered = sum(b - a for a, b in blocks)
        assert covered == total
        # contiguous, ordered, non-empty
        pos = 0
        for a, b in blocks:
            assert a == pos and b > a
            pos = b


class TestClamp:
    def test_inside(self):
        assert clamp(5, 1, 10) == 5

    def test_below(self):
        assert clamp(-3, 1, 10) == 1

    def test_above(self):
        assert clamp(30, 1, 10) == 10

    def test_empty_range(self):
        with pytest.raises(ValueError):
            clamp(5, 10, 1)
