"""Gantt timeline rendering."""

import pytest

from repro.core import ProblemShape, run_case
from repro.machine import UMD_CLUSTER
from repro.report import occupancy, render_strip, render_traces
from repro.simmpi.engine import RankTrace


class TestRenderStrip:
    def test_paints_proportionally(self):
        events = [(0.0, 0.5, "FFTy"), (0.5, 1.0, "Wait")]
        strip = render_strip(events, total=1.0, width=10)
        # Shared boundary cell goes to the later-drawn event.
        assert strip.count("y") == 4
        assert strip.count("W") == 6
        assert strip == "yyyyWWWWWW"

    def test_tiny_event_still_visible(self):
        # A sub-character event drawn last keeps its one-cell mark.
        events = [(0.0, 1.0, "FFTx"), (0.5, 0.5 + 1e-9, "Test")]
        strip = render_strip(events, total=1.0, width=20)
        assert "." in strip

    def test_unknown_label_glyph(self):
        strip = render_strip([(0.0, 1.0, "Mystery")], 1.0, width=5)
        assert strip == "?????"

    def test_rejects_bad_total(self):
        with pytest.raises(ValueError):
            render_strip([], 0.0)

    def test_custom_glyphs(self):
        strip = render_strip([(0, 1, "A")], 1.0, width=4, glyphs={"A": "#"})
        assert strip == "####"


class TestRenderTraces:
    def test_from_real_run(self):
        res, _ = run_case(
            "NEW", UMD_CLUSTER, ProblemShape(64, 64, 64, 4),
            record_events=True,
        )
        text = render_traces(res.sim.traces, res.elapsed, width=60)
        assert "legend:" in text
        assert "rank   0" in text

    def test_requires_events(self):
        with pytest.raises(ValueError):
            render_traces([RankTrace()], 1.0)

    def test_max_ranks_elision(self):
        res, _ = run_case(
            "NEW", UMD_CLUSTER, ProblemShape(64, 64, 64, 8),
            record_events=True,
        )
        text = render_traces(res.sim.traces, res.elapsed, max_ranks=2)
        assert "6 more ranks" in text


class TestOccupancy:
    def test_full_coverage(self):
        assert occupancy([(0.0, 1.0, "FFTy")]) == pytest.approx(1.0)

    def test_label_filter(self):
        events = [(0.0, 0.25, "Wait"), (0.25, 1.0, "FFTy")]
        assert occupancy(events, {"Wait"}) == pytest.approx(0.25)

    def test_empty(self):
        assert occupancy([]) == 0.0
