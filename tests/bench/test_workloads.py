"""Experiment-grid helpers and their environment switches."""

import pytest

from repro.bench import workloads
from repro.bench.workloads import (
    BREAKDOWN_CELLS,
    LARGE_CELLS,
    SMALL_CELLS,
    bench_scale,
    cells_for,
    tuning_budget,
)


class TestGrids:
    def test_small_grid_matches_paper(self):
        assert SMALL_CELLS == [
            (16, 256), (16, 384), (16, 512), (16, 640),
            (32, 256), (32, 384), (32, 512), (32, 640),
        ]

    def test_large_grid_matches_paper(self):
        assert LARGE_CELLS[0] == (128, 1280)
        assert LARGE_CELLS[-1] == (256, 2048)
        assert len(LARGE_CELLS) == 8

    def test_breakdown_cells_match_figure8(self):
        assert ("UMD-Cluster", 32, 640) in BREAKDOWN_CELLS
        assert ("Hopper", 256, 2048) in BREAKDOWN_CELLS


class TestScaleSwitch:
    def test_default_full(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == "full"
        assert cells_for("small") == SMALL_CELLS
        assert cells_for("large") == LARGE_CELLS

    def test_quick_trims(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "quick")
        assert bench_scale() == "quick"
        assert cells_for("small") == [SMALL_CELLS[0], SMALL_CELLS[-1]]
        assert cells_for("large") == [LARGE_CELLS[0], LARGE_CELLS[-1]]

    def test_budget_scales(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert tuning_budget(16) > tuning_budget(128)
        monkeypatch.setenv("REPRO_BENCH_SCALE", "quick")
        assert tuning_budget(16) == tuning_budget(256) == 40


class TestReferenceDataIntegrity:
    def test_table4_covers_same_cells_as_table2(self):
        for key in ("UMD-Cluster", "Hopper", "Hopper-large"):
            assert set(workloads.PAPER_TABLE4[key]) == set(
                workloads.PAPER_TABLE2[key]
            )

    def test_all_times_positive(self):
        for table in workloads.PAPER_TABLE2.values():
            for row in table.values():
                assert all(v > 0 for v in row)
        for table in workloads.PAPER_TABLE4.values():
            for row in table.values():
                assert all(v > 0 for v in row)

    def test_paper_headline_speedups(self):
        # The quoted "up to 1.76x" appears at (256, 2048^3).
        fftw, new, _ = workloads.PAPER_TABLE2["Hopper-large"][(256, 2048)]
        assert fftw / new == pytest.approx(1.758, abs=0.01)
