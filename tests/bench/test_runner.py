"""Benchmark runner: cell memoization, persistence, paper data sanity."""

import pytest

from repro.bench import (
    LARGE_CELLS,
    PAPER_SPEEDUP_RANGES,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    SMALL_CELLS,
    clear_cache,
    evaluate_cell,
    load_cache,
    save_cache,
)
from repro.core import ProblemShape
from repro.machine import UMD_CLUSTER


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestPaperData:
    def test_every_small_cell_has_reference_rows(self):
        for key in ("UMD-Cluster", "Hopper"):
            assert set(PAPER_TABLE2[key]) == set(SMALL_CELLS)
            assert set(PAPER_TABLE3[key]) == set(SMALL_CELLS)
            assert set(PAPER_TABLE4[key]) == set(SMALL_CELLS)

    def test_every_large_cell_has_reference_rows(self):
        assert set(PAPER_TABLE2["Hopper-large"]) == set(LARGE_CELLS)
        assert set(PAPER_TABLE3["Hopper-large"]) == set(LARGE_CELLS)

    def test_paper_new_always_wins(self):
        # Internal consistency of the transcribed numbers: NEW < FFTW.
        for table in PAPER_TABLE2.values():
            for (p, n), (fftw, new, _th) in table.items():
                assert new < fftw, (p, n)

    def test_paper_speedups_inside_quoted_ranges(self):
        for key, (lo, hi) in PAPER_SPEEDUP_RANGES.items():
            table = PAPER_TABLE2[key]
            sps = [fftw / new for (fftw, new, _th) in table.values()]
            assert min(sps) >= lo - 0.01, key
            assert max(sps) <= hi + 0.01, key

    def test_paper_params_feasible_in_our_space(self):
        # Sanity that the transcription respects the declared constraints.
        for key, table in PAPER_TABLE3.items():
            for (p, n), params in table.items():
                shape = ProblemShape(n, n, n, p)
                assert params.Pz <= params.T, (key, p, n)
                assert params.Uz <= params.T, (key, p, n)
                assert params.T <= shape.nz


class TestRunner:
    def test_memoization(self):
        a = evaluate_cell(UMD_CLUSTER, 4, 64, max_evaluations=40)
        b = evaluate_cell(UMD_CLUSTER, 4, 64, max_evaluations=40)
        assert a is b

    def test_cell_contents(self):
        cell = evaluate_cell(UMD_CLUSTER, 4, 64, max_evaluations=40)
        assert set(cell.times) == {"FFTW", "NEW", "TH"}
        assert cell.speedup("NEW") == cell.times["FFTW"] / cell.times["NEW"]
        assert all(t > 0 for t in cell.times.values())

    def test_budget_in_memo_key(self):
        # Different tuning budgets are different experiments: the memo
        # must not serve one for the other.
        a = evaluate_cell(UMD_CLUSTER, 4, 64, max_evaluations=10)
        b = evaluate_cell(UMD_CLUSTER, 4, 64, max_evaluations=40)
        assert a is not b
        assert a.budget == 10 and b.budget == 40
        assert evaluate_cell(UMD_CLUSTER, 4, 64, max_evaluations=10) is a

    def test_save_load_roundtrip(self, tmp_path):
        cell = evaluate_cell(UMD_CLUSTER, 4, 64, max_evaluations=40)
        path = tmp_path / "cache.json"
        save_cache(path)
        clear_cache()
        assert load_cache(path) == 1
        # Same budget -> served from cache.
        restored = evaluate_cell(UMD_CLUSTER, 4, 64, max_evaluations=40)
        assert restored.times == cell.times
        assert restored.params["NEW"] == cell.params["NEW"]

    def test_save_cache_atomic(self, tmp_path):
        evaluate_cell(UMD_CLUSTER, 4, 64, max_evaluations=10)
        path = tmp_path / "cache.json"
        save_cache(path)
        save_cache(path)  # overwrite goes through os.replace
        assert [f.name for f in tmp_path.iterdir()] == ["cache.json"]

    def test_load_skips_pre_budget_schema(self, tmp_path):
        # Old-schema entries (no "budget") have ambiguous keys; they are
        # dropped rather than aliased to some budget.
        path = tmp_path / "cache.json"
        path.write_text('[{"platform": "UMD-Cluster", "p": 4, "n": 64}]')
        assert load_cache(path) == 0

    def test_load_missing_file(self, tmp_path):
        assert load_cache(tmp_path / "nope.json") == 0
